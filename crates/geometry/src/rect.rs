/// An axis-aligned rectangle in integer (nanometre) layout coordinates.
///
/// The invariant `xl <= xh && yl <= yh` is established by [`Rect::new`].
/// Coordinates are half-open in spirit but all geometry in this workspace
/// treats rectangles as closed regions; two rectangles sharing an edge have
/// gap distance zero.
///
/// # Example
///
/// ```
/// use mpld_geometry::Rect;
/// let r = Rect::new(0, 0, 100, 20);
/// assert_eq!(r.width(), 100);
/// assert_eq!(r.height(), 20);
/// assert_eq!(r.area(), 2000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rect {
    /// Left x coordinate.
    pub xl: i64,
    /// Bottom y coordinate.
    pub yl: i64,
    /// Right x coordinate.
    pub xh: i64,
    /// Top y coordinate.
    pub yh: i64,
}

impl Rect {
    /// Creates a rectangle, normalizing the corner order.
    pub fn new(xl: i64, yl: i64, xh: i64, yh: i64) -> Self {
        Rect {
            xl: xl.min(xh),
            yl: yl.min(yh),
            xh: xl.max(xh),
            yh: yl.max(yh),
        }
    }

    /// Width along x.
    pub fn width(&self) -> i64 {
        self.xh - self.xl
    }

    /// Height along y.
    pub fn height(&self) -> i64 {
        self.yh - self.yl
    }

    /// Area in square nanometres.
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// Whether this rectangle overlaps (or touches) `other`.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.xl <= other.xh && other.xl <= self.xh && self.yl <= other.yh && other.yl <= self.yh
    }

    /// The rectangle expanded by `margin` on all four sides.
    pub fn expanded(&self, margin: i64) -> Rect {
        Rect {
            xl: self.xl - margin,
            yl: self.yl - margin,
            xh: self.xh + margin,
            yh: self.yh + margin,
        }
    }

    /// The smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            xl: self.xl.min(other.xl),
            yl: self.yl.min(other.yl),
            xh: self.xh.max(other.xh),
            yh: self.yh.max(other.yh),
        }
    }

    /// Splits the rectangle at `x` into a left and right part.
    ///
    /// Returns `None` when `x` is outside the open interior `(xl, xh)`.
    pub fn split_at_x(&self, x: i64) -> Option<(Rect, Rect)> {
        if x <= self.xl || x >= self.xh {
            return None;
        }
        Some((
            Rect::new(self.xl, self.yl, x, self.yh),
            Rect::new(x, self.yl, self.xh, self.yh),
        ))
    }

    /// Splits the rectangle at `y` into a bottom and top part.
    ///
    /// Returns `None` when `y` is outside the open interior `(yl, yh)`.
    pub fn split_at_y(&self, y: i64) -> Option<(Rect, Rect)> {
        if y <= self.yl || y >= self.yh {
            return None;
        }
        Some((
            Rect::new(self.xl, self.yl, self.xh, y),
            Rect::new(self.xl, y, self.xh, self.yh),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let r = Rect::new(10, 20, 0, 5);
        assert_eq!(r, Rect::new(0, 5, 10, 20));
    }

    #[test]
    fn intersects_shared_edge() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10);
        assert!(a.intersects(&b));
    }

    #[test]
    fn intersects_disjoint() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(11, 0, 20, 10);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn expanded_grows_all_sides() {
        let r = Rect::new(0, 0, 10, 10).expanded(5);
        assert_eq!(r, Rect::new(-5, -5, 15, 15));
    }

    #[test]
    fn split_at_x_interior() {
        let r = Rect::new(0, 0, 10, 4);
        let (l, rr) = r.split_at_x(6).unwrap();
        assert_eq!(l, Rect::new(0, 0, 6, 4));
        assert_eq!(rr, Rect::new(6, 0, 10, 4));
        assert_eq!(l.area() + rr.area(), r.area());
    }

    #[test]
    fn split_at_x_boundary_is_none() {
        let r = Rect::new(0, 0, 10, 4);
        assert!(r.split_at_x(0).is_none());
        assert!(r.split_at_x(10).is_none());
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0, 0, 5, 5);
        let b = Rect::new(10, -3, 12, 2);
        let u = a.union(&b);
        assert_eq!(u, Rect::new(0, -3, 12, 5));
    }
}
