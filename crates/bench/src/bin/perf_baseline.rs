//! Perf-baseline harness: measures suite preparation time, per-engine
//! decomposition throughput, serial-vs-parallel adaptive wall time, and
//! the long-lived serving path (requests/s and cross-request memo hit
//! rates through the real HTTP endpoint), then writes the numbers to
//! `BENCH_pipeline.json` (hand-rolled JSON, no serde) so perf
//! regressions show up as artifact diffs.
//!
//! Usage: `cargo run --release -p mpld-bench --bin perf_baseline [out.json]`
//!
//! Knobs: `MPLD_CIRCUITS`, `MPLD_TRAIN_CAP`, `MPLD_EPOCHS` as usual, plus
//! `MPLD_THREADS` for the parallel adaptive path (default: available
//! parallelism — on a single-core host the pool is bypassed entirely, so
//! the parallel column measures the memo gain, not scheduling overhead),
//! `MPLD_SEED` for the ColorGNN sampling RNG (recorded in the artifact so
//! a run is reproducible from the JSON alone), and `MPLD_PRECISION` has no
//! effect here: the quantized section always measures f16 and int8
//! against the f32 run.

use mpld::{
    audit_boundary_units, peak_rss_bytes, prepare, prepare_tiled_file, train_framework_with_report,
    AdaptiveResult, BudgetPolicy, EngineKind, Precision, PreparedLayout, Session, TilingConfig,
    TrainingData,
};
use mpld_bench::env_usize;
use mpld_ec::EcDecomposer;
use mpld_gnn::{ColorGnn, ColorGnnTrainConfig, RgcnClassifier, TrainConfig};
use mpld_graph::{DecomposeParams, Decomposer, LayoutGraph};
use mpld_ilp::encode::BipDecomposer;
use mpld_ilp::IlpDecomposer;
use mpld_layout::{
    generate_layout_streaming, iscas_suite, read_layout, GeneratorParams, LayoutWriter, ReadLimits,
};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".into());
    let params = DecomposeParams::tpl();
    let limit = env_usize("MPLD_CIRCUITS", 15).clamp(1, 15);
    // Available parallelism, not a forced floor: forcing extra workers on
    // a single-core host made the "parallel" column pay pool scheduling
    // overhead it can never win back (speedup 0.96 in the committed
    // artifact); with threads == 1 the pool is bypassed and the column
    // isolates the isomorphism-memo gain.
    let threads = mpld::default_threads();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let seed: u64 = std::env::var("MPLD_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xBEEF);

    // 1. Suite preparation (generation + conflict graph + simplification +
    // stitch insertion for every circuit).
    let circuits: Vec<_> = iscas_suite().into_iter().take(limit).collect();
    let t = Instant::now();
    let prepared: Vec<PreparedLayout> = circuits
        .iter()
        .map(|c| prepare(&c.generate(), &params))
        .collect();
    let prepare_seconds = t.elapsed().as_secs_f64();
    let total_units: usize = prepared.iter().map(|p| p.units.len()).sum();
    eprintln!("prepared {limit} circuits ({total_units} units) in {prepare_seconds:.2}s");

    // 2. Per-engine throughput on the unit population of the largest
    // prepared circuit (capped so the exact engines stay bounded).
    let biggest = prepared
        .iter()
        .enumerate()
        .max_by_key(|(_, p)| p.units.len())
        .map(|(i, _)| i)
        .expect("non-empty suite");
    let sample: Vec<_> = prepared[biggest]
        .units
        .iter()
        .take(env_usize("MPLD_BENCH_UNITS", 300))
        .collect();
    let engines: Vec<(&str, Box<dyn Decomposer>)> = vec![
        ("ilp_eq3", Box::new(BipDecomposer::new())),
        ("ilp_bb", Box::new(IlpDecomposer::new())),
        ("ec", Box::new(EcDecomposer::new())),
    ];
    let mut engine_rows = Vec::new();
    for (name, engine) in &engines {
        let t = Instant::now();
        for u in &sample {
            std::hint::black_box(engine.decompose_unbounded(&u.hetero, &params));
        }
        let secs = t.elapsed().as_secs_f64();
        let per_sec = sample.len() as f64 / secs.max(1e-12);
        eprintln!(
            "{name}: {} units in {secs:.2}s ({per_sec:.0} units/s)",
            sample.len()
        );
        engine_rows.push(format!(
            "    {{\"name\": \"{name}\", \"units\": {}, \"seconds\": {secs:.4}, \"units_per_second\": {per_sec:.1}}}",
            sample.len()
        ));
    }

    // 3. Adaptive framework: serial (batched) vs parallel (largest-first
    // work-stealing + isomorphism memo cache) wall time per circuit. The
    // ColorGNN RNG is reseeded before every run so both paths see the
    // same stream and the cost comparison is exact.
    let mut data = TrainingData::default();
    let cap = env_usize("MPLD_TRAIN_CAP", 150);
    for p in prepared.iter().take(2) {
        data.add_layout_capped(p, &params, cap);
    }
    let mut cfg = mpld::OfflineConfig::default();
    let epochs = env_usize("MPLD_EPOCHS", 12);
    cfg.rgcn.epochs = epochs;
    let t = Instant::now();
    let (mut fw, train_report) = train_framework_with_report(&data, &params, &cfg);
    eprintln!(
        "trained framework in {:.2}s ({} units, {} deduped; losses: selector {:.6}, redundancy {:.6}, colorgnn {:.6})",
        t.elapsed().as_secs_f64(),
        train_report.num_units,
        train_report.deduped_units,
        train_report.selector_loss,
        train_report.redundancy_loss,
        train_report.colorgnn_loss,
    );

    let mut circuit_rows = Vec::new();
    let (mut serial_total, mut parallel_total) = (0.0f64, 0.0f64);
    let mut memo_total = 0usize;
    let (mut audit_rejections, mut quarantined) = (0usize, 0usize);
    let (mut infer_memo_hits, mut infer_units) = (0usize, 0usize);
    let mut scratch_high_water = 0usize;
    let (mut batches_planned, mut waste_before, mut waste_after) = (0usize, 0usize, 0usize);
    let mut serial_results: Vec<AdaptiveResult> = Vec::new();
    for (c, prep) in circuits.iter().zip(&prepared) {
        fw.colorgnn.reseed(seed);
        let t = Instant::now();
        let serial = fw.decompose_prepared(prep);
        let s_secs = t.elapsed().as_secs_f64();

        fw.colorgnn.reseed(seed);
        let t = Instant::now();
        let parallel = fw.decompose_prepared_parallel(prep, threads);
        let p_secs = t.elapsed().as_secs_f64();

        assert_eq!(
            serial.pipeline.cost, parallel.pipeline.cost,
            "{}: parallel adaptive cost diverged from serial",
            c.name
        );
        serial_total += s_secs;
        parallel_total += p_secs;
        memo_total += parallel.memo_hits;
        audit_rejections += parallel.budget.audit_rejections;
        quarantined += parallel.budget.quarantined;
        infer_memo_hits += serial.inference.memo_hits;
        infer_units += serial.inference.units_inferred;
        scratch_high_water = scratch_high_water.max(serial.inference.scratch_high_water_bytes);
        batches_planned += serial.inference.batches_planned;
        waste_before += serial.inference.padding_waste_before_bytes;
        waste_after = waste_after.max(serial.inference.padding_waste_after_bytes);
        eprintln!(
            "{}: serial {s_secs:.3}s, parallel {p_secs:.3}s ({} units, {} memo hits) [serial ilp {:.3}s ec {:.3}s gnn {:.3}s match {:.3}s sel {:.3}s red {:.3}s]",
            c.name,
            prep.units.len(),
            parallel.memo_hits,
            serial.timing.ilp.as_secs_f64(),
            serial.timing.ec.as_secs_f64(),
            serial.timing.colorgnn.as_secs_f64(),
            serial.timing.matching.as_secs_f64(),
            serial.timing.selection.as_secs_f64(),
            serial.timing.redundancy.as_secs_f64(),
        );
        // Routing/cost digest: deterministic per (model seed, circuit),
        // so the CI perf_baseline step can diff it against the committed
        // artifact to catch any change in routing decisions or final
        // costs (compared only when `fp_kernel` matches — the last bits
        // of the forward pass depend on the GEMM microkernel).
        circuit_rows.push(format!(
            "      {{\"name\": \"{}\", \"units\": {}, \"serial_seconds\": {s_secs:.4}, \"parallel_seconds\": {p_secs:.4}, \"memo_hits\": {}, \"cost_equal\": true, \"conflicts\": {}, \"stitches\": {}, \"engines\": {{\"matching\": {}, \"colorgnn\": {}, \"ilp\": {}, \"ec\": {}}}}}",
            c.name,
            prep.units.len(),
            parallel.memo_hits,
            serial.pipeline.cost.conflicts,
            serial.pipeline.cost.stitches,
            serial.usage.matching,
            serial.usage.colorgnn,
            serial.usage.ilp,
            serial.usage.ec,
        ));
        serial_results.push(serial);
    }
    let speedup = serial_total / parallel_total.max(1e-12);
    eprintln!(
        "adaptive suite: serial {serial_total:.2}s, parallel {parallel_total:.2}s -> {speedup:.2}x ({threads} threads, {memo_total} memo hits, seed {seed}, {audit_rejections} audit rejections, {quarantined} quarantined)"
    );
    eprintln!(
        "routing inference: {infer_units} units inferred, {infer_memo_hits} embedding-memo hits, scratch high-water {scratch_high_water} bytes"
    );

    // 3q. Quantized routing tiers: the full serial suite again at f16 and
    // int8. The trust ladder (library pinning + margin-gated f32
    // re-inference) must reproduce the f32 routing decisions and costs
    // exactly — asserted here per circuit, and the per-circuit digest rows
    // are recorded so the CI digest guard can verify them against the
    // adaptive rows independently.
    struct QuantRun {
        precision: Precision,
        kernel: &'static str,
        serial_seconds: f64,
        quantized_units: usize,
        pinned_f32: usize,
        f32_fallbacks: usize,
        batches_planned: usize,
        waste_before: usize,
        waste_after: usize,
        circuit_rows: Vec<String>,
    }
    let mut quant_runs: Vec<QuantRun> = Vec::new();
    for precision in [Precision::F16, Precision::Int8] {
        fw.precision = precision;
        let mut run = QuantRun {
            precision,
            kernel: "",
            serial_seconds: 0.0,
            quantized_units: 0,
            pinned_f32: 0,
            f32_fallbacks: 0,
            batches_planned: 0,
            waste_before: 0,
            waste_after: 0,
            circuit_rows: Vec::new(),
        };
        for ((c, prep), base) in circuits.iter().zip(&prepared).zip(&serial_results) {
            fw.colorgnn.reseed(seed);
            let t = Instant::now();
            let q = fw.decompose_prepared(prep);
            run.serial_seconds += t.elapsed().as_secs_f64();
            assert_eq!(
                q.pipeline.cost, base.pipeline.cost,
                "{}: {precision} cost diverged from f32",
                c.name
            );
            assert_eq!(
                q.unit_engines, base.unit_engines,
                "{}: {precision} routed a unit to a different engine",
                c.name
            );
            run.kernel = q.inference.kernel_quant;
            run.quantized_units += q.inference.quantized_units;
            run.pinned_f32 += q.inference.pinned_f32;
            run.f32_fallbacks += q.inference.f32_fallbacks;
            run.batches_planned += q.inference.batches_planned;
            run.waste_before += q.inference.padding_waste_before_bytes;
            run.waste_after = run.waste_after.max(q.inference.padding_waste_after_bytes);
            run.circuit_rows.push(format!(
                "        {{\"name\": \"{}\", \"units\": {}, \"conflicts\": {}, \"stitches\": {}, \"quantized_units\": {}, \"f32_fallbacks\": {}, \"engines\": {{\"matching\": {}, \"colorgnn\": {}, \"ilp\": {}, \"ec\": {}}}}}",
                c.name,
                prep.units.len(),
                q.pipeline.cost.conflicts,
                q.pipeline.cost.stitches,
                q.inference.quantized_units,
                q.inference.f32_fallbacks,
                q.usage.matching,
                q.usage.colorgnn,
                q.usage.ilp,
                q.usage.ec,
            ));
        }
        eprintln!(
            "quantized suite [{precision}] ({}): {:.2}s serial, {} quantized / {} pinned / {} fallbacks, {} batches, waste {} -> {} bytes",
            run.kernel,
            run.serial_seconds,
            run.quantized_units,
            run.pinned_f32,
            run.f32_fallbacks,
            run.batches_planned,
            run.waste_before,
            run.waste_after,
        );
        quant_runs.push(run);
    }
    fw.precision = Precision::F32;
    // Serialized weights for the persistent-store section (6b): the
    // framework itself is consumed by `Engine::new` in section 5.
    let mut model_bytes: Vec<u8> = Vec::new();
    fw.save(&mut model_bytes).expect("serialize framework");

    // 3b. Routing-inference throughput: the tape path (per-unit autodiff
    // forwards, the pre-frozen implementation) vs the frozen engine,
    // per-unit and batched (the adaptive default). One "unit" is the full
    // routing cost: one selector and one redundancy forward.
    let infer_graphs: Vec<&mpld_graph::LayoutGraph> = sample.iter().map(|u| &u.hetero).collect();
    let reps = env_usize("MPLD_INFER_REPS", 5);
    let time_pass = |f: &mut dyn FnMut()| {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        t.elapsed().as_secs_f64()
    };
    let tape_secs = time_pass(&mut || {
        for g in &infer_graphs {
            std::hint::black_box(fw.selector.predict(g));
            std::hint::black_box(fw.redundancy.predict(g));
        }
    });
    let frozen_sel = fw.selector.freeze();
    let frozen_red = fw.redundancy.freeze();
    let frozen_secs = time_pass(&mut || {
        for g in &infer_graphs {
            std::hint::black_box(frozen_sel.predict(g));
            std::hint::black_box(frozen_red.predict(g));
        }
    });
    let batched_secs = time_pass(&mut || {
        let enc = mpld_gnn::InferBatch::new(&infer_graphs);
        std::hint::black_box(frozen_sel.infer_encoded(&enc));
        std::hint::black_box(frozen_red.predict_encoded(&enc));
    });
    // Quantized batched passes over the planner's bucketed batches — the
    // exact shape the adaptive routing tier runs (the f32 row above keeps
    // the historical single-union shape for comparability with committed
    // artifacts).
    let sizes: Vec<(usize, usize)> = infer_graphs
        .iter()
        .map(|g| {
            (
                g.num_nodes(),
                g.conflict_edges().len() + g.stitch_edges().len(),
            )
        })
        .collect();
    let items: Vec<usize> = (0..infer_graphs.len()).collect();
    let plan = mpld::BatchPlan::new(&items, &sizes, mpld::DEFAULT_MAX_BATCH_NODES);
    let planned: Vec<Vec<&mpld_graph::LayoutGraph>> = plan
        .batches
        .iter()
        .map(|b| b.iter().map(|&i| infer_graphs[i]).collect())
        .collect();
    let time_quant = |precision: Precision| {
        time_pass(&mut || {
            for batch in &planned {
                let enc = mpld_gnn::InferBatch::new(batch);
                std::hint::black_box(frozen_sel.infer_encoded_with(&enc, precision));
                std::hint::black_box(frozen_red.predict_encoded_with(&enc, precision));
            }
        })
    };
    let planned_f32_secs = time_quant(Precision::F32);
    let f16_secs = time_quant(Precision::F16);
    let int8_secs = time_quant(Precision::Int8);
    scratch_high_water = scratch_high_water
        .max(frozen_sel.scratch_high_water_bytes())
        .max(frozen_red.scratch_high_water_bytes());
    let n_inf = (reps * infer_graphs.len()) as f64;
    let tape_ups = n_inf / tape_secs.max(1e-12);
    let frozen_ups = n_inf / frozen_secs.max(1e-12);
    let batched_ups = n_inf / batched_secs.max(1e-12);
    let planned_f32_ups = n_inf / planned_f32_secs.max(1e-12);
    let f16_ups = n_inf / f16_secs.max(1e-12);
    let int8_ups = n_inf / int8_secs.max(1e-12);
    let infer_speedup = batched_ups / tape_ups.max(1e-12);
    let f16_speedup = f16_ups / batched_ups.max(1e-12);
    let int8_speedup = int8_ups / batched_ups.max(1e-12);
    eprintln!(
        "inference throughput ({} units x {reps}): tape {tape_ups:.0}/s, frozen {frozen_ups:.0}/s, frozen-batched {batched_ups:.0}/s ({infer_speedup:.1}x)",
        infer_graphs.len()
    );
    eprintln!(
        "quantized throughput ({} planned batches): f32-planned {planned_f32_ups:.0}/s, f16 {f16_ups:.0}/s ({f16_speedup:.2}x), int8 {int8_ups:.0}/s ({int8_speedup:.2}x vs f32 single-union)",
        planned.len()
    );

    // 3c. Training throughput: the per-graph fresh-tape reference
    // (`train_reference`, batch 1) vs the pooled block-diagonal batched
    // engine, over the same labeled data and epoch count. One "graph" is
    // one training-graph visit (graph x epoch), summed across the three
    // heads (selector RGCN, redundancy RGCN, ColorGNN).
    let train_epochs = env_usize("MPLD_TRAIN_BENCH_EPOCHS", 8);
    let train_batch = env_usize("MPLD_TRAIN_BATCH", 24);
    let selector_data: Vec<(&LayoutGraph, u8)> = data
        .units
        .iter()
        .zip(&data.selector_labels)
        .map(|(g, &l)| (g, l))
        .collect();
    let redundancy_data: Vec<(&LayoutGraph, u8)> = data
        .redundancy_labels
        .iter()
        .map(|&(i, l)| (&data.units[i], l))
        .collect();
    let parents: Vec<LayoutGraph> = data
        .units
        .iter()
        .filter(|g| g.num_nodes() > 0 && !g.conflict_edges().is_empty())
        .map(|g| g.merge_stitch_edges().0)
        .collect();
    let parent_refs: Vec<&LayoutGraph> = parents.iter().collect();
    let rgcn_cfg = |batch: usize| TrainConfig {
        epochs: train_epochs,
        lr: 0.01,
        batch,
        balance: true,
    };
    let color_cfg = |batch: usize| ColorGnnTrainConfig {
        epochs: train_epochs,
        lr: 0.02,
        margin: 1.0,
        batch,
    };
    let time_training = |batched: bool| -> f64 {
        let t = Instant::now();
        let mut sel = RgcnClassifier::selector(cfg.seed);
        let mut red = RgcnClassifier::redundancy(cfg.seed ^ 0xF00D);
        let mut color = ColorGnn::new(cfg.seed ^ 0xC01);
        if batched {
            sel.train(&selector_data, &rgcn_cfg(train_batch));
            if !redundancy_data.is_empty() {
                red.train(&redundancy_data, &rgcn_cfg(train_batch));
            }
            if !parent_refs.is_empty() {
                color.train(&parent_refs, params.k, &color_cfg(train_batch));
            }
        } else {
            sel.train_reference(&selector_data, &rgcn_cfg(1));
            if !redundancy_data.is_empty() {
                red.train_reference(&redundancy_data, &rgcn_cfg(1));
            }
            if !parent_refs.is_empty() {
                color.train_reference(&parent_refs, params.k, &color_cfg(1));
            }
        }
        t.elapsed().as_secs_f64()
    };
    let reference_secs = time_training(false);
    let batched_secs = time_training(true);
    let train_visits =
        ((selector_data.len() + redundancy_data.len() + parent_refs.len()) * train_epochs) as f64;
    let reference_gps = train_visits / reference_secs.max(1e-12);
    let batched_gps = train_visits / batched_secs.max(1e-12);
    let train_speedup = batched_gps / reference_gps.max(1e-12);
    eprintln!(
        "training throughput ({} graph-visits): reference {reference_gps:.1}/s, batched {batched_gps:.1}/s ({train_speedup:.2}x, batch {train_batch})",
        train_visits as usize
    );

    // 4. Budget-exhaustion profile: the whole suite again under a tight
    // per-unit deadline, recording per-solver exhaustion and fallback
    // counts (the anytime-contract numbers the framework reports).
    let unit_limit_ms = env_usize("MPLD_BENCH_UNIT_LIMIT_MS", 1);
    let policy = BudgetPolicy {
        per_unit: Some(Duration::from_millis(unit_limit_ms as u64)),
        ..BudgetPolicy::unlimited()
    };
    let (mut certified, mut heuristic, mut exhausted, mut fallbacks) = (0usize, 0, 0, 0);
    let (mut b_audit_rejections, mut b_quarantined) = (0usize, 0usize);
    let mut by_engine = [
        (EngineKind::Matching, 0usize, 0usize),
        (EngineKind::ColorGnn, 0, 0),
        (EngineKind::Ilp, 0, 0),
        (EngineKind::Ec, 0, 0),
    ];
    let t = Instant::now();
    for prep in &prepared {
        fw.colorgnn.reseed(seed);
        let r = fw
            .decompose_prepared_parallel_with(prep, threads, &policy)
            .expect("budget exhaustion is not an error");
        certified += r.budget.certified;
        heuristic += r.budget.heuristic;
        exhausted += r.budget.budget_exhausted;
        fallbacks += r.budget.budget_fallbacks;
        b_audit_rejections += r.budget.audit_rejections;
        b_quarantined += r.budget.quarantined;
        for o in &r.unit_outcomes {
            for row in &mut by_engine {
                if row.0 == o.engine {
                    row.1 += usize::from(o.certainty == mpld_graph::Certainty::BudgetExhausted);
                    row.2 += usize::from(o.budget_fallback);
                }
            }
        }
    }
    let budgeted_seconds = t.elapsed().as_secs_f64();
    eprintln!(
        "budgeted suite ({unit_limit_ms}ms/unit): {certified} certified, {heuristic} heuristic, {exhausted} budget-exhausted, {fallbacks} fallbacks, {b_audit_rejections} audit rejections, {b_quarantined} quarantined in {budgeted_seconds:.2}s"
    );
    let engine_label = |e: EngineKind| match e {
        EngineKind::Matching => "matching",
        EngineKind::ColorGnn => "colorgnn",
        EngineKind::Ilp => "ilp",
        EngineKind::Ec => "ec",
    };
    let exhausted_rows: Vec<String> = by_engine
        .iter()
        .map(|(e, x, _)| format!("\"{}\": {x}", engine_label(*e)))
        .collect();
    let fallback_rows: Vec<String> = by_engine
        .iter()
        .map(|(e, _, f)| format!("\"{}\": {f}", engine_label(*e)))
        .collect();

    // 5. Serving: the suite once more through the long-lived service — a
    // warm shared [`mpld::Engine`] behind the real HTTP/NDJSON endpoint,
    // each circuit requested twice so the warm request measures the
    // cross-request routing-memo + solution-cache path end to end. Served
    // costs and engine usage are asserted equal to the serial adaptive
    // run (the engine parity contract over the wire). Runs last: the
    // framework is consumed by `Engine::new`.
    let serve_workers = threads.clamp(1, cores);
    let serve_queue = 16usize;
    let engine = std::sync::Arc::new(mpld::Engine::new(fw));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let serve_addr = listener.local_addr().expect("addr");
    let shutdown = std::sync::atomic::AtomicBool::new(false);
    let serve_cfg = mpld_server::ServerConfig {
        workers: serve_workers,
        queue_depth: serve_queue,
        read_timeout: Duration::from_secs(60),
        ..mpld_server::ServerConfig::default()
    };
    let mut serving_rows = Vec::new();
    let (mut cold_total, mut warm_total) = (0.0f64, 0.0f64);
    let mut warm_routing_hits = 0usize;
    let serving_seconds = std::thread::scope(|scope| {
        let eng = std::sync::Arc::clone(&engine);
        let server = scope.spawn(|| mpld_server::serve(eng, listener, &serve_cfg, &shutdown));
        let t_all = Instant::now();
        for ((c, prep), base) in circuits.iter().zip(&prepared).zip(&serial_results) {
            // Distinct job ids: durable jobs are idempotent, so a
            // byte-identical re-POST would replay the first job's log
            // instead of exercising the warm engine path.
            let request_for = |tag: &str| {
                let body = format!(
                    "{{\"circuit\":\"{}\",\"seed\":{seed},\"job_id\":\"bench-{tag}-{}\"}}",
                    c.name, c.name
                );
                format!(
                    "POST /decompose HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
            };
            let t = Instant::now();
            let cold = http_request(serve_addr, &request_for("cold"));
            let cold_secs = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let warm = http_request(serve_addr, &request_for("warm"));
            let warm_secs = t.elapsed().as_secs_f64();
            let summary_of = |resp: &str| -> mpld::RunSummary {
                let line = resp
                    .lines()
                    .find(|l| l.starts_with("{\"event\":\"done\""))
                    .unwrap_or_else(|| panic!("{}: no done event in:\n{resp}", c.name));
                mpld::RunSummary::parse(line).expect("served summary parses")
            };
            let (a, b) = (summary_of(&cold), summary_of(&warm));
            for s in [&a, &b] {
                assert_eq!(
                    (s.conflicts, s.stitches),
                    (base.pipeline.cost.conflicts, base.pipeline.cost.stitches),
                    "{}: served cost diverged from the serial adaptive run",
                    c.name
                );
            }
            assert_eq!(
                (b.matching, b.colorgnn, b.ilp, b.ec),
                (
                    base.usage.matching,
                    base.usage.colorgnn,
                    base.usage.ilp,
                    base.usage.ec
                ),
                "{}: served engine usage diverged from the serial run",
                c.name
            );
            assert_eq!(
                b.units_inferred, 0,
                "{}: warm request re-ran routing inference",
                c.name
            );
            cold_total += cold_secs;
            warm_total += warm_secs;
            warm_routing_hits += b.routing_memo_hits;
            eprintln!(
                "serve {}: cold {cold_secs:.3}s, warm {warm_secs:.3}s ({} routing memo hits, {} solution hits)",
                c.name, b.routing_memo_hits, b.memo_hits
            );
            serving_rows.push(format!(
                "      {{\"name\": \"{}\", \"units\": {}, \"cold_seconds\": {cold_secs:.4}, \"warm_seconds\": {warm_secs:.4}, \"warm_routing_memo_hits\": {}, \"warm_solution_memo_hits\": {}, \"cost_equal\": true}}",
                c.name,
                prep.units.len(),
                b.routing_memo_hits,
                b.memo_hits
            ));
        }
        let secs = t_all.elapsed().as_secs_f64();
        shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
        server.join().expect("server thread").expect("serve");
        secs
    });
    let serve_requests = 2 * circuits.len();
    let requests_per_second = serve_requests as f64 / serving_seconds.max(1e-12);
    let warm_speedup = cold_total / warm_total.max(1e-12);
    let engine_stats = engine.stats();
    let routing_lookups = engine_stats.routing.hits + engine_stats.routing.misses;
    let routing_hit_rate = engine_stats.routing.hits as f64 / routing_lookups.max(1) as f64;
    eprintln!(
        "serving suite: {serve_requests} requests in {serving_seconds:.2}s ({requests_per_second:.2} req/s, {serve_workers} workers); warm speedup {warm_speedup:.2}x, routing memo {}/{routing_lookups} hits",
        engine_stats.routing.hits
    );

    // 6. Serving resume: a journaled durable job killed mid-append
    // (simulated by tearing the journal file the way SIGKILL leaves it)
    // and re-submitted to a fresh serve loop over the same journal dir.
    // Measures resume overhead vs the cold journaled run; the digest
    // guard checks the resumed run stayed bit-identical and actually
    // reused surviving records.
    let (resume_circuit, resume_base) = circuits
        .iter()
        .zip(&serial_results)
        .max_by_key(|(_, r)| r.usage.ilp + r.usage.ec)
        .expect("suite is non-empty");
    let resume_tail_units = resume_base.usage.ilp + resume_base.usage.ec;
    assert!(
        resume_tail_units >= 3,
        "serving_resume needs a circuit with >=3 journaled tail units, best was {} with {resume_tail_units}",
        resume_circuit.name
    );
    let journal_dir =
        std::env::temp_dir().join(format!("mpld-bench-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let resume_body = format!(
        "{{\"circuit\":\"{}\",\"seed\":{seed},\"job_id\":\"bench-resume\"}}",
        resume_circuit.name
    );
    let resume_raw = format!(
        "POST /decompose HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{resume_body}",
        resume_body.len()
    );
    let journaled_cfg = mpld_server::ServerConfig {
        workers: 1,
        queue_depth: 4,
        read_timeout: Duration::from_secs(60),
        journal_dir: Some(journal_dir.clone()),
        ..mpld_server::ServerConfig::default()
    };
    // One request through a short-lived serve loop — each call is a
    // separate "process" sharing only the journal directory (and the
    // warm engine, which a respawned process would rebuild bit-identical
    // from the same weights).
    let serve_once = |raw: &str| -> (String, f64) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let eng = std::sync::Arc::clone(&engine);
            let server = scope.spawn(|| mpld_server::serve(eng, listener, &journaled_cfg, &stop));
            let t = Instant::now();
            let resp = http_request(addr, raw);
            let secs = t.elapsed().as_secs_f64();
            stop.store(true, std::sync::atomic::Ordering::SeqCst);
            server.join().expect("server thread").expect("serve");
            (resp, secs)
        })
    };
    let served_summary = |resp: &str| -> mpld::RunSummary {
        let line = resp
            .lines()
            .find(|l| l.starts_with("{\"event\":\"done\""))
            .unwrap_or_else(|| panic!("no done event in:\n{resp}"));
        mpld::RunSummary::parse(line).expect("served summary parses")
    };
    let (cold_resp, resume_cold_secs) = serve_once(&resume_raw);
    let resume_cold = served_summary(&cold_resp);
    assert_eq!(
        resume_cold.resumed_units, 0,
        "first journaled run must resume nothing"
    );

    // Tear the journal to its header, roughly half the records, and a
    // torn half-line — the on-disk state SIGKILL mid-append leaves.
    let journal_path = journal_dir.join("bench-resume.jsonl");
    let journal_text = std::fs::read_to_string(&journal_path).expect("journal readable");
    let journal_lines: Vec<&str> = journal_text.lines().collect();
    let keep = 1 + (journal_lines.len() - 1) / 2;
    assert!(
        keep >= 2 && keep < journal_lines.len(),
        "journal too short to tear: {} lines",
        journal_lines.len()
    );
    let mut torn = journal_lines[..keep].join("\n");
    torn.push('\n');
    torn.push_str(&journal_lines[keep][..journal_lines[keep].len() / 2]);
    std::fs::write(&journal_path, torn).expect("tear journal");
    let records_kept = keep - 1;

    let (resume_resp, resume_secs) = serve_once(&resume_raw);
    let resume_summary = served_summary(&resume_resp);
    let resume_digest = |s: &mpld::RunSummary| {
        (
            s.conflicts,
            s.stitches,
            format!("{:.17e}", s.objective),
            s.matching,
            s.colorgnn,
            s.ec,
            s.ilp,
        )
    };
    assert_eq!(
        resume_digest(&resume_summary),
        resume_digest(&resume_cold),
        "resumed run must be bit-identical to the uninterrupted run"
    );
    assert!(
        resume_summary.resumed_units > 0,
        "resume must reuse the surviving journal records: {resume_summary:?}"
    );
    let _ = std::fs::remove_dir_all(&journal_dir);
    eprintln!(
        "serving resume {}: cold {resume_cold_secs:.3}s, resume {resume_secs:.3}s ({} of {resume_tail_units} tail units resumed, {records_kept} records survived the tear)",
        resume_circuit.name, resume_summary.resumed_units
    );

    // 6b. Persistent library/tail-solve store: a cold store-backed engine
    // decomposes the whole suite (populating the store with its certified
    // tail solves and the graph library), then a second engine — a fresh
    // "process" sharing only the store directory — re-serves the suite.
    // The warm engine must re-solve almost nothing (>=80% fewer fresh
    // tail solves, asserted) with bit-identical digests, and its startup
    // load must stay in the milliseconds range.
    let store_dir = std::env::temp_dir().join(format!("mpld-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store_digest = |r: &AdaptiveResult| {
        (
            r.pipeline.decomposition.clone(),
            r.pipeline.cost,
            r.unit_engines.clone(),
            r.usage,
        )
    };
    let fresh_tail_solves =
        |r: &AdaptiveResult| (r.usage.ilp + r.usage.ec).saturating_sub(r.memo_hits);
    let run_store_suite = |label: &str| -> (Vec<AdaptiveResult>, usize, f64, mpld::EngineStats) {
        let (store_engine, _report) = mpld::engine_with_store(
            &model_bytes,
            &params,
            &cfg,
            &store_dir,
            mpld_store::StoreCaps::default(),
            None,
        )
        .expect("open store-backed engine");
        let t = Instant::now();
        let mut results = Vec::with_capacity(prepared.len());
        let mut fresh = 0usize;
        for prep in &prepared {
            let mut session = Session::new(seed);
            let r = store_engine
                .decompose(prep, &mut session)
                .expect("store-backed decompose");
            fresh += fresh_tail_solves(&r);
            results.push(r);
        }
        let secs = t.elapsed().as_secs_f64();
        let stats = store_engine.stats();
        let s = stats.store.as_ref().expect("store stats present");
        eprintln!(
            "library [{label}]: {fresh} fresh tail solves in {secs:.2}s ({} loaded in {} ms, library {}, {} appended)",
            s.loaded_solves,
            s.load_ms,
            if s.lib_loaded { "loaded" } else { "rebuilt" },
            s.appended
        );
        (results, fresh, secs, stats)
    };
    let (cold_results, cold_fresh, library_cold_secs, _cold_stats) = run_store_suite("cold");
    for ((c, base), cold) in circuits.iter().zip(&serial_results).zip(&cold_results) {
        assert_eq!(
            cold.pipeline.cost, base.pipeline.cost,
            "{}: store-backed cold cost diverged from the serial adaptive run",
            c.name
        );
    }
    let (warm_results, warm_fresh, library_warm_secs, warm_stats) = run_store_suite("warm");
    for ((c, cold), warm) in circuits.iter().zip(&cold_results).zip(&warm_results) {
        assert_eq!(
            store_digest(warm),
            store_digest(cold),
            "{}: warm store-backed digest diverged from the cold run",
            c.name
        );
    }
    assert!(
        cold_fresh > 0,
        "library section needs at least one fresh tail solve to measure"
    );
    assert!(
        warm_fresh * 5 <= cold_fresh,
        "warm store-backed run must re-solve >=80% less: cold {cold_fresh}, warm {warm_fresh}"
    );
    let warm_store = warm_stats.store.as_ref().expect("store stats present");
    let library_hit_rate = (cold_fresh - warm_fresh) as f64 / cold_fresh as f64;
    let (library_load_ms, library_lib_loaded, library_store_entries) = (
        warm_store.load_ms,
        warm_store.lib_loaded,
        warm_store.entries,
    );
    let library_loaded_solves = warm_store.loaded_solves;
    let _ = std::fs::remove_dir_all(&store_dir);
    eprintln!(
        "library store: cold {cold_fresh} -> warm {warm_fresh} fresh tail solves ({:.1}% served), {library_loaded_solves} solves loaded in {library_load_ms} ms",
        library_hit_rate * 100.0
    );
    drop(cold_results);
    drop(warm_results);

    // 7. Chip scale: a generated multi-hundred-k-rect layout streamed to
    // disk, prepared through the tiled pipeline (O(tile) geometry working
    // set), and decomposed on the warm engine. Runs LAST so its generated
    // units cannot warm any cache the suite sections measure. A smaller
    // parity probe is additionally prepared both ways and decomposed
    // twice to re-prove the tiled/serial digest identity at this seed
    // (the tiled_parity test suite proves it structurally).
    let chip_rects = env_usize("MPLD_CHIP_RECTS", 200_000) as u64;
    let chip_dir = std::env::temp_dir().join(format!("mpld-bench-chip-{}", std::process::id()));
    std::fs::create_dir_all(&chip_dir).expect("chip scratch dir");
    let chip_config = TilingConfig {
        tile_span: 0, // 48*d default
        halo: 0,      // d default
        threads,
    };
    let gen_to_file = |rects: u64, path: &std::path::Path| -> (u32, u64) {
        let file = std::fs::File::create(path).expect("create chip layout");
        let mut writer =
            LayoutWriter::new(std::io::BufWriter::new(file), "chip", 100).expect("write header");
        let mut written = 0u64;
        let features = generate_layout_streaming(100, &GeneratorParams::sized(rects, seed), |f| {
            writer.feature(&f).expect("write feature");
            written += f.rects().len() as u64;
            written < rects
        });
        writer.finish().expect("finish chip layout");
        assert!(written >= rects, "generator sizing underestimated {rects}");
        (features, written)
    };

    // Parity probe: 20k rects, tiled-from-file vs monolithic-in-memory,
    // both decomposed on the warm engine from identical fresh sessions.
    let probe_path = chip_dir.join("probe.mpld");
    let (_, probe_rects) = gen_to_file(20_000, &probe_path);
    let probe_tp = prepare_tiled_file(
        &probe_path,
        &ReadLimits::unlimited(),
        &params,
        &chip_config,
        &|_| {},
    )
    .expect("probe tiled prepare");
    let probe_layout = read_layout(std::io::BufReader::new(
        std::fs::File::open(&probe_path).expect("probe readable"),
    ))
    .expect("probe parses");
    let probe_serial_prep = prepare(&probe_layout, &params);
    assert_eq!(
        probe_tp.prep.graph, probe_serial_prep.graph,
        "tiled probe graph must equal the monolithic graph"
    );
    let mut probe_session = Session::new(seed);
    let probe_tiled_r = engine
        .decompose(&probe_tp.prep, &mut probe_session)
        .expect("probe tiled decompose");
    let mut probe_session = Session::new(seed);
    let probe_serial_r = engine
        .decompose(&probe_serial_prep, &mut probe_session)
        .expect("probe serial decompose");
    let chip_digest = |r: &AdaptiveResult| {
        (
            r.pipeline.decomposition.clone(),
            r.pipeline.cost,
            r.unit_engines.clone(),
            r.usage,
        )
    };
    assert_eq!(
        chip_digest(&probe_tiled_r),
        chip_digest(&probe_serial_r),
        "tiled probe digest must equal the serial digest"
    );

    // The chip-scale run itself.
    let chip_path = chip_dir.join("chip.mpld");
    let t = Instant::now();
    let (chip_features, chip_written) = gen_to_file(chip_rects, &chip_path);
    let chip_gen_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let chip_tp = prepare_tiled_file(
        &chip_path,
        &ReadLimits::unlimited(),
        &params,
        &chip_config,
        &|_| {},
    )
    .expect("chip tiled prepare");
    let chip_prepare_secs = t.elapsed().as_secs_f64();
    let chip_stats = chip_tp.stats;
    let t = Instant::now();
    let mut chip_session = Session::new(seed);
    let chip_r = engine
        .decompose(&chip_tp.prep, &mut chip_session)
        .expect("chip decompose");
    let chip_decompose_secs = t.elapsed().as_secs_f64();
    let (chip_audited, chip_audit_clean) =
        audit_boundary_units(&chip_tp.prep, &chip_r, &chip_tp.boundary_units, params.k);
    assert!(
        chip_audit_clean,
        "chip-scale boundary audit must be clean ({chip_audited} units)"
    );
    let chip_rects_per_second =
        chip_written as f64 / (chip_prepare_secs + chip_decompose_secs).max(1e-12);
    let chip_peak_rss = peak_rss_bytes();
    let _ = std::fs::remove_dir_all(&chip_dir);
    eprintln!(
        "chip scale: {chip_written} rects ({chip_features} features) gen {chip_gen_secs:.2}s, tiled prepare {chip_prepare_secs:.2}s ({}x{} tiles, max {} features/tile), decompose {chip_decompose_secs:.2}s, {chip_rects_per_second:.0} rects/s, audit clean on {chip_audited} boundary units",
        chip_stats.tiles_x, chip_stats.tiles_y, chip_stats.max_tile_features
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"cpu_cores\": {cores},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    // Training config determines the model weights and therefore the
    // routing digest; the digest checker skips comparison on mismatch.
    let _ = writeln!(json, "  \"train_cap\": {cap},");
    let _ = writeln!(json, "  \"epochs\": {epochs},");
    let _ = writeln!(
        json,
        "  \"fp_kernel\": \"{}\",",
        mpld_tensor::infer::kernel_name()
    );
    let _ = writeln!(
        json,
        "  \"note\": \"speedup is parallel-tail + isomorphism-memo wall-clock gain over the serial batched path; thread scaling requires cpu_cores > 1\","
    );
    let _ = writeln!(json, "  \"circuits\": {limit},");
    let _ = writeln!(json, "  \"total_units\": {total_units},");
    let _ = writeln!(json, "  \"prepare_seconds\": {prepare_seconds:.4},");
    let _ = writeln!(json, "  \"engine_throughput\": [");
    let _ = writeln!(json, "{}", engine_rows.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"adaptive\": {{");
    let _ = writeln!(json, "    \"threads\": {threads},");
    let _ = writeln!(json, "    \"serial_seconds\": {serial_total:.4},");
    let _ = writeln!(json, "    \"parallel_seconds\": {parallel_total:.4},");
    let _ = writeln!(json, "    \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "    \"memo_hits\": {memo_total},");
    let _ = writeln!(json, "    \"audit_rejections\": {audit_rejections},");
    let _ = writeln!(json, "    \"quarantined\": {quarantined},");
    let _ = writeln!(json, "    \"per_circuit\": [");
    let _ = writeln!(json, "{}", circuit_rows.join(",\n"));
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"inference\": {{");
    let _ = writeln!(json, "    \"threads\": 1,");
    let _ = writeln!(json, "    \"sample_units\": {},", infer_graphs.len());
    let _ = writeln!(json, "    \"reps\": {reps},");
    let _ = writeln!(json, "    \"tape_units_per_second\": {tape_ups:.1},");
    let _ = writeln!(json, "    \"frozen_units_per_second\": {frozen_ups:.1},");
    let _ = writeln!(
        json,
        "    \"frozen_batched_units_per_second\": {batched_ups:.1},"
    );
    let _ = writeln!(
        json,
        "    \"batched_speedup_over_tape\": {infer_speedup:.2},"
    );
    let _ = writeln!(json, "    \"routing_memo_hits\": {infer_memo_hits},");
    let _ = writeln!(json, "    \"routing_units_inferred\": {infer_units},");
    let _ = writeln!(
        json,
        "    \"scratch_high_water_bytes\": {scratch_high_water},"
    );
    let _ = writeln!(json, "    \"batches_planned\": {batches_planned},");
    let _ = writeln!(json, "    \"padding_waste_before_bytes\": {waste_before},");
    let _ = writeln!(json, "    \"padding_waste_after_bytes\": {waste_after}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"quantized\": {{");
    let _ = writeln!(json, "    \"threads\": 1,");
    let _ = writeln!(
        json,
        "    \"note\": \"decisions asserted equal to the f32 adaptive run in-binary; per_circuit rows are re-checked against adaptive.per_circuit by the digest guard\","
    );
    let _ = writeln!(
        json,
        "    \"batched_units_per_second\": {{\"f32_planned\": {planned_f32_ups:.1}, \"f16\": {f16_ups:.1}, \"int8\": {int8_ups:.1}}},"
    );
    let _ = writeln!(
        json,
        "    \"speedup_over_f32_batched\": {{\"f16\": {f16_speedup:.2}, \"int8\": {int8_speedup:.2}}},"
    );
    let _ = writeln!(json, "    \"precisions\": [");
    for (qi, run) in quant_runs.iter().enumerate() {
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"label\": \"{}\",", run.precision);
        let _ = writeln!(json, "        \"kernel\": \"{}\",", run.kernel);
        let _ = writeln!(
            json,
            "        \"serial_seconds\": {:.4},",
            run.serial_seconds
        );
        let _ = writeln!(
            json,
            "        \"quantized_units\": {},",
            run.quantized_units
        );
        let _ = writeln!(json, "        \"pinned_f32\": {},", run.pinned_f32);
        let _ = writeln!(json, "        \"f32_fallbacks\": {},", run.f32_fallbacks);
        let _ = writeln!(
            json,
            "        \"batches_planned\": {},",
            run.batches_planned
        );
        let _ = writeln!(
            json,
            "        \"padding_waste_before_bytes\": {},",
            run.waste_before
        );
        let _ = writeln!(
            json,
            "        \"padding_waste_after_bytes\": {},",
            run.waste_after
        );
        let _ = writeln!(json, "        \"decisions_equal_f32\": true,");
        let _ = writeln!(json, "        \"per_circuit\": [");
        let _ = writeln!(json, "{}", run.circuit_rows.join(",\n"));
        let _ = writeln!(json, "        ]");
        let _ = writeln!(
            json,
            "      }}{}",
            if qi + 1 < quant_runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"training\": {{");
    let _ = writeln!(json, "    \"threads\": 1,");
    let _ = writeln!(json, "    \"train_seed\": {},", cfg.seed);
    let _ = writeln!(json, "    \"bench_epochs\": {train_epochs},");
    let _ = writeln!(json, "    \"batch\": {train_batch},");
    let _ = writeln!(json, "    \"selector_graphs\": {},", selector_data.len());
    let _ = writeln!(
        json,
        "    \"redundancy_graphs\": {},",
        redundancy_data.len()
    );
    let _ = writeln!(json, "    \"colorgnn_graphs\": {},", parent_refs.len());
    let _ = writeln!(json, "    \"graph_visits\": {},", train_visits as usize);
    let _ = writeln!(json, "    \"reference_seconds\": {reference_secs:.4},");
    let _ = writeln!(json, "    \"batched_seconds\": {batched_secs:.4},");
    let _ = writeln!(
        json,
        "    \"reference_graphs_per_second\": {reference_gps:.1},"
    );
    let _ = writeln!(json, "    \"batched_graphs_per_second\": {batched_gps:.1},");
    let _ = writeln!(
        json,
        "    \"batched_speedup_over_reference\": {train_speedup:.2},"
    );
    let _ = writeln!(json, "    \"labeled_units\": {},", train_report.num_units);
    let _ = writeln!(
        json,
        "    \"deduped_units\": {},",
        train_report.deduped_units
    );
    // Final-epoch losses of the section-3 framework training: a
    // seed-keyed trajectory digest, compared by the CI digest guard when
    // fp_kernel and the training config match.
    let _ = writeln!(json, "    \"final_losses\": {{");
    let _ = writeln!(
        json,
        "      \"selector\": {:.9},",
        train_report.selector_loss
    );
    let _ = writeln!(
        json,
        "      \"redundancy\": {:.9},",
        train_report.redundancy_loss
    );
    let _ = writeln!(
        json,
        "      \"colorgnn\": {:.9}",
        train_report.colorgnn_loss
    );
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"budgeted\": {{");
    let _ = writeln!(json, "    \"threads\": {threads},");
    let _ = writeln!(json, "    \"unit_time_limit_ms\": {unit_limit_ms},");
    let _ = writeln!(json, "    \"seconds\": {budgeted_seconds:.4},");
    let _ = writeln!(json, "    \"certified\": {certified},");
    let _ = writeln!(json, "    \"heuristic\": {heuristic},");
    let _ = writeln!(json, "    \"budget_exhausted\": {exhausted},");
    let _ = writeln!(json, "    \"budget_fallbacks\": {fallbacks},");
    let _ = writeln!(json, "    \"audit_rejections\": {b_audit_rejections},");
    let _ = writeln!(json, "    \"quarantined\": {b_quarantined},");
    let _ = writeln!(
        json,
        "    \"exhausted_by_engine\": {{{}}},",
        exhausted_rows.join(", ")
    );
    let _ = writeln!(
        json,
        "    \"fallbacks_by_engine\": {{{}}}",
        fallback_rows.join(", ")
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"serving\": {{");
    let _ = writeln!(json, "    \"workers\": {serve_workers},");
    let _ = writeln!(json, "    \"queue_depth\": {serve_queue},");
    let _ = writeln!(json, "    \"requests\": {serve_requests},");
    let _ = writeln!(json, "    \"seconds\": {serving_seconds:.4},");
    let _ = writeln!(
        json,
        "    \"requests_per_second\": {requests_per_second:.3},"
    );
    let _ = writeln!(json, "    \"cold_seconds\": {cold_total:.4},");
    let _ = writeln!(json, "    \"warm_seconds\": {warm_total:.4},");
    let _ = writeln!(json, "    \"warm_speedup\": {warm_speedup:.2},");
    let _ = writeln!(json, "    \"warm_routing_memo_hits\": {warm_routing_hits},");
    let _ = writeln!(
        json,
        "    \"routing_memo\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}}},",
        engine_stats.routing.hits, engine_stats.routing.misses, engine_stats.routing.entries
    );
    let _ = writeln!(
        json,
        "    \"solution_entries\": {},",
        engine_stats.solutions_ilp_first.entries + engine_stats.solutions_ec_first.entries
    );
    let _ = writeln!(
        json,
        "    \"cross_request_hit_rate\": {routing_hit_rate:.4},"
    );
    let _ = writeln!(json, "    \"per_circuit\": [");
    let _ = writeln!(json, "{}", serving_rows.join(",\n"));
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"serving_resume\": {{");
    let _ = writeln!(json, "    \"circuit\": \"{}\",", resume_circuit.name);
    let _ = writeln!(json, "    \"tail_units\": {resume_tail_units},");
    let _ = writeln!(json, "    \"journal_records_kept\": {records_kept},");
    let _ = writeln!(json, "    \"cold_seconds\": {resume_cold_secs:.4},");
    let _ = writeln!(json, "    \"resume_seconds\": {resume_secs:.4},");
    let _ = writeln!(
        json,
        "    \"resumed_units\": {},",
        resume_summary.resumed_units
    );
    let _ = writeln!(json, "    \"digest_equal_cold\": true");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"library\": {{");
    let _ = writeln!(json, "    \"circuits\": {limit},");
    let _ = writeln!(json, "    \"cold_tail_solves\": {cold_fresh},");
    let _ = writeln!(json, "    \"warm_tail_solves\": {warm_fresh},");
    let _ = writeln!(json, "    \"warm_hit_rate\": {library_hit_rate:.4},");
    let _ = writeln!(json, "    \"cold_seconds\": {library_cold_secs:.4},");
    let _ = writeln!(json, "    \"warm_seconds\": {library_warm_secs:.4},");
    let _ = writeln!(json, "    \"load_ms\": {library_load_ms},");
    let _ = writeln!(json, "    \"lib_loaded\": {library_lib_loaded},");
    let _ = writeln!(json, "    \"loaded_solves\": {library_loaded_solves},");
    let _ = writeln!(json, "    \"store_entries\": {library_store_entries},");
    let _ = writeln!(json, "    \"digests_equal\": true");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"chip_scale\": {{");
    let _ = writeln!(json, "    \"threads\": {threads},");
    let _ = writeln!(json, "    \"target_rects\": {chip_rects},");
    let _ = writeln!(json, "    \"rects\": {chip_written},");
    let _ = writeln!(json, "    \"features\": {chip_features},");
    let _ = writeln!(
        json,
        "    \"tiles\": {},",
        chip_stats.tiles_x * chip_stats.tiles_y
    );
    let _ = writeln!(json, "    \"tile_span\": {},", chip_stats.tile_span);
    let _ = writeln!(json, "    \"halo\": {},", chip_stats.halo);
    let _ = writeln!(
        json,
        "    \"max_tile_features\": {},",
        chip_stats.max_tile_features
    );
    let _ = writeln!(
        json,
        "    \"replicated_features\": {},",
        chip_stats.replicated_features
    );
    let _ = writeln!(json, "    \"edges\": {},", chip_stats.edges);
    let _ = writeln!(
        json,
        "    \"boundary_edges\": {},",
        chip_stats.boundary_edges
    );
    let _ = writeln!(
        json,
        "    \"boundary_resolves\": {},",
        chip_stats.boundary_resolves
    );
    let _ = writeln!(json, "    \"units\": {},", chip_tp.prep.units.len());
    let _ = writeln!(
        json,
        "    \"conflicts\": {},",
        chip_r.pipeline.cost.conflicts
    );
    let _ = writeln!(json, "    \"stitches\": {},", chip_r.pipeline.cost.stitches);
    let _ = writeln!(
        json,
        "    \"objective\": {:.1},",
        chip_r.pipeline.cost.value(params.alpha)
    );
    let _ = writeln!(json, "    \"generate_seconds\": {chip_gen_secs:.4},");
    let _ = writeln!(json, "    \"prepare_seconds\": {chip_prepare_secs:.4},");
    let _ = writeln!(json, "    \"decompose_seconds\": {chip_decompose_secs:.4},");
    let _ = writeln!(
        json,
        "    \"rects_per_second\": {chip_rects_per_second:.1},"
    );
    match chip_peak_rss {
        Some(b) => {
            let _ = writeln!(json, "    \"peak_rss_bytes\": {b},");
        }
        None => {
            let _ = writeln!(json, "    \"peak_rss_bytes\": null,");
        }
    }
    let _ = writeln!(json, "    \"boundary_audit_clean\": true,");
    let _ = writeln!(
        json,
        "    \"parity_probe\": {{\"rects\": {probe_rects}, \"digest_equal_serial\": true}}"
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write artifact");
    println!("wrote {out_path}");
}

/// Blocking one-shot HTTP client for the serving section: sends `raw`,
/// reads until the server closes the stream (the NDJSON body has no
/// Content-Length), and returns the full response.
fn http_request(addr: std::net::SocketAddr, raw: &str) -> String {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}
