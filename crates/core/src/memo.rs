//! Embedding/logit memoization and batch planning for the routing stage.
//!
//! Real layouts repeat small units constantly (the same 2–6-node motifs
//! occur hundreds of times per circuit), so running the GNN forward pass
//! once per *distinct* unit and scattering the result is a large win.
//! [`EmbeddingMemo`] keys units on the matcher's structural
//! [`graph_fingerprint`](mpld_matching::graph_fingerprint) and — because
//! GNN readouts are not bitwise permutation-invariant and hashes can in
//! principle collide — verifies every hit with exact structural equality
//! ([`graphs_identical`](mpld_matching::graphs_identical)) before it
//! serves a cached slot. A hit therefore means *the same graph*, so the
//! representative's probabilities and embeddings are bit-identical to
//! what a fresh forward pass on the duplicate would have produced.

use mpld_graph::LayoutGraph;
use mpld_matching::{graph_fingerprint, graphs_identical};
use std::collections::HashMap;

/// Deduplication memo mapping structurally identical unit graphs to a
/// shared "representative" slot (an index the caller assigns, typically
/// into a batched inference result).
#[derive(Debug, Default)]
pub struct EmbeddingMemo<'a> {
    buckets: HashMap<u64, Vec<(&'a LayoutGraph, usize)>>,
    hits: usize,
    /// Optional entry cap; inserts beyond it are dropped (counted), so a
    /// pathological request with millions of distinct units cannot grow
    /// the memo without bound. Dropping a representative only costs a
    /// duplicate forward pass — never correctness.
    cap: Option<usize>,
    entries: usize,
    dropped: usize,
    high_water: usize,
}

impl<'a> EmbeddingMemo<'a> {
    /// Empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty memo holding at most `cap` representatives.
    pub fn with_capacity(cap: Option<usize>) -> Self {
        EmbeddingMemo {
            cap,
            ..Self::default()
        }
    }

    /// Look up a graph; on a verified hit returns the representative slot
    /// and counts it. A fingerprint match with a structurally different
    /// graph is *not* a hit.
    pub fn find(&mut self, g: &LayoutGraph) -> Option<usize> {
        let fp = graph_fingerprint(g);
        let slot = self
            .buckets
            .get(&fp)?
            .iter()
            .find(|(rep, _)| graphs_identical(rep, g))
            .map(|&(_, slot)| slot)?;
        self.hits += 1;
        Some(slot)
    }

    /// Register `g` as the representative for its structure class,
    /// associated with `slot`. Beyond the cap the registration is
    /// dropped (counted): later duplicates simply miss and re-infer.
    pub fn insert(&mut self, g: &'a LayoutGraph, slot: usize) {
        if self.cap.is_some_and(|cap| self.entries >= cap) {
            self.dropped += 1;
            return;
        }
        self.buckets
            .entry(graph_fingerprint(g))
            .or_default()
            .push((g, slot));
        self.entries += 1;
        self.high_water = self.high_water.max(self.entries);
    }

    /// Verified hits served so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Representatives dropped by the cap.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Largest representative count ever held.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

/// Default node budget per planned inference batch. Small enough that a
/// batch's transient backbone scratch stays cache-resident, large enough
/// that per-batch dispatch overhead is negligible for the unit-graph
/// sizes real layouts produce.
pub const DEFAULT_MAX_BATCH_NODES: usize = 2048;

/// Size-bucketed batch plan for the frozen routing passes.
///
/// A single block-diagonal batch over every representative unit peaks its
/// transient scratch at the *sum* of all unit sizes. The planner instead
/// buckets items into power-of-two (node-count, edge-count) bands — so
/// each emitted batch holds similarly-shaped graphs — and splits each
/// band at a node budget. The peak live scratch then drops from the
/// whole-union size to the largest emitted batch, which
/// `peak_nodes_before`/`peak_nodes_after` quantify for the padding-waste
/// accounting in `InferenceStats`.
///
/// The plan is deterministic: bands are visited in ascending
/// (node-band, edge-band) order and items keep their input order inside a
/// band, so batch composition — and therefore f32 summation order — is a
/// pure function of the item sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    /// Item indices per emitted batch (indices into the caller's slice).
    pub batches: Vec<Vec<usize>>,
    /// Total nodes across all planned items — the scratch peak (in
    /// nodes) of the single-union batch this plan replaces.
    pub peak_nodes_before: usize,
    /// Largest emitted batch in nodes — the scratch peak of this plan.
    pub peak_nodes_after: usize,
}

/// Power-of-two size band: 0, {1}, {2,3}, {4..7}, ... Graphs in one band
/// differ by at most 2x in the banded dimension.
fn size_band(x: usize) -> u32 {
    usize::BITS - x.leading_zeros()
}

impl BatchPlan {
    /// Plans the subset `items` (indices into `sizes`, each a
    /// `(nodes, edges)` pair) into size-banded batches of at most
    /// `max_batch_nodes` nodes. An item larger than the budget still gets
    /// a (singleton) batch; every item appears in exactly one batch.
    pub fn new(items: &[usize], sizes: &[(usize, usize)], max_batch_nodes: usize) -> Self {
        let budget = max_batch_nodes.max(1);
        let mut banded: Vec<(u32, u32, usize)> = items
            .iter()
            .map(|&i| (size_band(sizes[i].0), size_band(sizes[i].1), i))
            .collect();
        // Stable: equal bands keep input order.
        banded.sort_by_key(|&(nb, eb, _)| (nb, eb));

        let mut batches: Vec<Vec<usize>> = Vec::new();
        let mut cur: Vec<usize> = Vec::new();
        let mut cur_nodes = 0usize;
        let mut cur_band = None;
        for &(nb, eb, i) in &banded {
            let nodes = sizes[i].0;
            if cur_band != Some((nb, eb)) || (cur_nodes + nodes > budget && !cur.is_empty()) {
                if !cur.is_empty() {
                    batches.push(std::mem::take(&mut cur));
                }
                cur_nodes = 0;
                cur_band = Some((nb, eb));
            }
            cur.push(i);
            cur_nodes += nodes;
        }
        if !cur.is_empty() {
            batches.push(cur);
        }

        let peak_nodes_before = items.iter().map(|&i| sizes[i].0).sum();
        let peak_nodes_after = batches
            .iter()
            .map(|b| b.iter().map(|&i| sizes[i].0).sum())
            .max()
            .unwrap_or(0);
        Self {
            batches,
            peak_nodes_before,
            peak_nodes_after,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_graph_hits_and_counts() {
        let a = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2)]).unwrap();
        let b = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2)]).unwrap();
        let mut memo = EmbeddingMemo::new();
        assert_eq!(memo.find(&a), None);
        memo.insert(&a, 7);
        assert_eq!(memo.find(&b), Some(7));
        assert_eq!(memo.hits(), 1);
    }

    #[test]
    fn different_graph_misses() {
        let a = LayoutGraph::homogeneous(3, vec![(0, 1)]).unwrap();
        let b = LayoutGraph::homogeneous(3, vec![(1, 2)]).unwrap();
        let mut memo = EmbeddingMemo::new();
        memo.insert(&a, 0);
        assert_eq!(memo.find(&b), None);
        assert_eq!(memo.hits(), 0);
    }

    #[test]
    fn fingerprint_collision_is_rejected_by_equality_check() {
        // Force a synthetic collision by inserting under the *wrong*
        // bucket: find() must still refuse to serve a structurally
        // different graph even when the fingerprints agree.
        let a = LayoutGraph::homogeneous(4, vec![(0, 1), (2, 3)]).unwrap();
        let b = LayoutGraph::homogeneous(4, vec![(0, 2), (1, 3)]).unwrap();
        let mut memo = EmbeddingMemo::new();
        memo.buckets
            .entry(graph_fingerprint(&b))
            .or_default()
            .push((&a, 3));
        assert_eq!(memo.find(&b), None);
    }

    #[test]
    fn cap_drops_registrations_but_never_hits() {
        let graphs: Vec<LayoutGraph> = (2..6)
            .map(|n| LayoutGraph::homogeneous(n, vec![(0, 1)]).unwrap())
            .collect();
        let mut memo = EmbeddingMemo::with_capacity(Some(2));
        for (i, g) in graphs.iter().enumerate() {
            memo.insert(g, i);
        }
        assert_eq!(memo.dropped(), 2);
        assert_eq!(memo.high_water(), 2);
        // The first two representatives still serve verified hits.
        assert_eq!(memo.find(&graphs[0]), Some(0));
        assert_eq!(memo.find(&graphs[1]), Some(1));
        // The dropped ones miss — a duplicate forward pass, not an error.
        assert_eq!(memo.find(&graphs[3]), None);
    }

    #[test]
    fn plan_partitions_every_item_exactly_once() {
        let sizes: Vec<(usize, usize)> = (0..50).map(|i| (1 + i % 17, (i * 3) % 29)).collect();
        let items: Vec<usize> = (0..sizes.len()).collect();
        let plan = BatchPlan::new(&items, &sizes, 16);
        let mut seen: Vec<usize> = plan.batches.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, items);
    }

    #[test]
    fn plan_respects_node_budget_and_bands() {
        let sizes: Vec<(usize, usize)> = vec![(3, 2); 10];
        let items: Vec<usize> = (0..10).collect();
        let plan = BatchPlan::new(&items, &sizes, 9);
        for b in &plan.batches {
            let nodes: usize = b.iter().map(|&i| sizes[i].0).sum();
            assert!(nodes <= 9, "batch exceeds node budget: {nodes}");
        }
        // Band homogeneity: all members of a batch share both size bands.
        let sizes2: Vec<(usize, usize)> = vec![(2, 1), (200, 1), (3, 1), (180, 1)];
        let plan2 = BatchPlan::new(&[0, 1, 2, 3], &sizes2, 4096);
        for b in &plan2.batches {
            let bands: Vec<(u32, u32)> = b
                .iter()
                .map(|&i| (super::size_band(sizes2[i].0), super::size_band(sizes2[i].1)))
                .collect();
            assert!(bands.windows(2).all(|w| w[0] == w[1]), "mixed bands: {b:?}");
        }
        assert_eq!(plan2.batches, vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn plan_shrinks_peak_scratch_on_mixed_workloads() {
        // 40 tiny units + 4 large ones: the union batch peaks at the sum,
        // the plan at roughly one band's budgeted slice.
        let mut sizes: Vec<(usize, usize)> = vec![(4, 5); 40];
        sizes.extend([(300, 900); 4]);
        let items: Vec<usize> = (0..sizes.len()).collect();
        let plan = BatchPlan::new(&items, &sizes, 512);
        assert_eq!(plan.peak_nodes_before, 40 * 4 + 4 * 300);
        assert!(plan.peak_nodes_after < plan.peak_nodes_before);
        // Budget 512 dominates the largest single unit (300 nodes).
        assert!(plan.peak_nodes_after <= 512);
    }

    #[test]
    fn oversized_item_still_gets_a_batch() {
        let sizes = vec![(5000, 10)];
        let plan = BatchPlan::new(&[0], &sizes, 64);
        assert_eq!(plan.batches, vec![vec![0]]);
        assert_eq!(plan.peak_nodes_after, 5000);
    }
}
