use mpld_ec::EcDecomposer;
use mpld_graph::{DecomposeParams, LayoutGraph};

fn unit329() -> LayoutGraph {
    LayoutGraph::new(
        vec![0, 0, 1, 2, 3, 4, 5, 6, 6, 7, 8, 9],
        vec![
            (0, 2),
            (0, 10),
            (1, 2),
            (1, 4),
            (1, 6),
            (1, 10),
            (2, 3),
            (2, 4),
            (2, 10),
            (2, 11),
            (3, 5),
            (3, 11),
            (4, 5),
            (4, 7),
            (4, 8),
            (4, 10),
            (4, 11),
            (5, 9),
            (5, 11),
            (6, 7),
            (6, 10),
            (7, 10),
            (8, 9),
            (8, 11),
            (9, 11),
        ],
        vec![(0, 1), (7, 8)],
    )
    .unwrap()
}

#[test]
fn s15850_unit_329_is_solved_optimally() {
    let params = DecomposeParams::tpl();
    let g = unit329();
    let (d, cert) = EcDecomposer::new()
        .decompose_certified(&g, &params, &mpld_graph::Budget::unlimited())
        .unwrap();
    // Known ILP optimum: one conflict, zero stitches.
    assert!(
        d.cost.value(0.1) <= 1.0 + 1e-9,
        "EC got {} (cert={cert})",
        d.cost
    );
}
