//! Chaos suite: under random deterministic fault injection (panics,
//! engine errors, delays, and wrong colorings at every named failpoint
//! site), the adaptive pipeline must still return `Ok`, every final
//! per-unit coloring must pass the independent audit, and no panic may
//! escape to the caller.
//!
//! Compiled only with `--features failpoints`; without the feature this
//! binary is empty.

#![cfg(feature = "failpoints")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, OnceLock};

/// Serializes the tests in this binary: the failpoint registry and the
/// panic hook are process-global.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

use mpld::{
    prepare, train_framework, AdaptiveFramework, AdaptiveResult, BudgetPolicy, OfflineConfig,
    PreparedLayout, TrainingData,
};
use mpld_graph::{audit_coloring, failpoints, DecomposeParams};
use mpld_layout::circuit_by_name;

fn fixture() -> &'static (AdaptiveFramework, PreparedLayout) {
    static FIXTURE: OnceLock<(AdaptiveFramework, PreparedLayout)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let params = DecomposeParams::tpl();
        let layout = circuit_by_name("C432").expect("exists").generate();
        let prep = prepare(&layout, &params);
        let mut data = TrainingData::default();
        data.add_layout_capped(&prep, &params, 8);
        let mut cfg = OfflineConfig::default();
        cfg.rgcn.epochs = 1;
        cfg.colorgnn.epochs = 1;
        cfg.library = mpld_matching::LibraryConfig {
            max_parent_size: 4,
            max_splits: 1,
            max_nodes: 5,
            stitches: false,
        };
        (train_framework(&data, &params, &cfg), prep)
    })
}

/// The chaos invariants for one faulted run.
fn assert_chaos_contract(fw: &AdaptiveFramework, prep: &PreparedLayout, r: &AdaptiveResult) {
    for (u, coloring) in prep
        .units
        .iter()
        .zip(&r.pipeline.decomposition.unit_subfeature_colorings)
    {
        assert_eq!(coloring.len(), u.hetero.num_nodes(), "full coverage");
        audit_coloring(&u.hetero, coloring, fw.params.k)
            .expect("every final coloring passes the independent audit");
    }
    let b = &r.budget;
    assert_eq!(
        b.certified + b.heuristic + b.budget_exhausted + b.quarantined,
        prep.units.len(),
        "every unit has exactly one certainty"
    );
    // Every quarantine record names a unit that actually exists.
    for (unit, _) in &r.quarantines {
        assert!(*unit < prep.units.len());
    }
}

/// One test function (not several) because the process-global quiet panic
/// hook and the process-global failpoint state must not race across the
/// harness's test threads.
#[test]
fn chaos_injection_never_escapes_and_results_stay_audit_clean() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (fw, prep) = fixture();
    // Injected panics are expected; silence the default hook's backtrace
    // spam while the chaos rounds run.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut hits = 0u64;

        // Parallel path (the default), a sweep of injection seeds at 5%.
        for seed in 0..6u64 {
            failpoints::configure(seed, 0.05);
            fw.colorgnn.reseed(seed ^ 0x5EED);
            let r = fw
                .decompose_prepared_parallel_with(prep, 2, &BudgetPolicy::unlimited())
                .expect("faults must degrade units, never fail the layout");
            assert_chaos_contract(fw, prep, &r);
            hits += failpoints::total_hits();
        }

        // Serial batched path.
        failpoints::configure(101, 0.05);
        fw.colorgnn.reseed(0xA);
        let r = fw
            .decompose_prepared_with(prep, &BudgetPolicy::unlimited())
            .expect("faults must degrade units, never fail the layout");
        assert_chaos_contract(fw, prep, &r);
        hits += failpoints::total_hits();

        // Serial unbatched path.
        failpoints::configure(202, 0.05);
        fw.colorgnn.reseed(0xB);
        let r = fw
            .decompose_prepared_unbatched_with(prep, &BudgetPolicy::unlimited())
            .expect("faults must degrade units, never fail the layout");
        assert_chaos_contract(fw, prep, &r);
        hits += failpoints::total_hits();

        assert!(
            hits > 0,
            "the sweep must actually inject faults (0 hits means the \
             failpoint sites were never reached)"
        );
    }));
    failpoints::disable();
    std::panic::set_hook(hook);
    if let Err(p) = outcome {
        std::panic::resume_unwind(p);
    }
}

/// Rate 0 must be a true no-op even with the feature compiled in: results
/// are bit-identical to a run with failpoints disabled.
#[test]
fn zero_rate_is_bit_identical_to_disabled() {
    let _guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (fw, prep) = fixture();
    failpoints::disable();
    fw.colorgnn.reseed(77);
    let off = fw.decompose_prepared(prep);
    failpoints::configure(1234, 0.0);
    fw.colorgnn.reseed(77);
    let zero = fw.decompose_prepared(prep);
    failpoints::disable();
    assert_eq!(off.pipeline.decomposition, zero.pipeline.decomposition);
    assert_eq!(off.pipeline.cost, zero.pipeline.cost);
    assert_eq!(off.unit_engines, zero.unit_engines);
    assert_eq!(zero.budget.quarantined, 0);
    assert_eq!(zero.budget.audit_rejections, 0);
}
