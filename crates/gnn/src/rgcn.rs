//! Relational graph convolutional network (RGCN) graph classifier.
//!
//! Implements Eq. (6) of the paper with per-edge-type weights obtained by
//! basis decomposition (Eq. 7), plus a readout ([`Readout::Sum`] for
//! decomposer selection, [`Readout::Max`] for stitch-redundancy
//! prediction) and an MLP head trained with cross-entropy.
//!
//! The message-passing update per layer is
//! `H' = ReLU( sum_e A_e H W_e + H W_self )` where `A_e` is the edge-type
//! adjacency and `W_e = sum_b delta_{e,b} V_b`. The self term carries its
//! own weight so layer dimensions can grow (1 → 32 → 64), matching the
//! standard RGCN formulation the paper builds on.

use crate::GraphEncoding;
use mpld_graph::LayoutGraph;
use mpld_tensor::{Graph, Matrix, Optimizer, ParamId, ParamSet, VarId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Node-invariant graph readout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Readout {
    /// Sum of node embeddings — sensitive to graph size; the paper uses it
    /// for decomposer selection.
    Sum,
    /// Column-wise max — sensitive to subgraph structure; the paper uses
    /// it for stitch-redundancy prediction.
    Max,
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gradient-accumulation batch size.
    pub batch: usize,
    /// Oversample the minority class so both classes carry equal weight.
    /// Essential for decomposer selection, where ILP-labeled graphs are a
    /// few percent of the data but missing one costs optimality.
    pub balance: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            lr: 0.01,
            batch: 16,
            balance: true,
        }
    }
}

/// Oversamples the minority class (by duplicating references) so the two
/// classes have roughly equal counts. Returns the input order interleaved
/// deterministically.
pub(crate) fn balance_classes<'a>(data: &[(&'a LayoutGraph, u8)]) -> Vec<(&'a LayoutGraph, u8)> {
    let n1 = data.iter().filter(|(_, l)| *l == 1).count();
    let n0 = data.len() - n1;
    if n0 == 0 || n1 == 0 || n0 == n1 {
        return data.to_vec();
    }
    // Cap the duplication factor: with extreme imbalance (a handful of
    // ILP-labeled graphs among thousands), full balancing makes the few
    // minority graphs dominate every batch and the network collapses to
    // constant output (observed: dead embeddings, majority-class flips).
    let (minority, factor) = if n0 < n1 {
        (0u8, (n1 / n0.max(1)).min(10))
    } else {
        (1u8, (n0 / n1.max(1)).min(10))
    };
    let mut out = Vec::with_capacity(data.len() * 2);
    for &(g, l) in data {
        out.push((g, l));
        if l == minority {
            for _ in 1..factor.max(1) {
                out.push((g, l));
            }
        }
    }
    out
}

struct Layer {
    /// `B` basis matrices `V_b` (din x dout).
    bases: Vec<ParamId>,
    /// Coefficients `delta_{e,b}`, edge-major: `[conflict x B, stitch x B]`.
    delta: Vec<ParamId>,
    /// Self-connection weight (din x dout).
    w_self: ParamId,
}

/// The RGCN classifier (see module docs).
pub struct RgcnClassifier {
    params: ParamSet,
    layers: Vec<Layer>,
    /// MLP head weight/bias pairs.
    head: Vec<(ParamId, ParamId)>,
    readout: Readout,
    dims: Vec<usize>,
    num_bases: usize,
    seed: u64,
}

impl RgcnClassifier {
    /// Builds an untrained model.
    ///
    /// `dims` are layer widths from input to embedding (the paper uses
    /// `[1, 32, 64]`); `head_dims` continue from the embedding to the
    /// class count (e.g. `[64, 2]` for a linear selector head or
    /// `[64, 32, 2]` for the redundancy MLP).
    ///
    /// # Panics
    ///
    /// Panics if `dims` has fewer than 2 entries, `head_dims` does not
    /// start at the embedding width, or `num_bases == 0`.
    pub fn new(
        dims: &[usize],
        num_bases: usize,
        readout: Readout,
        head_dims: &[usize],
        seed: u64,
    ) -> Self {
        assert!(dims.len() >= 2, "need at least one GNN layer");
        assert!(num_bases > 0, "at least one basis");
        assert_eq!(
            head_dims.first(),
            dims.last(),
            "head must start at the embedding dimension"
        );
        assert!(head_dims.len() >= 2, "head needs an output layer");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut params = ParamSet::new(Optimizer::Adam);
        let mut layers = Vec::new();
        for w in dims.windows(2) {
            let (din, dout) = (w[0], w[1]);
            let bases = (0..num_bases)
                .map(|_| params.add(Matrix::glorot(din, dout, &mut rng)))
                .collect();
            let delta = (0..2 * num_bases)
                .map(|_| params.add(Matrix::from_vec(1, 1, vec![1.0 / num_bases as f32])))
                .collect();
            let w_self = params.add(Matrix::glorot(din, dout, &mut rng));
            layers.push(Layer {
                bases,
                delta,
                w_self,
            });
        }
        let head = head_dims
            .windows(2)
            .map(|w| {
                let weight = params.add(Matrix::glorot(w[0], w[1], &mut rng));
                let bias = params.add(Matrix::zeros(1, w[1]));
                (weight, bias)
            })
            .collect();
        RgcnClassifier {
            params,
            layers,
            head,
            readout,
            dims: dims.to_vec(),
            num_bases,
            seed,
        }
    }

    /// The paper's selector model: 2 layers `[1, 32, 64]`, sum readout,
    /// linear head to 2 classes.
    pub fn selector(seed: u64) -> Self {
        Self::new(&[1, 32, 64], 2, Readout::Sum, &[64, 2], seed)
    }

    /// The paper's stitch-redundancy model `RGCN_r`: same backbone,
    /// max-pooling readout, MLP head.
    pub fn redundancy(seed: u64) -> Self {
        Self::new(&[1, 32, 64], 2, Readout::Max, &[64, 32, 2], seed)
    }

    /// Embedding width.
    pub fn embedding_dim(&self) -> usize {
        #[allow(clippy::expect_used)] // dims is validated non-empty at construction
        {
            *self.dims.last().expect("dims nonempty")
        }
    }

    /// Total trainable scalars.
    pub fn num_weights(&self) -> usize {
        self.params.num_weights()
    }

    /// Serializes the trained weights (not the architecture — reconstruct
    /// the model with the same constructor before loading).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn save_weights<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        self.params.write_values(writer)
    }

    /// Restores weights written by [`RgcnClassifier::save_weights`] into a
    /// model of identical architecture.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the architectures differ.
    pub fn load_weights<R: std::io::Read>(&mut self, reader: R) -> std::io::Result<()> {
        self.params.read_values(reader)
    }

    /// Compiles the current weights into a tape-free inference engine.
    ///
    /// The per-layer basis decomposition `W_e = Σ_b δ_eb V_b` is folded
    /// once, with the exact scale-then-accumulate order the tape uses on
    /// every forward pass — so the folded weights, and hence every frozen
    /// output, are bit-identical to the tape path. The result snapshots
    /// the weights: retrain or mutate the classifier and freeze again.
    pub fn freeze(&self) -> crate::FrozenRgcn {
        let layers = self
            .layers
            .iter()
            .map(|layer| {
                let w_edge = [0usize, 1].map(|e| {
                    let mut acc: Option<Matrix> = None;
                    for (b, &v_b) in layer.bases.iter().enumerate() {
                        let d = self
                            .params
                            .value(layer.delta[e * self.num_bases + b])
                            .scalar();
                        let scaled = self.params.value(v_b).scaled(d);
                        match &mut acc {
                            None => acc = Some(scaled),
                            Some(a) => a.add_assign(&scaled),
                        }
                    }
                    #[allow(clippy::expect_used)] // num_bases >= 1 at construction
                    acc.expect("at least one basis")
                });
                crate::frozen::FrozenLayer {
                    w_edge,
                    w_self: self.params.value(layer.w_self).clone(),
                }
            })
            .collect();
        let head = self
            .head
            .iter()
            .map(|&(w, b)| (self.params.value(w).clone(), self.params.value(b).clone()))
            .collect();
        crate::FrozenRgcn::from_parts(layers, head, self.readout)
    }

    /// Runs the backbone with a caller-supplied parameter binder,
    /// returning the node-embedding var (`n x D`).
    ///
    /// Training passes a binder that records bindings in a (mutably held)
    /// parameter set; inference passes [`ParamSet::bind_frozen`] so the
    /// whole forward pass is `&self` and shareable across threads.
    fn backbone_raw(
        &self,
        g: &mut Graph,
        features: std::sync::Arc<Matrix>,
        adjacencies: [std::sync::Arc<mpld_tensor::Adjacency>; 2],
        bind: &mut dyn FnMut(&mut Graph, ParamId) -> VarId,
    ) -> VarId {
        // Shared input: the encoding keeps owning the feature matrix, so
        // no per-forward clone of the data is made.
        let mut h = g.input_shared(features);
        for li in 0..self.layers.len() {
            // Materialize W_e = sum_b delta_eb V_b per edge type.
            let base_vars: Vec<VarId> = (0..self.num_bases)
                .map(|b| {
                    let pid = self.layers[li].bases[b];
                    bind(g, pid)
                })
                .collect();
            let mut sum: Option<VarId> = None;
            for (e, adj) in adjacencies.iter().enumerate() {
                let mut w_e: Option<VarId> = None;
                for (b, &v_b) in base_vars.iter().enumerate() {
                    let d_pid = self.layers[li].delta[e * self.num_bases + b];
                    let d = bind(g, d_pid);
                    let scaled = g.scale_by_scalar(v_b, d);
                    w_e = Some(match w_e {
                        None => scaled,
                        Some(acc) => g.add(acc, scaled),
                    });
                }
                #[allow(clippy::expect_used)] // num_bases >= 1 is validated at construction
                let w_e = w_e.expect("at least one basis");
                let agg = g.agg_sum(h, adj.clone());
                let msg = g.matmul(agg, w_e);
                sum = Some(match sum {
                    None => msg,
                    Some(acc) => g.add(acc, msg),
                });
            }
            let w_self = bind(g, self.layers[li].w_self);
            let own = g.matmul(h, w_self);
            #[allow(clippy::expect_used)] // the edge-type loop always runs at least once
            let total = g.add(sum.expect("two edge types"), own);
            h = g.relu(total);
        }
        h
    }

    /// Inference-path backbone over one encoded graph (frozen binds).
    /// `enc.features.clone()` below is an `Arc` bump, not a data copy.
    fn backbone_frozen(&self, g: &mut Graph, enc: &GraphEncoding) -> VarId {
        self.backbone_raw(
            g,
            enc.features.clone(),
            [enc.conflict.clone(), enc.stitch.clone()],
            &mut |g, pid| self.params.bind_frozen(g, pid),
        )
    }

    fn readout(&self, g: &mut Graph, node_emb: VarId) -> VarId {
        match self.readout {
            Readout::Sum => g.sum_rows(node_emb),
            Readout::Max => g.max_rows(node_emb),
        }
    }

    fn head_raw(
        &self,
        g: &mut Graph,
        mut x: VarId,
        bind: &mut dyn FnMut(&mut Graph, ParamId) -> VarId,
    ) -> VarId {
        let n_layers = self.head.len();
        for (i, &(w, b)) in self.head.iter().enumerate() {
            let wv = bind(g, w);
            let bv = bind(g, b);
            let lin = g.matmul(x, wv);
            x = g.add_row(lin, bv);
            if i + 1 < n_layers {
                x = g.relu(x);
            }
        }
        x
    }

    /// Inference-path head (frozen binds).
    fn head_frozen(&self, g: &mut Graph, x: VarId) -> VarId {
        self.head_raw(g, x, &mut |g, pid| self.params.bind_frozen(g, pid))
    }

    /// Trains on `(graph, label)` pairs with cross-entropy. Returns the
    /// mean loss of the final epoch.
    pub fn train(&mut self, data: &[(&LayoutGraph, u8)], cfg: &TrainConfig) -> f32 {
        self.train_impl(data, cfg, true)
    }

    /// Reference trainer with a freshly allocated tape per step (no buffer
    /// pooling). The arithmetic is identical to [`RgcnClassifier::train`];
    /// this is the baseline side of the training bench and the bit-identity
    /// oracle for the pooled path.
    #[doc(hidden)]
    pub fn train_reference(&mut self, data: &[(&LayoutGraph, u8)], cfg: &TrainConfig) -> f32 {
        self.train_impl(data, cfg, false)
    }

    fn train_impl(&mut self, data: &[(&LayoutGraph, u8)], cfg: &TrainConfig, pooled: bool) -> f32 {
        assert!(!data.is_empty(), "training set must not be empty");
        let mut data = if cfg.balance {
            crate::rgcn::balance_classes(data)
        } else {
            data.to_vec()
        };
        // Shuffle so minibatches mix classes: balanced duplicates would
        // otherwise cluster into same-class runs and per-batch steps would
        // oscillate without net progress (observed as a frozen loss).
        use rand::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x5u64);
        data.shuffle(&mut rng);
        // Minibatches run as one tape over the disjoint union with a
        // segment readout — the paper's batched execution, which is also
        // several times faster than per-graph tapes on CPU.
        let batches: Vec<(crate::BatchEncoding, Arc<Vec<u8>>)> = data
            .chunks(cfg.batch.max(1))
            .map(|chunk| {
                let graphs: Vec<&LayoutGraph> = chunk.iter().map(|(g, _)| *g).collect();
                let labels: Vec<u8> = chunk.iter().map(|(_, l)| *l).collect();
                (crate::BatchEncoding::new(&graphs), Arc::new(labels))
            })
            .collect();
        // Take the parameter set out of `self` once for the whole run so
        // the shared backbone/head builders (which borrow `&self`) can
        // bind into it mutably.
        let mut params = std::mem::replace(&mut self.params, ParamSet::new(Optimizer::Adam));
        // One tape serves every step: `reset` recycles the op arena,
        // value/grad buffers, and index vectors into the tape's scratch
        // pool, so steady-state training does no heap allocation.
        let mut g = Graph::new();
        let mut last_epoch_loss = 0.0;
        for _epoch in 0..cfg.epochs {
            last_epoch_loss = 0.0;
            for (enc, labels) in &batches {
                if pooled {
                    g.reset();
                } else {
                    g = Graph::new();
                }
                let node_emb = self.backbone_raw(
                    &mut g,
                    enc.features.clone(),
                    [enc.conflict.clone(), enc.stitch.clone()],
                    &mut |g, pid| params.bind(g, pid),
                );
                let pooled = match self.readout {
                    Readout::Sum => g.segment_sum(node_emb, enc.segment.clone(), labels.len()),
                    Readout::Max => g.segment_max(node_emb, &enc.segment, labels.len()),
                };
                let logits = self.head_raw(&mut g, pooled, &mut |g, pid| params.bind(g, pid));
                let loss = g.softmax_cross_entropy(logits, Arc::clone(labels));
                last_epoch_loss += g.value(loss).scalar() * labels.len() as f32;
                g.backward(loss);
                params.apply_grads(&g);
                params.step(cfg.lr);
            }
            last_epoch_loss /= data.len() as f32;
        }
        self.params = params;
        last_epoch_loss
    }

    /// Debug hook: runs one training batch and returns the gradient norms
    /// of every parameter (in registration order).
    #[doc(hidden)]
    pub fn debug_grad_norms(&mut self, data: &[(&LayoutGraph, u8)]) -> Vec<f32> {
        let graphs: Vec<&LayoutGraph> = data.iter().map(|(g, _)| *g).collect();
        let labels: Arc<Vec<u8>> = Arc::new(data.iter().map(|(_, l)| *l).collect());
        let enc = crate::BatchEncoding::new(&graphs);
        let mut params = std::mem::replace(&mut self.params, ParamSet::new(Optimizer::Adam));
        let mut g = Graph::new();
        let node_emb = self.backbone_raw(
            &mut g,
            enc.features.clone(),
            [enc.conflict.clone(), enc.stitch.clone()],
            &mut |g, pid| params.bind(g, pid),
        );
        let pooled = match self.readout {
            Readout::Sum => g.segment_sum(node_emb, enc.segment.clone(), labels.len()),
            Readout::Max => g.segment_max(node_emb, &enc.segment, labels.len()),
        };
        let logits = self.head_raw(&mut g, pooled, &mut |g, pid| params.bind(g, pid));
        let loss = g.softmax_cross_entropy(logits, labels);
        g.backward(loss);
        params.apply_grads(&g);
        let norms = params.debug_grad_norms();
        params.zero_grads();
        self.params = params;
        norms
    }

    /// Class probabilities for a batch of graphs, computed in one pass
    /// over their disjoint union (the paper's batched inference).
    ///
    /// # Panics
    ///
    /// Panics if any graph is empty.
    pub fn predict_batch(&self, graphs: &[&LayoutGraph]) -> Vec<Vec<f32>> {
        if graphs.is_empty() {
            return Vec::new();
        }
        let enc = crate::BatchEncoding::new(graphs);
        let mut g = Graph::new();
        let node_emb = self.backbone_raw(
            &mut g,
            enc.features.clone(),
            [enc.conflict.clone(), enc.stitch.clone()],
            &mut |g, pid| self.params.bind_frozen(g, pid),
        );
        let pooled = match self.readout {
            Readout::Sum => g.segment_sum(node_emb, enc.segment.clone(), graphs.len()),
            Readout::Max => g.segment_max(node_emb, &enc.segment, graphs.len()),
        };
        let logits = self.head_frozen(&mut g, pooled);
        let probs = g.softmax_values(logits);
        (0..graphs.len()).map(|i| probs.row(i).to_vec()).collect()
    }

    /// Graph and node embeddings for a batch of graphs in one pass.
    /// Returns one `(graph_embedding, node_embeddings)` pair per graph.
    ///
    /// # Panics
    ///
    /// Panics if any graph is empty.
    pub fn embeddings_batch(&self, graphs: &[&LayoutGraph]) -> Vec<(Vec<f32>, Matrix)> {
        if graphs.is_empty() {
            return Vec::new();
        }
        let enc = crate::BatchEncoding::new(graphs);
        let mut g = Graph::new();
        let node_emb = self.backbone_raw(
            &mut g,
            enc.features.clone(),
            [enc.conflict.clone(), enc.stitch.clone()],
            &mut |g, pid| self.params.bind_frozen(g, pid),
        );
        let pooled = match self.readout {
            Readout::Sum => g.segment_sum(node_emb, enc.segment.clone(), graphs.len()),
            Readout::Max => g.segment_max(node_emb, &enc.segment, graphs.len()),
        };
        let nodes = g.value(node_emb);
        let pools = g.value(pooled);
        let cols = nodes.cols();
        (0..graphs.len())
            .map(|i| {
                // Each graph's node block is a contiguous row range of the
                // batched matrix: carve it in one slice copy instead of a
                // zeroed intermediate plus element-wise writes.
                let (lo, hi) = (enc.offsets[i], enc.offsets[i + 1]);
                let m = Matrix::from_vec(
                    hi - lo,
                    cols,
                    nodes.as_slice()[lo * cols..hi * cols].to_vec(),
                );
                (pools.row(i).to_vec(), m)
            })
            .collect()
    }

    /// Class probabilities for one graph.
    pub fn predict(&self, graph: &LayoutGraph) -> Vec<f32> {
        let enc = GraphEncoding::new(graph);
        let mut g = Graph::new();
        let node_emb = self.backbone_frozen(&mut g, &enc);
        let pooled = self.readout(&mut g, node_emb);
        let logits = self.head_frozen(&mut g, pooled);
        let probs = g.softmax_values(logits);
        probs.row(0).to_vec()
    }

    /// The graph embedding (readout of the final layer), `D` floats.
    pub fn graph_embedding(&self, graph: &LayoutGraph) -> Vec<f32> {
        let enc = GraphEncoding::new(graph);
        let mut g = Graph::new();
        let node_emb = self.backbone_frozen(&mut g, &enc);
        let pooled = self.readout(&mut g, node_emb);
        g.value(pooled).row(0).to_vec()
    }

    /// Node embeddings (`n x D`) of the final layer.
    pub fn node_embeddings(&self, graph: &LayoutGraph) -> Matrix {
        let enc = GraphEncoding::new(graph);
        let mut g = Graph::new();
        let node_emb = self.backbone_frozen(&mut g, &enc);
        g.value(node_emb).clone()
    }
}

impl std::fmt::Debug for RgcnClassifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RgcnClassifier")
            .field("dims", &self.dims)
            .field("num_bases", &self.num_bases)
            .field("readout", &self.readout)
            .field("weights", &self.params.num_weights())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(n: usize) -> LayoutGraph {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        LayoutGraph::homogeneous(n, edges).unwrap()
    }

    fn sparse_path(n: usize) -> LayoutGraph {
        let edges = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        LayoutGraph::homogeneous(n, edges).unwrap()
    }

    #[test]
    fn learns_dense_vs_sparse() {
        // A sanity-level learnable task: dense cliques (label 0) vs paths
        // (label 1).
        let graphs: Vec<(LayoutGraph, u8)> = (4..9)
            .flat_map(|n| [(dense(n), 0u8), (sparse_path(n), 1u8)])
            .collect();
        let data: Vec<(&LayoutGraph, u8)> = graphs.iter().map(|(g, l)| (g, *l)).collect();
        let mut model = RgcnClassifier::selector(1);
        model.train(
            &data,
            &TrainConfig {
                epochs: 60,
                lr: 0.01,
                batch: 4,
                balance: true,
            },
        );
        let mut correct = 0;
        for (g, l) in &data {
            let p = model.predict(g);
            if (p[1] > 0.5) == (*l == 1) {
                correct += 1;
            }
        }
        assert!(
            correct >= data.len() - 1,
            "only {correct}/{} correct",
            data.len()
        );
    }

    #[test]
    fn embedding_is_permutation_invariant() {
        // The same triangle with relabeled nodes must embed identically.
        let g1 = LayoutGraph::homogeneous(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let g2 = LayoutGraph::homogeneous(4, vec![(3, 2), (2, 1), (3, 1), (1, 0)]).unwrap();
        let model = RgcnClassifier::selector(7);
        let e1 = model.graph_embedding(&g1);
        let e2 = model.graph_embedding(&g2);
        for (a, b) in e1.iter().zip(&e2) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn heterogeneous_graphs_embed_differently_from_homogeneous() {
        // Stitch edges must influence the embedding (they use a different
        // relation weight).
        let hom = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2)]).unwrap();
        let het = LayoutGraph::new(vec![0, 0, 1], vec![(0, 2), (1, 2)], vec![(0, 1)]).unwrap();
        let model = RgcnClassifier::selector(3);
        let e1 = model.graph_embedding(&hom);
        let e2 = model.graph_embedding(&het);
        let diff: f32 = e1.iter().zip(&e2).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6);
    }

    #[test]
    fn max_readout_ignores_duplicated_components() {
        // Max pooling: embedding of G equals embedding of G + disjoint copy.
        let tri = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let two = LayoutGraph::homogeneous(6, vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
            .unwrap();
        let model = RgcnClassifier::redundancy(5);
        let e1 = model.graph_embedding(&tri);
        let e2 = model.graph_embedding(&two);
        for (a, b) in e1.iter().zip(&e2) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn predict_outputs_distribution() {
        let g = sparse_path(5);
        let model = RgcnClassifier::selector(11);
        let p = model.predict(&g);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn batch_prediction_matches_individual() {
        let graphs = [dense(4), sparse_path(5), dense(6), sparse_path(7)];
        let refs: Vec<&LayoutGraph> = graphs.iter().collect();
        let model = RgcnClassifier::selector(2);
        let batch = model.predict_batch(&refs);
        for (g, b) in refs.iter().zip(&batch) {
            let solo = model.predict(g);
            for (x, y) in solo.iter().zip(b) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn batch_embeddings_match_individual() {
        let graphs = [dense(4), sparse_path(6)];
        let refs: Vec<&LayoutGraph> = graphs.iter().collect();
        let model = RgcnClassifier::redundancy(2);
        let batch = model.embeddings_batch(&refs);
        for (g, (emb, nodes)) in refs.iter().zip(&batch) {
            let solo_emb = model.graph_embedding(g);
            let solo_nodes = model.node_embeddings(g);
            for (x, y) in solo_emb.iter().zip(emb) {
                assert!((x - y).abs() < 1e-4);
            }
            assert_eq!(solo_nodes.rows(), nodes.rows());
            for r in 0..nodes.rows() {
                for c in 0..nodes.cols() {
                    assert!((solo_nodes[(r, c)] - nodes[(r, c)]).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "embedding dimension")]
    fn head_must_match_embedding() {
        let _ = RgcnClassifier::new(&[1, 8], 2, Readout::Sum, &[16, 2], 0);
    }
}
