//! Criterion bench: per-engine decomposition throughput on real unit
//! graphs grouped by size — the kernel data behind the Table IV/V trends
//! (who is fast, who is slow, how the gap widens with unit size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpld::prepare;
use mpld_ec::EcDecomposer;
use mpld_graph::{DecomposeParams, Decomposer, LayoutGraph};
use mpld_ilp::encode::BipDecomposer;
use mpld_ilp::IlpDecomposer;
use mpld_layout::circuit_by_name;
use mpld_sdp::SdpDecomposer;

/// Representative unit graphs of each size class from C2670.
fn units_by_size() -> Vec<(usize, Vec<LayoutGraph>)> {
    let params = DecomposeParams::tpl();
    let layout = circuit_by_name("C2670").expect("known circuit").generate();
    let prep = prepare(&layout, &params);
    let mut classes: Vec<(usize, Vec<LayoutGraph>)> = vec![(5, vec![]), (9, vec![]), (13, vec![])];
    for u in &prep.units {
        let n = u.hetero.num_nodes();
        for (cap, bucket) in classes.iter_mut() {
            if n <= *cap && n + 3 > *cap && bucket.len() < 8 {
                bucket.push(u.hetero.clone());
                break;
            }
        }
    }
    classes.retain(|(_, b)| !b.is_empty());
    classes
}

fn bench_decomposers(c: &mut Criterion) {
    let params = DecomposeParams::tpl();
    let classes = units_by_size();
    let mut group = c.benchmark_group("decomposers");
    for (size, graphs) in &classes {
        let engines: Vec<(&str, Box<dyn Decomposer>)> = vec![
            ("ilp_eq3", Box::new(BipDecomposer::new())),
            ("ilp_bb", Box::new(IlpDecomposer::new())),
            ("ec", Box::new(EcDecomposer::new())),
            ("sdp", Box::new(SdpDecomposer::new())),
        ];
        for (name, engine) in engines {
            group.bench_with_input(
                BenchmarkId::new(name, format!("n<={size}")),
                graphs,
                |b, graphs| {
                    b.iter(|| {
                        let mut total = 0u32;
                        for g in graphs {
                            total += engine.decompose_unbounded(g, &params).cost.conflicts;
                        }
                        total
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_decomposers);
criterion_main!(benches);
