//! Projection-based stitch candidate insertion.
//!
//! Following the classic TPL flow the paper adopts, stitch candidates are
//! generated per simplified component by **pattern projection**: each
//! conflicting neighbor of a wire projects the portion of the wire it
//! threatens onto the wire's long axis. A legal stitch position lies in a
//! gap *not covered by any projection* with at least one projection on
//! each side — splitting there separates the conflicts on the left of the
//! stitch from those on the right without creating an always-conflicted
//! subfeature.
//!
//! Only single-rectangle features receive candidates (the generator makes
//! jogged features rare), and at most [`MAX_STITCHES_PER_FEATURE`]
//! candidates are kept per feature, so a feature splits into at most three
//! subfeatures — matching the practical behaviour of OpenMPL on the scaled
//! benchmarks.

use mpld_geometry::{feature_distance_sq, Feature, Rect};
use mpld_graph::{GraphError, LayoutGraph, NodeId};

/// Upper bound on stitch candidates inserted into one feature.
pub const MAX_STITCHES_PER_FEATURE: usize = 2;

/// The result of stitch insertion on one component.
#[derive(Debug, Clone)]
pub struct StitchedComponent {
    /// Heterogeneous graph: nodes are subfeatures, `node_feature` maps to
    /// the *local* feature index (position in the input slice).
    pub graph: LayoutGraph,
    /// Geometry of each node (parallel to graph nodes).
    pub subfeatures: Vec<Rect>,
}

/// Inserts stitch candidates into the features of one simplified
/// component and rebuilds the conflict graph at subfeature level.
///
/// `features` are the component's features (any order); `d` is the
/// coloring distance. Feature-level conflicts are recomputed from
/// geometry, so the caller's component structure is preserved exactly.
///
/// # Errors
///
/// Returns a [`GraphError`] only if the reconstructed edges violate the
/// layout-graph rules, which indicates corrupt input geometry (overlapping
/// features of different ids).
///
/// # Example
///
/// ```
/// use mpld_geometry::{Feature, Rect};
/// use mpld_layout::insert_stitch_candidates;
///
/// // A long wire flanked by two short wires above its left and right ends:
/// // the gap between their projections admits one stitch.
/// let long = Feature::new(0, vec![Rect::new(0, 0, 500, 40)]);
/// let left = Feature::new(1, vec![Rect::new(0, 100, 120, 140)]);
/// let right = Feature::new(2, vec![Rect::new(380, 100, 500, 140)]);
/// let s = insert_stitch_candidates(&[long, left, right], 120).unwrap();
/// assert_eq!(s.graph.stitch_edges().len(), 1);
/// assert_eq!(s.graph.num_nodes(), 4); // long split into 2 subfeatures
/// ```
pub fn insert_stitch_candidates(
    features: &[Feature],
    d: i64,
) -> Result<StitchedComponent, GraphError> {
    insert_stitch_candidates_masked(features, d, &vec![true; features.len()])
}

/// Like [`insert_stitch_candidates`], but `splittable[i]` can veto stitch
/// candidates for feature `i`. The adaptive framework uses this to keep
/// articulation (cut-vertex) features whole, so block colorings can always
/// be reconciled by a color permutation.
///
/// # Errors
///
/// Same conditions as [`insert_stitch_candidates`].
///
/// # Panics
///
/// Panics if `splittable.len() != features.len()`.
pub fn insert_stitch_candidates_masked(
    features: &[Feature],
    d: i64,
    splittable: &[bool],
) -> Result<StitchedComponent, GraphError> {
    assert_eq!(splittable.len(), features.len(), "one flag per feature");
    let dd = d * d;
    // Feature-level conflicts (the component is small; quadratic is fine).
    let mut conflicts: Vec<Vec<usize>> = vec![Vec::new(); features.len()];
    for i in 0..features.len() {
        for j in (i + 1)..features.len() {
            if feature_distance_sq(&features[i], &features[j]) < dd {
                conflicts[i].push(j);
                conflicts[j].push(i);
            }
        }
    }

    // Split each feature.
    let mut subfeatures: Vec<Rect> = Vec::new();
    let mut node_feature: Vec<u32> = Vec::new();
    let mut stitch_edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut nodes_of: Vec<Vec<NodeId>> = Vec::new();

    for (fi, f) in features.iter().enumerate() {
        let cuts = if splittable[fi] && f.rects().len() == 1 && !conflicts[fi].is_empty() {
            stitch_positions(f.rects()[0], conflicts[fi].iter().map(|&j| &features[j]), d)
        } else {
            Vec::new()
        };
        let mut parts: Vec<Rect> = Vec::new();
        if cuts.is_empty() {
            parts.extend(f.rects().iter().copied());
        } else {
            let rect = f.rects()[0];
            let horizontal = rect.width() >= rect.height();
            let mut rest = rect;
            for &c in &cuts {
                let split = if horizontal {
                    rest.split_at_x(c)
                } else {
                    rest.split_at_y(c)
                };
                if let Some((a, b)) = split {
                    parts.push(a);
                    rest = b;
                }
            }
            parts.push(rest);
        }
        let mut ids = Vec::new();
        for (pi, part) in parts.iter().enumerate() {
            let id = subfeatures.len() as NodeId;
            subfeatures.push(*part);
            node_feature.push(fi as u32);
            if pi > 0 {
                stitch_edges.push((id - 1, id));
            }
            ids.push(id);
        }
        nodes_of.push(ids);
    }

    // Subfeature-level conflict edges (only across conflicting features).
    let mut conflict_edges: Vec<(NodeId, NodeId)> = Vec::new();
    for (fi, js) in conflicts.iter().enumerate() {
        for &fj in js {
            if fj <= fi {
                continue;
            }
            for &u in &nodes_of[fi] {
                for &v in &nodes_of[fj] {
                    if crate::rect_distance_sq(&subfeatures[u as usize], &subfeatures[v as usize])
                        < dd
                    {
                        conflict_edges.push((u, v));
                    }
                }
            }
        }
    }

    let graph = LayoutGraph::new(node_feature, conflict_edges, stitch_edges)?;
    Ok(StitchedComponent { graph, subfeatures })
}

/// Projection-based legal stitch positions along the long axis of `rect`.
fn stitch_positions<'a, I>(rect: Rect, neighbors: I, d: i64) -> Vec<i64>
where
    I: Iterator<Item = &'a Feature>,
{
    let horizontal = rect.width() >= rect.height();
    let (lo, hi) = if horizontal {
        (rect.xl, rect.xh)
    } else {
        (rect.yl, rect.yh)
    };
    // A stitch needs room: skip short wires.
    if hi - lo < d {
        return Vec::new();
    }

    // Project each neighbor: the sub-interval of [lo, hi] within distance
    // d of the neighbor, expanded by the interaction reach.
    let mut intervals: Vec<(i64, i64)> = Vec::new();
    for nb in neighbors {
        for r in nb.rects() {
            let (nlo, nhi) = if horizontal {
                (r.xl, r.xh)
            } else {
                (r.yl, r.yh)
            };
            // Orthogonal gap between the wire and this rect.
            let ortho_gap = if horizontal {
                crate::axis_gap_pub(rect.yl, rect.yh, r.yl, r.yh)
            } else {
                crate::axis_gap_pub(rect.xl, rect.xh, r.xl, r.xh)
            };
            if ortho_gap >= d {
                continue;
            }
            // Along-axis reach: positions within sqrt(d^2 - gap^2).
            let reach = ((d * d - ortho_gap * ortho_gap) as f64).sqrt() as i64;
            let a = (nlo - reach).max(lo);
            let b = (nhi + reach).min(hi);
            if a < b {
                intervals.push((a, b));
            }
        }
    }
    if intervals.len() < 2 {
        return Vec::new();
    }
    // Coverage sweep: legal stitch segments are maximal interior segments
    // covered by at most ONE projection. A zero-coverage gap separates the
    // conflicts on its two sides; a single-coverage segment splits so that
    // the one covering neighbor is shared by both subfeatures — the
    // standard generous candidate rule (most candidates end up redundant,
    // as the paper's statistics show).
    let mut events: Vec<(i64, i32)> = Vec::new();
    for &(a, b) in &intervals {
        events.push((a, 1));
        events.push((b, -1));
    }
    events.sort_unstable();
    let min_seg = d / 4; // a stitch needs some landing room
    let mut cuts = Vec::new();
    let mut coverage = 0i32;
    let mut seg_start = lo;
    let mut i = 0;
    while i < events.len() {
        let x = events[i].0;
        // Close the current segment at x.
        if coverage <= 1 {
            let (a, b) = (seg_start.max(lo), x.min(hi));
            // Interior only: splitting at the wire ends is meaningless.
            if a > lo && b < hi && b - a >= min_seg {
                cuts.push((a + b) / 2);
                if cuts.len() == MAX_STITCHES_PER_FEATURE {
                    break;
                }
            }
        }
        while i < events.len() && events[i].0 == x {
            coverage += events[i].1;
            i += 1;
        }
        seg_start = x;
    }
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(id: u32, x0: i64, x1: i64, y: i64) -> Feature {
        Feature::new(id, vec![Rect::new(x0, y, x1, y + 40)])
    }

    #[test]
    fn isolated_feature_gets_no_stitch() {
        let s = insert_stitch_candidates(&[wire(0, 0, 400, 0)], 120).unwrap();
        assert!(s.graph.stitch_edges().is_empty());
        assert_eq!(s.graph.num_nodes(), 1);
    }

    #[test]
    fn single_projection_gets_no_stitch() {
        // One neighbor covering the left end: no projection on both sides.
        let a = wire(0, 0, 400, 0);
        let b = wire(1, 0, 100, 100);
        let s = insert_stitch_candidates(&[a, b], 120).unwrap();
        assert!(s.graph.stitch_edges().is_empty());
        assert_eq!(s.graph.conflict_edges().len(), 1);
    }

    #[test]
    fn gap_between_projections_hosts_stitch() {
        let long = wire(0, 0, 700, 0);
        let left = wire(1, 0, 120, 100);
        let right = wire(2, 580, 700, 100);
        let s = insert_stitch_candidates(&[long, left, right], 120).unwrap();
        assert_eq!(s.graph.stitch_edges().len(), 1);
        assert_eq!(s.graph.num_nodes(), 4);
        // Each subfeature conflicts only with its side's neighbor.
        assert_eq!(s.graph.conflict_edges().len(), 2);
    }

    #[test]
    fn stitch_resolves_conflict_chain() {
        // Fig. 2-style case: splitting the middle wire makes the component
        // 2-colorable at k = 2.
        let long = wire(0, 0, 700, 0);
        let left = wire(1, 0, 120, 100);
        let right = wire(2, 580, 700, 100);
        let s = insert_stitch_candidates(&[long, left, right], 120).unwrap();
        // Color: left = 0, right = 1, long-left = 1, long-right = 0.
        let g = &s.graph;
        // Find subfeature nodes of feature 0.
        let nodes0: Vec<u32> = (0..g.num_nodes() as u32)
            .filter(|&v| g.feature_of(v) == 0)
            .collect();
        assert_eq!(nodes0.len(), 2);
        let mut coloring = vec![0u8; g.num_nodes()];
        for v in 0..g.num_nodes() as u32 {
            coloring[v as usize] = match g.feature_of(v) {
                0 => {
                    if v == nodes0[0] {
                        1
                    } else {
                        0
                    }
                }
                1 => 0,
                _ => 1,
            };
        }
        let cost = g.evaluate(&coloring, 0.1);
        assert_eq!(cost.conflicts, 0);
        assert_eq!(cost.stitches, 1);
    }

    #[test]
    fn at_most_two_stitches_per_feature() {
        // Many alternating neighbors above a very long wire.
        let long = wire(0, 0, 3000, 0);
        let mut feats = vec![long];
        for (i, x) in (0..5).map(|i| (i, i * 600)).collect::<Vec<_>>() {
            feats.push(wire(i as u32 + 1, x, x + 150, 100));
        }
        let s = insert_stitch_candidates(&feats, 120).unwrap();
        let f0_nodes = (0..s.graph.num_nodes() as u32)
            .filter(|&v| s.graph.feature_of(v) == 0)
            .count();
        assert!(f0_nodes <= MAX_STITCHES_PER_FEATURE + 1);
        assert!(f0_nodes >= 2);
    }

    #[test]
    fn subfeature_geometry_partitions_the_wire() {
        let long = wire(0, 0, 700, 0);
        let left = wire(1, 0, 120, 100);
        let right = wire(2, 580, 700, 100);
        let s = insert_stitch_candidates(&[long, left, right], 120).unwrap();
        let parts: Vec<Rect> = (0..s.graph.num_nodes() as u32)
            .filter(|&v| s.graph.feature_of(v) == 0)
            .map(|v| s.subfeatures[v as usize])
            .collect();
        let area: i64 = parts.iter().map(Rect::area).sum();
        assert_eq!(area, 700 * 40);
    }
}
