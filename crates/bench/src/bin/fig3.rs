//! Fig. 3 — histogram of the number of simplified layout graphs (`|G|`)
//! versus graphs that need no stitches in the optimum (`|ns-G|`), split
//! into small (ISCAS-85) and large (ISCAS-89) layouts as in the paper.

use mpld::layout_stats;
use mpld_bench::{print_table, Bench};

fn bar(value: usize, max: usize, width: usize) -> String {
    let filled = (value * width).checked_div(max).unwrap_or(0);
    "#".repeat(filled)
}

fn main() {
    let bench = Bench::load();
    println!("Fig. 3: |G| (all simplified graphs) vs |ns-G| (stitch-free optimum)\n");

    for (title, large) in [("(a) small layouts", false), ("(b) large layouts", true)] {
        let rows: Vec<(String, usize, usize)> = bench
            .circuits
            .iter()
            .zip(&bench.prepared)
            .filter(|(c, _)| c.large == large)
            .map(|(c, p)| {
                let s = layout_stats(p, &bench.params);
                (c.name.to_string(), s.graphs, s.no_stitch_optimal)
            })
            .collect();
        if rows.is_empty() {
            continue;
        }
        println!("{title}");
        let max = rows.iter().map(|r| r.1).max().unwrap_or(1);
        let mut table = Vec::new();
        for (name, g, ns) in &rows {
            table.push(vec![
                name.clone(),
                g.to_string(),
                bar(*g, max, 30),
                ns.to_string(),
                bar(*ns, max, 30),
            ]);
        }
        print_table(
            &["circuit", "|G|", "|G| bar", "|ns-G|", "|ns-G| bar"],
            &table,
        );
        let tot_g: usize = rows.iter().map(|r| r.1).sum();
        let tot_ns: usize = rows.iter().map(|r| r.2).sum();
        println!(
            "total |G| = {tot_g}, |ns-G| = {tot_ns} ({:.1}% need no stitch; paper: >80%)\n",
            100.0 * tot_ns as f64 / tot_g.max(1) as f64
        );
    }
}
