//! Criterion bench: register-tiled matmul kernels vs the naive
//! triple-loop oracles they replaced. The GNN forward/backward passes
//! spend most of their FLOPs in these three kernels, so the tile speedup
//! translates directly into inference throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mpld_tensor::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 128] {
        let a = random_matrix(n, n, 1);
        let b = random_matrix(n, n, 2);
        group.bench_with_input(BenchmarkId::new("tiled", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).matmul(black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).matmul_naive(black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("tiled_tn", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).matmul_tn(black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("naive_tn", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).matmul_tn_naive(black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("tiled_nt", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).matmul_nt(black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("naive_nt", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).matmul_nt_naive(black_box(&b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
