//! Table VI — F1 score of stitch-redundancy prediction, with
//! leave-2-out cross-validation. Class 0 ("positive") = all stitch
//! candidates redundant. Matrix (a) counts all stitch-bearing instances;
//! matrix (b) only instances whose confidence clears the bar (0.99 by
//! default, override with `--bar <x>` or `MPLD_BAR`).

use mpld::ConfusionMatrix;
use mpld_bench::{env_usize, print_table, Bench};
use mpld_gnn::{RgcnClassifier, TrainConfig};
use mpld_graph::LayoutGraph;

fn main() {
    let bar: f32 = std::env::args()
        .skip_while(|a| a != "--bar")
        .nth(1)
        .or_else(|| std::env::var("MPLD_BAR").ok())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.99);
    let bench = Bench::load();
    let cfg = TrainConfig {
        epochs: env_usize("MPLD_EPOCHS", 25),
        ..TrainConfig::default()
    };

    let mut all = ConfusionMatrix::new();
    let mut above = ConfusionMatrix::new();
    for (fold, (train_idx, test_idx)) in bench.folds().iter().enumerate() {
        let train = bench.merged_data(train_idx);
        let data: Vec<(&LayoutGraph, u8)> = train
            .redundancy_labels
            .iter()
            .map(|&(i, l)| (&train.units[i], l))
            .collect();
        if data.is_empty() {
            continue;
        }
        let mut model = RgcnClassifier::redundancy(fold as u64);
        model.train(&data, &cfg);
        for &ci in test_idx {
            let test = &bench.data[ci];
            let graphs: Vec<&LayoutGraph> = test
                .redundancy_labels
                .iter()
                .map(|&(i, _)| &test.units[i])
                .collect();
            if graphs.is_empty() {
                continue;
            }
            let probs = model.predict_batch(&graphs);
            for ((_, label), p) in test.redundancy_labels.iter().zip(&probs) {
                let pred = u8::from(p[0] <= 0.5);
                all.record(pred, *label);
                // Above-bar: only confident "redundant" predictions count
                // as positives; everything else is treated as class 1.
                let confident_pred = u8::from(p[0] <= bar);
                above.record(confident_pred, *label);
            }
        }
        eprintln!("fold {fold} done");
    }

    println!("Table VI: stitch-redundancy prediction (class 0 = redundant)\n");
    for (title, cm) in [
        ("(a) all instances".to_string(), all),
        (format!("(b) confidence > {bar}"), above),
    ] {
        println!("{title}");
        print_table(
            &["", "labeled redun.", "labeled not redun."],
            &[
                vec!["pred redun.".into(), cm.tp.to_string(), cm.fp.to_string()],
                vec![
                    "pred not redun.".into(),
                    cm.fn_.to_string(),
                    cm.tn.to_string(),
                ],
            ],
        );
        println!(
            "recall {:.3}   precision {:.3}   F1 {:.3}   accuracy {:.3}\n",
            cm.recall(),
            cm.precision(),
            cm.f1(),
            cm.accuracy()
        );
    }
    println!("paper shape: most redundancy found; above the bar, no non-redundant graph");
    println!("is ever predicted redundant (precision 1.0 in matrix (b)).");
}
