//! Table V — decomposition runtime comparison across all 15 circuits
//! (graph simplification and stitch insertion excluded, as in the paper):
//! ILP (Eq. 3 on the 0-1 solver), SDP, EC, Ours, Ours w. GNN.

use mpld::run_pipeline;
use mpld_bench::{fmt_duration, print_table, train_fold, Bench};
use mpld_ec::EcDecomposer;
use mpld_ilp::encode::BipDecomposer;
use mpld_sdp::SdpDecomposer;
use std::time::Duration;

fn main() {
    let bench = Bench::load();
    let n = bench.circuits.len();
    let mut rows = Vec::new();
    let mut totals = [Duration::ZERO; 5];

    let mut ours = vec![None; n];
    let mut ours_gnn = vec![None; n];
    for (train_idx, test_idx) in bench.folds() {
        if train_idx.is_empty() {
            continue;
        }
        let mut fw = train_fold(&bench, &train_idx);
        for &ci in &test_idx {
            fw.use_colorgnn = false;
            ours[ci] = Some(
                fw.decompose_prepared(&bench.prepared[ci])
                    .pipeline
                    .decompose_time,
            );
            fw.use_colorgnn = true;
            ours_gnn[ci] = Some(
                fw.decompose_prepared(&bench.prepared[ci])
                    .pipeline
                    .decompose_time,
            );
        }
        eprintln!("fold tested {test_idx:?}");
    }

    for ci in 0..n {
        let prep = &bench.prepared[ci];
        let ilp = run_pipeline(prep, &BipDecomposer::new(), &bench.params).decompose_time;
        let sdp = run_pipeline(prep, &SdpDecomposer::new(), &bench.params).decompose_time;
        let ec = run_pipeline(prep, &EcDecomposer::new(), &bench.params).decompose_time;
        let o = ours[ci].unwrap_or(Duration::ZERO);
        let og = ours_gnn[ci].unwrap_or(Duration::ZERO);
        for (t, v) in totals.iter_mut().zip([ilp, sdp, ec, o, og]) {
            *t += v;
        }
        rows.push(vec![
            bench.circuits[ci].name.to_string(),
            fmt_duration(ilp),
            fmt_duration(sdp),
            fmt_duration(ec),
            fmt_duration(o),
            fmt_duration(og),
        ]);
        eprintln!("{} measured", bench.circuits[ci].name);
    }
    rows.push(vec![
        "total".into(),
        fmt_duration(totals[0]),
        fmt_duration(totals[1]),
        fmt_duration(totals[2]),
        fmt_duration(totals[3]),
        fmt_duration(totals[4]),
    ]);
    let ratio = |i: usize| format!("{:.3}", totals[i].as_secs_f64() / totals[0].as_secs_f64());
    rows.push(vec![
        "ratio".into(),
        "1.000".into(),
        ratio(1),
        ratio(2),
        ratio(3),
        ratio(4),
    ]);

    println!("\nTable V: decomposition runtime (one thread; preprocessing excluded)\n");
    print_table(
        &["circuit", "ILP", "SDP", "EC", "Ours", "Ours w. GNN"],
        &rows,
    );
    println!("\npaper shape: ILP slowest by far; Ours ~12.3% of ILP; Ours w. GNN ~4.2% of ILP.");
}
