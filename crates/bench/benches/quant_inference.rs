//! Criterion bench: quantized frozen routing inference. Measures the
//! planner-bucketed batched forward at every precision tier — f32 is
//! the committed baseline shape, f16/int8 are the quantized planes the
//! adaptive tier runs first — plus the bare quantized GEMM kernels at
//! the backbone's dominant shape.

use criterion::{criterion_group, criterion_main, Criterion};
use mpld::{prepare, BatchPlan, DEFAULT_MAX_BATCH_NODES};
use mpld_gnn::{InferBatch, RgcnClassifier};
use mpld_graph::{DecomposeParams, LayoutGraph};
use mpld_layout::circuit_by_name;
use mpld_tensor::quant::{gemm_nn_f16, gemm_nn_q8};
use mpld_tensor::{F16Matrix, Matrix, Precision, QuantMatrix};

fn unit_graphs(n: usize) -> Vec<LayoutGraph> {
    let params = DecomposeParams::tpl();
    let layout = circuit_by_name("C1355").expect("known circuit").generate();
    let prep = prepare(&layout, &params);
    prep.units
        .iter()
        .take(n)
        .map(|u| u.hetero.clone())
        .collect()
}

fn bench_quant_inference(c: &mut Criterion) {
    let graphs = unit_graphs(64);
    let refs: Vec<&LayoutGraph> = graphs.iter().collect();
    let sizes: Vec<(usize, usize)> = refs
        .iter()
        .map(|g| {
            (
                g.num_nodes(),
                g.conflict_edges().len() + g.stitch_edges().len(),
            )
        })
        .collect();
    let items: Vec<usize> = (0..refs.len()).collect();
    let plan = BatchPlan::new(&items, &sizes, DEFAULT_MAX_BATCH_NODES);
    let planned: Vec<Vec<&LayoutGraph>> = plan
        .batches
        .iter()
        .map(|b| b.iter().map(|&i| refs[i]).collect())
        .collect();

    let mut group = c.benchmark_group("quant_inference");
    for (name, precision) in [
        ("planned_f32_x64", Precision::F32),
        ("planned_f16_x64", Precision::F16),
        ("planned_int8_x64", Precision::Int8),
    ] {
        group.bench_function(name, |b| {
            let sel = RgcnClassifier::selector(7).freeze();
            let red = RgcnClassifier::redundancy(7).freeze();
            b.iter(|| {
                let mut acc = 0f32;
                for batch in &planned {
                    let enc = InferBatch::new(batch);
                    let s = sel.infer_encoded_with(&enc, precision);
                    let r = red.predict_encoded_with(&enc, precision);
                    acc += s
                        .probs
                        .iter()
                        .zip(&r.probs)
                        .map(|(a, b)| a[0] + b[0])
                        .sum::<f32>();
                }
                acc
            })
        });
    }

    // Bare kernels at the backbone's hidden-layer shape (the dominant
    // GEMM of the batched forward): f32 is the pinned AVX2 path, f16 and
    // int8 go through the quantized dispatch ladder.
    let (m, k, n) = (512, 32, 64);
    let a = Matrix::zeros(m, k);
    let bf = Matrix::zeros(k, n);
    let q = QuantMatrix::from_matrix(&bf);
    let h = F16Matrix::from_matrix(&bf);
    group.bench_function("gemm_f32_512x32x64", |b| {
        let mut out = vec![0.0f32; m * n];
        b.iter(|| {
            mpld_tensor::infer::gemm_into(m, k, n, a.as_slice(), bf.as_slice(), &mut out);
            out[0]
        })
    });
    group.bench_function("gemm_f16_512x32x64", |b| {
        let mut out = vec![0.0f32; m * n];
        b.iter(|| {
            gemm_nn_f16(m, k, n, a.as_slice(), &h, &mut out);
            out[0]
        })
    });
    group.bench_function("gemm_int8_512x32x64", |b| {
        let mut out = vec![0.0f32; m * n];
        b.iter(|| {
            gemm_nn_q8(m, k, n, a.as_slice(), &q, &mut out);
            out[0]
        })
    });
    group.finish();
}

criterion_group!(benches, bench_quant_inference);
criterion_main!(benches);
