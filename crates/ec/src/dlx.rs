//! Dancing-links (DLX) exact cover with secondary columns, row costs, and
//! branch-and-bound minimum-cost search.
//!
//! Columns are either **primary** (must be covered exactly once) or
//! **secondary** (may be covered at most once). Rows carry non-negative
//! costs; [`Dlx::solve_min_cost`] finds the exact cover minimizing the
//! total row cost, optionally under a search-node budget (returning the
//! best cover found so far when the budget runs out).

use mpld_graph::Budget;

/// Marker for "no best solution yet".
const NO_NODE: u32 = u32::MAX;

/// A dancing-links exact cover matrix.
///
/// # Example
///
/// Knuth's classic example instance:
///
/// ```
/// use mpld_ec::dlx::Dlx;
///
/// let mut m = Dlx::new(7, 0);
/// m.add_row(&[2, 4, 5], 0);     // row 0
/// m.add_row(&[0, 3, 6], 0);     // row 1
/// m.add_row(&[1, 2, 5], 0);     // row 2
/// m.add_row(&[0, 3], 0);        // row 3
/// m.add_row(&[1, 6], 0);        // row 4
/// m.add_row(&[3, 4, 6], 0);     // row 5
/// let (rows, cost) = m.solve_min_cost(None).expect("cover exists");
/// let mut rows = rows.clone();
/// rows.sort();
/// assert_eq!(rows, vec![0, 3, 4]);
/// assert_eq!(cost, 0);
/// ```
#[derive(Debug, Clone)]
pub struct Dlx {
    // Node arena. Nodes 0..num_cols are column headers; node `num_cols` is
    // the root of the primary header list.
    left: Vec<u32>,
    right: Vec<u32>,
    up: Vec<u32>,
    down: Vec<u32>,
    col_of: Vec<u32>,
    row_of: Vec<u32>,
    size: Vec<u32>,
    num_primary: usize,
    num_cols: usize,
    num_rows: usize,
    row_cost: Vec<u64>,
    search_nodes: u64,
    exhausted: bool,
}

impl Dlx {
    /// Creates a matrix with `num_primary` primary columns followed by
    /// `num_secondary` secondary columns. Column ids are
    /// `0..num_primary + num_secondary`, primaries first.
    pub fn new(num_primary: usize, num_secondary: usize) -> Self {
        let num_cols = num_primary + num_secondary;
        let root = num_cols as u32;
        let n = num_cols + 1;
        let mut m = Dlx {
            left: (0..n as u32).collect(),
            right: (0..n as u32).collect(),
            up: (0..n as u32).collect(),
            down: (0..n as u32).collect(),
            col_of: (0..n as u32).collect(),
            row_of: vec![NO_NODE; n],
            size: vec![0; num_cols],
            num_primary,
            num_cols,
            num_rows: 0,
            row_cost: Vec::new(),
            search_nodes: 0,
            exhausted: false,
        };
        // Link primary headers in a circular list through the root;
        // secondary headers stay self-linked (never branched on).
        let mut prev = root;
        for c in 0..num_primary as u32 {
            m.left[c as usize] = prev;
            m.right[prev as usize] = c;
            prev = c;
        }
        m.left[root as usize] = prev;
        m.right[prev as usize] = root;
        m
    }

    /// Number of rows added so far.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of primary (exactly-once) columns.
    pub fn num_primary(&self) -> usize {
        self.num_primary
    }

    /// Search nodes expended by the last `solve_min_cost` call.
    pub fn last_search_nodes(&self) -> u64 {
        self.search_nodes
    }

    /// Whether the last `solve_min_cost` call stopped because the budget
    /// ran out (its result, including `None`, is then not a proof).
    pub fn last_search_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Adds a row covering `cols`, with the given non-negative `cost`.
    /// Returns the row index.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is empty, contains duplicates, or references an
    /// unknown column.
    pub fn add_row(&mut self, cols: &[usize], cost: u64) -> usize {
        assert!(!cols.is_empty(), "a row must cover at least one column");
        let row = self.num_rows;
        self.num_rows += 1;
        self.row_cost.push(cost);
        let mut first: Option<u32> = None;
        let mut seen = std::collections::HashSet::new();
        for &c in cols {
            assert!(c < self.num_cols, "column out of range");
            assert!(seen.insert(c), "duplicate column in row");
            let node = self.left.len() as u32;
            // Vertical link: insert above the header (end of the column).
            let header = c as u32;
            let above = self.up[header as usize];
            self.up.push(above);
            self.down.push(header);
            self.down[above as usize] = node;
            self.up[header as usize] = node;
            self.col_of.push(header);
            self.row_of.push(row as u32);
            self.size[c] += 1;
            // Horizontal link within the row.
            match first {
                None => {
                    self.left.push(node);
                    self.right.push(node);
                    first = Some(node);
                }
                Some(f) => {
                    let last = self.left[f as usize];
                    self.left.push(last);
                    self.right.push(f);
                    self.right[last as usize] = node;
                    self.left[f as usize] = node;
                }
            }
        }
        row
    }

    fn cover(&mut self, c: u32) {
        let (l, r) = (self.left[c as usize], self.right[c as usize]);
        self.right[l as usize] = r;
        self.left[r as usize] = l;
        let mut i = self.down[c as usize];
        while i != c {
            let mut j = self.right[i as usize];
            while j != i {
                let (u, d) = (self.up[j as usize], self.down[j as usize]);
                self.down[u as usize] = d;
                self.up[d as usize] = u;
                self.size[self.col_of[j as usize] as usize] -= 1;
                j = self.right[j as usize];
            }
            i = self.down[i as usize];
        }
    }

    fn uncover(&mut self, c: u32) {
        let mut i = self.up[c as usize];
        while i != c {
            let mut j = self.left[i as usize];
            while j != i {
                let (u, d) = (self.up[j as usize], self.down[j as usize]);
                self.down[u as usize] = j;
                self.up[d as usize] = j;
                self.size[self.col_of[j as usize] as usize] += 1;
                j = self.left[j as usize];
            }
            i = self.up[i as usize];
        }
        let (l, r) = (self.left[c as usize], self.right[c as usize]);
        self.right[l as usize] = c;
        self.left[r as usize] = c;
    }

    /// Finds an exact cover of all primary columns (secondaries covered at
    /// most once) minimizing total row cost.
    ///
    /// With `budget = Some(n)`, the search stops after `n` search nodes and
    /// returns the best cover found so far (or `None` if none was found) —
    /// this is what makes the EC decomposer fast but occasionally
    /// suboptimal, as characterized in the paper.
    pub fn solve_min_cost(&mut self, budget: Option<u64>) -> Option<(Vec<usize>, u64)> {
        self.solve_min_cost_within(budget, &Budget::unlimited())
    }

    /// [`Dlx::solve_min_cost`] under a wall-clock [`Budget`] in addition to
    /// the node budget: the node limits compose (the smaller wins) and the
    /// deadline/cancellation is polled every 256 search nodes. With an
    /// unlimited wall budget this is bit-identical to `solve_min_cost`.
    pub fn solve_min_cost_within(
        &mut self,
        node_budget: Option<u64>,
        wall: &Budget,
    ) -> Option<(Vec<usize>, u64)> {
        self.search_nodes = 0;
        self.exhausted = false;
        let node_budget = match (node_budget, wall.node_limit()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let wall = if wall.is_unlimited() {
            None
        } else {
            Some(wall)
        };
        let mut stack = Vec::new();
        let mut best: Option<(Vec<usize>, u64)> = None;
        self.search(&mut stack, 0, &mut best, node_budget, wall);
        best
    }

    fn search(
        &mut self,
        stack: &mut Vec<u32>,
        cost: u64,
        best: &mut Option<(Vec<usize>, u64)>,
        budget: Option<u64>,
        wall: Option<&Budget>,
    ) {
        self.search_nodes += 1;
        if let Some(b) = budget {
            if self.search_nodes > b {
                self.exhausted = true;
                return;
            }
        }
        if let Some(w) = wall {
            if self.search_nodes.is_multiple_of(256) && w.exhausted() {
                self.exhausted = true;
                return;
            }
        }
        if let Some((_, bc)) = best {
            if cost >= *bc {
                return;
            }
        }
        let root = self.num_cols as u32;
        if self.right[root as usize] == root {
            let rows: Vec<usize> = stack
                .iter()
                .map(|&n| self.row_of[n as usize] as usize)
                .collect();
            *best = Some((rows, cost));
            return;
        }
        // Choose the primary column with the fewest rows (Knuth's S heuristic).
        let mut c = self.right[root as usize];
        let mut chosen = c;
        let mut min = u32::MAX;
        while c != root {
            if self.size[c as usize] < min {
                min = self.size[c as usize];
                chosen = c;
            }
            c = self.right[c as usize];
        }
        if min == 0 {
            return; // dead end
        }
        let c = chosen;
        self.cover(c);
        let mut r = self.down[c as usize];
        while r != c {
            let row_cost = self.row_cost[self.row_of[r as usize] as usize];
            stack.push(r);
            let mut j = self.right[r as usize];
            while j != r {
                self.cover(self.col_of[j as usize]);
                j = self.right[j as usize];
            }
            self.search(stack, cost + row_cost, best, budget, wall);
            let mut j = self.left[r as usize];
            while j != r {
                self.uncover(self.col_of[j as usize]);
                j = self.left[j as usize];
            }
            stack.pop();
            r = self.down[r as usize];
        }
        self.uncover(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knuth_example() {
        let mut m = Dlx::new(7, 0);
        m.add_row(&[2, 4, 5], 0);
        m.add_row(&[0, 3, 6], 0);
        m.add_row(&[1, 2, 5], 0);
        m.add_row(&[0, 3], 0);
        m.add_row(&[1, 6], 0);
        m.add_row(&[3, 4, 6], 0);
        let (mut rows, _) = m.solve_min_cost(None).unwrap();
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 3, 4]);
    }

    #[test]
    fn min_cost_prefers_cheap_cover() {
        // Two covers exist: {row0} cost 5 or {row1, row2} cost 2.
        let mut m = Dlx::new(2, 0);
        m.add_row(&[0, 1], 5);
        m.add_row(&[0], 1);
        m.add_row(&[1], 1);
        let (mut rows, cost) = m.solve_min_cost(None).unwrap();
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 2]);
        assert_eq!(cost, 2);
    }

    #[test]
    fn infeasible_returns_none() {
        let mut m = Dlx::new(2, 0);
        m.add_row(&[0], 0);
        // Column 1 has no rows.
        assert!(m.solve_min_cost(None).is_none());
    }

    #[test]
    fn secondary_columns_limit_double_cover() {
        // Primary columns 0, 1; secondary column 2. Rows (0, 2) and (1, 2)
        // cannot both be chosen; rows (0, 2) and (1) can.
        let mut m = Dlx::new(2, 1);
        m.add_row(&[0, 2], 0);
        m.add_row(&[1, 2], 0);
        m.add_row(&[1], 3);
        let (mut rows, cost) = m.solve_min_cost(None).unwrap();
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 2]);
        assert_eq!(cost, 3);
    }

    #[test]
    fn secondary_columns_need_not_be_covered() {
        let mut m = Dlx::new(1, 1);
        m.add_row(&[0], 0);
        let (rows, cost) = m.solve_min_cost(None).unwrap();
        assert_eq!(rows, vec![0]);
        assert_eq!(cost, 0);
    }

    #[test]
    fn budget_zero_like_small_still_reports_nodes() {
        let mut m = Dlx::new(2, 0);
        m.add_row(&[0], 1);
        m.add_row(&[1], 1);
        let got = m.solve_min_cost(Some(1));
        // With a 1-node budget the search cannot finish.
        assert!(got.is_none());
        assert!(m.last_search_nodes() >= 1);
    }

    #[test]
    fn matrix_is_restored_after_search() {
        // Run twice; identical results prove cover/uncover are exact
        // inverses.
        let mut m = Dlx::new(3, 1);
        m.add_row(&[0, 3], 2);
        m.add_row(&[1, 3], 1);
        m.add_row(&[2], 1);
        m.add_row(&[0, 1], 5);
        let a = m.solve_min_cost(None);
        let b = m.solve_min_cost(None);
        assert_eq!(a, b);
        assert!(a.is_some());
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_row_panics() {
        let mut m = Dlx::new(1, 0);
        m.add_row(&[], 0);
    }
}
