//! Isomorphism-free graph library construction and graph matching for
//! MPLD (Sections IV-C and IV-D-1 of the paper).
//!
//! - [`canonical_form`] / [`are_isomorphic`] — exact canonical labeling
//!   for small heterogeneous graphs;
//! - [`enumerate_parent_graphs`] — all irreducible non-stitch graphs
//!   under a size bound (23 for triple patterning below seven nodes);
//! - [`enumerate_stitch_variants`] — valid stitch-split variants under the
//!   paper's layout-graph rules;
//! - [`GraphLibrary`] — embedding-indexed library with optimal ILP
//!   solutions and verified embedding-guided solution transfer;
//! - [`find_isomorphism`] — the exact VF2-style fallback.
//!
//! # Example
//!
//! ```
//! use mpld_gnn::RgcnClassifier;
//! use mpld_graph::{DecomposeParams, LayoutGraph};
//! use mpld_matching::{GraphLibrary, LibraryConfig};
//!
//! let mut embedder = RgcnClassifier::selector(1);
//! let cfg = LibraryConfig { max_parent_size: 4, max_splits: 1, max_nodes: 5, stitches: false };
//! let lib = GraphLibrary::build(&mut embedder, &cfg, &DecomposeParams::tpl());
//! // K4 is the only irreducible 4-node graph.
//! assert_eq!(lib.len(), 1);
//! let k4 = LayoutGraph::homogeneous(
//!     4,
//!     vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
//! ).unwrap();
//! let d = lib.lookup(&mut embedder, &k4).expect("K4 is in the library");
//! assert_eq!(d.cost.conflicts, 1); // K4 at k = 3: one unavoidable conflict
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod canon;
mod enumerate;
mod fingerprint;
mod library;
mod sharded;
mod vf2;

pub use canon::{are_isomorphic, canonical_form, canonical_form_labeled, CanonicalForm};
pub use enumerate::{enumerate_parent_graphs, enumerate_stitch_variants, is_valid_parent};
pub use fingerprint::{graph_fingerprint, graphs_identical};
pub use library::{GraphLibrary, LibraryConfig, LibraryEntry, LibraryStats};
pub use sharded::{ShardedGraphMap, ShardedMapStats, DEFAULT_SHARDS};
pub use vf2::{find_isomorphism, full_candidates};
