//! Layout statistics for Table VII and Fig. 3 of the paper.

use crate::pipeline::PreparedLayout;
use mpld_graph::{DecomposeParams, Decomposer};
use mpld_ilp::IlpDecomposer;

/// Per-circuit graph population statistics.
///
/// Matches Table VII's columns: `|G|` simplified unit graphs, `|nsc-G|`
/// units without any stitch candidate, `|ns-G|` units whose ILP optimum
/// activates no stitch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LayoutStats {
    /// Circuit name.
    pub name: String,
    /// Number of unit graphs after simplification and stitch insertion.
    pub graphs: usize,
    /// Units free of stitch candidates.
    pub no_stitch_candidates: usize,
    /// Units whose optimal decomposition uses no stitch.
    pub no_stitch_optimal: usize,
    /// Total nodes over all units.
    pub total_nodes: usize,
    /// Largest unit size.
    pub max_unit: usize,
}

/// Computes the statistics of one prepared layout, running the exact ILP
/// engine per unit to determine `|ns-G|`.
pub fn layout_stats(prep: &PreparedLayout, params: &DecomposeParams) -> LayoutStats {
    let ilp = IlpDecomposer::new();
    let mut stats = LayoutStats {
        name: prep.name.clone(),
        ..LayoutStats::default()
    };
    for unit in &prep.units {
        stats.graphs += 1;
        stats.total_nodes += unit.hetero.num_nodes();
        stats.max_unit = stats.max_unit.max(unit.hetero.num_nodes());
        if !unit.hetero.has_stitches() {
            stats.no_stitch_candidates += 1;
            stats.no_stitch_optimal += 1;
            continue;
        }
        let d = ilp.decompose_unbounded(&unit.hetero, params);
        if d.cost.stitches == 0 {
            stats.no_stitch_optimal += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::prepare;
    use mpld_layout::circuit_by_name;

    #[test]
    fn stats_are_internally_consistent() {
        let layout = circuit_by_name("C432").expect("exists").generate();
        let params = DecomposeParams::tpl();
        let prep = prepare(&layout, &params);
        let s = layout_stats(&prep, &params);
        assert_eq!(s.graphs, prep.units.len());
        assert!(s.no_stitch_candidates <= s.no_stitch_optimal);
        assert!(s.no_stitch_optimal <= s.graphs);
        assert!(s.max_unit * s.graphs >= s.total_nodes);
    }

    #[test]
    fn most_graphs_need_no_stitch() {
        // The paper's headline statistic: the large majority of unit
        // graphs have stitch-free optima (91.1% across the suite).
        let layout = circuit_by_name("C880").expect("exists").generate();
        let params = DecomposeParams::tpl();
        let prep = prepare(&layout, &params);
        let s = layout_stats(&prep, &params);
        assert!(
            s.no_stitch_optimal * 10 >= s.graphs * 6,
            "only {}/{} units are stitch-free at the optimum",
            s.no_stitch_optimal,
            s.graphs
        );
    }
}
