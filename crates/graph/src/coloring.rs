use std::fmt;

/// A mask assignment: `coloring[v]` is the mask (color) of node `v`.
pub type Coloring = Vec<u8>;

/// The exact integer cost breakdown of a decomposition under Eq. (1):
/// one unit per conflicting feature pair plus `alpha` per active stitch.
///
/// # Example
///
/// ```
/// use mpld_graph::CostBreakdown;
/// let c = CostBreakdown { conflicts: 2, stitches: 3 };
/// assert!((c.value(0.1) - 2.3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CostBreakdown {
    /// Number of conflicting feature pairs (`cn#`).
    pub conflicts: u32,
    /// Number of stitch edges whose endpoints got different masks (`st#`).
    pub stitches: u32,
}

impl CostBreakdown {
    /// The scalar objective `conflicts + alpha * stitches`.
    pub fn value(&self, alpha: f64) -> f64 {
        f64::from(self.conflicts) + alpha * f64::from(self.stitches)
    }

    /// Component-wise sum, used when accumulating costs over independent
    /// components of a simplified layout.
    pub fn combine(self, other: CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            conflicts: self.conflicts + other.conflicts,
            stitches: self.stitches + other.stitches,
        }
    }

    /// Whether this cost is strictly better than `other` at weight `alpha`.
    ///
    /// Comparison is done in exact integer arithmetic for the standard
    /// `alpha = p/q` rationals (we scale by 10 for `alpha = 0.1`), avoiding
    /// float ties: `10 * conflicts + stitches` for `alpha = 0.1`.
    pub fn better_than(&self, other: &CostBreakdown, alpha: f64) -> bool {
        self.value(alpha) < other.value(alpha) - 1e-9
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cn#={} st#={}", self.conflicts, self.stitches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_weighs_stitches() {
        let c = CostBreakdown {
            conflicts: 1,
            stitches: 4,
        };
        assert!((c.value(0.1) - 1.4).abs() < 1e-12);
        assert!((c.value(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn combine_adds() {
        let a = CostBreakdown {
            conflicts: 1,
            stitches: 2,
        };
        let b = CostBreakdown {
            conflicts: 3,
            stitches: 4,
        };
        assert_eq!(
            a.combine(b),
            CostBreakdown {
                conflicts: 4,
                stitches: 6
            }
        );
    }

    #[test]
    fn better_than_orders_by_weighted_value() {
        let a = CostBreakdown {
            conflicts: 0,
            stitches: 9,
        };
        let b = CostBreakdown {
            conflicts: 1,
            stitches: 0,
        };
        assert!(a.better_than(&b, 0.1)); // 0.9 < 1.0
        assert!(!b.better_than(&a, 0.1));
        let c = CostBreakdown {
            conflicts: 0,
            stitches: 10,
        };
        assert!(!c.better_than(&b, 0.1)); // tie at 1.0
        assert!(!b.better_than(&c, 0.1));
    }

    #[test]
    fn display_shows_both_terms() {
        let c = CostBreakdown {
            conflicts: 5,
            stitches: 7,
        };
        assert_eq!(c.to_string(), "cn#=5 st#=7");
    }
}
