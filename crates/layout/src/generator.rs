//! Deterministic wire-layout generator.
//!
//! Emits routed-layer geometry organized in **bands** of closely pitched
//! horizontal tracks plus occasional **vertical wires** (via stacks /
//! vertical routing) crossing two or three tracks. Horizontal wires
//! conflict with overlapping wires one track away and — in rare *tight*
//! bands — two tracks away; near gaps along a track add same-track
//! conflicts with end-localized projections (prime stitch territory), and
//! vertical wires close cycles through the bands, producing the
//! 2-connected, min-degree-3, *mostly 3-colorable* structures that
//! dominate real layouts after simplification. Periodic routing-free strap
//! columns bound component width, so the conflict graph splits into many
//! small independent components with occasional denser congested cores —
//! the population shape of the scaled ISCAS benchmarks.

use mpld_geometry::{Feature, Rect};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::Layout;

/// Tunable knobs of the generator. The defaults, combined with per-circuit
/// `tracks`/`track_units`/`seed`, produce the benchmark suite.
#[derive(Debug, Clone)]
pub struct GeneratorParams {
    /// Number of horizontal routing tracks (across all bands).
    pub tracks: usize,
    /// Track length in grid units (one unit ≈ the coloring distance).
    pub track_units: usize,
    /// RNG seed; generation is fully deterministic per seed.
    pub seed: u64,
    /// Probability that a same-track gap is narrow (creates a horizontal
    /// conflict edge).
    pub horizontal_conflict_prob: f64,
    /// Probability that a wire grows a vertical jog (L-shape).
    pub jog_prob: f64,
    /// Maximum tracks per band (bands are separated by wide gaps).
    pub max_band: usize,
    /// Column period in grid units: every `strap_period` units a routing-
    /// free strap region interrupts all tracks (like power straps), which
    /// bounds the width of connected components.
    pub strap_period: usize,
    /// Expected number of vertical wires per band and strap column.
    pub vertical_density: f64,
}

impl Default for GeneratorParams {
    fn default() -> Self {
        GeneratorParams {
            tracks: 16,
            track_units: 100,
            seed: 1,
            horizontal_conflict_prob: 0.3,
            jog_prob: 0.03,
            max_band: 5,
            strap_period: 7,
            vertical_density: 2.5,
        }
    }
}

impl GeneratorParams {
    /// Parameters for a roughly square chip-like layout of about
    /// `target_rects` rectangles. The estimate deliberately overshoots a
    /// little; callers wanting an exact count stream through
    /// [`generate_layout_streaming`] and stop the sink at the target.
    pub fn sized(target_rects: u64, seed: u64) -> GeneratorParams {
        // Feature count ≈ tracks · track_units / 3 (one rect per feature,
        // plus rare jogs); a square aspect at the band pitch puts tracks at
        // ~4/3 of track_units.
        let root = (target_rects.max(1) as f64).sqrt();
        GeneratorParams {
            tracks: ((2.1 * root).ceil() as usize).max(4),
            track_units: ((1.6 * root).ceil() as usize).max(8),
            seed,
            ..Default::default()
        }
    }
}

/// Probability that a band is routed at the tight pitch, where wires two
/// tracks apart still conflict — the rare congested pockets that make
/// stitches genuinely useful and cause the occasional native conflict.
const TIGHT_BAND_PROB: f64 = 0.05;

/// Generates the layout for `name` with coloring distance `d`.
pub fn generate_layout(name: &str, d: i64, params: &GeneratorParams) -> Layout {
    let mut features: Vec<Feature> = Vec::new();
    generate_layout_streaming(d, params, |f| {
        features.push(f);
        true
    });
    Layout {
        name: name.to_string(),
        d,
        features,
    }
}

/// Streaming core of [`generate_layout`]: each feature is handed to `sink`
/// as soon as it is complete and never retained, so multi-million-rect
/// layouts can be written straight to disk in O(band) memory. The feature
/// sequence is identical to [`generate_layout`] for the same parameters;
/// returning `false` from the sink stops generation early (the truncated
/// prefix is still a valid dense-id layout). Returns the number of features
/// emitted.
pub fn generate_layout_streaming<F>(d: i64, params: &GeneratorParams, mut sink: F) -> u32
where
    F: FnMut(Feature) -> bool,
{
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let wire_h = d / 4;
    // Loose bands: pitch 0.7 d — only adjacent tracks conflict (edge gap
    // 0.45 d; two-apart 1.15 d is clear). Tight bands: pitch 0.6 d —
    // two-apart tracks conflict too (edge gap 0.95 d). Between bands: 2 d.
    let loose_pitch = 7 * d / 10;
    let tight_pitch = 3 * d / 5;
    let band_gap = 2 * d;
    let unit = d;
    let end = params.track_units as i64 * unit;
    let strap = params.strap_period.max(2) as i64 * unit;
    let strap_w = 6 * unit / 5;

    let mut next_id: u32 = 0;

    // Plan the bands: (start track, number of tracks, pitch).
    let mut bands: Vec<(usize, usize, i64)> = Vec::new();
    {
        let mut t = 0;
        while t < params.tracks {
            let (n, pitch) = if rng.gen_bool(TIGHT_BAND_PROB) {
                (3, tight_pitch)
            } else {
                (rng.gen_range(2..=params.max_band.max(2)), loose_pitch)
            };
            let n = n.min(params.tracks - t);
            bands.push((t, n, pitch));
            t += n;
        }
    }

    let mut y = 0i64;
    for &(_, band_tracks, pitch) in &bands {
        // Vertical routing channels: narrow (≈ 0.95 d) aligned gaps cut
        // through every track of the band, each hosting a vertical wire.
        // The flanking horizontal wires conflict with the vertical (and
        // with each other across the channel), closing even cycles — the
        // hub-and-ladder wheels that dominate real simplified layouts.
        let columns = (end / strap).max(1);
        let mut channels: Vec<i64> = Vec::new();
        for col in 0..columns {
            let n = (params.vertical_density + rng.gen_range(0.0f64..1.0)).floor() as usize;
            let x_lo = col * strap + strap_w + unit;
            let x_hi = ((col + 1) * strap - unit).min(end);
            for _ in 0..n {
                if x_lo >= x_hi {
                    break;
                }
                let cx = rng.gen_range(x_lo..x_hi);
                if channels.iter().all(|&c| (c - cx).abs() > 2 * d) {
                    channels.push(cx);
                }
            }
        }
        channels.sort_unstable();
        let chan_w = 19 * d / 20; // 0.95 d: flanks conflict across it

        // Tight bands model local congestion pockets, not chip-wide dense
        // routing: restrict them to a randomly chosen 2-column window.
        let (route_lo, route_hi) = if pitch == tight_pitch {
            let col = rng.gen_range(0..columns);
            (col * strap, ((col + 2) * strap).min(end))
        } else {
            (0, end)
        };

        // Horizontal wires per track, broken at straps and channels.
        for bt in 0..band_tracks {
            let ty = y + bt as i64 * pitch;
            let mut x = route_lo + rng.gen_range(0..unit);
            let end = route_hi;
            while x < end {
                let in_strap = x.rem_euclid(strap);
                if in_strap < strap_w {
                    x += strap_w - in_strap;
                    continue;
                }
                // Skip channel footprints.
                if let Some(&cx) = channels
                    .iter()
                    .find(|&&c| x >= c - chan_w / 2 && x < c + chan_w / 2)
                {
                    x = cx + chan_w / 2;
                    continue;
                }
                // Wires 0.7 d .. 3.2 d, clipped at straps and channels.
                let len = rng.gen_range(7 * unit / 10..16 * unit / 5);
                let next_strap = (x / strap + 1) * strap;
                let next_channel = channels
                    .iter()
                    .copied()
                    .find(|&c| c - chan_w / 2 >= x)
                    .map(|c| c - chan_w / 2)
                    .unwrap_or(i64::MAX);
                let mut xh = (x + len).min(end).min(next_strap).min(next_channel);
                // Wires ending just short of a channel are routed up to its
                // edge (routers pack against vertical channels), so the
                // flanks across the channel reliably sit 0.95 d apart.
                if next_channel != i64::MAX
                    && next_channel <= next_strap
                    && next_channel <= end
                    && xh < next_channel
                    && next_channel - xh < 9 * d / 10
                {
                    xh = next_channel;
                }
                if xh - x >= unit / 2 {
                    let id = next_id;
                    let mut rects = vec![Rect::new(x, ty, xh, ty + wire_h)];
                    if rng.gen_bool(params.jog_prob) && xh - x > unit {
                        let jx = rng.gen_range(x + unit / 4..xh - unit / 4);
                        rects.push(Rect::new(jx, ty + wire_h, jx + wire_h, ty + wire_h + d / 4));
                    }
                    next_id += 1;
                    if !sink(Feature::new(id, rects)) {
                        return next_id;
                    }
                }
                if xh == next_channel {
                    // The wire packed against a channel: resume exactly at
                    // the channel's far edge so both flanks sit tight.
                    x = xh + chan_w;
                    continue;
                }
                let gap = if rng.gen_bool(params.horizontal_conflict_prob) {
                    rng.gen_range(2 * d / 5..9 * d / 10)
                } else {
                    rng.gen_range(11 * d / 10..3 * d)
                };
                x = xh + gap;
            }
        }

        // The vertical wire in each channel, spanning a random track range.
        if band_tracks >= 2 {
            for &cx in &channels {
                let span_tracks = rng.gen_range(2..=band_tracks.min(3));
                let t0 = rng.gen_range(0..=band_tracks - span_tracks);
                let y0 = y + t0 as i64 * pitch;
                let y1 = y + (t0 + span_tracks - 1) as i64 * pitch + wire_h;
                let id = next_id;
                next_id += 1;
                if !sink(Feature::new(
                    id,
                    vec![Rect::new(cx - wire_h / 2, y0, cx + wire_h / 2, y1)],
                )) {
                    return next_id;
                }
            }
        }

        y += (band_tracks - 1) as i64 * pitch + wire_h + band_gap;
    }
    next_id
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpld_geometry::feature_distance_sq;

    fn small() -> Layout {
        generate_layout(
            "T",
            120,
            &GeneratorParams {
                tracks: 8,
                track_units: 40,
                seed: 9,
                ..Default::default()
            },
        )
    }

    #[test]
    fn features_never_overlap() {
        let l = small();
        for (i, a) in l.features.iter().enumerate() {
            for b in &l.features[i + 1..] {
                assert!(
                    feature_distance_sq(a, b) > 0,
                    "features {} and {} touch",
                    a.id(),
                    b.id()
                );
            }
        }
    }

    #[test]
    fn layout_has_conflicts_at_d() {
        let l = small();
        let dd = l.d * l.d;
        let mut conflicts = 0;
        for (i, a) in l.features.iter().enumerate() {
            for b in &l.features[i + 1..] {
                if feature_distance_sq(a, b) < dd {
                    conflicts += 1;
                }
            }
        }
        assert!(conflicts > l.features.len() / 2, "too sparse: {conflicts}");
    }

    #[test]
    fn feature_ids_are_dense() {
        let l = small();
        for (i, f) in l.features.iter().enumerate() {
            assert_eq!(f.id() as usize, i);
        }
    }

    #[test]
    fn contains_vertical_wires() {
        let l = small();
        assert!(
            l.features
                .iter()
                .any(|f| f.rects().len() == 1 && f.rects()[0].height() > f.rects()[0].width()),
            "no vertical wires generated"
        );
    }

    #[test]
    fn streaming_matches_collected_and_stops_on_false() {
        let params = GeneratorParams {
            tracks: 8,
            track_units: 40,
            seed: 9,
            ..Default::default()
        };
        let collected = generate_layout("T", 120, &params);

        let mut streamed = Vec::new();
        let n = generate_layout_streaming(120, &params, |f| {
            streamed.push(f);
            true
        });
        assert_eq!(n as usize, collected.features.len());
        assert_eq!(streamed, collected.features);

        // Early stop yields exactly the requested prefix.
        let mut prefix = Vec::new();
        let n = generate_layout_streaming(120, &params, |f| {
            prefix.push(f);
            prefix.len() < 10
        });
        assert_eq!(n, 10);
        assert_eq!(prefix[..], collected.features[..10]);
    }

    #[test]
    fn sized_params_land_near_target() {
        for target in [5_000u64, 50_000] {
            let params = GeneratorParams::sized(target, 7);
            let mut rects = 0u64;
            generate_layout_streaming(100, &params, |f| {
                rects += f.rects().len() as u64;
                true
            });
            assert!(
                rects >= target,
                "sized({target}) produced only {rects} rects"
            );
            assert!(
                rects < 2 * target,
                "sized({target}) overshot to {rects} rects"
            );
        }
    }

    #[test]
    fn contains_some_l_shapes() {
        let l = generate_layout(
            "T",
            120,
            &GeneratorParams {
                tracks: 12,
                track_units: 80,
                seed: 3,
                jog_prob: 0.2,
                ..Default::default()
            },
        );
        assert!(l.features.iter().any(|f| f.rects().len() > 1));
    }
}
