use crate::coloring::CostBreakdown;
use std::collections::HashSet;
use std::fmt;

/// Index of a node (a feature or subfeature) inside one [`LayoutGraph`].
pub type NodeId = u32;

/// The two edge types of the heterogeneous layout graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Two (sub)features of *different* parent features closer than the
    /// minimum coloring distance; same color ⇒ conflict cost.
    Conflict,
    /// Two subfeatures of the *same* parent feature split by a stitch
    /// candidate; different colors ⇒ stitch cost.
    Stitch,
}

/// Error building a [`LayoutGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint is `>= node count`.
    NodeOutOfRange {
        edge: (NodeId, NodeId),
        nodes: usize,
    },
    /// An edge connects a node to itself.
    SelfLoop(NodeId),
    /// The same unordered node pair appears twice (in either edge set).
    DuplicateEdge(NodeId, NodeId),
    /// A conflict edge connects two subfeatures of the same parent feature.
    ConflictWithinFeature(NodeId, NodeId),
    /// A stitch edge connects subfeatures of different parent features.
    StitchAcrossFeatures(NodeId, NodeId),
    /// The node → parent feature map has the wrong length.
    FeatureMapLength { expected: usize, got: usize },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { edge, nodes } => {
                write!(
                    f,
                    "edge ({}, {}) references a node outside 0..{}",
                    edge.0, edge.1, nodes
                )
            }
            GraphError::SelfLoop(v) => write!(f, "self loop at node {v}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::ConflictWithinFeature(u, v) => {
                write!(f, "conflict edge ({u}, {v}) inside a single feature")
            }
            GraphError::StitchAcrossFeatures(u, v) => {
                write!(f, "stitch edge ({u}, {v}) across two features")
            }
            GraphError::FeatureMapLength { expected, got } => {
                write!(f, "feature map has length {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A heterogeneous layout graph: nodes are (sub)features, edges are
/// conflict or stitch relations. See the crate docs for the model.
///
/// Construction validates the structural rules of layout graphs (no self
/// loops, no duplicate edges, conflict edges across features only, stitch
/// edges within one feature only), so every downstream algorithm can rely
/// on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutGraph {
    num_nodes: usize,
    /// `node_feature[v]` is the parent-feature index of node `v` (local to
    /// this graph; dense in `0..num_features`).
    node_feature: Vec<u32>,
    num_features: usize,
    conflict_edges: Vec<(NodeId, NodeId)>,
    stitch_edges: Vec<(NodeId, NodeId)>,
    conflict_adj: Vec<Vec<NodeId>>,
    stitch_adj: Vec<Vec<NodeId>>,
}

impl LayoutGraph {
    /// Builds a heterogeneous graph from a node → parent feature map and the
    /// two edge sets.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] when an edge is out of range, a self loop,
    /// duplicated, or violates the conflict/stitch feature rules, or when
    /// `node_feature` does not cover all nodes.
    pub fn new(
        node_feature: Vec<u32>,
        conflict_edges: Vec<(NodeId, NodeId)>,
        stitch_edges: Vec<(NodeId, NodeId)>,
    ) -> Result<Self, GraphError> {
        let num_nodes = node_feature.len();
        let num_features = node_feature
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m as usize + 1);

        let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();
        let norm = |(u, v): (NodeId, NodeId)| if u < v { (u, v) } else { (v, u) };

        let mut check = |(u, v): (NodeId, NodeId)| -> Result<(NodeId, NodeId), GraphError> {
            if u as usize >= num_nodes || v as usize >= num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    edge: (u, v),
                    nodes: num_nodes,
                });
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            let e = norm((u, v));
            if !seen.insert(e) {
                return Err(GraphError::DuplicateEdge(e.0, e.1));
            }
            Ok(e)
        };

        let mut conflicts = Vec::with_capacity(conflict_edges.len());
        for e in conflict_edges {
            let e = check(e)?;
            if node_feature[e.0 as usize] == node_feature[e.1 as usize] {
                return Err(GraphError::ConflictWithinFeature(e.0, e.1));
            }
            conflicts.push(e);
        }
        let mut stitches = Vec::with_capacity(stitch_edges.len());
        for e in stitch_edges {
            let e = check(e)?;
            if node_feature[e.0 as usize] != node_feature[e.1 as usize] {
                return Err(GraphError::StitchAcrossFeatures(e.0, e.1));
            }
            stitches.push(e);
        }
        conflicts.sort_unstable();
        stitches.sort_unstable();

        let mut conflict_adj = vec![Vec::new(); num_nodes];
        for &(u, v) in &conflicts {
            conflict_adj[u as usize].push(v);
            conflict_adj[v as usize].push(u);
        }
        let mut stitch_adj = vec![Vec::new(); num_nodes];
        for &(u, v) in &stitches {
            stitch_adj[u as usize].push(v);
            stitch_adj[v as usize].push(u);
        }
        for adj in conflict_adj.iter_mut().chain(stitch_adj.iter_mut()) {
            adj.sort_unstable();
        }

        Ok(LayoutGraph {
            num_nodes,
            node_feature,
            num_features,
            conflict_edges: conflicts,
            stitch_edges: stitches,
            conflict_adj,
            stitch_adj,
        })
    }

    /// Builds a homogeneous graph (no stitches): every node is its own
    /// feature and all edges are conflict edges.
    ///
    /// # Errors
    ///
    /// Same validation as [`LayoutGraph::new`].
    pub fn homogeneous(
        num_nodes: usize,
        conflict_edges: Vec<(NodeId, NodeId)>,
    ) -> Result<Self, GraphError> {
        LayoutGraph::new((0..num_nodes as u32).collect(), conflict_edges, Vec::new())
    }

    /// Number of nodes (subfeatures).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of parent features.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// The parent feature of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn feature_of(&self, v: NodeId) -> u32 {
        self.node_feature[v as usize]
    }

    /// Node → parent feature map.
    pub fn node_features(&self) -> &[u32] {
        &self.node_feature
    }

    /// Sorted conflict edge list (u < v).
    pub fn conflict_edges(&self) -> &[(NodeId, NodeId)] {
        &self.conflict_edges
    }

    /// Sorted stitch edge list (u < v).
    pub fn stitch_edges(&self) -> &[(NodeId, NodeId)] {
        &self.stitch_edges
    }

    /// Conflict neighbors of `v`, sorted.
    pub fn conflict_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.conflict_adj[v as usize]
    }

    /// Stitch neighbors of `v`, sorted.
    pub fn stitch_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.stitch_adj[v as usize]
    }

    /// Conflict degree of `v`.
    pub fn conflict_degree(&self, v: NodeId) -> usize {
        self.conflict_adj[v as usize].len()
    }

    /// Whether the graph contains any stitch edge.
    pub fn has_stitches(&self) -> bool {
        !self.stitch_edges.is_empty()
    }

    /// Evaluates a coloring against the paper's objective (Eq. 1):
    /// per-feature-pair capped conflict cost plus `alpha` per stitch edge
    /// whose endpoints differ. Returns the exact integer breakdown.
    ///
    /// # Panics
    ///
    /// Panics if `coloring.len() != num_nodes`.
    pub fn evaluate(&self, coloring: &[u8], _alpha: f64) -> CostBreakdown {
        assert_eq!(coloring.len(), self.num_nodes, "coloring length mismatch");
        // Conflict cost: 1 per unordered *feature pair* with at least one
        // same-colored conflict edge between them (Eq. 1b).
        let mut bad_pairs: HashSet<(u32, u32)> = HashSet::new();
        for &(u, v) in &self.conflict_edges {
            if coloring[u as usize] == coloring[v as usize] {
                let (fu, fv) = (self.node_feature[u as usize], self.node_feature[v as usize]);
                let pair = if fu < fv { (fu, fv) } else { (fv, fu) };
                bad_pairs.insert(pair);
            }
        }
        let mut stitches = 0u32;
        for &(u, v) in &self.stitch_edges {
            if coloring[u as usize] != coloring[v as usize] {
                stitches += 1;
            }
        }
        CostBreakdown {
            conflicts: bad_pairs.len() as u32,
            stitches,
        }
    }

    /// Merges all stitch edges, returning the homogeneous *parent graph*
    /// `Gp` and the node → parent-node map.
    ///
    /// Each parent feature becomes one node; a conflict edge exists between
    /// two parent nodes when any of their subfeatures conflict.
    pub fn merge_stitch_edges(&self) -> (LayoutGraph, Vec<NodeId>) {
        let map: Vec<NodeId> = self.node_feature.clone();
        let mut edges: Vec<(NodeId, NodeId)> = self
            .conflict_edges
            .iter()
            .map(|&(u, v)| {
                let (a, b) = (map[u as usize], map[v as usize]);
                if a < b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        #[allow(clippy::expect_used)] // structural invariant of a validated graph
        let gp = LayoutGraph::homogeneous(self.num_features, edges)
            .expect("parent graph construction cannot fail on a valid layout graph");
        (gp, map)
    }

    /// Extracts the induced subgraph on `nodes` (which need not be sorted),
    /// remapping node ids densely in the given order. Parent features are
    /// renumbered densely too. Returns the subgraph and the local → original
    /// node map.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` contains duplicates or out-of-range ids.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (LayoutGraph, Vec<NodeId>) {
        let mut local_of = vec![u32::MAX; self.num_nodes];
        for (i, &v) in nodes.iter().enumerate() {
            assert!((v as usize) < self.num_nodes, "node out of range");
            assert_eq!(
                local_of[v as usize],
                u32::MAX,
                "duplicate node in subgraph set"
            );
            local_of[v as usize] = i as u32;
        }
        let mut feat_map: Vec<u32> = Vec::new();
        let mut feat_local = std::collections::HashMap::new();
        let node_feature: Vec<u32> = nodes
            .iter()
            .map(|&v| {
                let f = self.node_feature[v as usize];
                *feat_local.entry(f).or_insert_with(|| {
                    feat_map.push(f);
                    (feat_map.len() - 1) as u32
                })
            })
            .collect();
        let conflict_edges: Vec<(NodeId, NodeId)> = self
            .conflict_edges
            .iter()
            .filter(|(u, v)| local_of[*u as usize] != u32::MAX && local_of[*v as usize] != u32::MAX)
            .map(|&(u, v)| (local_of[u as usize], local_of[v as usize]))
            .collect();
        let stitch_edges: Vec<(NodeId, NodeId)> = self
            .stitch_edges
            .iter()
            .filter(|(u, v)| local_of[*u as usize] != u32::MAX && local_of[*v as usize] != u32::MAX)
            .map(|&(u, v)| (local_of[u as usize], local_of[v as usize]))
            .collect();
        #[allow(clippy::expect_used)] // structural invariant of a validated graph
        let g = LayoutGraph::new(node_feature, conflict_edges, stitch_edges)
            .expect("induced subgraph of a valid graph is valid");
        (g, nodes.to_vec())
    }

    /// Connected components over the union of conflict and stitch edges,
    /// each as a sorted node list.
    pub fn connected_components(&self) -> Vec<Vec<NodeId>> {
        let mut comp = vec![usize::MAX; self.num_nodes];
        let mut count = 0;
        let mut stack = Vec::new();
        for s in 0..self.num_nodes {
            if comp[s] != usize::MAX {
                continue;
            }
            comp[s] = count;
            stack.push(s as NodeId);
            while let Some(v) = stack.pop() {
                for &w in self
                    .conflict_neighbors(v)
                    .iter()
                    .chain(self.stitch_neighbors(v).iter())
                {
                    if comp[w as usize] == usize::MAX {
                        comp[w as usize] = count;
                        stack.push(w);
                    }
                }
            }
            count += 1;
        }
        let mut out = vec![Vec::new(); count];
        for (v, &c) in comp.iter().enumerate() {
            out[c].push(v as NodeId);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> LayoutGraph {
        LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            LayoutGraph::homogeneous(2, vec![(1, 1)]).unwrap_err(),
            GraphError::SelfLoop(1)
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            LayoutGraph::homogeneous(2, vec![(0, 5)]).unwrap_err(),
            GraphError::NodeOutOfRange { .. }
        ));
    }

    #[test]
    fn rejects_duplicate_even_across_kinds() {
        let err = LayoutGraph::new(vec![0, 0], vec![], vec![(0, 1), (1, 0)]).unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge(0, 1));
    }

    #[test]
    fn rejects_conflict_within_feature() {
        let err = LayoutGraph::new(vec![0, 0], vec![(0, 1)], vec![]).unwrap_err();
        assert_eq!(err, GraphError::ConflictWithinFeature(0, 1));
    }

    #[test]
    fn rejects_stitch_across_features() {
        let err = LayoutGraph::new(vec![0, 1], vec![], vec![(0, 1)]).unwrap_err();
        assert_eq!(err, GraphError::StitchAcrossFeatures(0, 1));
    }

    #[test]
    fn evaluate_counts_conflicts() {
        let g = tri();
        assert_eq!(
            g.evaluate(&[0, 0, 0], 0.1),
            CostBreakdown {
                conflicts: 3,
                stitches: 0
            }
        );
        assert_eq!(
            g.evaluate(&[0, 1, 2], 0.1),
            CostBreakdown {
                conflicts: 0,
                stitches: 0
            }
        );
        assert_eq!(
            g.evaluate(&[0, 0, 1], 0.1),
            CostBreakdown {
                conflicts: 1,
                stitches: 0
            }
        );
    }

    #[test]
    fn evaluate_caps_conflict_per_feature_pair() {
        // Features A = {0, 1} (stitch between), B = {2}. Both subfeatures of A
        // conflict with B. Same color everywhere ⇒ a single conflict (Eq. 1b).
        let g = LayoutGraph::new(vec![0, 0, 1], vec![(0, 2), (1, 2)], vec![(0, 1)]).unwrap();
        let cost = g.evaluate(&[0, 0, 0], 0.1);
        assert_eq!(
            cost,
            CostBreakdown {
                conflicts: 1,
                stitches: 0
            }
        );
    }

    #[test]
    fn evaluate_counts_stitches() {
        let g = LayoutGraph::new(vec![0, 0, 1], vec![(0, 2), (1, 2)], vec![(0, 1)]).unwrap();
        // Splitting the feature: subfeature 1 escapes the conflict with 2.
        let cost = g.evaluate(&[0, 1, 1], 0.1);
        assert_eq!(
            cost,
            CostBreakdown {
                conflicts: 1,
                stitches: 1
            }
        );
        let cost = g.evaluate(&[1, 0, 1], 0.1);
        assert_eq!(
            cost,
            CostBreakdown {
                conflicts: 1,
                stitches: 1
            }
        );
        let cost = g.evaluate(&[1, 2, 0], 0.1);
        assert_eq!(
            cost,
            CostBreakdown {
                conflicts: 0,
                stitches: 1
            }
        );
    }

    #[test]
    fn merge_stitch_edges_builds_parent_graph() {
        // Fig. 2 of the paper: p1 = {v1}, p2 = {v2}, p3 = {v3, v4}.
        let g =
            LayoutGraph::new(vec![0, 1, 2, 2], vec![(0, 2), (1, 3), (0, 1)], vec![(2, 3)]).unwrap();
        let (gp, map) = g.merge_stitch_edges();
        assert_eq!(gp.num_nodes(), 3);
        assert_eq!(gp.conflict_edges(), &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(map, vec![0, 1, 2, 2]);
        assert!(!gp.has_stitches());
    }

    #[test]
    fn induced_subgraph_remaps() {
        let g =
            LayoutGraph::new(vec![0, 1, 2, 2], vec![(0, 2), (1, 3), (0, 1)], vec![(2, 3)]).unwrap();
        let (sub, map) = g.induced_subgraph(&[2, 3, 1]);
        assert_eq!(map, vec![2, 3, 1]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.stitch_edges(), &[(0, 1)]);
        assert_eq!(sub.conflict_edges(), &[(1, 2)]);
        assert_eq!(sub.num_features(), 2);
    }

    #[test]
    fn connected_components_split() {
        let g = LayoutGraph::homogeneous(5, vec![(0, 1), (2, 3)]).unwrap();
        let comps = g.connected_components();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn stitch_edges_join_components() {
        let g = LayoutGraph::new(vec![0, 0, 1], vec![], vec![(0, 1)]).unwrap();
        let comps = g.connected_components();
        assert_eq!(comps, vec![vec![0, 1], vec![2]]);
    }
}
