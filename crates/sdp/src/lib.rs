//! Semidefinite-programming (SDP) relaxation decomposer.
//!
//! The classic TPL relaxation programs each node's color as a unit vector
//! so that inner products distinguish same/different colors (Eq. 4 of the
//! paper): for triple patterning the three targets are planar unit vectors
//! 120 degrees apart, with `v_i · v_j = 1` for equal colors and `-1/2` for
//! different ones. The SDP relaxes the discrete choice to arbitrary unit
//! vectors.
//!
//! Instead of an interior-point SDP solver we solve the equivalent
//! **low-rank Burer–Monteiro formulation**: unit vectors in `R^2` (k = 3)
//! or `R^3` (k = 4) optimized by projected gradient descent with restarts,
//! followed by the standard fast rounding — snap each vector to the
//! nearest target (trying several global rotations) and run a greedy
//! single-node repair sweep. This substitution is documented in DESIGN.md;
//! it preserves the SDP baseline's qualitative position: better quality
//! than naive heuristics, cheaper than exact ILP, but no optimality
//! guarantee.
//!
//! # Example
//!
//! ```
//! use mpld_graph::{Decomposer, DecomposeParams, LayoutGraph};
//! use mpld_sdp::SdpDecomposer;
//!
//! let g = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
//! let d = SdpDecomposer::new().decompose_unbounded(&g, &DecomposeParams::tpl());
//! assert_eq!(d.cost.conflicts, 0);
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use mpld_graph::{
    Budget, Certainty, DecomposeParams, Decomposer, Decomposition, LayoutGraph, MpldError,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Maximum vector dimension used by the low-rank formulation.
const MAX_DIM: usize = 3;

/// The SDP-relaxation decomposer (see crate docs).
#[derive(Debug, Clone, Copy)]
pub struct SdpDecomposer {
    restarts: usize,
    iterations: usize,
    seed: u64,
}

impl Default for SdpDecomposer {
    fn default() -> Self {
        SdpDecomposer {
            restarts: 3,
            iterations: 200,
            seed: 0x5D9,
        }
    }
}

impl SdpDecomposer {
    /// Creates the decomposer with default restarts and iteration count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the number of random restarts (more restarts: better
    /// quality, slower).
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Overrides the RNG seed (results are deterministic per seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Decomposer for SdpDecomposer {
    fn name(&self) -> &'static str {
        "SDP"
    }

    fn decompose(
        &self,
        graph: &LayoutGraph,
        params: &DecomposeParams,
        budget: &Budget,
    ) -> Result<Decomposition, MpldError> {
        if params.k != 3 && params.k != 4 {
            return Err(MpldError::Unsupported {
                engine: self.name(),
                reason: format!(
                    "the vector program supports k = 3 or 4, got k = {}",
                    params.k
                ),
            });
        }
        let n = graph.num_nodes();
        if n == 0 {
            return Decomposition::try_from_coloring(graph, Vec::new(), params.alpha);
        }
        let dim = if params.k == 3 { 2 } else { 3 };
        let targets = targets(params.k);
        let mut rng = SmallRng::seed_from_u64(self.seed);

        // The first restart always runs to completion of rounding (the
        // anytime contract: SDP always has an incumbent); later restarts
        // are skipped once the budget expires.
        let mut exhausted = false;
        let mut best: Option<Decomposition> = None;
        for r in 0..self.restarts.max(1) {
            if r > 0 && budget.exhausted() {
                exhausted = true;
                break;
            }
            #[cfg(feature = "failpoints")]
            mpld_graph::failpoints::tick("sdp.round");
            let (vectors, cut) = self.optimize(graph, params, dim, &mut rng, budget);
            exhausted |= cut;
            let coloring = round_and_repair(graph, params, &vectors, dim, &targets);
            let cand = Decomposition::try_from_coloring(graph, coloring, params.alpha)?;
            let better = match &best {
                None => true,
                Some(b) => cand.cost.better_than(&b.cost, params.alpha),
            };
            if better {
                best = Some(cand);
            }
        }
        let certainty = if exhausted {
            Certainty::BudgetExhausted
        } else {
            Certainty::Heuristic
        };
        match best {
            Some(d) => {
                #[cfg(feature = "failpoints")]
                mpld_graph::failpoints::inject_error("sdp.result", "SDP")?;
                #[cfg_attr(not(feature = "failpoints"), allow(unused_mut))]
                let mut d = d.with_certainty(certainty);
                #[cfg(feature = "failpoints")]
                // Stale-cost corruption: only the independent audit sees it.
                mpld_graph::failpoints::corrupt_coloring("sdp.result", &mut d.coloring, params.k);
                Ok(d)
            }
            None => Err(MpldError::Infeasible {
                engine: self.name(),
                reason: "no restart produced a coloring".into(),
            }),
        }
    }
}

/// The k target unit vectors (maximally separated).
fn targets(k: u8) -> Vec<[f64; MAX_DIM]> {
    match k {
        3 => {
            let s = 3f64.sqrt() / 2.0;
            vec![[1.0, 0.0, 0.0], [-0.5, s, 0.0], [-0.5, -s, 0.0]]
        }
        4 => {
            // Tetrahedral directions.
            let c = 1.0 / 3f64.sqrt();
            vec![[c, c, c], [c, -c, -c], [-c, c, -c], [-c, -c, c]]
        }
        _ => unreachable!("validated by the caller"),
    }
}

impl SdpDecomposer {
    /// Projected gradient descent on unit vectors minimizing
    /// `sum_CE v_i·v_j - alpha * sum_SE v_i·v_j`.
    /// Returns the optimized vectors plus whether the iteration loop was
    /// cut short by `budget`.
    fn optimize(
        &self,
        graph: &LayoutGraph,
        params: &DecomposeParams,
        dim: usize,
        rng: &mut SmallRng,
        budget: &Budget,
    ) -> (Vec<[f64; MAX_DIM]>, bool) {
        let n = graph.num_nodes();
        let mut v: Vec<[f64; MAX_DIM]> = (0..n)
            .map(|_| {
                let mut x = [0.0; MAX_DIM];
                for d in x.iter_mut().take(dim) {
                    *d = rng.gen_range(-1.0..1.0);
                }
                normalize(&mut x);
                x
            })
            .collect();

        let mut lr = 0.2;
        let mut cut = false;
        for _ in 0..self.iterations {
            // Each iteration is O(E); checking the deadline per iteration
            // is cheap by comparison (and free when the budget is
            // unlimited).
            if budget.exhausted() {
                cut = true;
                break;
            }
            let mut grad = vec![[0.0f64; MAX_DIM]; n];
            for &(a, b) in graph.conflict_edges() {
                for d in 0..dim {
                    grad[a as usize][d] += v[b as usize][d];
                    grad[b as usize][d] += v[a as usize][d];
                }
            }
            for &(a, b) in graph.stitch_edges() {
                for d in 0..dim {
                    grad[a as usize][d] -= params.alpha * v[b as usize][d];
                    grad[b as usize][d] -= params.alpha * v[a as usize][d];
                }
            }
            for i in 0..n {
                // Project the gradient onto the tangent space and step.
                let dot: f64 = (0..dim).map(|d| grad[i][d] * v[i][d]).sum();
                for d in 0..dim {
                    v[i][d] -= lr * (grad[i][d] - dot * v[i][d]);
                }
                normalize(&mut v[i]);
            }
            lr *= 0.995;
        }
        (v, cut)
    }
}

fn normalize(x: &mut [f64; MAX_DIM]) {
    let norm: f64 = x.iter().map(|a| a * a).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for a in x.iter_mut() {
            *a /= norm;
        }
    } else {
        x[0] = 1.0;
        for a in x.iter_mut().skip(1) {
            *a = 0.0;
        }
    }
}

/// Rounds relaxed vectors to colors (trying a few global rotations in the
/// first plane) and then runs a greedy single-node repair sweep.
fn round_and_repair(
    graph: &LayoutGraph,
    params: &DecomposeParams,
    vectors: &[[f64; MAX_DIM]],
    dim: usize,
    targets: &[[f64; MAX_DIM]],
) -> Vec<u8> {
    let k = params.k;
    let mut best_coloring: Option<(Vec<u8>, f64)> = None;
    let rotations = if dim == 2 { 12 } else { 1 };
    for r in 0..rotations {
        let angle = r as f64 * std::f64::consts::TAU / (rotations as f64 * k as f64);
        let (sin, cos) = angle.sin_cos();
        let coloring: Vec<u8> = vectors
            .iter()
            .map(|v| {
                let mut w = *v;
                if dim == 2 {
                    let (x, y) = (v[0], v[1]);
                    w[0] = x * cos - y * sin;
                    w[1] = x * sin + y * cos;
                }
                let mut best_c = 0u8;
                let mut best_dot = f64::NEG_INFINITY;
                for (c, t) in targets.iter().enumerate() {
                    let dot: f64 = (0..dim).map(|d| w[d] * t[d]).sum();
                    if dot > best_dot {
                        best_dot = dot;
                        best_c = c as u8;
                    }
                }
                best_c
            })
            .collect();
        let coloring = repair(graph, params, coloring);
        let value = graph.evaluate(&coloring, params.alpha).value(params.alpha);
        let better = best_coloring
            .as_ref()
            .is_none_or(|(_, v)| value < *v - 1e-12);
        if better {
            best_coloring = Some((coloring, value));
        }
    }
    #[allow(clippy::expect_used)] // rotations >= 1, so one candidate exists
    best_coloring.expect("at least one rotation tried").0
}

/// Greedy repair: sweep nodes, moving each to its locally cheapest mask,
/// until a fixpoint (bounded sweeps).
fn repair(graph: &LayoutGraph, params: &DecomposeParams, mut coloring: Vec<u8>) -> Vec<u8> {
    let k = params.k;
    for _ in 0..4 {
        let mut changed = false;
        for v in 0..graph.num_nodes() as u32 {
            let mut cost = [0f64; 8];
            for &w in graph.conflict_neighbors(v) {
                cost[coloring[w as usize] as usize] += 1.0;
            }
            for &w in graph.stitch_neighbors(v) {
                for c in 0..k {
                    if c != coloring[w as usize] {
                        cost[c as usize] += params.alpha;
                    }
                }
            }
            let cur = coloring[v as usize];
            let best = (0..k).min_by(|&a, &b| {
                cost[a as usize]
                    .partial_cmp(&cost[b as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            if let Some(best) = best {
                if cost[best as usize] + 1e-12 < cost[cur as usize] {
                    coloring[v as usize] = best;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    coloring
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpld_ilp::IlpDecomposer;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn tpl() -> DecomposeParams {
        DecomposeParams::tpl()
    }

    #[test]
    fn empty_graph() {
        let g = LayoutGraph::homogeneous(0, vec![]).unwrap();
        let d = SdpDecomposer::new().decompose_unbounded(&g, &tpl());
        assert!(d.coloring.is_empty());
    }

    #[test]
    fn triangle_conflict_free() {
        let g = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let d = SdpDecomposer::new().decompose_unbounded(&g, &tpl());
        assert_eq!(d.cost.conflicts, 0);
    }

    #[test]
    fn odd_cycle_conflict_free() {
        let g = LayoutGraph::homogeneous(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let d = SdpDecomposer::new().decompose_unbounded(&g, &tpl());
        assert_eq!(d.cost.conflicts, 0);
    }

    #[test]
    fn k4_gets_exactly_one_conflict() {
        let g = LayoutGraph::homogeneous(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .unwrap();
        let d = SdpDecomposer::new().decompose_unbounded(&g, &tpl());
        assert_eq!(d.cost.conflicts, 1);
    }

    #[test]
    fn quadruple_patterning_colors_k4_free() {
        let g = LayoutGraph::homogeneous(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .unwrap();
        let d = SdpDecomposer::new().decompose_unbounded(&g, &DecomposeParams::qpl());
        assert_eq!(d.cost.conflicts, 0);
        assert!(d.coloring.iter().all(|&c| c < 4));
    }

    #[test]
    fn never_beats_ilp_and_stays_close_on_small_graphs() {
        let mut rng = SmallRng::seed_from_u64(0x5D9);
        let mut total_gap = 0.0;
        for _ in 0..15 {
            let n = rng.gen_range(4..9usize);
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.45) {
                        edges.push((u, v));
                    }
                }
            }
            let g = LayoutGraph::homogeneous(n, edges).unwrap();
            let sdp = SdpDecomposer::new().decompose_unbounded(&g, &tpl());
            let ilp = IlpDecomposer::new().decompose_unbounded(&g, &tpl());
            assert!(sdp.cost.value(0.1) >= ilp.cost.value(0.1) - 1e-9);
            total_gap += sdp.cost.value(0.1) - ilp.cost.value(0.1);
        }
        // The relaxation should be near-optimal in aggregate.
        assert!(total_gap <= 3.0, "SDP gap too large: {total_gap}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = LayoutGraph::homogeneous(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
            .unwrap();
        let a = SdpDecomposer::new()
            .with_seed(7)
            .decompose_unbounded(&g, &tpl());
        let b = SdpDecomposer::new()
            .with_seed(7)
            .decompose_unbounded(&g, &tpl());
        assert_eq!(a.coloring, b.coloring);
    }

    #[test]
    fn rejects_unsupported_k() {
        let g = LayoutGraph::homogeneous(2, vec![(0, 1)]).unwrap();
        let params = DecomposeParams { k: 6, alpha: 0.1 };
        let err = SdpDecomposer::new()
            .decompose(&g, &params, &Budget::unlimited())
            .unwrap_err();
        assert!(matches!(err, MpldError::Unsupported { .. }), "{err}");
    }
}
