//! The full adaptive workflow of the paper: train the GNNs and the graph
//! library on a few circuits, then adaptively decompose a held-out
//! circuit and report which engine handled each graph.
//!
//! ```sh
//! cargo run --release -p mpld --example adaptive_circuit
//! ```

use mpld::{prepare, train_framework, OfflineConfig, TrainingData};
use mpld_graph::DecomposeParams;
use mpld_layout::iscas_suite;

fn main() {
    let params = DecomposeParams::tpl();
    let suite = iscas_suite();

    // Offline phase: label units of four training circuits with the exact
    // engines, train RGCN / RGCN_r / ColorGNN, build the graph library.
    println!("offline phase: training on C499, C880, C1355, C1908 ...");
    let mut data = TrainingData::default();
    let train_preps: Vec<_> = suite[1..5]
        .iter()
        .map(|c| prepare(&c.generate(), &params))
        .collect();
    for prep in &train_preps {
        data.add_layout_capped(prep, &params, 120);
    }
    let framework = train_framework(&data, &params, &OfflineConfig::default());
    println!(
        "trained: {} units labeled, library holds {} graphs",
        data.units.len(),
        framework.library.len()
    );

    // Online phase: adaptively decompose the held-out C432.
    let test = prepare(&suite[0].generate(), &params);
    let result = framework.decompose_prepared(&test);
    println!(
        "\n{}: cost {} in {:?}",
        test.name, result.pipeline.cost, result.pipeline.decompose_time
    );
    println!(
        "engine usage: matching {}  ColorGNN {}  EC {}  ILP {}  (fallbacks {})",
        result.usage.matching,
        result.usage.colorgnn,
        result.usage.ec,
        result.usage.ilp,
        result.usage.colorgnn_fallbacks
    );
    println!(
        "runtime: selection {:?}  matching {:?}  redundancy {:?}  ColorGNN {:?}  EC {:?}  ILP {:?}",
        result.timing.selection,
        result.timing.matching,
        result.timing.redundancy,
        result.timing.colorgnn,
        result.timing.ec,
        result.timing.ilp
    );
}
