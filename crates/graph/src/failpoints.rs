//! Deterministic fault injection for chaos testing.
//!
//! Compiled only under the `failpoints` cargo feature; with the feature
//! off, every call site in the workspace is `#[cfg]`-ed out, so the
//! production build pays nothing and stays bit-identical.
//!
//! Each named site (e.g. `"ilp.bb.search"`, `"matching.transfer"`) keeps a
//! per-site evaluation counter; the decision for one evaluation is a pure
//! hash of `(seed, site, counter)`, so a given seed replays the same fault
//! schedule run after run — panics, wrong colorings, delays and errors all
//! land at the same places. Configure with [`configure`] or the
//! `MPLD_FAILPOINTS` environment variable (`seed=42,rate=0.02`); an
//! unconfigured process injects nothing.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::MpldError;

/// The faults a site can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// `panic!` at the site (exercises quarantine).
    Panic,
    /// Return an `MpldError` from a fallible boundary.
    Error,
    /// Sleep 1–3 ms (exercises budget/anytime paths).
    Delay,
    /// Flip one node's color in a result *without* re-evaluating its cost
    /// (exercises the independent audit).
    WrongColor,
}

#[derive(Debug, Default)]
struct SiteState {
    evaluations: u64,
    hits: u64,
}

#[derive(Debug)]
struct State {
    seed: u64,
    rate: f64,
    /// When set, only sites whose name starts with one of these prefixes
    /// may fire (evaluations are still counted for every site, so the
    /// per-site schedules of the allowed sites are unchanged by the
    /// filter).
    site_filter: Option<Vec<String>>,
    sites: HashMap<&'static str, SiteState>,
}

fn state() -> &'static Mutex<Option<State>> {
    static STATE: OnceLock<Mutex<Option<State>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

fn lock() -> std::sync::MutexGuard<'static, Option<State>> {
    // Injected panics can poison the lock; the counters remain coherent.
    state().lock().unwrap_or_else(|e| e.into_inner())
}

/// Enables injection with the given `seed` and per-evaluation probability
/// `rate` (clamped to `0.0..=1.0`). Resets all site counters.
pub fn configure(seed: u64, rate: f64) {
    *lock() = Some(State {
        seed,
        rate: rate.clamp(0.0, 1.0),
        site_filter: None,
        sites: HashMap::new(),
    });
}

/// [`configure`], restricted to sites whose names start with one of
/// `prefixes` (e.g. `["server."]` to chaos-test only the serving path
/// while the solver sites stay honest). An empty prefix list behaves
/// like [`configure`]. A filtered site's schedule is identical to its
/// schedule under an unfiltered run with the same seed.
pub fn configure_filtered(seed: u64, rate: f64, prefixes: &[&str]) {
    *lock() = Some(State {
        seed,
        rate: rate.clamp(0.0, 1.0),
        site_filter: if prefixes.is_empty() {
            None
        } else {
            Some(prefixes.iter().map(|p| p.to_string()).collect())
        },
        sites: HashMap::new(),
    });
}

/// Disables injection and clears all site counters.
pub fn disable() {
    *lock() = None;
}

/// Configures from the `MPLD_FAILPOINTS` environment variable
/// (`seed=<u64>,rate=<f64>,sites=<prefix>+<prefix>`, all optional;
/// defaults `seed=0`, `rate=0.01`, no site filter). `sites` restricts
/// injection to sites matching one of the `+`-separated name prefixes
/// (e.g. `sites=server.` arms only the serving-path failpoints). Returns
/// the `(seed, rate)` applied, or `None` when the variable is unset or
/// empty (injection left untouched).
pub fn configure_from_env() -> Option<(u64, f64)> {
    let spec = std::env::var("MPLD_FAILPOINTS").ok()?;
    if spec.trim().is_empty() {
        return None;
    }
    let mut seed = 0u64;
    let mut rate = 0.01f64;
    let mut prefixes: Vec<String> = Vec::new();
    for part in spec.split(',') {
        let mut kv = part.splitn(2, '=');
        let key = kv.next().unwrap_or("").trim();
        let val = kv.next().unwrap_or("").trim();
        match key {
            "seed" => seed = val.parse().unwrap_or(seed),
            "rate" => rate = val.parse().unwrap_or(rate),
            "sites" => {
                prefixes = val
                    .split('+')
                    .map(str::trim)
                    .filter(|p| !p.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            _ => {}
        }
    }
    let refs: Vec<&str> = prefixes.iter().map(String::as_str).collect();
    configure_filtered(seed, rate, &refs);
    Some((seed, rate))
}

/// Per-site `(site, evaluations, hits)` counters, sorted by site name.
pub fn stats() -> Vec<(&'static str, u64, u64)> {
    let guard = lock();
    let mut v: Vec<(&'static str, u64, u64)> = guard
        .as_ref()
        .map(|s| {
            s.sites
                .iter()
                .map(|(&name, st)| (name, st.evaluations, st.hits))
                .collect()
        })
        .unwrap_or_default();
    v.sort_unstable_by_key(|&(name, _, _)| name);
    v
}

/// Total number of injected faults since [`configure`].
pub fn total_hits() -> u64 {
    lock()
        .as_ref()
        .map(|s| s.sites.values().map(|st| st.hits).sum())
        .unwrap_or(0)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Decides whether this evaluation of `site` fires, and which of
/// `allowed` faults it injects. Deterministic in `(seed, site, counter)`.
fn decide(site: &'static str, allowed: &[Fault]) -> Option<(Fault, u64)> {
    let mut guard = lock();
    let s = guard.as_mut()?;
    let entry = s.sites.entry(site).or_default();
    entry.evaluations += 1;
    if let Some(filter) = &s.site_filter {
        if !filter.iter().any(|p| site.starts_with(p.as_str())) {
            return None;
        }
    }
    let h = splitmix64(s.seed ^ fnv1a(site) ^ entry.evaluations.wrapping_mul(0x9E37));
    // Top 53 bits -> uniform in [0, 1).
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    if u >= s.rate || allowed.is_empty() {
        return None;
    }
    entry.hits += 1;
    let h2 = splitmix64(h);
    Some((allowed[(h2 % allowed.len() as u64) as usize], h2))
}

/// Search-loop site: may inject a panic or a short delay. Call it from hot
/// loops (one evaluation per search step); it never returns an error.
pub fn tick(site: &'static str) {
    match decide(site, &[Fault::Panic, Fault::Delay]) {
        Some((Fault::Panic, _)) => panic!("failpoint {site}: injected panic"),
        Some((Fault::Delay, h)) => std::thread::sleep(Duration::from_millis(1 + h % 3)),
        _ => {}
    }
}

/// Fallible-boundary site: may inject a panic, a delay, or an
/// [`MpldError::Infeasible`] attributed to `engine`.
///
/// # Errors
///
/// Returns the injected error when the site fires with [`Fault::Error`].
pub fn inject_error(site: &'static str, engine: &'static str) -> Result<(), MpldError> {
    match decide(site, &[Fault::Panic, Fault::Error, Fault::Delay]) {
        Some((Fault::Panic, _)) => panic!("failpoint {site}: injected panic"),
        Some((Fault::Error, _)) => Err(MpldError::Infeasible {
            engine,
            reason: format!("failpoint {site}: injected error"),
        }),
        Some((Fault::Delay, h)) => {
            std::thread::sleep(Duration::from_millis(1 + h % 3));
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Decision-forcing site: returns `true` when the site fires. Callers use
/// it to force a conservative fallback decision (e.g. distrust a
/// quantized routing score and re-infer at f32) so the fallback machinery
/// is exercised deterministically. Never fires when injection is
/// unconfigured; injects no panic, error, or delay of its own.
pub fn fire(site: &'static str) -> bool {
    decide(site, &[Fault::Error]).is_some()
}

/// Result-corruption site: may flip one color in `coloring` to a different
/// value in `0..k` — deliberately *without* touching any cost the caller
/// carries, so the corruption is exactly what the independent audit
/// catches. Returns `true` when a flip happened.
pub fn corrupt_coloring(site: &'static str, coloring: &mut [u8], k: u8) -> bool {
    if coloring.is_empty() || k < 2 {
        return false;
    }
    match decide(site, &[Fault::WrongColor]) {
        Some((Fault::WrongColor, h)) => {
            let v = (h % coloring.len() as u64) as usize;
            coloring[v] = (coloring[v] + 1) % k;
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The module keeps process-global state, so exercise everything from
    // one test to avoid cross-test interference under the parallel runner.
    #[test]
    fn schedule_is_deterministic_and_disableable() {
        configure(42, 1.0);
        let mut c = vec![0u8, 1, 2, 0];
        assert!(corrupt_coloring("test.site", &mut c, 3));
        let first = c.clone();
        configure(42, 1.0);
        let mut c2 = vec![0u8, 1, 2, 0];
        assert!(corrupt_coloring("test.site", &mut c2, 3));
        assert_eq!(first, c2, "same seed, same schedule");

        configure(42, 0.0);
        let mut c3 = vec![0u8, 1, 2, 0];
        assert!(!corrupt_coloring("test.site", &mut c3, 3));
        assert_eq!(c3, vec![0, 1, 2, 0]);
        assert_eq!(total_hits(), 0);

        configure(7, 1.0);
        let err = inject_error("test.err", "EC");
        // rate = 1.0: the site must fire with one of its three faults;
        // seed 7 happens to pick the error arm (asserted so a future
        // change to the fault-pick hash is caught).
        assert!(err.is_err() || total_hits() == 1);
        assert!(stats().iter().any(|&(s, e, _)| s == "test.err" && e == 1));

        // Site filter: only matching prefixes may fire; a filtered-out
        // site never injects even at rate 1.0, and the allowed site's
        // schedule matches its unfiltered schedule for the same seed.
        configure(42, 1.0);
        let mut unfiltered = vec![0u8, 1, 2, 0];
        assert!(corrupt_coloring("server.site", &mut unfiltered, 3));
        configure_filtered(42, 1.0, &["server."]);
        let mut c5 = vec![0u8, 1, 2, 0];
        assert!(!corrupt_coloring("test.site", &mut c5, 3), "filtered out");
        assert_eq!(c5, vec![0, 1, 2, 0]);
        let mut c6 = vec![0u8, 1, 2, 0];
        assert!(corrupt_coloring("server.site", &mut c6, 3), "allowed");
        assert_eq!(c6, unfiltered, "filter must not perturb the schedule");
        assert!(stats()
            .iter()
            .any(|&(s, e, h)| s == "test.site" && e == 1 && h == 0));

        disable();
        let mut c4 = vec![0u8, 1];
        assert!(!corrupt_coloring("test.site", &mut c4, 3));
        assert!(inject_error("test.err", "EC").is_ok());
        assert_eq!(stats(), vec![]);
    }
}
