//! Minimal dense tensor library with reverse-mode automatic
//! differentiation — the neural-network substrate of the MPLD workspace
//! (standing in for PyTorch, per DESIGN.md).
//!
//! Three pieces:
//!
//! - [`Matrix`] — dense row-major `f32` matrices with the linear algebra
//!   the GNNs need;
//! - [`Graph`] — a tape recording forward ops, with [`Graph::backward`]
//!   producing exact gradients (validated against finite differences in
//!   tests);
//! - [`ParamSet`] — cross-pass parameter storage with SGD/[`Optimizer::Adam`]
//!   updates.
//!
//! # Example
//!
//! ```
//! use mpld_tensor::{Graph, Matrix};
//!
//! let mut g = Graph::new();
//! let x = g.param(Matrix::from_rows(&[&[1.0, -2.0]]));
//! let y = g.relu(x);
//! let ones = g.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
//! let s = g.matmul(y, ones);
//! assert_eq!(g.value(s).scalar(), 1.0);
//! g.backward(s);
//! assert_eq!(g.grad(x).row(0), &[1.0, 0.0]);
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod graph;
pub mod infer;
mod matrix;
mod optim;
mod pca;
pub mod quant;

pub use graph::{Adjacency, Graph, VarId};
pub use matrix::Matrix;
pub use optim::{Optimizer, ParamId, ParamSet};
pub use pca::pca2;
pub use quant::{F16Matrix, Precision, QuantMatrix};
