//! Canonical forms for small heterogeneous layout graphs.
//!
//! Two layout graphs are isomorphic iff a node bijection preserves both
//! edge types (the feature partition is implied by the stitch edges). For
//! the library sizes of interest (`n <= ~10`) we compute an exact
//! canonical form: the lexicographically smallest typed edge list over all
//! node permutations, pruned by degree-class ordering.

use mpld_graph::{LayoutGraph, NodeId};

/// A canonical key: graphs are isomorphic iff their keys are equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalForm {
    n: usize,
    /// Sorted `(u, v, is_stitch)` triples under the canonical labeling.
    edges: Vec<(u8, u8, bool)>,
}

/// Computes the canonical form of `g`.
///
/// # Panics
///
/// Panics if `g` has more than 12 nodes (factorial blow-up guard).
///
/// # Example
///
/// ```
/// use mpld_graph::LayoutGraph;
/// use mpld_matching::canonical_form;
///
/// let a = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2)]).unwrap();
/// let b = LayoutGraph::homogeneous(3, vec![(0, 2), (2, 1)]).unwrap();
/// assert_eq!(canonical_form(&a), canonical_form(&b));
/// ```
pub fn canonical_form(g: &LayoutGraph) -> CanonicalForm {
    canonical_form_labeled(g).0
}

/// Like [`canonical_form`], additionally returning the canonical labeling
/// that realizes it: `perm[original_node] = canonical_label`.
///
/// Two isomorphic graphs `a` and `b` with labelings `pa` and `pb` are
/// related by the isomorphism `a_node -> b_node` where
/// `pb[b_node] == pa[a_node]` — which lets a decomposition solved on one
/// graph be transferred to any isomorphic graph through the shared
/// canonical label space (the adaptive framework's memo cache relies on
/// this).
///
/// # Panics
///
/// Panics if `g` has more than 12 nodes (factorial blow-up guard).
pub fn canonical_form_labeled(g: &LayoutGraph) -> (CanonicalForm, Vec<u8>) {
    let n = g.num_nodes();
    assert!(n <= 12, "canonical form limited to 12 nodes");
    if n == 0 {
        return (
            CanonicalForm {
                n: 0,
                edges: Vec::new(),
            },
            Vec::new(),
        );
    }

    // Group nodes by invariant (conflict degree, stitch degree) and only
    // permute within groups in class order — a sound pruning because any
    // isomorphism preserves the invariant.
    let class = |v: NodeId| (g.conflict_degree(v), g.stitch_neighbors(v).len());
    let mut order: Vec<NodeId> = (0..n as u32).collect();
    order.sort_by_key(|&v| class(v));

    let mut best: Option<Labeled> = None;
    let mut perm = vec![0u8; n]; // perm[original] = canonical label
    permute_classes(
        g,
        &order,
        0,
        &mut perm,
        &mut vec![false; n],
        &mut best,
        &class,
    );
    #[allow(clippy::expect_used)] // the permutation loop always runs at least once
    let (edges, labeling) = best.expect("at least one permutation");
    (CanonicalForm { n, edges }, labeling)
}

/// A canonical edge list together with the labeling that realizes it.
type Labeled = (Vec<(u8, u8, bool)>, Vec<u8>);

fn permute_classes(
    g: &LayoutGraph,
    order: &[NodeId],
    pos: usize,
    perm: &mut Vec<u8>,
    used: &mut Vec<bool>,
    best: &mut Option<Labeled>,
    class: &dyn Fn(NodeId) -> (usize, usize),
) {
    let n = order.len();
    if pos == n {
        let mut edges: Vec<(u8, u8, bool)> = Vec::new();
        for &(u, v) in g.conflict_edges() {
            let (a, b) = (perm[u as usize], perm[v as usize]);
            edges.push((a.min(b), a.max(b), false));
        }
        for &(u, v) in g.stitch_edges() {
            let (a, b) = (perm[u as usize], perm[v as usize]);
            edges.push((a.min(b), a.max(b), true));
        }
        edges.sort_unstable();
        match best {
            None => *best = Some((edges, perm.clone())),
            Some((b, _)) => {
                if edges < *b {
                    *best = Some((edges, perm.clone()));
                }
            }
        }
        return;
    }
    // The node receiving canonical label `pos` must come from the same
    // invariant class as order[pos].
    let want = class(order[pos]);
    for &v in order {
        if used[v as usize] || class(v) != want {
            continue;
        }
        used[v as usize] = true;
        perm[v as usize] = pos as u8;
        permute_classes(g, order, pos + 1, perm, used, best, class);
        used[v as usize] = false;
    }
}

/// Whether two graphs are isomorphic (typed edges preserved), via
/// canonical forms. Exact for graphs within the size guard.
pub fn are_isomorphic(a: &LayoutGraph, b: &LayoutGraph) -> bool {
    if a.num_nodes() != b.num_nodes()
        || a.conflict_edges().len() != b.conflict_edges().len()
        || a.stitch_edges().len() != b.stitch_edges().len()
    {
        return false;
    }
    canonical_form(a) == canonical_form(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relabeled_triangle_matches() {
        let a = LayoutGraph::homogeneous(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let b = LayoutGraph::homogeneous(4, vec![(3, 2), (2, 1), (3, 1), (1, 0)]).unwrap();
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn path_vs_star_differ() {
        let path = LayoutGraph::homogeneous(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        let star = LayoutGraph::homogeneous(4, vec![(0, 1), (0, 2), (0, 3)]).unwrap();
        assert!(!are_isomorphic(&path, &star));
    }

    #[test]
    fn edge_types_distinguish() {
        let conflict = LayoutGraph::homogeneous(2, vec![(0, 1)]).unwrap();
        let stitch = LayoutGraph::new(vec![0, 0], vec![], vec![(0, 1)]).unwrap();
        assert!(!are_isomorphic(&conflict, &stitch));
    }

    #[test]
    fn heterogeneous_relabeling_matches() {
        // Feature {0,1} stitched; 2 conflicts with both.
        let a = LayoutGraph::new(vec![0, 0, 1], vec![(0, 2), (1, 2)], vec![(0, 1)]).unwrap();
        let b = LayoutGraph::new(vec![1, 0, 0], vec![(1, 0), (2, 0)], vec![(1, 2)]).unwrap();
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn canonical_is_invariant_under_relabeling() {
        use rand::rngs::SmallRng;
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..20 {
            let n = rng.gen_range(3..7usize);
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.5) {
                        edges.push((u, v));
                    }
                }
            }
            let g = LayoutGraph::homogeneous(n, edges.clone()).unwrap();
            let mut relabel: Vec<u32> = (0..n as u32).collect();
            relabel.shuffle(&mut rng);
            let edges2: Vec<(u32, u32)> = edges
                .iter()
                .map(|&(u, v)| (relabel[u as usize], relabel[v as usize]))
                .collect();
            let h = LayoutGraph::homogeneous(n, edges2).unwrap();
            assert_eq!(canonical_form(&g), canonical_form(&h));
        }
    }

    #[test]
    fn labeling_transfers_colorings_between_isomorphic_graphs() {
        use rand::rngs::SmallRng;
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.gen_range(3..8usize);
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.4) {
                        edges.push((u, v));
                    }
                }
            }
            let a = LayoutGraph::homogeneous(n, edges.clone()).unwrap();
            let mut relabel: Vec<u32> = (0..n as u32).collect();
            relabel.shuffle(&mut rng);
            let edges2: Vec<(u32, u32)> = edges
                .iter()
                .map(|&(u, v)| (relabel[u as usize], relabel[v as usize]))
                .collect();
            let b = LayoutGraph::homogeneous(n, edges2).unwrap();

            let (ca, pa) = canonical_form_labeled(&a);
            let (cb, pb) = canonical_form_labeled(&b);
            assert_eq!(ca, cb);

            // Any coloring of `a`, pushed through the shared canonical
            // label space, must evaluate identically on `b`.
            let coloring_a: Vec<u8> = (0..n).map(|_| rng.gen_range(0..3u8)).collect();
            let mut canon_colors = vec![0u8; n];
            for v in 0..n {
                canon_colors[pa[v] as usize] = coloring_a[v];
            }
            let coloring_b: Vec<u8> = (0..n).map(|v| canon_colors[pb[v] as usize]).collect();
            assert_eq!(a.evaluate(&coloring_a, 0.1), b.evaluate(&coloring_b, 0.1));
        }
    }

    #[test]
    fn empty_graph_canonical() {
        let g = LayoutGraph::homogeneous(0, vec![]).unwrap();
        assert_eq!(canonical_form(&g), canonical_form(&g));
    }
}
