//! Tiled preprocessing against the whole-layout oracle.
//!
//! The tiling contract has two halves, and both are tested here:
//!
//! 1. **Edge exactness** — for any halo ≥ d and any tile span, the tiled
//!    conflict-edge set equals the monolithic [`GridIndex`] sweep's,
//!    emitted exactly once. Exercised with a halo-width × tile-span
//!    sweep over benchmark circuits, hand-built layouts whose features
//!    straddle tile edges, and seeded generator layouts (a deterministic
//!    property sweep).
//! 2. **End-to-end parity** — because the reconstructed
//!    [`PreparedLayout`] is bit-identical, a tiled run through the
//!    service [`Engine`] reproduces the serial oracle's decomposition,
//!    cost, engines, and usage exactly.

use mpld::{
    prepare, prepare_tiled, train_framework, AdaptiveResult, Engine, OfflineConfig, Session,
    TiledProgress, TilingConfig, TrainingData,
};
use mpld_geometry::{Feature, GridIndex, Rect};
use mpld_graph::DecomposeParams;
use mpld_layout::{circuit_by_name, generate_layout, GeneratorParams, Layout};

const SEED: u64 = 0xD15EA5E;

fn quiet() -> impl Fn(TiledProgress) + Sync {
    |_| {}
}

/// The oracle: one flat spatial sweep over the whole layout.
fn oracle_edges(layout: &Layout) -> Vec<(u32, u32)> {
    let index = GridIndex::build(&layout.features, layout.d);
    index
        .conflict_pairs(&layout.features, layout.d)
        .into_iter()
        .map(|(a, b)| (a as u32, b as u32))
        .collect()
}

#[test]
fn halo_and_span_sweep_matches_the_oracle_on_circuits() {
    let params = DecomposeParams::tpl();
    for name in ["C432", "C499"] {
        let layout = circuit_by_name(name).expect("exists").generate();
        let d = layout.d;
        let oracle = oracle_edges(&layout);
        let mono = prepare(&layout, &params);
        for halo in [0, d, d + d / 2, 2 * d, 4 * d] {
            for span in [2 * d, 7 * d, 48 * d] {
                let config = TilingConfig {
                    tile_span: span,
                    halo,
                    threads: 1,
                };
                let tp = prepare_tiled(&layout, &params, &config, &quiet());
                assert_eq!(
                    tp.prep.graph.conflict_edges(),
                    oracle.as_slice(),
                    "{name}: halo {halo}, span {span}"
                );
                assert_eq!(tp.stats.edges, oracle.len());
                // Bit-identical prepared layout, not merely the same edges.
                assert_eq!(
                    tp.prep.graph, mono.graph,
                    "{name}: halo {halo}, span {span}"
                );
                assert_eq!(tp.prep.units.len(), mono.units.len());
                for (a, b) in tp.prep.units.iter().zip(&mono.units) {
                    assert_eq!(a.hetero, b.hetero);
                    assert_eq!(a.unit_index, b.unit_index);
                }
            }
        }
    }
}

#[test]
fn features_straddling_tile_edges_keep_their_conflicts() {
    let d = 100i64;
    let span = 2 * d; // tiny tiles: every feature below touches a boundary
                      // A horizontal bar crossing several tile columns, with close
                      // neighbors above it in different tiles, plus a pair whose gap
                      // straddles a tile edge exactly.
    let features = vec![
        Feature::new(0, vec![Rect::new(-350, 0, 950, 40)]),
        Feature::new(1, vec![Rect::new(-300, 90, -200, 130)]),
        Feature::new(2, vec![Rect::new(180, 90, 260, 130)]),
        Feature::new(3, vec![Rect::new(820, 90, 940, 130)]),
        // Gap of d-1 across x = 400 (a tile edge for span 200).
        Feature::new(4, vec![Rect::new(340, 400, 399, 440)]),
        Feature::new(5, vec![Rect::new(498, 400, 560, 440)]),
        // Far-away feature: must stay isolated.
        Feature::new(6, vec![Rect::new(5000, 5000, 5050, 5050)]),
    ];
    let layout = Layout {
        name: "straddle".into(),
        d,
        features,
    };
    let oracle = oracle_edges(&layout);
    assert!(
        oracle.contains(&(0, 1)) && oracle.contains(&(0, 2)) && oracle.contains(&(0, 3)),
        "the bar must conflict with all three neighbors: {oracle:?}"
    );
    assert!(oracle.contains(&(4, 5)), "cross-edge pair: {oracle:?}");
    assert!(oracle.iter().all(|&(a, b)| a != 6 && b != 6));

    let params = DecomposeParams::tpl();
    let config = TilingConfig {
        tile_span: span,
        halo: 0,
        threads: 1,
    };
    let tp = prepare_tiled(&layout, &params, &config, &quiet());
    assert_eq!(tp.prep.graph.conflict_edges(), oracle.as_slice());
    assert!(tp.stats.tiles_x >= 6, "the bar spans many tile columns");
    assert!(tp.stats.boundary_edges > 0);
}

/// Deterministic property sweep: seeded generator layouts of varying
/// shapes, checked at a tile span small enough to force heavy
/// replication. Any dropped or duplicated halo edge fails here.
#[test]
fn generated_layouts_match_the_oracle_across_seeds() {
    let params = DecomposeParams::tpl();
    for seed in 1..=8u64 {
        let d = 100;
        let gen_params = GeneratorParams {
            tracks: 12 + (seed as usize % 5),
            track_units: 20,
            seed,
            ..Default::default()
        };
        let layout = generate_layout("sweep", d, &gen_params);
        let oracle = oracle_edges(&layout);
        assert!(!oracle.is_empty(), "seed {seed} generated no conflicts");
        for span in [2 * d, 5 * d] {
            let config = TilingConfig {
                tile_span: span,
                halo: 0,
                threads: 2, // edge discovery is pure geometry: thread-count independent
            };
            let tp = prepare_tiled(&layout, &params, &config, &quiet());
            assert_eq!(
                tp.prep.graph.conflict_edges(),
                oracle.as_slice(),
                "seed {seed}, span {span}"
            );
        }
    }
}

#[test]
fn undersized_halo_is_clamped_to_the_soundness_minimum() {
    let layout = circuit_by_name("C432").expect("exists").generate();
    let params = DecomposeParams::tpl();
    let config = TilingConfig {
        tile_span: 3 * layout.d,
        halo: 1, // far below d: must be clamped, not trusted
        threads: 1,
    };
    let tp = prepare_tiled(&layout, &params, &config, &quiet());
    assert_eq!(tp.stats.halo, layout.d);
    assert_eq!(tp.prep.graph, prepare(&layout, &params).graph);
}

/// End-to-end: a tiled prepared layout pushed through the service engine
/// reproduces the serial oracle bit for bit, boundary re-solves and all.
#[test]
fn tiled_run_reproduces_the_serial_oracle_digest() {
    let params = DecomposeParams::tpl();
    let train = prepare(
        &circuit_by_name("C499").expect("exists").generate(),
        &params,
    );
    let mut data = TrainingData::default();
    data.add_layout_capped(&train, &params, 40);
    let mut cfg = OfflineConfig::default();
    cfg.rgcn.epochs = 2;
    cfg.colorgnn.epochs = 1;
    let fw = train_framework(&data, &params, &cfg);

    let layout = circuit_by_name("C432").expect("exists").generate();
    let serial_prep = prepare(&layout, &params);
    fw.colorgnn.reseed(SEED);
    let serial = fw.decompose_prepared(&serial_prep);

    let config = TilingConfig {
        tile_span: 2 * layout.d, // force many tiles and boundary units
        halo: 0,
        threads: 2,
    };
    let tp = prepare_tiled(&layout, &params, &config, &quiet());
    assert!(
        tp.stats.boundary_resolves > 0,
        "want boundary units in play"
    );

    let engine = Engine::new(fw);
    let mut session = Session::new(SEED);
    let tiled = engine
        .decompose(&tp.prep, &mut session)
        .expect("decomposes");

    let digest = |r: &AdaptiveResult| {
        (
            r.pipeline.decomposition.clone(),
            r.pipeline.cost,
            r.unit_engines.clone(),
            r.usage,
        )
    };
    assert_eq!(digest(&tiled), digest(&serial));

    // The independent Eq. 1 audit agrees with every boundary unit's
    // reported cost.
    let (audited, clean) =
        mpld::audit_boundary_units(&tp.prep, &tiled, &tp.boundary_units, params.k);
    assert_eq!(audited, tp.boundary_units.len());
    assert!(clean);
}
