//! Layout preparation (simplify + stitch insertion) and the single-engine
//! decomposition pipeline used by all baselines.
//!
//! [`prepare`] runs the workflow of Fig. 7 up to the decomposer: global
//! conflict graph, level-3 simplification, and projection-based stitch
//! candidate insertion per unit (articulation features stay whole so block
//! merging remains sound). [`run_pipeline`] then decomposes every unit
//! with one engine and reassembles the result, timing only the
//! decomposition itself — exactly the runtime Table V reports.

use crate::LayoutDecomposition;
use mpld_graph::simplify::{simplify, Simplified, SimplifyOptions};
use mpld_graph::{
    Budget, CostBreakdown, DecomposeParams, Decomposer, Decomposition, LayoutGraph, MpldError,
};
use mpld_layout::{insert_stitch_candidates_masked, Layout};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One decomposition unit with its heterogeneous (stitch-inserted) graph.
#[derive(Debug, Clone)]
pub struct UnitInstance {
    /// Subfeature-level graph fed to the decomposers.
    pub hetero: LayoutGraph,
    /// Index into [`Simplified::units`].
    pub unit_index: usize,
}

/// A layout after preprocessing: everything the decomposers and the
/// adaptive framework consume.
#[derive(Debug)]
pub struct PreparedLayout {
    /// Circuit name.
    pub name: String,
    /// Global homogeneous conflict graph (features as nodes).
    pub graph: LayoutGraph,
    /// Level-3 simplification result.
    pub simplified: Simplified,
    /// Heterogeneous unit graphs, parallel to `simplified.units()`.
    pub units: Vec<UnitInstance>,
    /// Coloring distance.
    pub d: i64,
    /// Time spent preparing (graph build + simplify + stitch insertion);
    /// excluded from decomposition runtimes, as in the paper.
    pub prepare_time: Duration,
}

/// Runs preprocessing on `layout`: graph construction, simplification,
/// per-unit stitch insertion.
///
/// # Panics
///
/// Panics if `params.k == 0`.
pub fn prepare(layout: &Layout, params: &DecomposeParams) -> PreparedLayout {
    let start = Instant::now();
    let graph = layout.to_conflict_graph();
    let simplified = simplify(&graph, params.k, SimplifyOptions::default());

    // Features present in more than one unit (articulation features) must
    // not be split by stitches.
    let mut occurrences: HashMap<u32, usize> = HashMap::new();
    for unit in simplified.units() {
        for &g in &unit.global_nodes {
            *occurrences.entry(g).or_insert(0) += 1;
        }
    }

    let units = simplified
        .units()
        .iter()
        .enumerate()
        .map(|(i, unit)| {
            let feats: Vec<_> = unit
                .global_nodes
                .iter()
                .map(|&g| layout.features[g as usize].clone())
                .collect();
            let splittable: Vec<bool> = unit
                .global_nodes
                .iter()
                .map(|g| occurrences[g] == 1)
                .collect();
            #[allow(clippy::expect_used)] // generator geometry is validated upstream
            let stitched = insert_stitch_candidates_masked(&feats, layout.d, &splittable)
                .expect("unit geometry is valid");
            UnitInstance {
                hetero: stitched.graph,
                unit_index: i,
            }
        })
        .collect();

    PreparedLayout {
        name: layout.name.clone(),
        graph,
        simplified,
        units,
        d: layout.d,
        prepare_time: start.elapsed(),
    }
}

/// The outcome of decomposing a prepared layout with one engine.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Total cost (sum over units; recovery adds none).
    pub cost: CostBreakdown,
    /// Per-unit costs, parallel to `PreparedLayout::units`.
    pub unit_costs: Vec<CostBreakdown>,
    /// The reassembled decomposition.
    pub decomposition: LayoutDecomposition,
    /// Pure decomposition runtime (what Table V reports).
    pub decompose_time: Duration,
}

/// Decomposes every unit with `engine` and reassembles the global result.
///
/// # Panics
///
/// Panics if `engine` rejects a unit (cannot happen for the workspace
/// engines on `k` in `{3, 4}`). Use [`run_pipeline_budgeted`] for the
/// fallible, budget-aware variant.
pub fn run_pipeline(
    prep: &PreparedLayout,
    engine: &dyn Decomposer,
    params: &DecomposeParams,
) -> PipelineResult {
    match run_pipeline_budgeted(prep, engine, params, &Budget::unlimited()) {
        Ok(r) => r,
        Err(e) => panic!("{} failed on an unlimited budget: {e}", engine.name()),
    }
}

/// Like [`run_pipeline`], but every unit solve shares `budget`: a unit
/// that exhausts it returns its best-so-far incumbent (tagged
/// [`mpld_graph::Certainty::BudgetExhausted`]) and the remaining units
/// finish on their engines' cheapest anytime paths.
///
/// # Errors
///
/// Returns the first engine error (unsupported parameters, mismatched
/// coloring); budget exhaustion is never an error.
pub fn run_pipeline_budgeted(
    prep: &PreparedLayout,
    engine: &dyn Decomposer,
    params: &DecomposeParams,
    budget: &Budget,
) -> Result<PipelineResult, MpldError> {
    let start = Instant::now();
    let unit_results: Vec<Decomposition> = prep
        .units
        .iter()
        .map(|u| engine.decompose(&u.hetero, params, budget))
        .collect::<Result<_, _>>()?;
    let decompose_time = start.elapsed();
    Ok(assemble(prep, params, unit_results, decompose_time))
}

/// Decomposes units in parallel with `threads` workers (engines are run on
/// shared references, so the engine must be `Sync`), scheduled
/// largest-unit-first to bound tail latency. Timing reflects wall-clock,
/// which is why the paper's single-thread tables use [`run_pipeline`]
/// instead.
pub fn run_pipeline_parallel<E: Decomposer + Sync>(
    prep: &PreparedLayout,
    engine: &E,
    params: &DecomposeParams,
    threads: usize,
) -> PipelineResult {
    let start = Instant::now();
    let unit_results: Vec<Decomposition> = crate::parallel::run_largest_first(
        prep.units.len(),
        threads,
        |i| prep.units[i].hetero.num_nodes(),
        |i| engine.decompose_unbounded(&prep.units[i].hetero, params),
    );
    let decompose_time = start.elapsed();
    assemble(prep, params, unit_results, decompose_time)
}

/// Reassembles unit decompositions into a global result (shared by the
/// baseline pipeline and the adaptive framework).
pub(crate) fn assemble(
    prep: &PreparedLayout,
    params: &DecomposeParams,
    unit_results: Vec<Decomposition>,
    decompose_time: Duration,
) -> PipelineResult {
    let unit_costs: Vec<CostBreakdown> = unit_results.iter().map(|d| d.cost).collect();
    let cost = unit_costs
        .iter()
        .fold(CostBreakdown::default(), |a, &b| a.combine(b));

    // Parent-level coloring per unit: representative color of each
    // feature (articulation features are never split, so their color is
    // exact; split features carry their subfeature colors separately).
    let parent_colorings: Vec<Vec<u8>> = prep
        .units
        .iter()
        .zip(&unit_results)
        .map(|(u, d)| {
            let nf = u.hetero.num_features();
            let mut colors = vec![0u8; nf];
            let mut seen = vec![false; nf];
            for v in 0..u.hetero.num_nodes() as u32 {
                let f = u.hetero.feature_of(v) as usize;
                if !seen[f] {
                    seen[f] = true;
                    colors[f] = d.coloring[v as usize];
                }
            }
            colors
        })
        .collect();

    let recovered = prep
        .simplified
        .recover(&prep.graph, params.k, &parent_colorings);

    // Subfeature colorings with the merge permutations applied.
    let unit_subfeature_colorings: Vec<Vec<u8>> = unit_results
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let perm = recovered.unit_permutations[i];
            d.coloring.iter().map(|&c| perm[c as usize]).collect()
        })
        .collect();

    PipelineResult {
        cost,
        unit_costs,
        decomposition: LayoutDecomposition {
            feature_colors: recovered.coloring,
            unit_subfeature_colorings,
        },
        decompose_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpld_ilp::IlpDecomposer;
    use mpld_layout::circuit_by_name;

    fn prep_c432() -> PreparedLayout {
        let layout = circuit_by_name("C432").expect("exists").generate();
        prepare(&layout, &DecomposeParams::tpl())
    }

    #[test]
    fn prepare_produces_units() {
        let prep = prep_c432();
        assert_eq!(prep.units.len(), prep.simplified.units().len());
        assert!(!prep.units.is_empty(), "C432 should have surviving units");
        // Unit graphs at feature level match the simplified units.
        for (u, s) in prep.units.iter().zip(prep.simplified.units()) {
            assert_eq!(u.hetero.num_features(), s.graph.num_nodes());
        }
    }

    #[test]
    fn articulation_features_are_never_split() {
        let prep = prep_c432();
        let mut occurrences = std::collections::HashMap::new();
        for unit in prep.simplified.units() {
            for &g in &unit.global_nodes {
                *occurrences.entry(g).or_insert(0usize) += 1;
            }
        }
        for (u, s) in prep.units.iter().zip(prep.simplified.units()) {
            for (local_f, &g) in s.global_nodes.iter().enumerate() {
                if occurrences[&g] > 1 {
                    let subfeatures = (0..u.hetero.num_nodes() as u32)
                        .filter(|&v| u.hetero.feature_of(v) as usize == local_f)
                        .count();
                    assert_eq!(subfeatures, 1, "articulation feature {g} was split");
                }
            }
        }
    }

    #[test]
    fn ilp_pipeline_cost_is_consistent() {
        let prep = prep_c432();
        let params = DecomposeParams::tpl();
        let res = run_pipeline(&prep, &IlpDecomposer::new(), &params);
        let sum = res
            .unit_costs
            .iter()
            .fold(CostBreakdown::default(), |a, &b| a.combine(b));
        assert_eq!(res.cost, sum);
        assert_eq!(
            res.decomposition.feature_colors.len(),
            prep.graph.num_nodes()
        );
        assert!(res
            .decomposition
            .feature_colors
            .iter()
            .all(|&c| c < params.k));
    }

    #[test]
    fn recovered_parent_coloring_has_no_extra_conflicts() {
        // For every conflict edge of the *global* graph whose two features
        // are both unsplit, the recovered colors must differ unless the
        // unit reported that conflict. Simplest sound check: total
        // conflicts of the recovered parent coloring, restricted to
        // unsplit-unsplit edges, is at most the summed unit conflicts.
        let prep = prep_c432();
        let params = DecomposeParams::tpl();
        let res = run_pipeline(&prep, &IlpDecomposer::new(), &params);
        // Which global features got split?
        let mut split = vec![false; prep.graph.num_nodes()];
        for (u, s) in prep.units.iter().zip(prep.simplified.units()) {
            for (local_f, &g) in s.global_nodes.iter().enumerate() {
                let cnt = (0..u.hetero.num_nodes() as u32)
                    .filter(|&v| u.hetero.feature_of(v) as usize == local_f)
                    .count();
                if cnt > 1 {
                    split[g as usize] = true;
                }
            }
        }
        let colors = &res.decomposition.feature_colors;
        let mut parent_conflicts = 0;
        for &(a, b) in prep.graph.conflict_edges() {
            if !split[a as usize] && !split[b as usize] && colors[a as usize] == colors[b as usize]
            {
                parent_conflicts += 1;
            }
        }
        assert!(
            parent_conflicts <= res.cost.conflicts,
            "recovery added conflicts: {parent_conflicts} > {}",
            res.cost.conflicts
        );
    }

    #[test]
    fn parallel_pipeline_matches_serial_cost() {
        let prep = prep_c432();
        let params = DecomposeParams::tpl();
        let serial = run_pipeline(&prep, &IlpDecomposer::new(), &params);
        let parallel = run_pipeline_parallel(&prep, &IlpDecomposer::new(), &params, 4);
        assert_eq!(serial.cost, parallel.cost);
    }
}
