//! Scoped worker-pool scheduling shared by every parallel path in the
//! framework: the single-engine pipeline, the adaptive ILP/EC tail, and
//! offline training-label generation.
//!
//! The scheduling policy is **largest-first work stealing**: job indices
//! are sorted by descending size and workers pull from a shared atomic
//! cursor. Layout decomposition runtime is dominated by a handful of large
//! exact-solver units (Fig. 9 of the paper: ILP decomposes ~2% of units
//! yet dominates end-to-end time), so starting the big units first bounds
//! the tail latency of the whole batch — a worker finishing a large unit
//! back-fills with small ones instead of the reverse.
//!
//! Results are collected **without per-slot locks**: each worker appends
//! `(index, value)` pairs to its own local vector, and the pairs are
//! scattered into an owned `Vec` after the scope joins.
//!
//! Fault isolation: [`run_largest_first_quarantined`] catches each job's
//! panic with `catch_unwind`, so one poisoned unit costs exactly that
//! unit — every other worker's completed result is preserved and returned.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves the default worker count: the `MPLD_THREADS` environment
/// variable if set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    std::env::var("MPLD_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Renders a caught panic payload: `&str` / `String` payloads verbatim,
/// anything else as a placeholder.
pub fn panic_payload_string(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `job(i)` for every `i in 0..n` on up to `threads` scoped workers,
/// scheduling jobs in descending `size(i)` order, and returns the results
/// in index order.
///
/// With `threads <= 1` the jobs run on the calling thread (still in
/// largest-first order, so per-job side effects like timing accumulate in
/// the same schedule regardless of thread count). Worker panics propagate.
pub fn run_largest_first<T, S, J>(n: usize, threads: usize, size: S, job: J) -> Vec<T>
where
    T: Send,
    S: Fn(usize) -> usize,
    J: Fn(usize) -> T + Sync,
{
    let results = run_largest_first_quarantined(n, threads, size, job);
    let mut out = Vec::with_capacity(n);
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(payload) => panic!("{payload}"),
        }
    }
    out
}

/// Panic-quarantining [`run_largest_first`]: each job runs under
/// `catch_unwind`, and the per-index result is `Err(payload)` for a job
/// that panicked instead of tearing down the whole batch.
///
/// One panicking job costs exactly that job — all other results (including
/// those completed by the panicking worker before and after the fault) are
/// preserved. The worker thread itself survives the panic and keeps
/// pulling jobs from the shared cursor.
pub fn run_largest_first_quarantined<T, S, J>(
    n: usize,
    threads: usize,
    size: S,
    job: J,
) -> Vec<Result<T, String>>
where
    T: Send,
    S: Fn(usize) -> usize,
    J: Fn(usize) -> T + Sync,
{
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(size(i)));

    let threads = threads.max(1).min(n.max(1));
    let mut slots: Vec<Option<Result<T, String>>> = (0..n).map(|_| None).collect();

    let guarded = |i: usize| -> Result<T, String> {
        catch_unwind(AssertUnwindSafe(|| job(i))).map_err(|p| panic_payload_string(p.as_ref()))
    };

    if threads <= 1 {
        for &i in &order {
            slots[i] = Some(guarded(i));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let (order_ref, job_ref, cursor_ref) = (&order, &guarded, &cursor);
        let partials: Vec<Vec<(usize, Result<T, String>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let k = cursor_ref.fetch_add(1, Ordering::Relaxed);
                            if k >= n {
                                break;
                            }
                            let i = order_ref[k];
                            local.push((i, job_ref(i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                // Workers cannot panic (every job is caught above), but a
                // defensive join keeps the invariant local.
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        for part in partials {
            for (i, v) in part {
                slots[i] = Some(v);
            }
        }
    }

    #[allow(clippy::expect_used)] // the cursor walks every index exactly once
    slots
        .into_iter()
        .map(|s| s.expect("every job index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Silences the default panic hook while a closure deliberately
    /// panics, restoring it afterwards (hooks are process-global).
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = f();
        std::panic::set_hook(hook);
        r
    }

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 8] {
            let out = run_largest_first(20, threads, |i| i, |i| i * 10);
            assert_eq!(out, (0..20).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = run_largest_first(0, 4, |_| 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_largest_first(
            100,
            8,
            |_| 1,
            |i| {
                counter.fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn single_thread_schedule_is_largest_first() {
        let trace = Mutex::new(Vec::new());
        let sizes = [3usize, 9, 1, 7];
        run_largest_first(4, 1, |i| sizes[i], |i| trace.lock().unwrap().push(i));
        assert_eq!(*trace.lock().unwrap(), vec![1, 3, 0, 2]);
    }

    /// The completed-work-preserved property: a panicking job must not
    /// discard results other workers (or the same worker, before and after
    /// the fault) already produced.
    #[test]
    fn panicking_job_preserves_all_completed_results() {
        for threads in [1, 2, 4] {
            let out: Vec<Result<usize, String>> = with_quiet_panics(|| {
                run_largest_first_quarantined(
                    50,
                    threads,
                    |i| i,
                    |i| {
                        if i == 17 || i == 31 {
                            panic!("injected failure on job {i}");
                        }
                        i * 2
                    },
                )
            });
            assert_eq!(out.len(), 50);
            for (i, r) in out.iter().enumerate() {
                match r {
                    Ok(v) if i != 17 && i != 31 => assert_eq!(*v, i * 2),
                    Err(p) if i == 17 || i == 31 => {
                        assert!(p.contains("injected failure"), "payload: {p}")
                    }
                    other => panic!("job {i} produced {other:?}"),
                }
            }
        }
    }

    #[test]
    fn propagating_wrapper_still_panics() {
        let r = with_quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                run_largest_first(
                    4,
                    1,
                    |_| 1,
                    |i| {
                        if i == 2 {
                            panic!("boom");
                        }
                        i
                    },
                )
            }))
        });
        assert!(
            r.is_err(),
            "run_largest_first keeps the propagating contract"
        );
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
