//! ColorGNN — the pure message-passing decomposer for non-stitch graphs
//! (Section III-B of the paper, Algorithm 1 lines 9–13).
//!
//! Each node carries a belief vector over the `k` masks, initialized
//! randomly. A layer applies the trainable weighted combination of Eq. (5):
//! `c_v' = lambda_C * c_v + lambda_A * sum_{u in N'(v)} c_u`, where `N'`
//! is a random subsample of the conflict neighbors (the randomness helps
//! escape local optima, following the local-algorithms argument the paper
//! cites). After the final layer each node takes the argmax mask; the
//! whole network is executed `iter` times from different random
//! initializations and the cheapest coloring wins.
//!
//! Training minimizes the unsupervised margin loss of Eq. (14): adjacent
//! nodes should have belief vectors at squared distance `>= margin`.

use mpld_graph::{
    Budget, Certainty, DecomposeParams, Decomposer, Decomposition, LayoutGraph, MpldError,
};
use mpld_tensor::{Adjacency, Graph, Matrix, Optimizer, ParamId, ParamSet, VarId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

/// Training hyperparameters for ColorGNN.
#[derive(Debug, Clone, Copy)]
pub struct ColorGnnTrainConfig {
    /// Passes over the training graphs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Margin `m` of Eq. (14).
    pub margin: f32,
    /// Graphs per step: each step runs one tape over the disjoint union
    /// of `batch` graphs. `1` reproduces the per-graph trajectory (and
    /// its RNG stream) bit for bit; larger batches reorder the RNG draws
    /// and the f32 gradient sums, so they train an equivalent but not
    /// bitwise-equal model, several times faster.
    pub batch: usize,
}

impl Default for ColorGnnTrainConfig {
    fn default() -> Self {
        ColorGnnTrainConfig {
            epochs: 40,
            lr: 0.02,
            margin: 1.0,
            batch: 1,
        }
    }
}

/// The ColorGNN decomposer (see module docs).
pub struct ColorGnn {
    params: ParamSet,
    /// `(lambda_C, lambda_A)` per layer.
    lambdas: Vec<(ParamId, ParamId)>,
    restarts: usize,
    /// Probability of keeping each neighbor during sampled aggregation.
    sample_keep: f64,
    /// Interior mutability so `Decomposer::decompose(&self)` can drive the
    /// RNG; a `Mutex` (not `RefCell`) so the model is `Sync` and shareable
    /// across decomposition worker threads.
    state: Mutex<SmallRng>,
}

impl ColorGnn {
    /// Builds the paper's configuration: 10 layers, 5 restarts.
    pub fn new(seed: u64) -> Self {
        Self::with_shape(10, 5, 0.8, seed)
    }

    /// Builds a custom configuration.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0` or `restarts == 0` or `sample_keep` is not
    /// in `(0, 1]`.
    pub fn with_shape(layers: usize, restarts: usize, sample_keep: f64, seed: u64) -> Self {
        assert!(layers > 0, "at least one layer");
        assert!(restarts > 0, "at least one restart");
        assert!(
            sample_keep > 0.0 && sample_keep <= 1.0,
            "keep probability in (0, 1]"
        );
        let mut params = ParamSet::new(Optimizer::Adam);
        let lambdas = (0..layers)
            .map(|_| {
                (
                    params.add(Matrix::from_vec(1, 1, vec![1.0])),
                    params.add(Matrix::from_vec(1, 1, vec![-0.4])),
                )
            })
            .collect();
        ColorGnn {
            params,
            lambdas,
            restarts,
            sample_keep,
            state: Mutex::new(SmallRng::seed_from_u64(seed)),
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.lambdas.len()
    }

    /// Number of restarts (`iter` in Algorithm 1).
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    /// Overrides the restart count.
    pub fn set_restarts(&mut self, restarts: usize) {
        assert!(restarts > 0, "at least one restart");
        self.restarts = restarts;
    }

    /// Resets the sampling RNG to a fresh stream. Decomposition results
    /// depend on the RNG stream, so resetting it before two runs makes
    /// them reproduce each other exactly (used by the parallel-vs-serial
    /// equivalence tests and the perf-baseline harness).
    pub fn reseed(&self, seed: u64) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = SmallRng::seed_from_u64(seed);
    }

    /// Serializes the trained per-layer weights.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn save_weights<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        self.params.write_values(writer)
    }

    /// Restores weights written by [`ColorGnn::save_weights`] into a model
    /// with the same layer count.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the layer counts differ.
    pub fn load_weights<R: std::io::Read>(&mut self, reader: R) -> std::io::Result<()> {
        self.params.read_values(reader)
    }

    /// The current `(lambda_C, lambda_A)` values per layer.
    pub fn lambda_values(&self) -> Vec<(f32, f32)> {
        self.lambdas
            .iter()
            .map(|&(c, a)| (self.params.value(c).scalar(), self.params.value(a).scalar()))
            .collect()
    }

    /// Compiles the current weights into a tape-free inference engine
    /// (the per-layer lambda scalars read out once). The frozen engine
    /// draws from whatever RNG it is handed in exactly the tape path's
    /// order, so the public [`ColorGnn::decompose_batch`] /
    /// [`Decomposer::decompose`] entry points run it against the model's
    /// own RNG stream and stay bit-identical to the tape oracles.
    pub fn freeze(&self) -> crate::FrozenColorGnn {
        crate::FrozenColorGnn::from_parts(self.lambda_values(), self.restarts, self.sample_keep)
    }

    fn sampled_adjacency(&self, graph: &LayoutGraph, rng: &mut SmallRng) -> Arc<Adjacency> {
        let n = graph.num_nodes();
        let fwd = (0..n as u32)
            .map(|v| {
                let ns = graph.conflict_neighbors(v);
                if self.sample_keep >= 1.0 || ns.len() <= 1 {
                    return ns.to_vec();
                }
                let kept: Vec<u32> = ns
                    .iter()
                    .copied()
                    .filter(|_| rng.gen_bool(self.sample_keep))
                    .collect();
                if kept.is_empty() {
                    vec![ns[rng.gen_range(0..ns.len())]]
                } else {
                    kept
                }
            })
            .collect();
        Arc::new(Adjacency::new(fwd))
    }

    fn random_beliefs(n: usize, k: u8, rng: &mut SmallRng) -> Matrix {
        let mut x = Matrix::zeros(n, k as usize);
        for r in 0..n {
            let mut sum = 0.0;
            for c in 0..k as usize {
                let v: f32 = rng.gen_range(0.05..1.0);
                x[(r, c)] = v;
                sum += v;
            }
            for c in 0..k as usize {
                x[(r, c)] /= sum;
            }
        }
        x
    }

    /// One forward pass; returns the final belief var. The binder decides
    /// whether parameters enter the tape as trainable leaves (training) or
    /// frozen constants (inference, which therefore stays `&self`).
    fn forward(
        &self,
        g: &mut Graph,
        graph: &LayoutGraph,
        init: Matrix,
        rng: &mut SmallRng,
        bind: &mut dyn FnMut(&mut Graph, ParamId) -> VarId,
    ) -> VarId {
        let mut x = g.input(init);
        for &(lc, la) in &self.lambdas {
            let adj = self.sampled_adjacency(graph, rng);
            let m = g.agg_sum(x, adj);
            let lcv = bind(g, lc);
            let lav = bind(g, la);
            let own = g.scale_by_scalar(x, lcv);
            let msg = g.scale_by_scalar(m, lav);
            let mixed = g.add(own, msg);
            // Per-layer row normalization keeps the belief dynamics
            // bounded (argmax is invariant to positive row scaling, so
            // inference is unaffected) and removes the degenerate
            // "grow lambda_C" optimum from the margin loss.
            x = g.row_l2_normalize(mixed);
        }
        x
    }

    /// Decomposes many non-stitch graphs in one batched pass over their
    /// disjoint union: each restart runs the network once for all graphs,
    /// and the best coloring is kept *per graph* (strictly better than
    /// per-graph restarts at the same cost).
    ///
    /// Runs on the frozen tape-free engine;
    /// [`ColorGnn::decompose_batch_tape`] is the tape oracle it is
    /// property-tested against.
    ///
    /// # Panics
    ///
    /// Panics if any graph contains stitch edges.
    pub fn decompose_batch(
        &self,
        graphs: &[&LayoutGraph],
        params: &DecomposeParams,
        budget: &Budget,
    ) -> Vec<Decomposition> {
        let mut rng = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.freeze()
            .decompose_batch_with_rng(graphs, params, budget, &mut rng)
    }

    /// The original tape-based batched decomposition, retained as the
    /// correctness oracle for the frozen engine (identical RNG draws,
    /// identical restart schedule — `tests/frozen_equivalence.rs` checks
    /// the outputs match bit for bit).
    ///
    /// # Panics
    ///
    /// Panics if any graph contains stitch edges.
    pub fn decompose_batch_tape(
        &self,
        graphs: &[&LayoutGraph],
        params: &DecomposeParams,
        budget: &Budget,
    ) -> Vec<Decomposition> {
        assert!(
            graphs.iter().all(|g| !g.has_stitches()),
            "ColorGNN handles non-stitch graphs only"
        );
        if graphs.is_empty() {
            return Vec::new();
        }
        let mut rng = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut best: Vec<Option<Decomposition>> = vec![None; graphs.len()];
        // Adaptive restarts: each round only re-runs graphs that still
        // have conflicts, so the later rounds shrink quickly. The first
        // round always runs (every graph needs an incumbent); later
        // rounds stop once the budget expires.
        let mut cut = false;
        let mut active: Vec<usize> = (0..graphs.len()).collect();
        for round in 0..self.restarts {
            if active.is_empty() {
                break;
            }
            if round > 0 && budget.exhausted() {
                cut = true;
                break;
            }
            #[cfg(feature = "failpoints")]
            mpld_graph::failpoints::tick("colorgnn.restart");
            // Union adjacency over the active graphs (conflict only;
            // graphs are homogeneous).
            let mut offsets = Vec::with_capacity(active.len() + 1);
            let mut union_edges: Vec<(u32, u32)> = Vec::new();
            let mut base = 0u32;
            for &gi in &active {
                offsets.push(base as usize);
                union_edges.extend(
                    graphs[gi]
                        .conflict_edges()
                        .iter()
                        .map(|&(a, b)| (a + base, b + base)),
                );
                base += graphs[gi].num_nodes() as u32;
            }
            offsets.push(base as usize);
            #[allow(clippy::expect_used)] // structural invariant
            let union = LayoutGraph::homogeneous(base as usize, union_edges)
                .expect("disjoint union of valid graphs is valid");

            let mut g = Graph::new();
            let init = Self::random_beliefs(base as usize, params.k, &mut rng);
            let x = self.forward(&mut g, &union, init, &mut rng, &mut |g, pid| {
                self.params.bind_frozen(g, pid)
            });
            let beliefs = g.value(x);
            for (ai, &gi) in active.iter().enumerate() {
                let (lo, hi) = (offsets[ai], offsets[ai + 1]);
                let coloring: Vec<u8> = (lo..hi)
                    .map(|r| {
                        beliefs
                            .row(r)
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1.total_cmp(b.1))
                            .map_or(0, |(c, _)| c as u8)
                    })
                    .collect();
                let cand = Decomposition::from_coloring(graphs[gi], coloring, params.alpha);
                let better = match &best[gi] {
                    None => true,
                    Some(b) => cand.cost.better_than(&b.cost, params.alpha),
                };
                if better {
                    best[gi] = Some(cand);
                }
            }
            active.retain(|&gi| best[gi].as_ref().map(|d| d.cost.conflicts) != Some(0));
        }
        let certainty = if cut {
            Certainty::BudgetExhausted
        } else {
            Certainty::Heuristic
        };
        best.into_iter()
            .map(|b| {
                #[allow(clippy::expect_used)] // round 0 always populates every slot
                #[cfg_attr(not(feature = "failpoints"), allow(unused_mut))]
                let mut d = b.expect("restarts > 0").with_certainty(certainty);
                #[cfg(feature = "failpoints")]
                // Stale-cost corruption, caught downstream by the audit.
                mpld_graph::failpoints::corrupt_coloring(
                    "colorgnn.result",
                    &mut d.coloring,
                    params.k,
                );
                d
            })
            .collect()
    }

    /// Trains the per-layer combination weights on `graphs` with the
    /// margin loss. Returns the final epoch's mean loss.
    ///
    /// # Panics
    ///
    /// Panics if `graphs` is empty or any graph contains stitch edges.
    pub fn train(&mut self, graphs: &[&LayoutGraph], k: u8, cfg: &ColorGnnTrainConfig) -> f32 {
        assert!(!graphs.is_empty(), "training set must not be empty");
        assert!(
            graphs.iter().all(|g| !g.has_stitches()),
            "ColorGNN trains on non-stitch graphs"
        );
        let mut rng = self.state.lock().unwrap_or_else(|e| e.into_inner()).clone();
        // Graphs with no nodes or no conflict edges contribute nothing to
        // the margin loss; drop them up front so chunks stay dense. The
        // reported-loss denominator keeps the full set size, matching the
        // per-graph path (which skipped them mid-loop).
        let kept: Vec<&LayoutGraph> = graphs
            .iter()
            .copied()
            .filter(|g| g.num_nodes() > 0 && !g.conflict_edges().is_empty())
            .collect();
        if kept.is_empty() {
            *self.state.lock().unwrap_or_else(|e| e.into_inner()) = rng;
            return 0.0;
        }
        // One disjoint union per step, assembled once and reused across
        // epochs. Single-graph chunks keep the member graph itself so
        // batch=1 draws the exact pre-batching RNG stream (the rebuilt
        // union could order neighbors differently).
        struct Chunk<'a> {
            members: Vec<&'a LayoutGraph>,
            union: Option<LayoutGraph>,
            offsets: Vec<usize>,
            /// Union-offset conflict edges, per-graph-contiguous in
            /// member order.
            edges: Arc<Vec<(u32, u32)>>,
            edge_counts: Vec<usize>,
            total_nodes: usize,
        }
        let chunks: Vec<Chunk> = kept
            .chunks(cfg.batch.max(1))
            .map(|chunk| {
                let mut offsets = vec![0usize];
                let mut edges: Vec<(u32, u32)> = Vec::new();
                let mut edge_counts = Vec::new();
                let mut base = 0u32;
                for g in chunk {
                    edges.extend(
                        g.conflict_edges()
                            .iter()
                            .map(|&(a, b)| (a + base, b + base)),
                    );
                    edge_counts.push(g.conflict_edges().len());
                    base += g.num_nodes() as u32;
                    offsets.push(base as usize);
                }
                let union = if chunk.len() > 1 {
                    #[allow(clippy::expect_used)] // disjoint union of valid graphs
                    Some(
                        LayoutGraph::homogeneous(base as usize, edges.clone())
                            .expect("disjoint union of valid graphs is valid"),
                    )
                } else {
                    None
                };
                Chunk {
                    members: chunk.to_vec(),
                    union,
                    offsets,
                    edges: Arc::new(edges),
                    edge_counts,
                    total_nodes: base as usize,
                }
            })
            .collect();
        // Take the parameter set out of `self` once for the whole run so
        // `forward` (which borrows `&self`) can bind into it mutably.
        let mut params = std::mem::replace(&mut self.params, ParamSet::new(Optimizer::Adam));
        // One tape serves every step; `reset` recycles all its buffers.
        let mut g = Graph::new();
        let mut last = 0.0;
        for _ in 0..cfg.epochs {
            last = 0.0;
            for chunk in &chunks {
                g.reset();
                // Beliefs are drawn per member graph in chunk order, then
                // the per-layer neighbor samplings follow inside `forward`
                // — at batch 1 exactly the pre-batching draw order.
                let init = if chunk.members.len() == 1 {
                    Self::random_beliefs(chunk.total_nodes, k, &mut rng)
                } else {
                    let mut init = Matrix::zeros(chunk.total_nodes, k as usize);
                    for (gi, member) in chunk.members.iter().enumerate() {
                        let block = Self::random_beliefs(member.num_nodes(), k, &mut rng);
                        let (lo, hi) = (chunk.offsets[gi], chunk.offsets[gi + 1]);
                        init.as_mut_slice()[lo * k as usize..hi * k as usize]
                            .copy_from_slice(block.as_slice());
                    }
                    init
                };
                let target: &LayoutGraph = chunk.union.as_ref().unwrap_or(chunk.members[0]);
                let x = self.forward(&mut g, target, init, &mut rng, &mut |g, pid| {
                    params.bind(g, pid)
                });
                // Eq. (14) over the union edges: block-diagonal structure
                // means the scalar is the sum of the per-graph losses and
                // the gradient is their per-block concatenation.
                let loss = g.margin_pair_loss(x, Arc::clone(&chunk.edges), cfg.margin);
                // Per-graph mean losses for reporting: refold each
                // member's edge block from the shared belief matrix in
                // tape order — the same fold the tape ran, so at batch 1
                // this reproduces its scalar bit for bit.
                let beliefs = g.value(x);
                let mut ei = 0usize;
                for &count in &chunk.edge_counts {
                    let mut graph_loss = 0.0f32;
                    for &(u, v) in &chunk.edges[ei..ei + count] {
                        let d2: f32 = beliefs
                            .row(u as usize)
                            .iter()
                            .zip(beliefs.row(v as usize))
                            .map(|(&a, &b)| (a - b) * (a - b))
                            .sum();
                        graph_loss += (cfg.margin - d2).max(0.0);
                    }
                    ei += count;
                    last += graph_loss / count.max(1) as f32;
                }
                g.backward(loss);
                params.apply_grads(&g);
                params.step(cfg.lr);
            }
            last /= graphs.len() as f32;
        }
        self.params = params;
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = rng;
        last
    }

    /// Reference trainer: the pre-batching per-graph loop with a fresh
    /// tape per step. Arithmetic and RNG stream are identical to
    /// [`ColorGnn::train`] at `batch: 1`; this is the baseline side of
    /// the training bench and the bit-identity oracle for the batched
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `graphs` is empty or any graph contains stitch edges.
    #[doc(hidden)]
    pub fn train_reference(
        &mut self,
        graphs: &[&LayoutGraph],
        k: u8,
        cfg: &ColorGnnTrainConfig,
    ) -> f32 {
        assert!(!graphs.is_empty(), "training set must not be empty");
        assert!(
            graphs.iter().all(|g| !g.has_stitches()),
            "ColorGNN trains on non-stitch graphs"
        );
        let mut rng = self.state.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let mut params = std::mem::replace(&mut self.params, ParamSet::new(Optimizer::Adam));
        let mut last = 0.0;
        for _ in 0..cfg.epochs {
            last = 0.0;
            for graph in graphs {
                if graph.num_nodes() == 0 || graph.conflict_edges().is_empty() {
                    continue;
                }
                let mut g = Graph::new();
                let init = Self::random_beliefs(graph.num_nodes(), k, &mut rng);
                let x = self.forward(&mut g, graph, init, &mut rng, &mut |g, pid| {
                    params.bind(g, pid)
                });
                // Eq. (14) on the (already row-normalized) final beliefs.
                let edges = Arc::new(graph.conflict_edges().to_vec());
                let loss = g.margin_pair_loss(x, edges, cfg.margin);
                last += g.value(loss).scalar() / graph.conflict_edges().len().max(1) as f32;
                g.backward(loss);
                params.apply_grads(&g);
                params.step(cfg.lr);
            }
            last /= graphs.len() as f32;
        }
        self.params = params;
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = rng;
        last
    }
}

impl ColorGnn {
    /// The original tape-based single-graph decomposition (Algorithm 1
    /// lines 9–13), retained as the correctness oracle for the frozen
    /// engine behind [`Decomposer::decompose`].
    ///
    /// # Errors
    ///
    /// [`MpldError::Unsupported`] for stitch graphs;
    /// [`MpldError::Infeasible`] when no restart yields a coloring.
    pub fn decompose_tape(
        &self,
        graph: &LayoutGraph,
        params: &DecomposeParams,
        budget: &Budget,
    ) -> Result<Decomposition, MpldError> {
        if graph.has_stitches() {
            return Err(MpldError::Unsupported {
                engine: self.name(),
                reason: "ColorGNN handles non-stitch graphs only; merge stitch edges first".into(),
            });
        }
        let n = graph.num_nodes();
        if n == 0 {
            return Decomposition::try_from_coloring(graph, Vec::new(), params.alpha);
        }
        let mut rng = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut cut = false;
        let mut best: Option<Decomposition> = None;
        for round in 0..self.restarts {
            // The first restart always runs (the anytime contract needs an
            // incumbent); later restarts are skipped once the budget is
            // gone.
            if round > 0 && budget.exhausted() {
                cut = true;
                break;
            }
            #[cfg(feature = "failpoints")]
            mpld_graph::failpoints::tick("colorgnn.restart");
            let mut g = Graph::new();
            let init = Self::random_beliefs(n, params.k, &mut rng);
            // Frozen binds: inference never mutates training state.
            let x = self.forward(&mut g, graph, init, &mut rng, &mut |g, pid| {
                self.params.bind_frozen(g, pid)
            });
            let beliefs = g.value(x);
            let coloring: Vec<u8> = (0..n)
                .map(|r| {
                    let row = beliefs.row(r);
                    row.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map_or(0, |(c, _)| c as u8)
                })
                .collect();
            let cand = Decomposition::try_from_coloring(graph, coloring, params.alpha)?;
            let better = match &best {
                None => true,
                Some(b) => cand.cost.better_than(&b.cost, params.alpha),
            };
            if better {
                best = Some(cand);
            }
            if best.as_ref().map(|b| b.cost.conflicts) == Some(0) {
                break;
            }
        }
        let certainty = if cut {
            Certainty::BudgetExhausted
        } else {
            Certainty::Heuristic
        };
        match best {
            Some(d) => {
                #[cfg_attr(not(feature = "failpoints"), allow(unused_mut))]
                let mut d = d.with_certainty(certainty);
                #[cfg(feature = "failpoints")]
                mpld_graph::failpoints::corrupt_coloring(
                    "colorgnn.result",
                    &mut d.coloring,
                    params.k,
                );
                Ok(d)
            }
            None => Err(MpldError::Infeasible {
                engine: self.name(),
                reason: "no restart produced a coloring".into(),
            }),
        }
    }
}

impl Decomposer for ColorGnn {
    fn name(&self) -> &'static str {
        "ColorGNN"
    }

    /// Algorithm 1 lines 9–13: run the network `iter` times from random
    /// initializations and keep the cheapest argmax coloring.
    ///
    /// Runs on the frozen tape-free engine against the model's own RNG
    /// stream — bit-identical to [`ColorGnn::decompose_tape`] from the
    /// same RNG state.
    ///
    /// Stitch graphs are rejected with [`MpldError::Unsupported`] — merge
    /// them first (the adaptive framework routes only predicted-redundant
    /// graphs here).
    fn decompose(
        &self,
        graph: &LayoutGraph,
        params: &DecomposeParams,
        budget: &Budget,
    ) -> Result<Decomposition, MpldError> {
        let mut rng = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.freeze()
            .decompose_with_rng(graph, params, budget, &mut rng)
    }
}

impl std::fmt::Debug for ColorGnn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColorGnn")
            .field("layers", &self.lambdas.len())
            .field("restarts", &self.restarts)
            .field("sample_keep", &self.sample_keep)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> LayoutGraph {
        let edges = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        LayoutGraph::homogeneous(n, edges).unwrap()
    }

    #[test]
    fn colors_easy_graphs_after_training() {
        let train: Vec<LayoutGraph> = (4..10).map(cycle).collect();
        let refs: Vec<&LayoutGraph> = train.iter().collect();
        let mut gnn = ColorGnn::new(42);
        gnn.train(&refs, 3, &ColorGnnTrainConfig::default());
        let p = DecomposeParams::tpl();
        let mut failures = 0;
        for n in [5usize, 7, 9, 11] {
            let g = cycle(n);
            let d = gnn.decompose_unbounded(&g, &p);
            if d.cost.conflicts != 0 {
                failures += 1;
            }
        }
        assert_eq!(
            failures, 0,
            "trained ColorGNN failed {failures} easy cycles"
        );
    }

    #[test]
    fn untrained_is_still_valid() {
        let g = cycle(6);
        let gnn = ColorGnn::new(1);
        let d = gnn.decompose_unbounded(&g, &DecomposeParams::tpl());
        assert_eq!(d.coloring.len(), 6);
        assert!(d.coloring.iter().all(|&c| c < 3));
    }

    #[test]
    fn empty_graph_ok() {
        let g = LayoutGraph::homogeneous(0, vec![]).unwrap();
        let gnn = ColorGnn::new(1);
        let d = gnn.decompose_unbounded(&g, &DecomposeParams::tpl());
        assert!(d.coloring.is_empty());
    }

    #[test]
    fn rejects_stitch_graphs() {
        let g = LayoutGraph::new(vec![0, 0], vec![], vec![(0, 1)]).unwrap();
        let gnn = ColorGnn::new(1);
        let err = gnn
            .decompose(&g, &DecomposeParams::tpl(), &Budget::unlimited())
            .unwrap_err();
        assert!(matches!(err, MpldError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn training_reduces_margin_loss() {
        let train: Vec<LayoutGraph> = (4..8).map(cycle).collect();
        let refs: Vec<&LayoutGraph> = train.iter().collect();
        let mut gnn = ColorGnn::new(3);
        let first = gnn.train(
            &refs,
            3,
            &ColorGnnTrainConfig {
                epochs: 1,
                lr: 0.02,
                margin: 1.0,
                batch: 1,
            },
        );
        let last = gnn.train(
            &refs,
            3,
            &ColorGnnTrainConfig {
                epochs: 30,
                lr: 0.02,
                margin: 1.0,
                batch: 1,
            },
        );
        assert!(last <= first + 1e-3, "loss went up: {first} -> {last}");
    }

    #[test]
    fn batch_decompose_matches_quality() {
        let train: Vec<LayoutGraph> = (4..10).map(cycle).collect();
        let refs: Vec<&LayoutGraph> = train.iter().collect();
        let mut gnn = ColorGnn::new(21);
        gnn.train(&refs, 3, &ColorGnnTrainConfig::default());
        let tests: Vec<LayoutGraph> = [5usize, 6, 7, 9].iter().map(|&n| cycle(n)).collect();
        let trefs: Vec<&LayoutGraph> = tests.iter().collect();
        let results = gnn.decompose_batch(&trefs, &DecomposeParams::tpl(), &Budget::unlimited());
        assert_eq!(results.len(), tests.len());
        for (g, d) in trefs.iter().zip(&results) {
            assert_eq!(d.coloring.len(), g.num_nodes());
            assert_eq!(d.cost.conflicts, 0, "batched ColorGNN failed a cycle");
        }
    }

    #[test]
    fn lambda_values_exposed() {
        let gnn = ColorGnn::new(0);
        let ls = gnn.lambda_values();
        assert_eq!(ls.len(), 10);
        assert!(ls.iter().all(|&(c, a)| c == 1.0 && a == -0.4));
    }
}
