//! Quickstart: decompose a benchmark layout with a single exact engine.
//!
//! ```sh
//! cargo run --release -p mpld --example quickstart
//! ```

use mpld::{prepare, run_pipeline};
use mpld_graph::{DecomposeParams, Decomposer};
use mpld_ilp::IlpDecomposer;
use mpld_layout::circuit_by_name;

fn main() {
    // 1. Generate the C432 benchmark layout (triple patterning, d = 120nm).
    let params = DecomposeParams::tpl();
    let layout = circuit_by_name("C432").expect("known circuit").generate();
    println!(
        "layout {}: {} features, d = {} nm",
        layout.name,
        layout.features.len(),
        layout.d
    );

    // 2. Preprocess: conflict graph, simplification, stitch insertion.
    let prep = prepare(&layout, &params);
    println!(
        "after simplification: {} independent unit graphs ({} features hidden)",
        prep.units.len(),
        prep.simplified.hidden_nodes().len()
    );

    // 3. Decompose every unit with the exact branch-and-bound engine and
    //    reassemble the full-layout coloring.
    let engine = IlpDecomposer::new();
    let result = run_pipeline(&prep, &engine, &params);
    println!(
        "{} decomposition: {} (objective {:.1}) in {:?}",
        engine.name(),
        result.cost,
        result.cost.value(params.alpha),
        result.decompose_time
    );

    // 4. The reassembled coloring assigns each feature a mask.
    let masks = &result.decomposition.feature_colors;
    let mut histogram = [0usize; 3];
    for &m in masks {
        histogram[m as usize] += 1;
    }
    println!(
        "mask usage: mask0 = {}, mask1 = {}, mask2 = {}",
        histogram[0], histogram[1], histogram[2]
    );
}
