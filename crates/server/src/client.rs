//! Retrying submit client for `mpld-server` (the `mpld submit` CLI).
//!
//! One call to [`submit`] drives a job to completion across transport
//! faults: connect and read timeouts bound every socket operation,
//! `429 Too Many Requests` and connection failures back off
//! exponentially with deterministic jitter, and once the server has
//! acknowledged a job id the client reattaches to the same job after a
//! disconnect — `GET /jobs/<id>` while the server still remembers it,
//! falling back to an idempotent re-`POST` of the identical request
//! (same job id) when it does not, which resumes from the job's journal
//! on a restarted server. The NDJSON event stream replays from the
//! start on every reattach; the caller sees every line via `on_event`
//! and the final `done` line exactly once, as the return value.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Transport and retry tuning for [`submit`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Socket read timeout — the longest tolerated silence between
    /// streamed event lines before the attempt counts as failed.
    pub read_timeout: Duration,
    /// Total connection attempts before giving up.
    pub max_attempts: u32,
    /// First backoff delay; doubles per failed attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(30),
            max_attempts: 8,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            jitter_seed: 0,
        }
    }
}

/// What to decompose: a named benchmark circuit (JSON request body) or a
/// raw layout upload (text body, parameters in the query string).
#[derive(Debug, Clone)]
pub enum SubmitBody {
    /// A benchmark circuit by name (`"C432"`, ...).
    Circuit(String),
    /// Raw layout text in the workspace layout format.
    Upload(String),
}

/// One submission: the payload plus optional seed/budget/job-id pins.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Payload.
    pub body: SubmitBody,
    /// RNG seed (server default when absent).
    pub seed: Option<u64>,
    /// Wall-clock budget in milliseconds (unlimited when absent).
    pub time_limit_ms: Option<u64>,
    /// Client-chosen job id; when absent the server derives one from the
    /// request content and echoes it in the first streamed event.
    pub job_id: Option<String>,
}

/// Result of a completed submission.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// The job id the server settled on.
    pub job_id: String,
    /// The final `done` NDJSON line, verbatim.
    pub done_line: String,
    /// Event lines seen across all attempts (replays included).
    pub events: usize,
    /// Connections opened (1 = clean first-try run).
    pub attempts: u32,
    /// Reattach attempts (`GET /jobs/<id>`) after a dropped stream.
    pub reattaches: u32,
    /// `429` rejections absorbed by backing off.
    pub busy_retries: u32,
}

/// Why a submission gave up.
#[derive(Debug)]
pub enum ClientError {
    /// The server rejected the request with a non-retryable status.
    Rejected {
        /// HTTP status line (e.g. `400 Bad Request`).
        status: String,
        /// Response body.
        body: String,
    },
    /// The job itself failed (the server streamed an `error` event).
    Job {
        /// The error event line, verbatim.
        line: String,
    },
    /// All attempts exhausted without reaching a `done` event.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// Description of the last failure.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Rejected { status, body } => {
                write!(f, "server rejected request: {status}: {}", body.trim())
            }
            ClientError::Job { line } => write!(f, "job failed: {}", line.trim()),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Exponential backoff with deterministic jitter: doubles from
/// `backoff_base` up to `backoff_cap`, scaled by a factor in
/// `[0.5, 1.0)` hashed from `(jitter_seed, attempt)` — reproducible
/// schedules for tests, no thundering herd in fleets.
fn backoff_delay(cfg: &ClientConfig, attempt: u32) -> Duration {
    let exp = cfg
        .backoff_base
        .saturating_mul(1u32 << attempt.min(16))
        .min(cfg.backoff_cap);
    let h = splitmix64(cfg.jitter_seed ^ u64::from(attempt));
    let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
    exp.mul_f64(0.5 + 0.5 * frac)
}

/// Builds the raw `POST /decompose` request bytes for `req`, pinning
/// `job_id` so a re-POST after a disconnect is idempotent.
fn post_request(req: &SubmitRequest, job_id: Option<&str>) -> Vec<u8> {
    let mut query_pairs: Vec<String> = Vec::new();
    if let Some(s) = req.seed {
        query_pairs.push(format!("seed={s}"));
    }
    if let Some(t) = req.time_limit_ms {
        query_pairs.push(format!("time_limit_ms={t}"));
    }
    if let Some(id) = job_id {
        query_pairs.push(format!("job_id={id}"));
    }
    match &req.body {
        SubmitBody::Circuit(name) => {
            let mut fields = vec![format!("\"circuit\":{name:?}")];
            if let Some(s) = req.seed {
                fields.push(format!("\"seed\":{s}"));
            }
            if let Some(t) = req.time_limit_ms {
                fields.push(format!("\"time_limit_ms\":{t}"));
            }
            if let Some(id) = job_id {
                fields.push(format!("\"job_id\":{id:?}"));
            }
            let body = format!("{{{}}}", fields.join(","));
            format!(
                "POST /decompose HTTP/1.1\r\nHost: mpld\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .into_bytes()
        }
        SubmitBody::Upload(text) => {
            let query = if query_pairs.is_empty() {
                String::new()
            } else {
                format!("?{}", query_pairs.join("&"))
            };
            let mut raw = format!(
                "POST /decompose{query} HTTP/1.1\r\nHost: mpld\r\nContent-Length: {}\r\n\r\n",
                text.len()
            )
            .into_bytes();
            raw.extend_from_slice(text.as_bytes());
            raw
        }
    }
}

/// Opens a connection and returns a reader after sending `raw`.
fn open_and_send(cfg: &ClientConfig, raw: &[u8]) -> std::io::Result<BufReader<TcpStream>> {
    let addr = cfg
        .addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::other(format!("unresolvable address {:?}", cfg.addr)))?;
    let mut stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)?;
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_write_timeout(Some(cfg.read_timeout))?;
    stream.write_all(raw)?;
    stream.flush()?;
    Ok(BufReader::new(stream))
}

/// Reads the status line and headers; returns the status line (e.g.
/// `200 OK`).
fn read_status(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let status = status_line
        .trim_end()
        .strip_prefix("HTTP/1.1 ")
        .unwrap_or(status_line.trim_end())
        .to_string();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line.trim_end().is_empty() {
            break;
        }
    }
    Ok(status)
}

fn read_body_capped(reader: &mut BufReader<TcpStream>) -> String {
    let mut body = String::new();
    let _ = reader.take(64 << 10).read_to_string(&mut body);
    body
}

/// Extracts the string value of `"id"` from a `{"event":"job",...}` line.
fn job_event_id(line: &str) -> Option<&str> {
    let rest = &line[line.find("\"id\"")? + 4..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    rest.find('"').map(|end| &rest[..end])
}

/// What one connection attempt produced.
enum Attempt {
    Done(String),
    JobFailed(String),
    Busy,
    AttachMiss,
    Fatal { status: String, body: String },
    Dropped(String),
}

/// Streams one response, feeding events to `on_event` and tracking the
/// acknowledged job id in `job_id`.
fn stream_events(
    reader: &mut BufReader<TcpStream>,
    job_id: &mut Option<String>,
    events: &mut usize,
    on_event: &mut dyn FnMut(&str),
) -> Attempt {
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return Attempt::Dropped("stream ended before done event".to_string()),
            Ok(_) => {}
            Err(e) => return Attempt::Dropped(format!("stream read failed: {e}")),
        }
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        *events += 1;
        on_event(line);
        if line.starts_with("{\"event\":\"job\"") {
            if let Some(id) = job_event_id(line) {
                *job_id = Some(id.to_string());
            }
        } else if line.starts_with("{\"event\":\"done\"") {
            return Attempt::Done(line.to_string());
        } else if line.starts_with("{\"event\":\"error\"") {
            return Attempt::JobFailed(line.to_string());
        }
    }
}

/// Submits `req` and drives it to completion with retries (module docs).
///
/// `on_event` sees every streamed NDJSON line, including replays after a
/// reattach.
///
/// # Errors
///
/// [`ClientError::Rejected`] on a non-retryable HTTP status,
/// [`ClientError::Job`] when the server streams an `error` event, and
/// [`ClientError::Exhausted`] when `max_attempts` connections fail.
pub fn submit(
    cfg: &ClientConfig,
    req: &SubmitRequest,
    on_event: &mut dyn FnMut(&str),
) -> Result<SubmitOutcome, ClientError> {
    let mut job_id: Option<String> = req.job_id.clone();
    // Only reattach once the server has acknowledged the id (the `job`
    // event): a 404 on an unacknowledged id would just waste an attempt.
    let mut acknowledged = false;
    let mut attempts = 0u32;
    let mut reattaches = 0u32;
    let mut busy_retries = 0u32;
    let mut events = 0usize;
    let mut last = String::from("no attempt made");

    while attempts < cfg.max_attempts.max(1) {
        attempts += 1;
        let attach_id = job_id.clone().filter(|_| acknowledged);
        let raw = match &attach_id {
            Some(id) => {
                reattaches += 1;
                format!("GET /jobs/{id} HTTP/1.1\r\nHost: mpld\r\n\r\n").into_bytes()
            }
            None => post_request(req, job_id.as_deref()),
        };

        let outcome = match open_and_send(cfg, &raw) {
            Err(e) => Attempt::Dropped(format!("connect/send failed: {e}")),
            Ok(mut reader) => match read_status(&mut reader) {
                Err(e) => Attempt::Dropped(format!("no response: {e}")),
                Ok(status) if status.starts_with("200") => {
                    let before = events;
                    let a = stream_events(&mut reader, &mut job_id, &mut events, on_event);
                    if events > before {
                        acknowledged = acknowledged || job_id.is_some();
                    }
                    a
                }
                Ok(status) if status.starts_with("429") => Attempt::Busy,
                Ok(status) if status.starts_with("404") && attach_id.is_some() => {
                    Attempt::AttachMiss
                }
                Ok(status) => Attempt::Fatal {
                    body: read_body_capped(&mut reader),
                    status,
                },
            },
        };

        match outcome {
            Attempt::Done(done_line) => {
                return Ok(SubmitOutcome {
                    job_id: job_id.unwrap_or_default(),
                    done_line,
                    events,
                    attempts,
                    reattaches,
                    busy_retries,
                })
            }
            Attempt::JobFailed(line) => return Err(ClientError::Job { line }),
            Attempt::Fatal { status, body } => return Err(ClientError::Rejected { status, body }),
            Attempt::Busy => {
                busy_retries += 1;
                last = "429 queue full".to_string();
                std::thread::sleep(backoff_delay(cfg, attempts));
            }
            Attempt::AttachMiss => {
                // The server no longer remembers the job (restart or
                // eviction): fall back to an idempotent re-POST with the
                // same id, which resumes from the journal if one exists.
                acknowledged = false;
                last = format!("job {job_id:?} unknown to server; re-posting");
            }
            Attempt::Dropped(reason) => {
                last = reason;
                std::thread::sleep(backoff_delay(cfg, attempts));
            }
        }
    }
    Err(ClientError::Exhausted { attempts, last })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_is_capped_and_jittered() {
        let cfg = ClientConfig {
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(2),
            ..ClientConfig::default()
        };
        let d1 = backoff_delay(&cfg, 1);
        let d5 = backoff_delay(&cfg, 5);
        let d16 = backoff_delay(&cfg, 16);
        // Jitter scales into [0.5, 1.0) of the exponential value.
        assert!(d1 >= Duration::from_millis(100) && d1 < Duration::from_millis(200));
        assert!(d5 > d1);
        assert!(d16 <= Duration::from_secs(2), "capped");
        assert_eq!(
            backoff_delay(&cfg, 3),
            backoff_delay(&cfg, 3),
            "deterministic"
        );
    }

    #[test]
    fn post_request_pins_job_id_and_params() {
        let req = SubmitRequest {
            body: SubmitBody::Circuit("C432".to_string()),
            seed: Some(7),
            time_limit_ms: Some(500),
            job_id: None,
        };
        let raw = String::from_utf8(post_request(&req, Some("jid"))).expect("utf8");
        assert!(raw.contains("\"circuit\":\"C432\""));
        assert!(raw.contains("\"seed\":7"));
        assert!(raw.contains("\"time_limit_ms\":500"));
        assert!(raw.contains("\"job_id\":\"jid\""));

        let req = SubmitRequest {
            body: SubmitBody::Upload("layout demo 100\n".to_string()),
            seed: Some(7),
            time_limit_ms: None,
            job_id: None,
        };
        let raw = String::from_utf8(post_request(&req, Some("u1"))).expect("utf8");
        assert!(raw.starts_with("POST /decompose?seed=7&job_id=u1 "));
        assert!(raw.ends_with("layout demo 100\n"));
    }

    #[test]
    fn job_event_id_extracts() {
        assert_eq!(
            job_event_id("{\"event\":\"job\",\"id\":\"j01\",\"journal\":true}"),
            Some("j01")
        );
        assert_eq!(job_event_id("{\"event\":\"job\"}"), None);
    }
}
