//! Scoped worker-pool scheduling shared by every parallel path in the
//! framework: the single-engine pipeline, the adaptive ILP/EC tail, and
//! offline training-label generation.
//!
//! The scheduling policy is **largest-first work stealing**: job indices
//! are sorted by descending size and workers pull from a shared atomic
//! cursor. Layout decomposition runtime is dominated by a handful of large
//! exact-solver units (Fig. 9 of the paper: ILP decomposes ~2% of units
//! yet dominates end-to-end time), so starting the big units first bounds
//! the tail latency of the whole batch — a worker finishing a large unit
//! back-fills with small ones instead of the reverse.
//!
//! Results are collected **without per-slot locks**: each worker appends
//! `(index, value)` pairs to its own local vector, and the pairs are
//! scattered into an owned `Vec` after the scope joins.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves the default worker count: the `MPLD_THREADS` environment
/// variable if set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    std::env::var("MPLD_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Runs `job(i)` for every `i in 0..n` on up to `threads` scoped workers,
/// scheduling jobs in descending `size(i)` order, and returns the results
/// in index order.
///
/// With `threads <= 1` the jobs run on the calling thread (still in
/// largest-first order, so per-job side effects like timing accumulate in
/// the same schedule regardless of thread count). Worker panics propagate.
pub fn run_largest_first<T, S, J>(n: usize, threads: usize, size: S, job: J) -> Vec<T>
where
    T: Send,
    S: Fn(usize) -> usize,
    J: Fn(usize) -> T + Sync,
{
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(size(i)));

    let threads = threads.max(1).min(n.max(1));
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();

    if threads <= 1 {
        for &i in &order {
            slots[i] = Some(job(i));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let (order_ref, job_ref, cursor_ref) = (&order, &job, &cursor);
        let partials: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let k = cursor_ref.fetch_add(1, Ordering::Relaxed);
                            if k >= n {
                                break;
                            }
                            let i = order_ref[k];
                            local.push((i, job_ref(i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        for part in partials {
            for (i, v) in part {
                slots[i] = Some(v);
            }
        }
    }

    #[allow(clippy::expect_used)] // the cursor walks every index exactly once
    slots
        .into_iter()
        .map(|s| s.expect("every job index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 8] {
            let out = run_largest_first(20, threads, |i| i, |i| i * 10);
            assert_eq!(out, (0..20).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = run_largest_first(0, 4, |_| 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_largest_first(
            100,
            8,
            |_| 1,
            |i| {
                counter.fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn single_thread_schedule_is_largest_first() {
        let trace = Mutex::new(Vec::new());
        let sizes = [3usize, 9, 1, 7];
        run_largest_first(4, 1, |i| sizes[i], |i| trace.lock().unwrap().push(i));
        assert_eq!(*trace.lock().unwrap(), vec![1, 3, 0, 2]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
