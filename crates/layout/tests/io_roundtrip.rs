//! Property test: the text interchange format round-trips arbitrary
//! layouts exactly.

use mpld_geometry::{Feature, Rect};
use mpld_layout::{read_layout, write_layout, Layout};
use proptest::prelude::*;

fn arb_layout() -> impl Strategy<Value = Layout> {
    let rect = (-5000i64..5000, -5000i64..5000, 1i64..400, 1i64..400)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h));
    let feature = prop::collection::vec(rect, 1..4);
    (prop::collection::vec(feature, 1..30), 50i64..300).prop_map(|(feats, d)| Layout {
        name: "prop".to_string(),
        d,
        features: feats
            .into_iter()
            .enumerate()
            .map(|(i, rects)| Feature::new(i as u32, rects))
            .collect(),
    })
}

proptest! {
    #[test]
    fn write_read_round_trip(layout in arb_layout()) {
        let mut buf = Vec::new();
        write_layout(&layout, &mut buf).expect("write");
        let back = read_layout(buf.as_slice()).expect("read");
        prop_assert_eq!(back, layout);
    }

    #[test]
    fn written_form_is_line_parseable(layout in arb_layout()) {
        let mut buf = Vec::new();
        write_layout(&layout, &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        // Every non-comment line is one of the four verbs.
        for line in text.lines() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            prop_assert!(
                t.starts_with("layout ")
                    || t.starts_with("feature ")
                    || t.starts_with("rect ")
                    || t == "end",
                "unexpected line {t:?}"
            );
        }
    }
}
