//! Deterministic budget-exhaustion tests for the exact ILP engines,
//! driven by a [`MockClock`] so no real time passes: the clock advances a
//! fixed tick per read, which makes the exact trip point of the
//! branch-and-bound's strided deadline checks reproducible.

use std::sync::Arc;
use std::time::Duration;

use mpld_graph::{
    Budget, Certainty, Clock, DecomposeParams, Decomposer, Decomposition, LayoutGraph, MockClock,
};
use mpld_ilp::encode::BipDecomposer;
use mpld_ilp::IlpDecomposer;

/// An instance whose branch-and-bound search comfortably exceeds one
/// gauge stride (256 nodes) before proving optimality — three disjoint
/// K4s (one unavoidable conflict each, which the bound must prove) plus a
/// 15-cycle — while still solving to optimality in well under a second.
fn hard_instance() -> LayoutGraph {
    let mut edges = Vec::new();
    let mut base = 0u32;
    for _ in 0..3 {
        for a in 0..4u32 {
            for b in (a + 1)..4u32 {
                edges.push((base + a, base + b));
            }
        }
        base += 4;
    }
    let cycle = 15u32;
    for i in 0..cycle {
        edges.push((base + i, base + (i + 1) % cycle));
    }
    LayoutGraph::homogeneous((base + cycle) as usize, edges).expect("valid instance")
}

/// A tiny instance for full-solve comparisons: K4 plus a pentagon.
fn small_instance() -> LayoutGraph {
    let mut edges = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
    for i in 0..5u32 {
        edges.push((4 + i, 4 + (i + 1) % 5));
    }
    LayoutGraph::homogeneous(9, edges).expect("valid instance")
}

fn assert_valid_incumbent(g: &LayoutGraph, d: &Decomposition, k: u8, alpha: f64) {
    assert_eq!(d.coloring.len(), g.num_nodes(), "full coverage");
    assert!(d.coloring.iter().all(|&c| c < k), "colors in 0..k");
    assert_eq!(
        d.cost,
        g.evaluate(&d.coloring, alpha),
        "reported cost must equal the graph's own evaluation"
    );
}

#[test]
fn colorbb_mid_search_expiry_returns_valid_incumbent() {
    let g = hard_instance();
    let params = DecomposeParams::tpl();
    // Each clock read advances 2µs against a 1µs deadline: constructing
    // the budget consumes the t=0 read, so the branch-and-bound's first
    // strided clock read (search node 256) observes 2µs >= 1µs and trips —
    // a deterministic mid-search cut, no real time involved.
    let clock = Arc::new(MockClock::ticking(Duration::from_micros(2)));
    let budget = Budget::with_deadline_on(clock, Duration::from_micros(1));
    let d = IlpDecomposer::new()
        .decompose(&g, &params, &budget)
        .expect("budget exhaustion is not an error");
    assert_eq!(d.certainty, Certainty::BudgetExhausted);
    assert_valid_incumbent(&g, &d, params.k, params.alpha);

    // The same search with no budget proves a cost no worse than the
    // interrupted incumbent's.
    let full = IlpDecomposer::new().decompose_unbounded(&g, &params);
    assert_eq!(full.certainty, Certainty::Certified);
    assert!(full.cost.value(params.alpha) <= d.cost.value(params.alpha));
}

#[test]
fn bip_mid_search_expiry_returns_valid_incumbent() {
    let g = hard_instance();
    let params = DecomposeParams::tpl();
    let clock = Arc::new(MockClock::ticking(Duration::from_micros(2)));
    let budget = Budget::with_deadline_on(clock, Duration::from_micros(1));
    let d = BipDecomposer::new()
        .decompose(&g, &params, &budget)
        .expect("budget exhaustion is not an error");
    assert_eq!(d.certainty, Certainty::BudgetExhausted);
    assert_valid_incumbent(&g, &d, params.k, params.alpha);
}

#[test]
fn already_expired_budget_still_yields_full_coloring() {
    let g = hard_instance();
    let params = DecomposeParams::tpl();
    let clock = Arc::new(MockClock::new());
    let budget = Budget::with_deadline_on(
        Arc::clone(&clock) as Arc<dyn Clock>,
        Duration::from_nanos(1),
    );
    clock.advance(Duration::from_secs(1));
    assert!(budget.exhausted());
    for engine in [
        &IlpDecomposer::new() as &dyn Decomposer,
        &BipDecomposer::new(),
    ] {
        let d = engine
            .decompose(&g, &params, &budget)
            .expect("anytime contract: an expired budget still returns an incumbent");
        assert_eq!(d.certainty, Certainty::BudgetExhausted, "{}", engine.name());
        assert_valid_incumbent(&g, &d, params.k, params.alpha);
    }
}

#[test]
fn node_limit_cuts_search_deterministically() {
    let g = hard_instance();
    let params = DecomposeParams::tpl();
    let budget = Budget::unlimited().and_node_limit(100);
    let d = IlpDecomposer::new()
        .decompose(&g, &params, &budget)
        .expect("node-limit exhaustion is not an error");
    assert_eq!(d.certainty, Certainty::BudgetExhausted);
    assert_valid_incumbent(&g, &d, params.k, params.alpha);
    // Deterministic: the same limit yields the same incumbent.
    let again = IlpDecomposer::new()
        .decompose(&g, &params, &budget)
        .expect("same");
    assert_eq!(again.coloring, d.coloring);
}

#[test]
fn unlimited_budget_is_bit_identical_to_unbounded() {
    let g = small_instance();
    let params = DecomposeParams::tpl();
    for engine in [
        &IlpDecomposer::new() as &dyn Decomposer,
        &BipDecomposer::new(),
    ] {
        let budgeted = engine
            .decompose(&g, &params, &Budget::unlimited())
            .expect("unlimited");
        let unbounded = engine.decompose_unbounded(&g, &params);
        assert_eq!(budgeted.coloring, unbounded.coloring, "{}", engine.name());
        assert_eq!(budgeted.cost, unbounded.cost);
        assert_eq!(budgeted.certainty, unbounded.certainty);
    }
}
