//! Bit-identity contract of the pooled/batched training engines.
//!
//! `train` reuses one scratch-pooled tape and (for ColorGNN) packs graphs
//! into block-diagonal unions; `train_reference` is the pre-pooling loop
//! with a fresh tape per step. Both must produce byte-identical weights
//! and bit-identical reported losses at the same configuration (ColorGNN:
//! at `batch: 1`, which is the default — larger batches reorder the RNG
//! stream and the f32 sums, so they are checked for training efficacy,
//! not bitwise equality).

use mpld_gnn::{ColorGnn, ColorGnnTrainConfig, RgcnClassifier, TrainConfig};
use mpld_graph::{DecomposeParams, Decomposer, LayoutGraph};

fn cycle(n: usize) -> LayoutGraph {
    let edges = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    LayoutGraph::homogeneous(n, edges).unwrap()
}

fn dense(n: usize) -> LayoutGraph {
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    LayoutGraph::homogeneous(n, edges).unwrap()
}

fn weight_bytes_rgcn(model: &RgcnClassifier) -> Vec<u8> {
    let mut buf = Vec::new();
    model.save_weights(&mut buf).unwrap();
    buf
}

fn weight_bytes_color(model: &ColorGnn) -> Vec<u8> {
    let mut buf = Vec::new();
    model.save_weights(&mut buf).unwrap();
    buf
}

#[test]
fn rgcn_pooled_train_matches_reference_bitwise() {
    let graphs: Vec<(LayoutGraph, u8)> = (4..9)
        .flat_map(|n| [(dense(n), 0u8), (cycle(n), 1u8)])
        .collect();
    let data: Vec<(&LayoutGraph, u8)> = graphs.iter().map(|(g, l)| (g, *l)).collect();
    let cfg = TrainConfig {
        epochs: 5,
        lr: 0.01,
        batch: 4,
        balance: true,
    };
    let mut pooled = RgcnClassifier::selector(9);
    let mut reference = RgcnClassifier::selector(9);
    let loss_pooled = pooled.train(&data, &cfg);
    let loss_reference = reference.train_reference(&data, &cfg);
    assert_eq!(
        loss_pooled.to_bits(),
        loss_reference.to_bits(),
        "pooled loss {loss_pooled} != reference loss {loss_reference}"
    );
    assert_eq!(
        weight_bytes_rgcn(&pooled),
        weight_bytes_rgcn(&reference),
        "pooled weights diverged from the fresh-tape reference"
    );
}

#[test]
fn rgcn_max_readout_pooled_matches_reference() {
    // The redundancy head exercises segment-max backward through the
    // pooled argmax buffers.
    let graphs: Vec<(LayoutGraph, u8)> = (4..8)
        .flat_map(|n| [(dense(n), 0u8), (cycle(n), 1u8)])
        .collect();
    let data: Vec<(&LayoutGraph, u8)> = graphs.iter().map(|(g, l)| (g, *l)).collect();
    let cfg = TrainConfig {
        epochs: 3,
        lr: 0.02,
        batch: 3,
        balance: false,
    };
    let mut pooled = RgcnClassifier::redundancy(4);
    let mut reference = RgcnClassifier::redundancy(4);
    let loss_pooled = pooled.train(&data, &cfg);
    let loss_reference = reference.train_reference(&data, &cfg);
    assert_eq!(loss_pooled.to_bits(), loss_reference.to_bits());
    assert_eq!(weight_bytes_rgcn(&pooled), weight_bytes_rgcn(&reference));
}

#[test]
fn colorgnn_batch1_matches_reference_bitwise() {
    // Includes an empty-ish graph (no conflict edges) to check the
    // up-front filter draws the same RNG stream as the mid-loop skip.
    let trivial = LayoutGraph::homogeneous(3, vec![]).unwrap();
    let graphs = [cycle(4), trivial, cycle(5), dense(4), cycle(7)];
    let refs: Vec<&LayoutGraph> = graphs.iter().collect();
    let cfg = ColorGnnTrainConfig {
        epochs: 6,
        lr: 0.02,
        margin: 1.0,
        batch: 1,
    };
    let mut batched = ColorGnn::new(17);
    let mut reference = ColorGnn::new(17);
    let loss_batched = batched.train(&refs, 3, &cfg);
    let loss_reference = reference.train_reference(&refs, 3, &cfg);
    assert_eq!(
        loss_batched.to_bits(),
        loss_reference.to_bits(),
        "batch-1 loss {loss_batched} != reference loss {loss_reference}"
    );
    assert_eq!(
        weight_bytes_color(&batched),
        weight_bytes_color(&reference),
        "batch-1 weights diverged from the per-graph reference"
    );
    // The trained models must also decompose identically from the same
    // RNG state (weights and stream both match).
    batched.reseed(99);
    reference.reseed(99);
    let g = cycle(9);
    let p = DecomposeParams::tpl();
    let a = batched.decompose_unbounded(&g, &p);
    let b = reference.decompose_unbounded(&g, &p);
    assert_eq!(a.coloring, b.coloring);
    assert_eq!(a.cost.conflicts, b.cost.conflicts);
    assert_eq!(a.cost.stitches, b.cost.stitches);
}

#[test]
fn colorgnn_batched_training_still_learns() {
    // batch > 1 reorders RNG draws, so no bitwise contract — but the
    // block-diagonal union must still train the lambdas properly.
    let train: Vec<LayoutGraph> = (4..10).map(cycle).collect();
    let refs: Vec<&LayoutGraph> = train.iter().collect();
    let mut gnn = ColorGnn::new(42);
    let before = gnn.lambda_values();
    let first = gnn.train(
        &refs,
        3,
        &ColorGnnTrainConfig {
            epochs: 1,
            lr: 0.02,
            margin: 1.0,
            batch: 3,
        },
    );
    let last = gnn.train(
        &refs,
        3,
        &ColorGnnTrainConfig {
            epochs: 30,
            lr: 0.02,
            margin: 1.0,
            batch: 3,
        },
    );
    assert!(first.is_finite() && last.is_finite());
    assert!(last <= first + 1e-3, "loss went up: {first} -> {last}");
    assert_ne!(before, gnn.lambda_values(), "lambdas did not move");
    // And the batch-trained model still colors easy cycles.
    let p = DecomposeParams::tpl();
    for n in [5usize, 7, 9] {
        let d = gnn.decompose_unbounded(&cycle(n), &p);
        assert_eq!(d.cost.conflicts, 0, "failed an easy {n}-cycle");
    }
}
