//! The adaptive decomposition framework (Fig. 7 of the paper).
//!
//! Per simplified unit graph, the online flow is:
//!
//! 1. **Graph matching** — small graphs are matched against the
//!    isomorphism-free library; hits return the stored optimal coloring.
//! 2. **Stitch redundancy prediction** — `RGCN_r` predicts whether all
//!    stitch candidates are redundant; above the confidence bar the stitch
//!    edges are merged and the non-stitch parent graph goes to ColorGNN.
//! 3. **Decomposer selection** — otherwise the selector RGCN routes the
//!    graph to the exact ILP engine or the fast EC engine.
//!
//! Runtime is accounted per category so Fig. 9 (runtime breakdown) and
//! Fig. 10 (usage breakdown) can be reproduced.

use crate::parallel::run_largest_first;
use crate::pipeline::{assemble, PipelineResult, PreparedLayout};
use mpld_ec::EcDecomposer;
use mpld_gnn::{ColorGnn, RgcnClassifier};
use mpld_graph::{DecomposeParams, Decomposer, Decomposition, LayoutGraph};
use mpld_ilp::encode::BipDecomposer;
use mpld_matching::{canonical_form_labeled, CanonicalForm, GraphLibrary};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Largest unit eligible for the session memo cache: the exact canonical
/// form in `mpld-matching` is factorial-guarded at 12 nodes.
const MEMO_MAX_NODES: usize = 12;

/// Which engine decomposed a unit (for Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Library graph matching.
    Matching,
    /// The non-stitch GNN decomposer.
    ColorGnn,
    /// Exact ILP.
    Ilp,
    /// Exact cover.
    Ec,
}

/// Usage counts per engine (Fig. 10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UsageBreakdown {
    /// Units decomposed by library matching.
    pub matching: usize,
    /// Units decomposed by ColorGNN.
    pub colorgnn: usize,
    /// Units decomposed by ILP.
    pub ilp: usize,
    /// Units decomposed by EC.
    pub ec: usize,
    /// ColorGNN attempts that left conflicts and fell back to ILP/EC
    /// (engineering guard, documented in DESIGN.md; counted under the
    /// engine that produced the final result).
    pub colorgnn_fallbacks: usize,
}

/// Cumulative runtime per category (Fig. 9).
#[derive(Debug, Clone, Copy, Default)]
pub struct TimingBreakdown {
    /// Embedding + library matching time.
    pub matching: Duration,
    /// Selector inference time.
    pub selection: Duration,
    /// Redundancy-prediction inference time.
    pub redundancy: Duration,
    /// ColorGNN decomposition time.
    pub colorgnn: Duration,
    /// ILP decomposition time.
    pub ilp: Duration,
    /// EC decomposition time.
    pub ec: Duration,
}

impl TimingBreakdown {
    /// Total accounted runtime.
    pub fn total(&self) -> Duration {
        self.matching + self.selection + self.redundancy + self.colorgnn + self.ilp + self.ec
    }
}

/// Result of adaptively decomposing one prepared layout.
#[derive(Debug)]
pub struct AdaptiveResult {
    /// The standard pipeline result (cost, coloring, pure decompose time).
    pub pipeline: PipelineResult,
    /// Engine usage counts.
    pub usage: UsageBreakdown,
    /// Runtime per category.
    pub timing: TimingBreakdown,
    /// Which engine handled each unit.
    pub unit_engines: Vec<EngineKind>,
    /// ILP/EC-tail units resolved by transferring an isomorphic unit's
    /// solution from the session memo cache (parallel path only; always
    /// zero on the serial paths).
    pub memo_hits: usize,
}

/// The trained adaptive framework (see module docs).
pub struct AdaptiveFramework {
    /// Selector RGCN (`RGCN` in the paper).
    pub selector: RgcnClassifier,
    /// Stitch-redundancy RGCN (`RGCN_r`).
    pub redundancy: RgcnClassifier,
    /// The non-stitch GNN decomposer.
    pub colorgnn: ColorGnn,
    /// The isomorphism-free graph library.
    pub library: GraphLibrary,
    /// Exact engine — the same faithful Eq. (3) ILP used as the baseline
    /// column in Tables IV/V, so the framework's speedup comes from
    /// *routing*, not from a faster exact solver.
    pub ilp: BipDecomposer,
    /// Fast engine.
    pub ec: EcDecomposer,
    /// Decomposition parameters (k, alpha).
    pub params: DecomposeParams,
    /// Confidence bar `b` for redundancy prediction (paper: 0.99).
    pub redundancy_bar: f32,
    /// Minimum selector confidence required to route a graph to the
    /// (fast but possibly suboptimal) EC engine (default 0.9); below it the exact ILP
    /// runs. Mirrors the paper's emphasis on perfect ILP recall.
    pub ec_threshold: f32,
    /// Whether ColorGNN is enabled ("Ours w. GNN" vs plain "Ours").
    pub use_colorgnn: bool,
}

impl AdaptiveFramework {
    /// Predicted probability that all stitch candidates of `g` are
    /// redundant.
    pub fn redundancy_confidence(&self, g: &LayoutGraph) -> f32 {
        // Class 0 = "redundant" by the training-label convention.
        self.redundancy.predict(g)[0]
    }

    /// Selector decision for `g`: 0 = ILP, 1 = EC (requires the EC
    /// confidence to clear [`AdaptiveFramework::ec_threshold`]).
    pub fn select_engine(&self, g: &LayoutGraph) -> u8 {
        let p = self.selector.predict(g);
        u8::from(p[1] > self.ec_threshold)
    }

    /// Exact-or-certified decomposition of one unit: when `ec_first`, run
    /// the fast EC engine and accept its result only when it carries an
    /// optimality certificate (see `EcDecomposer::decompose_certified`).
    /// Everything else is decided by (or verified against) the exact ILP.
    /// This is the structural version of the paper's 100%-ILP-recall
    /// selector.
    fn decompose_with_selection(
        &self,
        g: &LayoutGraph,
        ec_first: bool,
        timing: &mut TimingBreakdown,
    ) -> (Decomposition, EngineKind) {
        if ec_first {
            let t = Instant::now();
            let (d, certified) = self.ec.decompose_certified(g, &self.params);
            timing.ec += t.elapsed();
            if certified {
                return (d, EngineKind::Ec);
            }
            // Verify the uncertified EC result against the exact ILP with
            // the EC cost as the branch-and-bound's starting incumbent:
            // `None` proves the EC result optimal without the cold search
            // ever having to rediscover a solution of that quality.
            let t = Instant::now();
            let exact = self.ilp.decompose_below(g, &self.params, &d.cost);
            timing.ilp += t.elapsed();
            if let Some(exact) = exact {
                if exact.cost.better_than(&d.cost, self.params.alpha) {
                    return (exact, EngineKind::Ilp);
                }
            }
            (d, EngineKind::Ec)
        } else {
            let t = Instant::now();
            let d = self.ilp.decompose(g, &self.params);
            timing.ilp += t.elapsed();
            (d, EngineKind::Ilp)
        }
    }

    /// Decomposes one unit graph, returning the decomposition, the engine
    /// used, and whether a ColorGNN fallback occurred.
    fn decompose_unit(
        &self,
        hetero: &LayoutGraph,
        timing: &mut TimingBreakdown,
    ) -> (Decomposition, EngineKind, bool) {
        // 1. Library matching.
        if hetero.num_nodes() <= self.library.max_nodes() {
            let t = Instant::now();
            let hit = self.library.lookup(&self.selector, hetero);
            timing.matching += t.elapsed();
            if let Some(d) = hit {
                return (d, EngineKind::Matching, false);
            }
        }

        // 2. Stitch redundancy → ColorGNN on the merged parent graph.
        let mut fallback = false;
        if self.use_colorgnn {
            let t = Instant::now();
            let redundant = if hetero.has_stitches() {
                self.redundancy_confidence(hetero) > self.redundancy_bar
            } else {
                true // no stitch candidates at all: trivially non-stitch
            };
            timing.redundancy += t.elapsed();
            if redundant {
                let t = Instant::now();
                let (parent, map) = hetero.merge_stitch_edges();
                let pd = self.colorgnn.decompose(&parent, &self.params);
                timing.colorgnn += t.elapsed();
                if pd.cost.conflicts == 0 {
                    // Expand the parent coloring to subfeatures (no stitch
                    // is activated, so the cost carries over exactly).
                    let coloring: Vec<u8> = map.iter().map(|&p| pd.coloring[p as usize]).collect();
                    let d = Decomposition::from_coloring(hetero, coloring, self.params.alpha);
                    return (d, EngineKind::ColorGnn, false);
                }
                // The parent graph may genuinely need conflicts or
                // stitches; defer to the exact engines.
                fallback = true;
            }
        }

        // 3. ILP/EC selection with certified EC acceptance.
        let t = Instant::now();
        let ec_first = fallback || self.select_engine(hetero) == 1;
        timing.selection += t.elapsed();
        let (d, engine) = self.decompose_with_selection(hetero, ec_first, timing);
        (d, engine, fallback)
    }

    /// Adaptively decomposes a prepared layout, one unit at a time (no
    /// batched inference). Mostly useful for comparison with the batched
    /// default, [`AdaptiveFramework::decompose_prepared`].
    pub fn decompose_prepared_unbatched(&self, prep: &PreparedLayout) -> AdaptiveResult {
        let start = Instant::now();
        let mut timing = TimingBreakdown::default();
        let mut usage = UsageBreakdown::default();
        let mut unit_engines = Vec::with_capacity(prep.units.len());
        let mut unit_results = Vec::with_capacity(prep.units.len());
        for unit in &prep.units {
            let (d, engine, fell_back) = self.decompose_unit(&unit.hetero, &mut timing);
            match engine {
                EngineKind::Matching => usage.matching += 1,
                EngineKind::ColorGnn => usage.colorgnn += 1,
                EngineKind::Ilp => usage.ilp += 1,
                EngineKind::Ec => usage.ec += 1,
            }
            if fell_back {
                usage.colorgnn_fallbacks += 1;
            }
            unit_engines.push(engine);
            unit_results.push(d);
        }
        let decompose_time = start.elapsed();
        let pipeline = assemble(prep, &self.params, unit_results, decompose_time);
        AdaptiveResult {
            pipeline,
            usage,
            timing,
            unit_engines,
            memo_hits: 0,
        }
    }

    /// Shared prefix of the batched online flow: one selector pass
    /// (embeddings + ILP/EC probabilities), one redundancy pass, library
    /// matching with the precomputed embeddings, and the batched ColorGNN
    /// run over predicted-redundant units. Returns the routing state with
    /// the ILP/EC tail still unsolved (`unit_results[i] == None`).
    fn route_units(&self, graphs: &[&LayoutGraph], routed: &mut RoutedUnits) {
        let n = graphs.len();
        let timing = &mut routed.timing;

        // Batched selector pass: embeddings (shared with matching) and
        // ILP/EC probabilities.
        let t = Instant::now();
        let embeddings = self.selector.embeddings_batch(graphs);
        routed.selector_probs = self.selector.predict_batch(graphs);
        timing.selection += t.elapsed();

        // Batched redundancy pass.
        let t = Instant::now();
        let redundancy_probs = self.redundancy.predict_batch(graphs);
        timing.redundancy += t.elapsed();

        routed.unit_results = vec![None; n];
        routed.unit_engines = vec![None; n];
        routed.guard_failed = vec![false; n];

        // 1. Library matching with the precomputed embeddings.
        let t = Instant::now();
        for (i, g) in graphs.iter().enumerate() {
            if g.num_nodes() <= self.library.max_nodes() {
                let (emb, nodes) = &embeddings[i];
                if let Some(d) = self.library.lookup_with_embeddings(g, emb, nodes) {
                    routed.unit_results[i] = Some(d);
                    routed.unit_engines[i] = Some(EngineKind::Matching);
                    routed.usage.matching += 1;
                }
            }
        }
        timing.matching += t.elapsed();

        // 2. Predicted-redundant units: merge stitches, batch ColorGNN.
        if self.use_colorgnn {
            let t = Instant::now();
            let mut idx = Vec::new();
            let mut parents = Vec::new();
            let mut maps = Vec::new();
            for (i, g) in graphs.iter().enumerate() {
                if routed.unit_results[i].is_some() || g.num_nodes() == 0 {
                    continue;
                }
                let redundant = !g.has_stitches() || redundancy_probs[i][0] > self.redundancy_bar;
                if redundant {
                    let (parent, map) = g.merge_stitch_edges();
                    idx.push(i);
                    parents.push(parent);
                    maps.push(map);
                }
            }
            let parent_refs: Vec<&LayoutGraph> = parents.iter().collect();
            let results = self.colorgnn.decompose_batch(&parent_refs, &self.params);
            for ((&i, pd), map) in idx.iter().zip(results).zip(&maps) {
                if pd.cost.conflicts == 0 {
                    let coloring: Vec<u8> = map.iter().map(|&p| pd.coloring[p as usize]).collect();
                    let d = Decomposition::from_coloring(graphs[i], coloring, self.params.alpha);
                    routed.unit_results[i] = Some(d);
                    routed.unit_engines[i] = Some(EngineKind::ColorGnn);
                    routed.usage.colorgnn += 1;
                } else {
                    routed.usage.colorgnn_fallbacks += 1;
                    routed.guard_failed[i] = true;
                }
            }
            timing.colorgnn += t.elapsed();
        }
    }

    /// Adaptively decomposes a prepared layout with batched GNN inference
    /// (the paper batches all simplified graphs for efficiency): one RGCN
    /// pass computes embeddings + selector probabilities for every unit,
    /// one `RGCN_r` pass the redundancy confidences, and one batched
    /// ColorGNN run decomposes all predicted-redundant parent graphs.
    pub fn decompose_prepared(&self, prep: &PreparedLayout) -> AdaptiveResult {
        let start = Instant::now();
        let n = prep.units.len();
        let graphs: Vec<&LayoutGraph> = prep.units.iter().map(|u| &u.hetero).collect();
        if n == 0 {
            let pipeline = assemble(prep, &self.params, Vec::new(), start.elapsed());
            return AdaptiveResult {
                pipeline,
                usage: UsageBreakdown::default(),
                timing: TimingBreakdown::default(),
                unit_engines: Vec::new(),
                memo_hits: 0,
            };
        }
        let mut routed = RoutedUnits::default();
        self.route_units(&graphs, &mut routed);
        let RoutedUnits {
            mut unit_results,
            mut unit_engines,
            mut usage,
            mut timing,
            guard_failed,
            selector_probs,
        } = routed;

        // 3. Remaining units (including ColorGNN-guard failures): ILP/EC
        // per the selector, with certified EC acceptance (see
        // `decompose_with_selection`).
        for (i, g) in graphs.iter().enumerate() {
            if unit_results[i].is_some() {
                continue;
            }
            let ec_first = guard_failed[i] || selector_probs[i][1] > self.ec_threshold;
            let (d, engine) = self.decompose_with_selection(g, ec_first, &mut timing);
            match engine {
                EngineKind::Ilp => usage.ilp += 1,
                _ => usage.ec += 1,
            }
            unit_results[i] = Some(d);
            unit_engines[i] = Some(engine);
        }

        let unit_results: Vec<Decomposition> = unit_results
            .into_iter()
            .map(|d| d.expect("every unit decomposed"))
            .collect();
        let unit_engines: Vec<EngineKind> = unit_engines
            .into_iter()
            .map(|e| e.expect("every unit routed"))
            .collect();
        let decompose_time = start.elapsed();
        let pipeline = assemble(prep, &self.params, unit_results, decompose_time);
        AdaptiveResult {
            pipeline,
            usage,
            timing,
            unit_engines,
            memo_hits: 0,
        }
    }

    /// Like [`AdaptiveFramework::decompose_prepared`], but fans the
    /// ILP/EC tail out to `threads` workers scheduled largest-unit-first,
    /// with a session-scoped memo cache: tail units that are isomorphic
    /// (same canonical certificate from `mpld-matching`, same routing
    /// flag) are solved once — the first representative in unit order —
    /// and every other member receives the representative's coloring
    /// transferred through the shared canonical label space, re-verified
    /// against the member's own cost function before acceptance.
    ///
    /// The batched GNN passes (selection, redundancy, matching, ColorGNN)
    /// stay serial: they are a single inference pass each and consume the
    /// ColorGNN RNG stream in unit order, which keeps results independent
    /// of `threads`. Consequently cost, usage and per-unit engines are
    /// identical for any thread count.
    ///
    /// Timing semantics: `timing.ilp`/`timing.ec` sum the *per-unit solver
    /// time* across workers (the paper's Fig. 9/Table V accounting), so
    /// they can exceed the wall-clock `pipeline.decompose_time`, which is
    /// reported separately.
    pub fn decompose_prepared_parallel(
        &self,
        prep: &PreparedLayout,
        threads: usize,
    ) -> AdaptiveResult {
        let start = Instant::now();
        let n = prep.units.len();
        let graphs: Vec<&LayoutGraph> = prep.units.iter().map(|u| &u.hetero).collect();
        if n == 0 {
            let pipeline = assemble(prep, &self.params, Vec::new(), start.elapsed());
            return AdaptiveResult {
                pipeline,
                usage: UsageBreakdown::default(),
                timing: TimingBreakdown::default(),
                unit_engines: Vec::new(),
                memo_hits: 0,
            };
        }
        let mut routed = RoutedUnits::default();
        self.route_units(&graphs, &mut routed);
        let RoutedUnits {
            mut unit_results,
            mut unit_engines,
            mut usage,
            mut timing,
            guard_failed,
            selector_probs,
        } = routed;

        // 3. The ILP/EC tail. `tail` is in unit order; `ecf[t]` is the
        // routing flag of tail unit `t` (it is part of the memo key
        // because it decides which engines may answer).
        let tail: Vec<usize> = (0..n).filter(|&i| unit_results[i].is_none()).collect();
        let ecf: Vec<bool> = tail
            .iter()
            .map(|&i| guard_failed[i] || selector_probs[i][1] > self.ec_threshold)
            .collect();

        // Group memoizable tail units by canonical certificate. A cheap
        // structural fingerprint goes first: isomorphic graphs always share
        // it, so canonicalization — the expensive step — is only paid for
        // units whose fingerprints actually collide. The labeling realizing
        // each certificate is kept for the transfer.
        let mut finger: HashMap<(usize, usize, Vec<u8>, bool), Vec<usize>> = HashMap::new();
        for (t, &i) in tail.iter().enumerate() {
            let g = graphs[i];
            if g.num_nodes() <= MEMO_MAX_NODES {
                let mut degs: Vec<u8> = (0..g.num_nodes() as u32)
                    .map(|v| (g.conflict_degree(v) as u8) << 4 | g.stitch_neighbors(v).len() as u8)
                    .collect();
                degs.sort_unstable();
                finger
                    .entry((
                        g.conflict_edges().len(),
                        g.stitch_edges().len(),
                        degs,
                        ecf[t],
                    ))
                    .or_default()
                    .push(t);
            }
        }
        let mut labelings: Vec<Option<Vec<u8>>> = vec![None; tail.len()];
        let mut groups: HashMap<(CanonicalForm, bool), Vec<usize>> = HashMap::new();
        for bucket in finger.into_values() {
            if bucket.len() < 2 {
                continue;
            }
            for t in bucket {
                let (form, perm) = canonical_form_labeled(graphs[tail[t]]);
                labelings[t] = Some(perm);
                groups.entry((form, ecf[t])).or_default().push(t);
            }
        }
        // Work items: one per certificate group (members in unit order,
        // first member is the representative) plus one singleton per
        // unmemoizable unit. Sorted by representative so scheduling is
        // deterministic.
        let mut items: Vec<Vec<usize>> = groups.into_values().collect();
        items.extend(
            (0..tail.len())
                .filter(|&t| labelings[t].is_none())
                .map(|t| vec![t]),
        );
        items.sort_by_key(|members| members[0]);

        // Solve one representative per item, largest units first.
        let solved: Vec<(Decomposition, EngineKind, TimingBreakdown)> = run_largest_first(
            items.len(),
            threads,
            |j| graphs[tail[items[j][0]]].num_nodes(),
            |j| {
                let mut t = TimingBreakdown::default();
                let rep = items[j][0];
                let (d, engine) =
                    self.decompose_with_selection(graphs[tail[rep]], ecf[rep], &mut t);
                (d, engine, t)
            },
        );

        // Scatter representatives, transfer to the remaining members, and
        // re-verify every transfer against the member's own cost.
        let mut memo_hits = 0usize;
        let mut unverified: Vec<usize> = Vec::new();
        for (members, (d, engine, t)) in items.iter().zip(&solved) {
            timing.ilp += t.ilp;
            timing.ec += t.ec;
            let rep = members[0];
            unit_results[tail[rep]] = Some(d.clone());
            unit_engines[tail[rep]] = Some(*engine);
            for &t_pos in &members[1..] {
                let i = tail[t_pos];
                let rep_perm = labelings[rep].as_ref().expect("grouped units are labeled");
                let mem_perm = labelings[t_pos]
                    .as_ref()
                    .expect("grouped units are labeled");
                let nn = graphs[i].num_nodes();
                let mut canon_colors = vec![0u8; nn];
                for v in 0..nn {
                    canon_colors[rep_perm[v] as usize] = d.coloring[v];
                }
                let coloring: Vec<u8> = (0..nn)
                    .map(|v| canon_colors[mem_perm[v] as usize])
                    .collect();
                let cost = graphs[i].evaluate(&coloring, self.params.alpha);
                if cost == d.cost {
                    unit_results[i] = Some(Decomposition { coloring, cost });
                    unit_engines[i] = Some(*engine);
                    memo_hits += 1;
                } else {
                    // A certificate collision would land here; solve the
                    // member directly rather than trust the transfer.
                    unverified.push(t_pos);
                }
            }
        }
        for t_pos in unverified {
            let i = tail[t_pos];
            let (d, engine) = self.decompose_with_selection(graphs[i], ecf[t_pos], &mut timing);
            unit_results[i] = Some(d);
            unit_engines[i] = Some(engine);
        }
        for &i in &tail {
            match unit_engines[i].expect("every tail unit solved") {
                EngineKind::Ilp => usage.ilp += 1,
                _ => usage.ec += 1,
            }
        }

        let unit_results: Vec<Decomposition> = unit_results
            .into_iter()
            .map(|d| d.expect("every unit decomposed"))
            .collect();
        let unit_engines: Vec<EngineKind> = unit_engines
            .into_iter()
            .map(|e| e.expect("every unit routed"))
            .collect();
        let decompose_time = start.elapsed();
        let pipeline = assemble(prep, &self.params, unit_results, decompose_time);
        AdaptiveResult {
            pipeline,
            usage,
            timing,
            unit_engines,
            memo_hits,
        }
    }
}

/// Routing state produced by [`AdaptiveFramework::route_units`].
#[derive(Default)]
struct RoutedUnits {
    unit_results: Vec<Option<Decomposition>>,
    unit_engines: Vec<Option<EngineKind>>,
    usage: UsageBreakdown,
    timing: TimingBreakdown,
    guard_failed: Vec<bool>,
    selector_probs: Vec<Vec<f32>>,
}

impl std::fmt::Debug for AdaptiveFramework {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveFramework")
            .field("library_size", &self.library.len())
            .field("redundancy_bar", &self.redundancy_bar)
            .field("use_colorgnn", &self.use_colorgnn)
            .field("params", &self.params)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::prepare;
    use crate::training::{train_framework, OfflineConfig, TrainingData};
    use mpld_layout::{circuit_by_name, Layout};

    fn tiny_framework() -> AdaptiveFramework {
        let params = DecomposeParams::tpl();
        let layout = circuit_by_name("C432").expect("exists").generate();
        let prep = prepare(&layout, &params);
        let mut data = TrainingData::default();
        data.add_layout_capped(&prep, &params, 8);
        let mut cfg = OfflineConfig::default();
        cfg.rgcn.epochs = 1;
        cfg.colorgnn.epochs = 1;
        cfg.library = mpld_matching::LibraryConfig {
            max_parent_size: 4,
            max_splits: 1,
            max_nodes: 5,
            stitches: false,
        };
        train_framework(&data, &params, &cfg)
    }

    #[test]
    fn timing_total_sums_categories() {
        let t = TimingBreakdown {
            matching: Duration::from_millis(1),
            selection: Duration::from_millis(2),
            redundancy: Duration::from_millis(3),
            colorgnn: Duration::from_millis(4),
            ilp: Duration::from_millis(5),
            ec: Duration::from_millis(6),
        };
        assert_eq!(t.total(), Duration::from_millis(21));
    }

    #[test]
    fn empty_layout_yields_empty_result() {
        let params = DecomposeParams::tpl();
        // Two far-apart features: no conflicts, no units.
        let layout = Layout {
            name: "empty".into(),
            d: 100,
            features: vec![
                mpld_geometry::Feature::new(0, vec![mpld_geometry::Rect::new(0, 0, 50, 20)]),
                mpld_geometry::Feature::new(
                    1,
                    vec![mpld_geometry::Rect::new(10_000, 0, 10_050, 20)],
                ),
            ],
        };
        let prep = prepare(&layout, &params);
        assert!(prep.units.is_empty());
        let fw = tiny_framework();
        let r = fw.decompose_prepared(&prep);
        assert_eq!(r.pipeline.cost.conflicts, 0);
        assert_eq!(r.usage, UsageBreakdown::default());
        assert!(r.unit_engines.is_empty());
        assert_eq!(r.pipeline.decomposition.feature_colors.len(), 2);
    }

    #[test]
    fn engine_usage_counts_match_units() {
        let params = DecomposeParams::tpl();
        let layout = circuit_by_name("C432").expect("exists").generate();
        let prep = prepare(&layout, &params);
        let fw = tiny_framework();
        let r = fw.decompose_prepared(&prep);
        let u = &r.usage;
        assert_eq!(u.matching + u.colorgnn + u.ilp + u.ec, prep.units.len());
        assert_eq!(r.unit_engines.len(), prep.units.len());
        // Cross-check unit_engines against the counters.
        let count = |k: EngineKind| r.unit_engines.iter().filter(|&&e| e == k).count();
        assert_eq!(count(EngineKind::Matching), u.matching);
        assert_eq!(count(EngineKind::ColorGnn), u.colorgnn);
        assert_eq!(count(EngineKind::Ilp), u.ilp);
        assert_eq!(count(EngineKind::Ec), u.ec);
    }
}
