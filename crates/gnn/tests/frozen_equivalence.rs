//! Property tests: the frozen (tape-free) inference engines are
//! bit-identical to the autodiff-tape oracles.
//!
//! This is the contract that lets the adaptive framework route on frozen
//! inference without changing a single decision: same GEMM microkernel,
//! same accumulation orders, same RNG draw order — so outputs match to
//! the last ulp, not within a tolerance.

use mpld_gnn::{ColorGnn, InferBatch, RgcnClassifier};
use mpld_graph::{Budget, DecomposeParams, Decomposer, LayoutGraph};
use proptest::prelude::*;

/// Random heterogeneous layout graph on 1..=10 nodes: every vertex pair
/// is independently a conflict edge, a stitch edge, or absent — so
/// single-node units and empty-stitch (homogeneous) units both occur.
fn arb_layout() -> impl Strategy<Value = LayoutGraph> {
    (1usize..=10).prop_flat_map(|n| {
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)))
            .collect();
        let np = pairs.len();
        (
            prop::collection::vec(proptest::prelude::prop::bool::ANY, np.max(1)),
            prop::collection::vec(0u32..3, n),
        )
            .prop_map(move |(present, feats)| {
                // A pair's edge type follows the feature labels (the
                // layout-graph invariant: conflicts join different
                // features, stitches join same-feature nodes), so graphs
                // with no stitch edges arise whenever features are all
                // distinct.
                let mut conflict = Vec::new();
                let mut stitch = Vec::new();
                for (&(u, v), &keep) in pairs.iter().zip(&present) {
                    if !keep {
                        continue;
                    }
                    if feats[u as usize] == feats[v as usize] {
                        stitch.push((u, v));
                    } else {
                        conflict.push((u, v));
                    }
                }
                LayoutGraph::new(feats, conflict, stitch).expect("valid random graph")
            })
    })
}

/// Random homogeneous (no-stitch) graph for ColorGNN, which rejects
/// stitch edges.
fn arb_homogeneous() -> impl Strategy<Value = LayoutGraph> {
    (1usize..=9).prop_flat_map(|n| {
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)))
            .collect();
        prop::collection::vec(proptest::prelude::prop::bool::ANY, pairs.len().max(1)).prop_map(
            move |mask| {
                let edges = pairs
                    .iter()
                    .zip(&mask)
                    .filter(|(_, &m)| m)
                    .map(|(&e, _)| e)
                    .collect();
                LayoutGraph::homogeneous(n, edges).expect("valid random graph")
            },
        )
    })
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: element {i} differs: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Router (sum readout, linear head) and redundancy (max readout,
    /// MLP head): frozen single-graph forwards equal the tape bitwise.
    #[test]
    fn frozen_rgcn_single_matches_tape(g in arb_layout(), seed in 0u64..500) {
        for model in [RgcnClassifier::selector(seed), RgcnClassifier::redundancy(seed)] {
            let frozen = model.freeze();
            assert_bits_eq(&frozen.predict(&g), &model.predict(&g), "probs");
            assert_bits_eq(
                &frozen.graph_embedding(&g),
                &model.graph_embedding(&g),
                "graph embedding",
            );
            let fn_nodes = frozen.node_embeddings(&g);
            let tp_nodes = model.node_embeddings(&g);
            prop_assert_eq!(fn_nodes.rows(), tp_nodes.rows());
            assert_bits_eq(fn_nodes.as_slice(), tp_nodes.as_slice(), "node embeddings");
        }
    }

    /// Batched (block-diagonal) frozen forwards equal the tape's batched
    /// forwards bitwise, for both heads, including the single-pass
    /// embeddings that replace the tape's separate second traversal.
    #[test]
    fn frozen_rgcn_batch_matches_tape(
        gs in prop::collection::vec(arb_layout(), 1..5),
        seed in 0u64..500,
    ) {
        let refs: Vec<&LayoutGraph> = gs.iter().collect();
        for model in [RgcnClassifier::selector(seed), RgcnClassifier::redundancy(seed)] {
            let frozen = model.freeze();
            let enc = InferBatch::new(&refs);
            let out = frozen.infer_encoded(&enc);

            let tape_probs = model.predict_batch(&refs);
            prop_assert_eq!(out.probs.len(), tape_probs.len());
            for (f, t) in out.probs.iter().zip(&tape_probs) {
                assert_bits_eq(f, t, "batched probs");
            }

            let tape_embs = model.embeddings_batch(&refs);
            prop_assert_eq!(out.graph_embeddings.len(), tape_embs.len());
            for ((fe, fnodes), (te, tnodes)) in out
                .graph_embeddings
                .iter()
                .zip(&out.node_embeddings)
                .zip(tape_embs.iter().map(|(e, n)| (e, n)))
            {
                assert_bits_eq(fe, te, "batched graph embedding");
                prop_assert_eq!(fnodes.rows(), tnodes.rows());
                assert_bits_eq(fnodes.as_slice(), tnodes.as_slice(), "batched node embeddings");
            }
        }
    }

    /// The batched tape path (which carves per-graph embeddings out of
    /// the batch's node matrix without intermediate copies) agrees
    /// bitwise with the per-graph tape forwards on a batch of one — the
    /// two code paths share every accumulation order.
    #[test]
    fn embeddings_batch_matches_per_graph(g in arb_layout(), seed in 0u64..500) {
        for model in [RgcnClassifier::selector(seed), RgcnClassifier::redundancy(seed)] {
            let batched = model.embeddings_batch(&[&g]);
            prop_assert_eq!(batched.len(), 1);
            let (emb, nodes) = &batched[0];
            assert_bits_eq(emb, &model.graph_embedding(&g), "graph embedding");
            let single_nodes = model.node_embeddings(&g);
            prop_assert_eq!(nodes.rows(), single_nodes.rows());
            assert_bits_eq(nodes.as_slice(), single_nodes.as_slice(), "node embeddings");
        }
    }

    /// ColorGNN: from the same reseeded RNG stream, the frozen engine
    /// (the `Decomposer::decompose` / `decompose_batch` default) and the
    /// tape oracle produce identical colorings, costs and certainty.
    #[test]
    fn frozen_colorgnn_matches_tape(
        gs in prop::collection::vec(arb_homogeneous(), 1..4),
        seed in 0u64..500,
    ) {
        let refs: Vec<&LayoutGraph> = gs.iter().collect();
        let gnn = ColorGnn::new(seed);
        let params = DecomposeParams::tpl();
        let budget = Budget::unlimited();

        gnn.reseed(seed ^ 0xA5);
        let tape = gnn.decompose_batch_tape(&refs, &params, &budget);
        gnn.reseed(seed ^ 0xA5);
        let frozen = gnn.decompose_batch(&refs, &params, &budget);
        prop_assert_eq!(tape.len(), frozen.len());
        for (t, f) in tape.iter().zip(&frozen) {
            prop_assert_eq!(&t.coloring, &f.coloring);
            prop_assert_eq!(t.cost, f.cost);
            prop_assert_eq!(t.certainty, f.certainty);
        }

        // Single-graph path (early exit on conflict-free colorings).
        gnn.reseed(seed ^ 0x3C);
        let t = gnn.decompose_tape(&gs[0], &params, &budget).expect("tape decompose");
        gnn.reseed(seed ^ 0x3C);
        let f = gnn.decompose(&gs[0], &params, &budget).expect("frozen decompose");
        prop_assert_eq!(t.coloring, f.coloring);
        prop_assert_eq!(t.cost, f.cost);
        prop_assert_eq!(t.certainty, f.certainty);
    }
}
