use rand::Rng;
use std::fmt;

/// A dense row-major `f32` matrix — the only tensor shape the MPLD
/// networks need (node-feature matrices `n x d` and weight matrices).
///
/// # Example
///
/// ```
/// use mpld_tensor::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Microkernel row tile: number of output rows whose accumulators stay in
/// registers across the whole k loop.
const MR: usize = 4;
/// Microkernel column tile: sized to a couple of SIMD lanes so the inner
/// loop autovectorizes at the baseline x86-64 target.
const NR: usize = 8;

/// The row-major `C = A * B` kernel shared by [`Matrix::matmul`] and the
/// tape-free [`crate::infer`] primitives. Keeping a single entry point
/// guarantees both paths produce bit-identical results: the frozen
/// inference engine promises outputs that match the autodiff tape to the
/// last ulp, which only holds if they dispatch to the same microkernel.
///
/// `c` is fully overwritten (no accumulate-into semantics).
pub(crate) fn gemm_nn(m: usize, kk: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * kk);
    debug_assert_eq!(b.len(), kk * n);
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if x86::have_avx2_fma() {
        // SAFETY: the AVX2+FMA feature check just passed.
        unsafe { x86::gemm_wide(m, kk, n, a, kk, 1, b, c) };
        return;
    }
    let mut i = 0;
    while i < m {
        let ib = (m - i).min(MR);
        let mut j = 0;
        while j < n {
            let jb = (n - j).min(NR);
            if ib == MR && jb == NR {
                // Full MR x NR microkernel: the C tile lives in local
                // accumulators across the whole k loop, so the inner
                // loop is pure load-a/load-b/FMA and autovectorizes.
                let mut acc = [[0.0f32; NR]; MR];
                for p in 0..kk {
                    let bs = &b[p * n + j..p * n + j + NR];
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = a[(i + r) * kk + p];
                        for (o, &bv) in accr.iter_mut().zip(bs) {
                            *o += av * bv;
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    c[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(accr);
                }
            } else {
                for r in 0..ib {
                    for col in 0..jb {
                        let mut s = 0.0;
                        for p in 0..kk {
                            s += a[(i + r) * kk + p] * b[p * n + j + col];
                        }
                        c[(i + r) * n + j + col] = s;
                    }
                }
            }
            j += jb;
        }
        i += ib;
    }
}

/// Row-major `C = Aᵀ * B` kernel (A stored `kk x m`, read transposed)
/// shared by [`Matrix::matmul_tn`] and the tape's MatMul backward pass.
/// `c` is fully overwritten.
pub(crate) fn gemm_tn(kk: usize, m: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), kk * m);
    debug_assert_eq!(b.len(), kk * n);
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if x86::have_avx2_fma() {
        // SAFETY: the AVX2+FMA feature check just passed. A is read
        // transposed: element (p, row) of the stored matrix, i.e. row
        // stride 1 and p stride `m`.
        unsafe { x86::gemm_wide(m, kk, n, a, 1, m, b, c) };
        return;
    }
    let mut i = 0;
    while i < m {
        let ib = (m - i).min(MR);
        let mut j = 0;
        while j < n {
            let jb = (n - j).min(NR);
            if ib == MR && jb == NR {
                // out[i..i+MR][j..j+NR] += A[p][i..i+MR] (contiguous)
                // x B[p][j..j+NR] (contiguous) summed over p.
                let mut acc = [[0.0f32; NR]; MR];
                for p in 0..kk {
                    let avs = &a[p * m + i..p * m + i + MR];
                    let bs = &b[p * n + j..p * n + j + NR];
                    for (accr, &av) in acc.iter_mut().zip(avs) {
                        for (o, &bv) in accr.iter_mut().zip(bs) {
                            *o += av * bv;
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    c[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(accr);
                }
            } else {
                for r in 0..ib {
                    for col in 0..jb {
                        let mut s = 0.0;
                        for p in 0..kk {
                            s += a[p * m + i + r] * b[p * n + j + col];
                        }
                        c[(i + r) * n + j + col] = s;
                    }
                }
            }
            j += jb;
        }
        i += ib;
    }
}

/// Row-major `C = A * Bᵀ` kernel (B stored `n x kk`, read transposed)
/// shared by [`Matrix::matmul_nt`] and the tape's MatMul backward pass.
/// `c` is fully overwritten.
pub(crate) fn gemm_nt(m: usize, kk: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * kk);
    debug_assert_eq!(b.len(), n * kk);
    debug_assert_eq!(c.len(), m * n);
    let mut i = 0;
    while i < m {
        let ib = (m - i).min(MR);
        let mut j = 0;
        while j < n {
            let jb = (n - j).min(MR);
            if ib == MR && jb == MR {
                // MR x MR tile of dot products: each p contributes MR
                // a-values x MR b-values from contiguous rows of A and
                // B, accumulated in registers.
                let mut acc = [[0.0f32; MR]; MR];
                for p in 0..kk {
                    let mut avs = [0.0f32; MR];
                    let mut bvs = [0.0f32; MR];
                    for r in 0..MR {
                        avs[r] = a[(i + r) * kk + p];
                        bvs[r] = b[(j + r) * kk + p];
                    }
                    for (accr, &av) in acc.iter_mut().zip(&avs) {
                        for (o, &bv) in accr.iter_mut().zip(&bvs) {
                            *o += av * bv;
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    c[(i + r) * n + j..(i + r) * n + j + MR].copy_from_slice(accr);
                }
            } else {
                for r in 0..ib {
                    let arow = &a[(i + r) * kk..(i + r + 1) * kk];
                    for col in 0..jb {
                        let brow = &b[(j + col) * kk..(j + col + 1) * kk];
                        c[(i + r) * n + j + col] =
                            arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
                    }
                }
            }
            j += jb;
        }
        i += ib;
    }
}

/// Name of the GEMM microkernel selected at runtime (`"avx2fma"` or
/// `"scalar"`). Recorded in benchmark artifacts so CI only compares
/// floating-point-sensitive digests between runs on the same kernel.
pub fn kernel_name() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    if x86::have_avx2_fma() {
        return "avx2fma";
    }
    "scalar"
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows * cols"
        );
        Matrix { rows, cols, data }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Xavier/Glorot-style random initialization.
    pub fn glorot<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let scale = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the matrix, returning its backing buffer — the recycling
    /// hook for scratch-pooled callers (the autodiff tape hands op
    /// outputs and gradient buffers back to its free list through this).
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Flat row-major mutable view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`, computed with the register-tiled
    /// kernel ([`Self::matmul_naive`] is the reference oracle).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let (m, kk, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        gemm_nn(m, kk, n, &self.data, &other.data, &mut out.data);
        out
    }

    /// `selfᵀ * other` without materializing the transpose (register-tiled;
    /// [`Self::matmul_tn_naive`] is the reference oracle).
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "row counts must agree for tn product"
        );
        let (kk, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        gemm_tn(kk, m, n, &self.data, &other.data, &mut out.data);
        out
    }

    /// `self * otherᵀ` without materializing the transpose (register-tiled;
    /// [`Self::matmul_nt_naive`] is the reference oracle).
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "col counts must agree for nt product"
        );
        let (m, kk, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        gemm_nt(m, kk, n, &self.data, &other.data, &mut out.data);
        out
    }

    /// Naive triple-loop `self * other` — the property-test reference
    /// oracle for [`Self::matmul`].
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Naive `selfᵀ * other` — the reference oracle for
    /// [`Self::matmul_tn`].
    pub fn matmul_tn_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "row counts must agree for tn product"
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let a = self.data[r * self.cols + i];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[r * other.cols..(r + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Naive `self * otherᵀ` — the reference oracle for
    /// [`Self::matmul_nt`].
    pub fn matmul_nt_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "col counts must agree for nt product"
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let brow = &other.data[j * other.cols..(j + 1) * other.cols];
                out.data[i * other.rows + j] = arow.iter().zip(brow).map(|(&a, &b)| a * b).sum();
            }
        }
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise scaled in-place addition `self += s * other`.
    pub fn add_scaled_assign(&mut self, other: &Matrix, s: f32) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Returns `self` scaled by `s`.
    pub fn scaled(&self, s: f32) -> Matrix {
        let data = self.data.iter().map(|&x| x * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// The single element of a `1 x 1` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `1 x 1`.
    pub fn scalar(&self) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (1, 1),
            "scalar() requires a 1 x 1 matrix"
        );
        self.data[0]
    }
}

/// Runtime-dispatched AVX2+FMA microkernels. The crate compiles at the
/// baseline x86-64 target (SSE2), where the scalar-tiled loops above are
/// compute-bound near the 4-lane peak; on CPUs with 8-lane FMA these
/// kernels roughly triple matmul throughput. Detection is per call and
/// cached by `std::arch`; the scalar-tiled path remains the portable
/// fallback (and the `*_naive` oracles pin both paths in the property
/// tests).
#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    /// Microkernel row tile (output rows held in registers).
    const MR: usize = 4;
    /// Microkernel column tile: two 8-lane AVX registers per output row.
    const NR: usize = 16;

    /// Whether the wide kernels may run on this CPU.
    pub fn have_avx2_fma() -> bool {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }

    /// `C = op(A) * B` for row-major `C` (`m x n`) and `B` (`k x n`),
    /// where `op(A)[r][p] = a[r * a_rs + p * a_ps]` — `(a_rs, a_ps) =
    /// (k, 1)` reads `A` plainly, `(1, m)` reads it transposed, covering
    /// both `matmul` and `matmul_tn` with one kernel.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2+FMA are available ([`have_avx2_fma`]) and
    /// that the slices have the shapes implied by `(m, k, n)`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_wide(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        a_rs: usize,
        a_ps: usize,
        b: &[f32],
        c: &mut [f32],
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let mut i = 0;
        while i + MR <= m {
            let mut j = 0;
            while j + NR <= n {
                // Full MR x NR tile: 8 accumulator registers across the
                // whole k loop; 2 loads + 4 broadcasts + 8 FMAs per step.
                let mut acc = [_mm256_setzero_ps(); 2 * MR];
                for p in 0..k {
                    let brow = bp.add(p * n + j);
                    let b0 = _mm256_loadu_ps(brow);
                    let b1 = _mm256_loadu_ps(brow.add(8));
                    for r in 0..MR {
                        let av = _mm256_set1_ps(*ap.add((i + r) * a_rs + p * a_ps));
                        acc[2 * r] = _mm256_fmadd_ps(av, b0, acc[2 * r]);
                        acc[2 * r + 1] = _mm256_fmadd_ps(av, b1, acc[2 * r + 1]);
                    }
                }
                for r in 0..MR {
                    let crow = cp.add((i + r) * n + j);
                    _mm256_storeu_ps(crow, acc[2 * r]);
                    _mm256_storeu_ps(crow.add(8), acc[2 * r + 1]);
                }
                j += NR;
            }
            if j < n {
                edge_wide(i, MR, j, n, k, ap, a_rs, a_ps, bp, cp);
            }
            i += MR;
        }
        if i < m {
            edge_wide(i, m - i, 0, n, k, ap, a_rs, a_ps, bp, cp);
        }
    }

    /// Ragged-edge rows/columns: plain dot loops, still compiled with
    /// AVX2+FMA enabled so the compiler vectorizes what it can.
    ///
    /// # Safety
    ///
    /// Same contract as [`gemm_wide`]; `[i, i + ib) x [j, n)` must lie
    /// within the output.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn edge_wide(
        i: usize,
        ib: usize,
        j: usize,
        n: usize,
        k: usize,
        ap: *const f32,
        a_rs: usize,
        a_ps: usize,
        bp: *const f32,
        cp: *mut f32,
    ) {
        for r in i..i + ib {
            for col in j..n {
                let mut s = 0.0f32;
                for p in 0..k {
                    s += *ap.add(r * a_rs + p * a_ps) * *bp.add(p * n + col);
                }
                *cp.add(r * n + col) = s;
            }
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::eye(2)), a);
        assert_eq!(Matrix::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[0.0], &[-1.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.scalar(), -2.0);
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 1.0], &[1.0, 1.0, 0.0]]);
        // aᵀ (2x3) * b (3x3) = 2x3
        let tn = a.matmul_tn(&b);
        assert_eq!(tn.rows(), 2);
        assert_eq!(tn.cols(), 3);
        assert_eq!(tn[(0, 0)], 1.0 * 1.0 + 3.0 * 0.0 + 5.0 * 1.0);
        // b (3x3) * aᵀ? shapes: nt of (3x2)*(3x2)ᵀ
        let nt = a.matmul_nt(&a);
        assert_eq!(nt.rows(), 3);
        assert_eq!(nt.cols(), 3);
        assert_eq!(nt[(0, 1)], 1.0 * 3.0 + 2.0 * 4.0);
        assert_eq!(nt[(1, 0)], nt[(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scalar_and_norm() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(m.norm(), 5.0);
        let s = Matrix::from_rows(&[&[7.5]]);
        assert_eq!(s.scalar(), 7.5);
    }

    #[test]
    fn add_scaled() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, -2.0]]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a, Matrix::from_rows(&[&[2.0, 0.0]]));
    }
}
