//! Compare every decomposition engine on one circuit under identical
//! preprocessing — the experiment behind Tables IV/V in miniature.
//!
//! Pass a circuit name to choose the layout:
//!
//! ```sh
//! cargo run --release -p mpld --example decomposer_shootout -- C1355
//! ```

use mpld::{prepare, run_pipeline};
use mpld_ec::EcDecomposer;
use mpld_graph::{DecomposeParams, Decomposer};
use mpld_ilp::encode::BipDecomposer;
use mpld_ilp::IlpDecomposer;
use mpld_layout::circuit_by_name;
use mpld_sdp::SdpDecomposer;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "C880".to_string());
    let circuit = match circuit_by_name(&name) {
        Some(c) => c,
        None => {
            eprintln!("unknown circuit {name}; try C432..C7552 or S1488..S15850");
            std::process::exit(1);
        }
    };
    let params = DecomposeParams::tpl();
    let layout = circuit.generate();
    let prep = prepare(&layout, &params);
    println!(
        "{}: {} features -> {} unit graphs\n",
        layout.name,
        layout.features.len(),
        prep.units.len()
    );

    let engines: Vec<Box<dyn Decomposer>> = vec![
        Box::new(BipDecomposer::new()), // the faithful Eq. 3 ILP
        Box::new(IlpDecomposer::new()), // fast exact branch-and-bound
        Box::new(SdpDecomposer::new()),
        Box::new(EcDecomposer::new()),
    ];
    println!(
        "{:<8} {:>10} {:>6} {:>6} {:>12}",
        "engine", "cost", "cn#", "st#", "runtime"
    );
    for engine in &engines {
        let r = run_pipeline(&prep, engine.as_ref(), &params);
        println!(
            "{:<8} {:>10.1} {:>6} {:>6} {:>12?}",
            engine.name(),
            r.cost.value(params.alpha),
            r.cost.conflicts,
            r.cost.stitches,
            r.decompose_time
        );
    }
    println!("\nILP and ILP-BB agree on the optimum; EC/SDP trade quality for speed.");
}
