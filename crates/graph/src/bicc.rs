//! Biconnected-component decomposition (Tarjan) and block-cut-tree color
//! merging.
//!
//! Splitting a conflict graph at articulation points lets each biconnected
//! block be decomposed independently: conflict edges belong to exactly one
//! block, so the total cost is the sum of block costs, and block colorings
//! can always be reconciled at the shared cut vertex by a color
//! permutation (mask names are interchangeable).

use crate::{LayoutGraph, NodeId};

/// The biconnected structure of a homogeneous conflict graph.
#[derive(Debug, Clone)]
pub struct BlockCutTree {
    /// Each block as a sorted node list. Isolated nodes form singleton
    /// blocks so that every node appears in at least one block.
    pub blocks: Vec<Vec<NodeId>>,
    /// `is_articulation[v]` — whether `v` is a cut vertex.
    pub is_articulation: Vec<bool>,
}

/// Computes the biconnected components of the conflict graph (stitch edges,
/// if any, are ignored — simplification runs before stitch insertion).
///
/// # Example
///
/// ```
/// use mpld_graph::{biconnected_components, LayoutGraph};
/// // Two triangles sharing node 2 ("bow tie"): node 2 is an articulation.
/// let g = LayoutGraph::homogeneous(
///     5,
///     vec![(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)],
/// ).unwrap();
/// let bct = biconnected_components(&g);
/// assert_eq!(bct.blocks.len(), 2);
/// assert!(bct.is_articulation[2]);
/// ```
pub fn biconnected_components(g: &LayoutGraph) -> BlockCutTree {
    let n = g.num_nodes();
    let mut disc = vec![u32::MAX; n];
    let mut low = vec![u32::MAX; n];
    let mut is_articulation = vec![false; n];
    let mut blocks: Vec<Vec<NodeId>> = Vec::new();
    let mut edge_stack: Vec<(NodeId, NodeId)> = Vec::new();
    let mut timer = 0u32;

    struct Frame {
        v: NodeId,
        parent: Option<NodeId>,
        ai: usize,
        skipped_parent: bool,
        children: u32,
    }

    for root in 0..n as u32 {
        if disc[root as usize] != u32::MAX {
            continue;
        }
        if g.conflict_degree(root) == 0 {
            disc[root as usize] = timer;
            timer += 1;
            blocks.push(vec![root]);
            continue;
        }
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        let mut stack = vec![Frame {
            v: root,
            parent: None,
            ai: 0,
            skipped_parent: false,
            children: 0,
        }];
        let mut root_children = 0u32;

        while let Some(frame) = stack.last_mut() {
            let v = frame.v;
            let adj = g.conflict_neighbors(v);
            if frame.ai < adj.len() {
                let w = adj[frame.ai];
                frame.ai += 1;
                if Some(w) == frame.parent && !frame.skipped_parent {
                    frame.skipped_parent = true;
                    continue;
                }
                if disc[w as usize] == u32::MAX {
                    frame.children += 1;
                    if v == root {
                        root_children += 1;
                    }
                    edge_stack.push((v, w));
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    stack.push(Frame {
                        v: w,
                        parent: Some(v),
                        ai: 0,
                        skipped_parent: false,
                        children: 0,
                    });
                } else if disc[w as usize] < disc[v as usize] {
                    // Back edge.
                    edge_stack.push((v, w));
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
            } else {
                // Invariant: a frame is pushed for every visit before this pop.
                #[allow(clippy::expect_used)]
                let finished = stack.pop().expect("frame exists");
                let _ = finished.children;
                if let Some(p) = finished.parent {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                    if low[v as usize] >= disc[p as usize] {
                        if p != root {
                            is_articulation[p as usize] = true;
                        }
                        // Pop the block's edges up to and including (p, v).
                        let mut nodes = Vec::new();
                        while let Some(&(a, b)) = edge_stack.last() {
                            edge_stack.pop();
                            nodes.push(a);
                            nodes.push(b);
                            if (a, b) == (p, v) {
                                break;
                            }
                        }
                        nodes.sort_unstable();
                        nodes.dedup();
                        blocks.push(nodes);
                    }
                }
            }
        }
        if root_children >= 2 {
            is_articulation[root as usize] = true;
        }
    }

    BlockCutTree {
        blocks,
        is_articulation,
    }
}

impl BlockCutTree {
    /// Merges independent per-block colorings into one whole-graph coloring,
    /// permuting block colors so shared articulation vertices agree.
    ///
    /// `block_colorings[i][j]` is the color of `blocks[i][j]`. The merged
    /// coloring preserves every block's internal cost because mask names
    /// are interchangeable.
    ///
    /// # Panics
    ///
    /// Panics if a coloring's length does not match its block, a color is
    /// `>= k`, or `num_nodes` is smaller than the largest block node.
    pub fn merge_colorings(&self, num_nodes: usize, k: u8, block_colorings: &[Vec<u8>]) -> Vec<u8> {
        self.merge_colorings_with_permutations(num_nodes, k, block_colorings)
            .0
    }

    /// Like [`BlockCutTree::merge_colorings`], additionally returning, for
    /// each block, the color permutation that was applied to it
    /// (`perm[old_color] = new_color`). Callers that hold finer-grained
    /// (e.g. subfeature-level) colorings for a block can re-apply the same
    /// permutation to stay consistent with the merged result.
    ///
    /// # Panics
    ///
    /// Same conditions as [`BlockCutTree::merge_colorings`]; additionally
    /// requires `k <= 8`.
    pub fn merge_colorings_with_permutations(
        &self,
        num_nodes: usize,
        k: u8,
        block_colorings: &[Vec<u8>],
    ) -> (Vec<u8>, Vec<[u8; 8]>) {
        assert_eq!(
            block_colorings.len(),
            self.blocks.len(),
            "one coloring per block"
        );
        assert!(k <= 8, "at most 8 masks supported by permutation tracking");
        for (b, c) in self.blocks.iter().zip(block_colorings) {
            assert_eq!(b.len(), c.len(), "coloring length must match block size");
            assert!(c.iter().all(|&x| x < k), "color out of range");
        }
        let identity: [u8; 8] = [0, 1, 2, 3, 4, 5, 6, 7];
        let mut permutations = vec![identity; self.blocks.len()];

        // vertex -> blocks containing it
        let mut blocks_of: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
        for (bi, block) in self.blocks.iter().enumerate() {
            for &v in block {
                blocks_of[v as usize].push(bi);
            }
        }

        let mut global = vec![u8::MAX; num_nodes];
        let mut done = vec![false; self.blocks.len()];
        for start in 0..self.blocks.len() {
            if done[start] {
                continue;
            }
            // BFS over the block-cut tree of this connected region.
            let mut queue = std::collections::VecDeque::from([start]);
            done[start] = true;
            while let Some(bi) = queue.pop_front() {
                let block = &self.blocks[bi];
                let mut colors = block_colorings[bi].clone();
                // Find the (single, by tree structure) already-colored cut
                // vertex, if any, and swap colors to match.
                if let Some(pos) = block.iter().position(|&v| global[v as usize] != u8::MAX) {
                    let want = global[block[pos] as usize];
                    let have = colors[pos];
                    if want != have {
                        for c in colors.iter_mut() {
                            if *c == want {
                                *c = have;
                            } else if *c == have {
                                *c = want;
                            }
                        }
                        let perm = &mut permutations[bi];
                        perm.swap(want as usize, have as usize);
                    }
                }
                for (&v, &c) in block.iter().zip(&colors) {
                    debug_assert!(
                        global[v as usize] == u8::MAX || global[v as usize] == c,
                        "cut vertex color mismatch after permutation"
                    );
                    global[v as usize] = c;
                }
                // Enqueue unprocessed neighbor blocks through cut vertices.
                for &v in block {
                    if self.is_articulation[v as usize] {
                        for &nb in &blocks_of[v as usize] {
                            if !done[nb] {
                                done[nb] = true;
                                queue.push_back(nb);
                            }
                        }
                    }
                }
            }
        }
        // Nodes not in any block cannot exist (isolated nodes get singleton
        // blocks), but be defensive.
        for c in global.iter_mut() {
            if *c == u8::MAX {
                *c = 0;
            }
        }
        (global, permutations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> LayoutGraph {
        let edges = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        LayoutGraph::homogeneous(n, edges).unwrap()
    }

    #[test]
    fn triangle_is_one_block() {
        let g = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let bct = biconnected_components(&g);
        assert_eq!(bct.blocks, vec![vec![0, 1, 2]]);
        assert!(bct.is_articulation.iter().all(|&a| !a));
    }

    #[test]
    fn path_every_edge_is_a_block() {
        let bct = biconnected_components(&path(4));
        let mut blocks = bct.blocks.clone();
        blocks.sort();
        assert_eq!(blocks, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        assert_eq!(bct.is_articulation, vec![false, true, true, false]);
    }

    #[test]
    fn bow_tie_splits_at_center() {
        let g = LayoutGraph::homogeneous(5, vec![(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)])
            .unwrap();
        let bct = biconnected_components(&g);
        assert_eq!(bct.blocks.len(), 2);
        assert!(bct.is_articulation[2]);
        assert_eq!(bct.is_articulation.iter().filter(|&&a| a).count(), 1);
    }

    #[test]
    fn isolated_nodes_are_singleton_blocks() {
        let g = LayoutGraph::homogeneous(3, vec![(0, 1)]).unwrap();
        let bct = biconnected_components(&g);
        let mut blocks = bct.blocks.clone();
        blocks.sort();
        assert_eq!(blocks, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn merge_reconciles_cut_vertex() {
        // Bow tie; color each triangle independently with clashing colors at
        // the cut vertex, then merge.
        let g = LayoutGraph::homogeneous(5, vec![(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)])
            .unwrap();
        let bct = biconnected_components(&g);
        // Identify which block is which.
        let colorings: Vec<Vec<u8>> = bct
            .blocks
            .iter()
            .map(|b| (0..b.len() as u8).collect())
            .collect();
        let merged = bct.merge_colorings(5, 3, &colorings);
        let cost = g.evaluate(&merged, 0.1);
        assert_eq!(cost.conflicts, 0);
    }

    #[test]
    fn merge_preserves_block_costs_on_path() {
        let g = path(5);
        let bct = biconnected_components(&g);
        let colorings: Vec<Vec<u8>> = bct.blocks.iter().map(|_| vec![0, 1]).collect();
        let merged = bct.merge_colorings(5, 3, &colorings);
        assert_eq!(g.evaluate(&merged, 0.1).conflicts, 0);
    }

    #[test]
    #[should_panic(expected = "one coloring per block")]
    fn merge_rejects_wrong_block_count() {
        let bct = biconnected_components(&path(3));
        let _ = bct.merge_colorings(3, 3, &[vec![0, 1]]);
    }
}
