//! Suite-level guarantee of the quantized routing tier: under `F16` or
//! `Int8` precision, every routing *decision* — engine choice, cost,
//! per-unit engine assignment — is identical to the f32 run. The trust
//! ladder (library pinning + margin-gated f32 re-inference) is what makes
//! that hold; these tests assert both the equality and the ladder's
//! bookkeeping, plus (behind `--features failpoints`) that a forced
//! distrust storm routes every quantized unit through the f32 fallback.

use mpld::{prepare, train_framework, AdaptiveFramework, OfflineConfig, Precision, TrainingData};
use mpld_graph::DecomposeParams;
use mpld_layout::iscas_suite;

fn trained_framework(params: &DecomposeParams) -> (AdaptiveFramework, Vec<mpld::PreparedLayout>) {
    let suite = iscas_suite();
    let preps: Vec<_> = suite[..3]
        .iter()
        .map(|c| prepare(&c.generate(), params))
        .collect();
    let mut data = TrainingData::default();
    for p in &preps {
        data.add_layout_capped(p, params, 30);
    }
    let mut cfg = OfflineConfig::default();
    cfg.rgcn.epochs = 2;
    cfg.colorgnn.epochs = 1;
    (train_framework(&data, params, &cfg), preps)
}

#[test]
fn quantized_routing_matches_f32_decisions() {
    let params = DecomposeParams::tpl();
    let (mut fw, preps) = trained_framework(&params);

    for prep in &preps {
        // ColorGNN keeps a persistent sampling RNG; pin it per run so the
        // compared runs see the same schedule (precision never touches
        // ColorGNN, but the RNG advances across calls).
        fw.precision = Precision::F32;
        fw.colorgnn.reseed(42);
        let base = fw.decompose_prepared(prep);
        assert_eq!(base.inference.precision, Precision::F32);
        assert_eq!(base.inference.quantized_units, 0);
        assert_eq!(base.inference.f32_fallbacks, 0);

        for precision in [Precision::F16, Precision::Int8] {
            fw.precision = precision;
            fw.colorgnn.reseed(42);
            let q = fw.decompose_prepared(prep);

            // The tier's contract: identical decisions and cost, not
            // merely similar ones.
            assert_eq!(
                q.pipeline.cost, base.pipeline.cost,
                "{precision} cost diverged from f32"
            );
            assert_eq!(
                q.unit_engines, base.unit_engines,
                "{precision} routed a unit to a different engine"
            );
            assert_eq!(q.usage, base.usage, "{precision} usage breakdown diverged");

            // Trust-ladder bookkeeping: every representative is in
            // exactly one lane, and the planner actually planned.
            let s = &q.inference;
            assert_eq!(s.precision, precision);
            assert_eq!(
                s.quantized_units + s.f32_fallbacks + s.pinned_f32,
                s.units_inferred,
                "lane counts must partition the representatives"
            );
            assert!(
                s.quantized_units > 0,
                "{precision}: no unit actually ran quantized"
            );
            assert!(s.batches_planned >= 1);
            assert!(!s.kernel_f32.is_empty() && !s.kernel_quant.is_empty());
            assert_ne!(
                s.kernel_quant, s.kernel_f32,
                "{precision} must report a distinct quantized kernel"
            );
            assert!(
                s.padding_waste_after_bytes <= s.padding_waste_before_bytes,
                "bucketed plan must not raise peak scratch"
            );
            assert_eq!(s.memo_hits, base.inference.memo_hits);
            assert_eq!(s.units_inferred, base.inference.units_inferred);
        }
    }
}

#[test]
fn planner_reduces_padding_waste_on_real_layouts() {
    let params = DecomposeParams::tpl();
    let (fw, preps) = trained_framework(&params);
    // On a real circuit the units span size bands, so the bucketed plan's
    // peak batch must be strictly smaller than the old single union.
    let r = fw.decompose_prepared(&preps[0]);
    assert!(r.inference.batches_planned > 1, "expected multiple batches");
    assert!(r.inference.padding_waste_after_bytes < r.inference.padding_waste_before_bytes);
}

/// With fault injection at rate 1.0, the `route.quant_trust` failpoint
/// distrusts *every* quantized score: each one must be transparently
/// re-inferred at f32 (counted as fallbacks, zero trusted quantized
/// units) and the layout must still come out whole.
#[cfg(feature = "failpoints")]
#[test]
fn forced_distrust_falls_back_every_quantized_unit() {
    let params = DecomposeParams::tpl();
    let (mut fw, preps) = trained_framework(&params);
    fw.precision = Precision::Int8;

    mpld_graph::failpoints::configure(7, 1.0);
    let r = fw.decompose_prepared(&preps[0]);
    mpld_graph::failpoints::disable();

    let s = &r.inference;
    assert!(s.f32_fallbacks > 0, "no forced fallback fired");
    assert_eq!(s.quantized_units, 0, "a distrusted unit stayed quantized");
    assert_eq!(s.f32_fallbacks + s.pinned_f32, s.units_inferred);
    assert_eq!(r.unit_engines.len(), preps[0].units.len());
}
