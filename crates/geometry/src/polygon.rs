//! Rectilinear polygons and their rectangle decomposition.
//!
//! Layout features in real flows arrive as polygon point lists (GDSII
//! boundaries). [`Polygon`] validates a simple rectilinear boundary and
//! [`Polygon::to_rects`] produces the horizontal-slab rectangle
//! decomposition that the rest of the workspace consumes.

use crate::Rect;
use std::fmt;

/// Error validating a polygon boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than 4 vertices.
    TooFewVertices(usize),
    /// An edge is neither horizontal nor vertical.
    NotRectilinear { from: (i64, i64), to: (i64, i64) },
    /// Two consecutive vertices coincide.
    ZeroLengthEdge((i64, i64)),
    /// The decomposition found an odd number of crossings — the boundary
    /// self-intersects or is not a simple cycle.
    NotSimple,
}

impl fmt::Display for PolygonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolygonError::TooFewVertices(n) => write!(f, "polygon needs >= 4 vertices, got {n}"),
            PolygonError::NotRectilinear { from, to } => {
                write!(f, "edge {from:?} -> {to:?} is not axis-aligned")
            }
            PolygonError::ZeroLengthEdge(p) => write!(f, "zero-length edge at {p:?}"),
            PolygonError::NotSimple => write!(f, "polygon boundary is not simple"),
        }
    }
}

impl std::error::Error for PolygonError {}

/// A simple rectilinear polygon given by its boundary vertices (the
/// closing edge back to the first vertex is implicit).
///
/// # Example
///
/// ```
/// use mpld_geometry::Polygon;
/// // An L-shape.
/// let poly = Polygon::new(vec![
///     (0, 0), (30, 0), (30, 10), (10, 10), (10, 30), (0, 30),
/// ])?;
/// let rects = poly.to_rects()?;
/// let area: i64 = rects.iter().map(|r| r.area()).sum();
/// assert_eq!(area, 30 * 10 + 10 * 20);
/// # Ok::<(), mpld_geometry::PolygonError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Polygon {
    vertices: Vec<(i64, i64)>,
}

impl Polygon {
    /// Validates and creates a rectilinear polygon.
    ///
    /// # Errors
    ///
    /// Returns a [`PolygonError`] when the boundary is too short, has a
    /// diagonal or zero-length edge.
    pub fn new(vertices: Vec<(i64, i64)>) -> Result<Self, PolygonError> {
        if vertices.len() < 4 {
            return Err(PolygonError::TooFewVertices(vertices.len()));
        }
        for i in 0..vertices.len() {
            let a = vertices[i];
            let b = vertices[(i + 1) % vertices.len()];
            if a == b {
                return Err(PolygonError::ZeroLengthEdge(a));
            }
            if a.0 != b.0 && a.1 != b.1 {
                return Err(PolygonError::NotRectilinear { from: a, to: b });
            }
        }
        Ok(Polygon { vertices })
    }

    /// The boundary vertices.
    pub fn vertices(&self) -> &[(i64, i64)] {
        &self.vertices
    }

    /// Decomposes the interior into non-overlapping rectangles by
    /// horizontal slabs.
    ///
    /// # Errors
    ///
    /// Returns [`PolygonError::NotSimple`] if the boundary self-intersects
    /// (odd crossing count in some slab).
    pub fn to_rects(&self) -> Result<Vec<Rect>, PolygonError> {
        // Vertical edges as (x, ylo, yhi).
        let mut verticals: Vec<(i64, i64, i64)> = Vec::new();
        let mut ys: Vec<i64> = Vec::new();
        for i in 0..self.vertices.len() {
            let (x1, y1) = self.vertices[i];
            let (x2, y2) = self.vertices[(i + 1) % self.vertices.len()];
            ys.push(y1);
            if x1 == x2 {
                verticals.push((x1, y1.min(y2), y1.max(y2)));
            }
        }
        ys.sort_unstable();
        ys.dedup();

        let mut rects = Vec::new();
        for slab in ys.windows(2) {
            let (ylo, yhi) = (slab[0], slab[1]);
            // Vertical edges fully spanning this slab, sorted by x.
            let mut xs: Vec<i64> = verticals
                .iter()
                .filter(|&&(_, lo, hi)| lo <= ylo && hi >= yhi)
                .map(|&(x, _, _)| x)
                .collect();
            xs.sort_unstable();
            if !xs.len().is_multiple_of(2) {
                return Err(PolygonError::NotSimple);
            }
            for pair in xs.chunks(2) {
                if pair[0] < pair[1] {
                    rects.push(Rect::new(pair[0], ylo, pair[1], yhi));
                }
            }
        }
        if rects.is_empty() {
            return Err(PolygonError::NotSimple);
        }
        Ok(rects)
    }

    /// Interior area (via the rectangle decomposition).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Polygon::to_rects`].
    pub fn area(&self) -> Result<i64, PolygonError> {
        Ok(self.to_rects()?.iter().map(Rect::area).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangle_decomposes_to_itself() {
        let p = Polygon::new(vec![(0, 0), (10, 0), (10, 5), (0, 5)]).unwrap();
        assert_eq!(p.to_rects().unwrap(), vec![Rect::new(0, 0, 10, 5)]);
    }

    #[test]
    fn l_shape_decomposes_exactly() {
        let p = Polygon::new(vec![(0, 0), (30, 0), (30, 10), (10, 10), (10, 30), (0, 30)]).unwrap();
        let rects = p.to_rects().unwrap();
        let area: i64 = rects.iter().map(Rect::area).sum();
        assert_eq!(area, 300 + 200);
        // Non-overlapping.
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                let overlap_w = (a.xh.min(b.xh) - a.xl.max(b.xl)).max(0);
                let overlap_h = (a.yh.min(b.yh) - a.yl.max(b.yl)).max(0);
                assert_eq!(overlap_w * overlap_h, 0, "rects overlap: {a:?} {b:?}");
            }
        }
    }

    #[test]
    fn u_shape_has_two_arms() {
        // U: outer 30x30 with a 10-wide notch from the top.
        let p = Polygon::new(vec![
            (0, 0),
            (30, 0),
            (30, 30),
            (20, 30),
            (20, 10),
            (10, 10),
            (10, 30),
            (0, 30),
        ])
        .unwrap();
        let area = p.area().unwrap();
        assert_eq!(area, 30 * 30 - 10 * 20);
        // The top slab must contain two disjoint rectangles (the arms).
        let rects = p.to_rects().unwrap();
        let top_rects = rects.iter().filter(|r| r.yl >= 10).count();
        assert!(top_rects >= 2);
    }

    #[test]
    fn clockwise_and_counterclockwise_agree() {
        let ccw = Polygon::new(vec![(0, 0), (10, 0), (10, 5), (0, 5)]).unwrap();
        let cw = Polygon::new(vec![(0, 0), (0, 5), (10, 5), (10, 0)]).unwrap();
        assert_eq!(ccw.area().unwrap(), cw.area().unwrap());
    }

    #[test]
    fn diagonal_edge_rejected() {
        assert!(matches!(
            Polygon::new(vec![(0, 0), (10, 10), (10, 0), (0, 5)]),
            Err(PolygonError::NotRectilinear { .. })
        ));
    }

    #[test]
    fn too_few_vertices_rejected() {
        assert_eq!(
            Polygon::new(vec![(0, 0), (1, 0), (1, 1)]),
            Err(PolygonError::TooFewVertices(3))
        );
    }

    #[test]
    fn zero_length_edge_rejected() {
        assert!(matches!(
            Polygon::new(vec![(0, 0), (0, 0), (10, 0), (10, 5)]),
            Err(PolygonError::ZeroLengthEdge(_))
        ));
    }
}
