//! A small exact 0-1 integer linear program (BIP) solver.
//!
//! Minimizes `c^T x` over binary `x` subject to linear constraints
//! `a^T x <= b`, by depth-first branch and bound with unit propagation and
//! an objective lower bound. It is deliberately simple — its job in this
//! workspace is to solve the faithful TPLD encoding (see [`crate::encode`])
//! on small component graphs and cross-validate the specialized engine.
//!
//! # Example
//!
//! ```
//! use mpld_ilp::bip::Bip;
//!
//! // min x0 + 2 x1  s.t.  x0 + x1 >= 1  (written as -x0 - x1 <= -1)
//! let mut m = Bip::new(2);
//! m.set_objective(0, 1);
//! m.set_objective(1, 2);
//! m.add_constraint(vec![(0, -1), (1, -1)], -1);
//! let sol = m.solve().expect("feasible");
//! assert_eq!(sol.objective, 1);
//! assert!(sol.values[0] && !sol.values[1]);
//! ```

use mpld_graph::{Budget, BudgetGauge};

/// A linear constraint `sum(coef * x_var) <= bound`.
#[derive(Debug, Clone)]
struct Constraint {
    terms: Vec<(usize, i64)>,
    bound: i64,
}

/// A 0-1 integer linear program (minimization).
#[derive(Debug, Clone, Default)]
pub struct Bip {
    num_vars: usize,
    objective: Vec<i64>,
    constraints: Vec<Constraint>,
}

/// An optimal solution found by [`Bip::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipSolution {
    /// Variable assignment.
    pub values: Vec<bool>,
    /// Objective value `c^T x`.
    pub objective: i64,
}

impl Bip {
    /// Creates a model with `num_vars` binary variables and zero objective.
    pub fn new(num_vars: usize) -> Self {
        Bip {
            num_vars,
            objective: vec![0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the objective coefficient of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn set_objective(&mut self, var: usize, coef: i64) {
        assert!(var < self.num_vars, "variable out of range");
        self.objective[var] = coef;
    }

    /// Adds the constraint `sum(coef * x_var) <= bound`.
    ///
    /// # Panics
    ///
    /// Panics if any variable is out of range or appears twice.
    pub fn add_constraint(&mut self, terms: Vec<(usize, i64)>, bound: i64) {
        let mut seen = std::collections::HashSet::new();
        for &(v, _) in &terms {
            assert!(v < self.num_vars, "variable out of range");
            assert!(seen.insert(v), "variable repeated in constraint");
        }
        self.constraints.push(Constraint { terms, bound });
    }

    /// Solves the program to optimality.
    ///
    /// Returns `None` when the constraints are infeasible.
    pub fn solve(&self) -> Option<BipSolution> {
        self.solve_bounded(None)
    }

    /// Solves to optimality among solutions with objective strictly below
    /// `cutoff` (when given). Returns `None` when no such solution exists —
    /// which, with `cutoff` set to the objective of a known feasible
    /// solution, is a proof that the known solution is already optimal.
    ///
    /// The cutoff acts as an incumbent the search starts with: branches
    /// whose objective lower bound reaches it are pruned immediately, so
    /// proving a near-optimal warm start optimal is far cheaper than a cold
    /// solve that must first stumble onto a good leaf before it can prune.
    pub fn solve_bounded(&self, cutoff: Option<i64>) -> Option<BipSolution> {
        self.solve_under(cutoff, &Budget::unlimited()).0
    }

    /// Budgeted [`Bip::solve_bounded`]: searches among solutions strictly
    /// below `cutoff` until the tree is exhausted or `budget` expires.
    ///
    /// Returns the best solution found (if any) and whether the search was
    /// cut short. When the flag is `false`, the result carries the same
    /// optimality guarantee as [`Bip::solve_bounded`]; when `true`, the
    /// returned solution (if any) is the best-so-far incumbent. With an
    /// unlimited budget the search is bit-identical to `solve_bounded`.
    pub fn solve_under(&self, cutoff: Option<i64>, budget: &Budget) -> (Option<BipSolution>, bool) {
        let mut search = Search::new(self, budget);
        search.cutoff = cutoff;
        search.run();
        let exhausted = search.gauge.is_exhausted();
        (
            search
                .best
                .map(|(values, objective)| BipSolution { values, objective }),
            exhausted,
        )
    }
}

struct Search<'m> {
    model: &'m Bip,
    /// Constraints each variable occurs in: `(constraint index, coef)`.
    occurs: Vec<Vec<(usize, i64)>>,
    best: Option<(Vec<bool>, i64)>,
    /// Only solutions with objective strictly below this count.
    cutoff: Option<i64>,
    /// Sum over all variables of `min(0, c)`, a constant lower-bound term.
    neg_obj_total: i64,
    /// Strided budget checker ticked once per search node.
    gauge: BudgetGauge<'m>,
}

#[derive(Clone)]
struct State {
    /// -1 unset, 0, 1.
    fixed: Vec<i8>,
    num_fixed: usize,
    /// Per-constraint contribution of fixed variables.
    sum_fixed: Vec<i64>,
    /// Per-constraint minimum possible contribution of free variables
    /// (sum of negative coefficients of free vars).
    free_min: Vec<i64>,
    obj_fixed: i64,
    /// Sum of `min(0, c)` over free variables (for the objective bound).
    obj_free_min: i64,
}

impl<'m> Search<'m> {
    fn new(model: &'m Bip, budget: &'m Budget) -> Self {
        let mut occurs = vec![Vec::new(); model.num_vars];
        for (ci, c) in model.constraints.iter().enumerate() {
            for &(v, a) in &c.terms {
                occurs[v].push((ci, a));
            }
        }
        let neg_obj_total = model.objective.iter().map(|&c| c.min(0)).sum();
        Search {
            model,
            occurs,
            best: None,
            cutoff: None,
            neg_obj_total,
            gauge: BudgetGauge::new(budget),
        }
    }

    /// The objective any acceptable solution must stay strictly below.
    fn bar(&self) -> Option<i64> {
        match (self.best.as_ref().map(|(_, b)| *b), self.cutoff) {
            (Some(b), Some(c)) => Some(b.min(c)),
            (b, c) => b.or(c),
        }
    }

    fn initial_state(&self) -> State {
        let m = self.model;
        let free_min = m
            .constraints
            .iter()
            .map(|c| c.terms.iter().map(|&(_, a)| a.min(0)).sum())
            .collect();
        State {
            fixed: vec![-1; m.num_vars],
            num_fixed: 0,
            sum_fixed: vec![0; m.constraints.len()],
            free_min,
            obj_fixed: 0,
            obj_free_min: self.neg_obj_total,
        }
    }

    fn run(&mut self) {
        let mut state = self.initial_state();
        if self.propagate(&mut state) {
            self.dfs(state);
        }
    }

    /// Fixes `var := val`; returns false on immediate infeasibility.
    fn fix(&self, state: &mut State, var: usize, val: bool) -> bool {
        debug_assert_eq!(state.fixed[var], -1);
        state.fixed[var] = i8::from(val);
        state.num_fixed += 1;
        let c = self.model.objective[var];
        if val {
            state.obj_fixed += c;
        }
        state.obj_free_min -= c.min(0);
        for &(ci, a) in &self.occurs[var] {
            state.free_min[ci] -= a.min(0);
            if val {
                state.sum_fixed[ci] += a;
            }
            if state.sum_fixed[ci] + state.free_min[ci] > self.model.constraints[ci].bound {
                return false;
            }
        }
        true
    }

    /// Unit propagation to fixpoint; returns false on infeasibility.
    fn propagate(&self, state: &mut State) -> bool {
        loop {
            let mut changed = false;
            for (ci, c) in self.model.constraints.iter().enumerate() {
                let slack = c.bound - state.sum_fixed[ci] - state.free_min[ci];
                if slack < 0 {
                    return false;
                }
                for &(v, a) in &c.terms {
                    if state.fixed[v] != -1 {
                        continue;
                    }
                    if a > 0 && a > slack {
                        if !self.fix(state, v, false) {
                            return false;
                        }
                        changed = true;
                    } else if a < 0 && -a > slack {
                        if !self.fix(state, v, true) {
                            return false;
                        }
                        changed = true;
                    }
                }
            }
            if !changed {
                return true;
            }
        }
    }

    fn lower_bound(&self, state: &State) -> i64 {
        state.obj_fixed + state.obj_free_min
    }

    fn dfs(&mut self, state: State) {
        if self.gauge.tick() {
            return;
        }
        #[cfg(feature = "failpoints")]
        mpld_graph::failpoints::tick("ilp.bip.search");
        if let Some(bar) = self.bar() {
            if self.lower_bound(&state) >= bar {
                return;
            }
        }
        if state.num_fixed == self.model.num_vars {
            let values: Vec<bool> = state.fixed.iter().map(|&f| f == 1).collect();
            let objective = state.obj_fixed;
            debug_assert!(self.check(&values));
            if self.bar().is_none_or(|bar| objective < bar) {
                self.best = Some((values, objective));
            }
            return;
        }
        // Branch on the lowest-index free variable: in the TPLD encoding
        // the color bits come first, so the search assigns colors and lets
        // propagation set the cost variables (branching on cost variables
        // directly explores an exponential, uninformative space).
        let Some(var) = (0..self.model.num_vars).find(|&v| state.fixed[v] == -1) else {
            return; // unreachable: num_fixed < num_vars above
        };
        let cheap_first = self.model.objective[var] > 0;
        for &val in if cheap_first {
            &[false, true]
        } else {
            &[true, false]
        } {
            let mut child = state.clone();
            if self.fix(&mut child, var, val) && self.propagate(&mut child) {
                self.dfs(child);
            }
        }
    }

    fn check(&self, values: &[bool]) -> bool {
        self.model.constraints.iter().all(|c| {
            let lhs: i64 = c
                .terms
                .iter()
                .map(|&(v, a)| if values[v] { a } else { 0 })
                .sum();
            lhs <= c.bound
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_minimum_is_all_zero_for_positive_costs() {
        let mut m = Bip::new(3);
        for v in 0..3 {
            m.set_objective(v, 5);
        }
        let s = m.solve().unwrap();
        assert_eq!(s.objective, 0);
        assert_eq!(s.values, vec![false; 3]);
    }

    #[test]
    fn negative_costs_pull_variables_up() {
        let mut m = Bip::new(2);
        m.set_objective(0, -3);
        m.set_objective(1, 2);
        let s = m.solve().unwrap();
        assert_eq!(s.objective, -3);
        assert_eq!(s.values, vec![true, false]);
    }

    #[test]
    fn infeasible_returns_none() {
        let mut m = Bip::new(1);
        m.add_constraint(vec![(0, 1)], 0); // x0 <= 0
        m.add_constraint(vec![(0, -1)], -1); // x0 >= 1
        assert!(m.solve().is_none());
    }

    #[test]
    fn covering_problem() {
        // min x0 + x1 + x2, each pair constraint forces at least one of two.
        let mut m = Bip::new(3);
        for v in 0..3 {
            m.set_objective(v, 1);
        }
        m.add_constraint(vec![(0, -1), (1, -1)], -1);
        m.add_constraint(vec![(1, -1), (2, -1)], -1);
        m.add_constraint(vec![(0, -1), (2, -1)], -1);
        let s = m.solve().unwrap();
        assert_eq!(s.objective, 2);
    }

    #[test]
    fn knapsack_like() {
        // max 4x0 + 5x1 + 3x2 s.t. 3x0 + 4x1 + 2x2 <= 6
        // == min -4x0 - 5x1 - 3x2.
        let mut m = Bip::new(3);
        m.set_objective(0, -4);
        m.set_objective(1, -5);
        m.set_objective(2, -3);
        m.add_constraint(vec![(0, 3), (1, 4), (2, 2)], 6);
        let s = m.solve().unwrap();
        assert_eq!(s.objective, -8); // x1 + x2 (value 8, weight 6)
    }

    #[test]
    #[should_panic(expected = "variable repeated")]
    fn duplicate_var_in_constraint_panics() {
        let mut m = Bip::new(2);
        m.add_constraint(vec![(0, 1), (0, 1)], 1);
    }

    #[test]
    fn bounded_solve_proves_optimality_and_finds_improvements() {
        // min x0 + 2 x1  s.t.  x0 + x1 >= 1 — optimum is 1.
        let mut m = Bip::new(2);
        m.set_objective(0, 1);
        m.set_objective(1, 2);
        m.add_constraint(vec![(0, -1), (1, -1)], -1);
        // Cutoff at the optimum: nothing strictly better exists.
        assert_eq!(m.solve_bounded(Some(1)), None);
        // Cutoff above the optimum: the optimum is returned.
        let s = m.solve_bounded(Some(2)).unwrap();
        assert_eq!(s.objective, 1);
    }

    #[test]
    fn bounded_solve_agrees_with_cold_solve_on_random_models() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..30 {
            let n = rng.gen_range(2..8usize);
            let mut m = Bip::new(n);
            for v in 0..n {
                m.set_objective(v, rng.gen_range(-5i64..6));
            }
            for _ in 0..rng.gen_range(0..6usize) {
                let mut terms = Vec::new();
                for v in 0..n {
                    if rng.gen_bool(0.5) {
                        terms.push((v, rng.gen_range(-3i64..4)));
                    }
                }
                if terms.is_empty() {
                    continue;
                }
                m.add_constraint(terms, rng.gen_range(-2i64..5));
            }
            let Some(cold) = m.solve() else {
                assert_eq!(m.solve_bounded(Some(100)), None);
                continue;
            };
            // Any cutoff above the optimum returns the same objective;
            // the optimum itself as cutoff proves optimality.
            let warm = m.solve_bounded(Some(cold.objective + 1)).unwrap();
            assert_eq!(warm.objective, cold.objective);
            assert_eq!(m.solve_bounded(Some(cold.objective)), None);
        }
    }

    #[test]
    fn matches_exhaustive_on_random_models() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..30 {
            let n = rng.gen_range(2..8usize);
            let mut m = Bip::new(n);
            for v in 0..n {
                m.set_objective(v, rng.gen_range(-5i64..6));
            }
            for _ in 0..rng.gen_range(0..6usize) {
                let mut terms = Vec::new();
                for v in 0..n {
                    if rng.gen_bool(0.5) {
                        terms.push((v, rng.gen_range(-3i64..4)));
                    }
                }
                if terms.is_empty() {
                    continue;
                }
                let bound = rng.gen_range(-2i64..5);
                m.add_constraint(terms, bound);
            }
            // Exhaustive reference.
            let mut best: Option<i64> = None;
            for mask in 0..(1u32 << n) {
                let values: Vec<bool> = (0..n).map(|v| mask >> v & 1 == 1).collect();
                let ok = (0..m.num_constraints()).all(|ci| {
                    let c = &m.constraints[ci];
                    let lhs: i64 = c
                        .terms
                        .iter()
                        .map(|&(v, a)| if values[v] { a } else { 0 })
                        .sum();
                    lhs <= c.bound
                });
                if ok {
                    let obj: i64 = (0..n)
                        .map(|v| if values[v] { m.objective[v] } else { 0 })
                        .sum();
                    best = Some(best.map_or(obj, |b: i64| b.min(obj)));
                }
            }
            let got = m.solve();
            match (best, got) {
                (None, None) => {}
                (Some(b), Some(s)) => assert_eq!(s.objective, b),
                (b, s) => panic!("mismatch: exhaustive={b:?} solver={s:?}"),
            }
        }
    }
}
