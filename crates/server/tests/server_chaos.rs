//! Server-path chaos suite (compiled only with `--features failpoints`):
//! deterministic worker panics, delays, and injected mid-stream
//! disconnects, with the retrying client driving jobs through the storm.
//! The solver-side failpoint sites stay disarmed (site filter
//! `server.`), so every completed job must still produce digests
//! bit-identical to a clean run.

#![cfg(feature = "failpoints")]

mod util;

use mpld::RunSummary;
use mpld_graph::failpoints;
use mpld_server::{submit, ClientConfig, ServerConfig, SubmitBody, SubmitRequest};
use std::time::Duration;
use util::{done_line, post_decompose, scratch_dir, send_raw, tiny_engine, TestServer};

fn digest(s: &RunSummary) -> (u32, u32, String, usize, usize, usize, usize) {
    (
        s.conflicts,
        s.stitches,
        format!("{:.17e}", s.objective),
        s.matching,
        s.colorgnn,
        s.ec,
        s.ilp,
    )
}

fn client_cfg(addr: std::net::SocketAddr) -> ClientConfig {
    ClientConfig {
        addr: addr.to_string(),
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_secs(10),
        max_attempts: 40,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(200),
        jitter_seed: 0xC405,
    }
}

// Failpoint state is process-global, so the whole chaos scenario lives
// in one test function: clean oracle first, then the storm.
#[test]
fn retrying_client_survives_server_chaos_with_clean_digests() {
    let dir = scratch_dir("chaos");
    let cfg = ServerConfig {
        workers: 3,
        queue_depth: 8,
        read_timeout: Duration::from_secs(10),
        journal_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    // Clean oracle digests, failpoints disarmed.
    failpoints::disable();
    let clean_server = TestServer::start(tiny_engine(false), cfg.clone());
    let mut oracles = Vec::new();
    for seed in [3u64, 4, 5] {
        let r = post_decompose(
            clean_server.addr,
            &format!("{{\"circuit\":\"C432\",\"seed\":{seed},\"job_id\":\"clean-{seed}\"}}"),
        );
        assert!(r.starts_with("HTTP/1.1 200 OK"), "{r}");
        oracles.push(digest(
            &RunSummary::parse(done_line(&r)).expect("summary parses"),
        ));
    }
    clean_server.stop();

    // The storm: worker-entry panics/delays and injected mid-stream
    // disconnects, solver sites filtered out so schedules stay honest.
    failpoints::configure_filtered(0xC405, 0.25, &["server."]);
    let chaos_server = TestServer::start(tiny_engine(false), cfg);
    for (i, seed) in [3u64, 4, 5].into_iter().enumerate() {
        let req = SubmitRequest {
            body: SubmitBody::Circuit("C432".to_string()),
            seed: Some(seed),
            time_limit_ms: None,
            job_id: Some(format!("chaos-{seed}")),
        };
        let outcome = submit(&client_cfg(chaos_server.addr), &req, &mut |_| {})
            .unwrap_or_else(|e| panic!("seed {seed}: client gave up: {e}"));
        assert_eq!(outcome.job_id, format!("chaos-{seed}"));
        let summary = RunSummary::parse(&outcome.done_line).expect("summary parses");
        assert_eq!(
            digest(&summary),
            oracles[i],
            "seed {seed}: chaos run must match the clean digest"
        );
    }

    // The storm actually fired on the server path and nowhere else.
    let fired: Vec<_> = failpoints::stats()
        .into_iter()
        .filter(|&(_, _, hits)| hits > 0)
        .collect();
    assert!(
        fired.iter().all(|(site, _, _)| site.starts_with("server.")),
        "only server sites may fire: {fired:?}"
    );
    assert!(
        failpoints::total_hits() > 0,
        "chaos round injected nothing: {:?}",
        failpoints::stats()
    );
    failpoints::disable();

    // The server survived: still answering, workers alive.
    let health = send_raw(
        chaos_server.addr,
        b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n",
    );
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    chaos_server.stop();
}
