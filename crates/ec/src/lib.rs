//! Exact-cover (EC) based layout decomposition.
//!
//! Following the DAC'16 "complex coloring rules" line of work cited by the
//! paper, the MPLD instance is translated into an exact cover matrix and
//! solved with a dancing-links Algorithm X ([`dlx::Dlx`]):
//!
//! - one **primary column per feature** — exactly one coloring row of each
//!   feature must be chosen;
//! - one **row per (feature, subfeature-color combination)** — its cost is
//!   the stitch cost the combination incurs inside the feature;
//! - one **secondary column per (conflict edge, mask)** — covered by a row
//!   that gives either endpoint that mask, so the at-most-once rule forbids
//!   same-colored conflict endpoints.
//!
//! A minimum-cost exact cover is therefore a conflict-free decomposition
//! with minimum stitch count. When no conflict-free cover exists (or the
//! search-node budget runs out), the engine falls back to a greedy
//! assignment and retries with the greedy solution's violated conflict
//! edges relaxed — fast and near-optimal, but not guaranteed optimal,
//! exactly the trade-off Table I of the paper attributes to the EC method.
//!
//! # Example
//!
//! ```
//! use mpld_graph::{Decomposer, DecomposeParams, LayoutGraph};
//! use mpld_ec::EcDecomposer;
//!
//! let g = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
//! let d = EcDecomposer::new().decompose_unbounded(&g, &DecomposeParams::tpl());
//! assert_eq!(d.cost.conflicts, 0);
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod dlx;

use dlx::Dlx;
use mpld_graph::{
    Budget, Certainty, DecomposeParams, Decomposer, Decomposition, LayoutGraph, MpldError, NodeId,
};
use std::collections::HashSet;

/// The exact-cover decomposer (see crate docs).
#[derive(Debug, Clone, Copy)]
pub struct EcDecomposer {
    budget: u64,
    enumeration: bool,
}

impl Default for EcDecomposer {
    fn default() -> Self {
        EcDecomposer {
            budget: 200_000,
            enumeration: true,
        }
    }
}

impl EcDecomposer {
    /// Creates the decomposer with the default search-node budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the decomposer with a custom search-node budget. Smaller
    /// budgets are faster but more likely to return suboptimal results.
    pub fn with_budget(budget: u64) -> Self {
        EcDecomposer {
            budget,
            enumeration: true,
        }
    }

    /// The *baseline* grade without the certified single-pair relaxation
    /// enumeration — the quality level the paper's EC engine corresponds
    /// to (fast, near-optimal, no certificates). Used by the Table III
    /// harness so the ILP/EC selection task has both classes populated.
    pub fn basic() -> Self {
        EcDecomposer {
            budget: 200_000,
            enumeration: false,
        }
    }
}

impl Decomposer for EcDecomposer {
    fn name(&self) -> &'static str {
        "EC"
    }

    fn decompose(
        &self,
        graph: &LayoutGraph,
        params: &DecomposeParams,
        budget: &Budget,
    ) -> Result<Decomposition, MpldError> {
        Ok(self.decompose_certified(graph, params, budget)?.0)
    }
}

impl EcDecomposer {
    /// Like [`Decomposer::decompose`], additionally reporting whether the
    /// result is *provably optimal*:
    ///
    /// - a conflict-free cover with objective `< 1` beats every solution
    ///   with a conflict, and phase-1 is exact among conflict-free ones;
    /// - otherwise, when phase-1 completed (proving whether a
    ///   conflict-free cover exists) and the single-pair relaxation
    ///   enumeration covered every conflicting feature pair without budget
    ///   exhaustion, the best of those answers is exact among solutions
    ///   with at most one conflict — and beats every `>= 2`-conflict
    ///   solution when its objective is `< 2`.
    ///
    /// The adaptive framework uses the certificate to skip ILP
    /// verification on the (vast majority of) certified units.
    pub fn decompose_certified(
        &self,
        graph: &LayoutGraph,
        params: &DecomposeParams,
        budget: &Budget,
    ) -> Result<(Decomposition, bool), MpldError> {
        #[cfg(feature = "failpoints")]
        mpld_graph::failpoints::inject_error("ec.result", "EC")?;
        #[cfg_attr(not(feature = "failpoints"), allow(unused_mut))]
        let mut r = self.decompose_certified_inner(graph, params, budget)?;
        #[cfg(feature = "failpoints")]
        // Corrupt after cost evaluation so only the independent audit can
        // tell the claimed cost (and certificate) is a lie.
        mpld_graph::failpoints::corrupt_coloring("ec.result", &mut r.0.coloring, params.k);
        Ok(r)
    }

    fn decompose_certified_inner(
        &self,
        graph: &LayoutGraph,
        params: &DecomposeParams,
        budget: &Budget,
    ) -> Result<(Decomposition, bool), MpldError> {
        let instance = Instance::build(graph, params);

        // Phase 1: conflict-free minimum-stitch cover (skipped outright
        // when the wall budget already expired on arrival).
        let (exact, p1_exhausted) = if budget.exhausted() {
            (None, true)
        } else {
            instance.solve_tracked(graph, params, &HashSet::new(), self.budget, budget)
        };
        let zero_conflict_resolved = !p1_exhausted;
        if let Some(d) = &exact {
            if d.cost.conflicts == 0
                && zero_conflict_resolved
                && d.cost.value(params.alpha) < 1.0 - 1e-9
            {
                return Ok((d.clone().with_certainty(Certainty::Certified), true));
            }
        }

        // Phase 2: multi-start greedy assignment with local repair.
        let mut best = instance.repair(
            graph,
            params,
            instance.greedy(graph, params, GreedyOrder::DegreeDesc),
        );
        for order in [GreedyOrder::DegreeAsc, GreedyOrder::Natural] {
            let cand = instance.repair(graph, params, instance.greedy(graph, params, order));
            if cand.cost.better_than(&best.cost, params.alpha) {
                best = cand;
            }
        }
        if let Some(d) = &exact {
            if d.cost.better_than(&best.cost, params.alpha) {
                best = d.clone();
            }
        }

        // Single-pair relaxation enumeration: conflicts are charged per
        // feature *pair* (Eq. 1b), so relaxing all subfeature edges of one
        // conflicting pair at a time (each a min-stitch DLX solve) covers
        // the whole <= 1-conflict solution space exactly. Bounded to keep
        // EC fast.
        let mut pair_edges: std::collections::HashMap<(u32, u32), Vec<(NodeId, NodeId)>> =
            std::collections::HashMap::new();
        for &(u, v) in graph.conflict_edges() {
            let (a, b) = (graph.feature_of(u), graph.feature_of(v));
            let key = if a < b { (a, b) } else { (b, a) };
            pair_edges.entry(key).or_default().push((u, v));
        }
        let needs_enumeration = self.enumeration
            && (best.cost.conflicts >= 1 || best.cost.value(params.alpha) >= 1.0 - 1e-9);
        let mut enumeration_complete = false;
        if needs_enumeration && best.cost.conflicts <= 2 && pair_edges.len() <= 64 {
            enumeration_complete = true;
            for edges in pair_edges.values() {
                if budget.exhausted() {
                    enumeration_complete = false;
                    break;
                }
                #[cfg(feature = "failpoints")]
                mpld_graph::failpoints::tick("ec.search");
                let relaxed: HashSet<(NodeId, NodeId)> = edges.iter().copied().collect();
                let (cand, exhausted) =
                    instance.solve_tracked(graph, params, &relaxed, self.budget, budget);
                if exhausted {
                    enumeration_complete = false;
                }
                if let Some(cand) = cand {
                    let cand = instance.repair(graph, params, cand);
                    if cand.cost.better_than(&best.cost, params.alpha) {
                        best = cand;
                    }
                }
            }
        }

        // Certificate check before the (uncertified) iterative fallback.
        let value = best.cost.value(params.alpha);
        if best.cost.conflicts == 0 && zero_conflict_resolved && value < 1.0 - 1e-9 {
            return Ok((best.with_certainty(Certainty::Certified), true));
        }
        if zero_conflict_resolved && enumeration_complete && value < 2.0 - 1e-9 {
            return Ok((best.with_certainty(Certainty::Certified), true));
        }

        // Iterative relax-and-repair fallback (heuristic).
        let mut violated = violated_edges(graph, &best.coloring);
        for _ in 0..3 {
            if budget.exhausted() {
                break;
            }
            #[cfg(feature = "failpoints")]
            mpld_graph::failpoints::tick("ec.search");
            let (relaxed, _) =
                instance.solve_tracked(graph, params, &violated, self.budget, budget);
            let Some(relaxed) = relaxed else {
                break;
            };
            let relaxed = instance.repair(graph, params, relaxed);
            let next_violated = violated_edges(graph, &relaxed.coloring);
            if relaxed.cost.better_than(&best.cost, params.alpha) {
                best = relaxed;
            }
            if next_violated == violated {
                break;
            }
            violated = next_violated;
        }
        let certainty = if budget.exhausted() {
            Certainty::BudgetExhausted
        } else {
            Certainty::Heuristic
        };
        Ok((best.with_certainty(certainty), false))
    }
}

impl Instance {
    /// Feature-level local search: sweep features, re-picking each
    /// feature's full subfeature-color combination against the current
    /// neighborhood, until a fixpoint (bounded sweeps). Coordinated moves
    /// across a stitch-split feature subsume single-node repair — the
    /// refinement step of the EC flow.
    fn repair(
        &self,
        graph: &LayoutGraph,
        params: &DecomposeParams,
        d: Decomposition,
    ) -> Decomposition {
        let stitch_w = (params.alpha * 1000.0).round() as u64;
        let mut coloring = d.coloring;
        for _ in 0..4 {
            let mut changed = false;
            for (f, nodes) in self.feature_nodes.iter().enumerate() {
                let mut best_combo = 0usize;
                let mut best_cost = u64::MAX;
                let mut current_cost = u64::MAX;
                for (ci, (combo, stitches)) in self.combos[f].iter().enumerate() {
                    let mut cost = u64::from(*stitches) * stitch_w;
                    // Conflicts are charged once per violated neighbor
                    // *feature* (Eq. 1b caps parallel edges of a pair).
                    let mut violated: Vec<u32> = Vec::new();
                    for (i, &u) in nodes.iter().enumerate() {
                        for &w in graph.conflict_neighbors(u) {
                            if coloring[w as usize] == combo[i] {
                                let nf = graph.feature_of(w);
                                if !violated.contains(&nf) {
                                    violated.push(nf);
                                }
                            }
                        }
                    }
                    cost += violated.len() as u64 * 1000;
                    let is_current = nodes
                        .iter()
                        .enumerate()
                        .all(|(i, &u)| coloring[u as usize] == combo[i]);
                    if is_current {
                        current_cost = cost;
                    }
                    if cost < best_cost {
                        best_cost = cost;
                        best_combo = ci;
                    }
                }
                if best_cost < current_cost {
                    let combo = &self.combos[f][best_combo].0;
                    for (i, &u) in nodes.iter().enumerate() {
                        coloring[u as usize] = combo[i];
                    }
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Decomposition::from_coloring(graph, coloring, params.alpha)
    }
}

fn violated_edges(graph: &LayoutGraph, coloring: &[u8]) -> HashSet<(NodeId, NodeId)> {
    graph
        .conflict_edges()
        .iter()
        .copied()
        .filter(|&(u, v)| coloring[u as usize] == coloring[v as usize])
        .collect()
}

/// Feature visit orders tried by the multi-start greedy phase.
#[derive(Debug, Clone, Copy)]
enum GreedyOrder {
    DegreeDesc,
    DegreeAsc,
    Natural,
}

/// Preprocessed instance: per-feature subfeature lists and color
/// combinations.
struct Instance {
    /// Nodes of each feature, sorted.
    feature_nodes: Vec<Vec<NodeId>>,
    /// Per feature, all color combinations with their stitch cost (number
    /// of internal stitch edges whose endpoints differ).
    combos: Vec<Vec<(Vec<u8>, u32)>>,
}

impl Instance {
    fn build(graph: &LayoutGraph, params: &DecomposeParams) -> Instance {
        let k = params.k;
        let nf = graph.num_features();
        let mut feature_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); nf];
        for v in 0..graph.num_nodes() as u32 {
            feature_nodes[graph.feature_of(v) as usize].push(v);
        }
        let combos = feature_nodes
            .iter()
            .map(|nodes| {
                let s = nodes.len();
                assert!(
                    (k as u64).pow(s as u32) <= 4096,
                    "a feature with {s} subfeatures exceeds the row limit"
                );
                let mut out = Vec::new();
                let mut combo = vec![0u8; s];
                loop {
                    // Stitch cost of this combination.
                    let mut stitches = 0u32;
                    for (i, &u) in nodes.iter().enumerate() {
                        for &w in graph.stitch_neighbors(u) {
                            if w > u {
                                // Graph validation guarantees stitch edges
                                // stay within one feature.
                                if let Some(j) = nodes.iter().position(|&x| x == w) {
                                    if combo[i] != combo[j] {
                                        stitches += 1;
                                    }
                                }
                            }
                        }
                    }
                    out.push((combo.clone(), stitches));
                    // Odometer.
                    let mut i = 0;
                    loop {
                        if i == s {
                            return out;
                        }
                        combo[i] += 1;
                        if combo[i] < k {
                            break;
                        }
                        combo[i] = 0;
                        i += 1;
                    }
                }
            })
            .collect();
        Instance {
            feature_nodes,
            combos,
        }
    }

    /// Builds and solves the DLX matrix, treating edges in `relaxed` as
    /// unconstrained. Returns the decomposition (or `None` when no cover
    /// was found) plus whether the search budget was exhausted (in which
    /// case the answer carries no optimality/infeasibility proof).
    fn solve_tracked(
        &self,
        graph: &LayoutGraph,
        params: &DecomposeParams,
        relaxed: &HashSet<(NodeId, NodeId)>,
        budget: u64,
        wall: &Budget,
    ) -> (Option<Decomposition>, bool) {
        let k = params.k as usize;
        let nf = self.feature_nodes.len();
        if nf == 0 {
            return (
                Some(Decomposition::from_coloring(
                    graph,
                    Vec::new(),
                    params.alpha,
                )),
                false,
            );
        }
        // Secondary columns: (constrained conflict edge, color).
        let constrained: Vec<(NodeId, NodeId)> = graph
            .conflict_edges()
            .iter()
            .copied()
            .filter(|e| !relaxed.contains(e))
            .collect();
        let mut col_of_edge = std::collections::HashMap::new();
        for (i, &e) in constrained.iter().enumerate() {
            col_of_edge.insert(e, nf + i * k);
        }
        let num_secondary = constrained.len() * k;
        let mut m = Dlx::new(nf, num_secondary);
        let mut row_meta: Vec<(usize, usize)> = Vec::new(); // (feature, combo index)

        let stitch_w = (params.alpha * 1000.0).round() as u64;
        for (f, combos) in self.combos.iter().enumerate() {
            for (ci, (combo, stitches)) in combos.iter().enumerate() {
                let mut cols = vec![f];
                for (i, &u) in self.feature_nodes[f].iter().enumerate() {
                    let c = combo[i] as usize;
                    for &w in graph.conflict_neighbors(u) {
                        let e = if u < w { (u, w) } else { (w, u) };
                        if let Some(&base) = col_of_edge.get(&e) {
                            cols.push(base + c);
                        }
                    }
                }
                cols.sort_unstable();
                cols.dedup();
                row_meta.push((f, ci));
                m.add_row(&cols, u64::from(*stitches) * stitch_w);
            }
        }

        let solved = m.solve_min_cost_within(Some(budget), wall);
        let exhausted = m.last_search_exhausted();
        let Some((rows, _cost)) = solved else {
            return (None, exhausted);
        };
        let mut coloring = vec![0u8; graph.num_nodes()];
        for r in rows {
            let (f, ci) = row_meta[r];
            let combo = &self.combos[f][ci].0;
            for (i, &u) in self.feature_nodes[f].iter().enumerate() {
                coloring[u as usize] = combo[i];
            }
        }
        (
            Some(Decomposition::from_coloring(graph, coloring, params.alpha)),
            exhausted,
        )
    }

    /// Greedy row selection: features visited in the given order, each
    /// taking the combination with the smallest incremental cost.
    fn greedy(
        &self,
        graph: &LayoutGraph,
        params: &DecomposeParams,
        order_kind: GreedyOrder,
    ) -> Decomposition {
        let mut order: Vec<usize> = (0..self.feature_nodes.len()).collect();
        let degree = |f: usize| -> usize {
            self.feature_nodes[f]
                .iter()
                .map(|&u| graph.conflict_degree(u))
                .sum()
        };
        match order_kind {
            GreedyOrder::DegreeDesc => order.sort_by_key(|&f| std::cmp::Reverse(degree(f))),
            GreedyOrder::DegreeAsc => order.sort_by_key(|&f| degree(f)),
            GreedyOrder::Natural => {}
        }

        let mut coloring = vec![u8::MAX; graph.num_nodes()];
        let stitch_w = (params.alpha * 1000.0).round() as u64;
        for &f in &order {
            let nodes = &self.feature_nodes[f];
            let mut best_combo = 0usize;
            let mut best_cost = u64::MAX;
            for (ci, (combo, stitches)) in self.combos[f].iter().enumerate() {
                let mut cost = u64::from(*stitches) * stitch_w;
                let mut violated: Vec<u32> = Vec::new();
                for (i, &u) in nodes.iter().enumerate() {
                    for &w in graph.conflict_neighbors(u) {
                        let cw = coloring[w as usize];
                        if cw != u8::MAX && cw == combo[i] {
                            let nf = graph.feature_of(w);
                            if !violated.contains(&nf) {
                                violated.push(nf);
                            }
                        }
                    }
                }
                cost += violated.len() as u64 * 1000;
                if cost < best_cost {
                    best_cost = cost;
                    best_combo = ci;
                }
            }
            let combo = &self.combos[f][best_combo].0;
            for (i, &u) in nodes.iter().enumerate() {
                coloring[u as usize] = combo[i];
            }
        }
        for c in coloring.iter_mut() {
            if *c == u8::MAX {
                *c = 0;
            }
        }
        Decomposition::from_coloring(graph, coloring, params.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpld_ilp::{brute_force, IlpDecomposer};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn tpl() -> DecomposeParams {
        DecomposeParams::tpl()
    }

    #[test]
    fn empty_graph() {
        let g = LayoutGraph::homogeneous(0, vec![]).unwrap();
        let d = EcDecomposer::new().decompose_unbounded(&g, &tpl());
        assert!(d.coloring.is_empty());
    }

    #[test]
    fn triangle_conflict_free() {
        let g = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let d = EcDecomposer::new().decompose_unbounded(&g, &tpl());
        assert_eq!(d.cost.conflicts, 0);
        assert_eq!(d.cost.stitches, 0);
    }

    #[test]
    fn k4_falls_back_to_one_conflict() {
        let g = LayoutGraph::homogeneous(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .unwrap();
        let d = EcDecomposer::new().decompose_unbounded(&g, &tpl());
        assert_eq!(d.cost.conflicts, 1);
    }

    #[test]
    fn stitch_used_to_avoid_conflict() {
        let g = LayoutGraph::new(
            vec![0, 0, 1, 2, 3, 4],
            vec![
                (0, 2),
                (0, 3),
                (1, 4),
                (1, 5),
                (2, 3),
                (4, 5),
                (2, 4),
                (3, 5),
            ],
            vec![(0, 1)],
        )
        .unwrap();
        let bf = brute_force(&g, &tpl());
        let d = EcDecomposer::new().decompose_unbounded(&g, &tpl());
        assert_eq!(d.cost.value(0.1), bf.cost.value(0.1));
    }

    #[test]
    fn near_optimal_on_random_graphs() {
        // EC must be valid and never better than ILP (which is optimal);
        // with a generous budget on small graphs it should match.
        let mut rng = SmallRng::seed_from_u64(0xEC);
        for _ in 0..25 {
            let n = rng.gen_range(4..9usize);
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.5) {
                        edges.push((u, v));
                    }
                }
            }
            let g = LayoutGraph::homogeneous(n, edges).unwrap();
            let ec = EcDecomposer::new().decompose_unbounded(&g, &tpl());
            let ilp = IlpDecomposer::new().decompose_unbounded(&g, &tpl());
            assert!(ec.cost.value(0.1) >= ilp.cost.value(0.1) - 1e-9);
            assert_eq!(ec.cost.value(0.1), ilp.cost.value(0.1), "graph {g:?}");
        }
    }

    #[test]
    fn tiny_budget_still_returns_valid_solution() {
        let g = LayoutGraph::homogeneous(
            6,
            vec![
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 0),
                (0, 2),
                (3, 5),
            ],
        )
        .unwrap();
        let d = EcDecomposer::with_budget(2).decompose_unbounded(&g, &tpl());
        assert_eq!(d.coloring.len(), 6);
        assert!(d.coloring.iter().all(|&c| c < 3));
        assert_eq!(d.cost, g.evaluate(&d.coloring, 0.1));
    }

    #[test]
    fn stitch_combos_priced_correctly() {
        // One feature with 3 subfeatures in a stitch chain and no conflicts:
        // optimal cover picks a same-color combo with zero stitch cost.
        let g = LayoutGraph::new(vec![0, 0, 0], vec![], vec![(0, 1), (1, 2)]).unwrap();
        let d = EcDecomposer::new().decompose_unbounded(&g, &tpl());
        assert_eq!(d.cost.stitches, 0);
        assert!(d.coloring.iter().all(|&c| c == d.coloring[0]));
    }
}
