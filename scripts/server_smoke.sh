#!/usr/bin/env bash
# Server smoke test: train a tiny model, record the CLI run's digest
# (`mpld adaptive --json`), start `mpld serve`, POST the same circuit
# twice — the repeat must be served entirely from the cross-request
# caches — assert both served summaries match the CLI digest, then
# SIGTERM the server and require a clean drain (exit 0).
#
# Usage: scripts/server_smoke.sh [model-path]
# Knobs: MPLD_BIN (default target/release/mpld), MPLD_SMOKE_PORT (7979).
set -euo pipefail

BIN=${MPLD_BIN:-target/release/mpld}
MODEL=${1:-/tmp/ci-serve-model.bin}
PORT=${MPLD_SMOKE_PORT:-7979}
LOG=/tmp/ci-serve.log

"$BIN" train -o "$MODEL" --circuits C432 --cap 20 --epochs 2

# The oracle: the same circuit/seed through the per-request CLI path.
"$BIN" adaptive C432 --model "$MODEL" --seed 7 --threads 1 --json true \
  > /tmp/ci-cli-summary.json
cat /tmp/ci-cli-summary.json

"$BIN" serve --model "$MODEL" --addr "127.0.0.1:$PORT" --workers 2 \
  > "$LOG" &
SERVER_PID=$!
trap 'kill -9 $SERVER_PID 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  grep -q "listening on" "$LOG" 2>/dev/null && break
  sleep 0.1
done
grep -q "listening on" "$LOG"

post_decompose() {
  python3 - "$PORT" <<'EOF'
import socket, sys
body = '{"circuit":"C432","seed":7}'
req = ("POST /decompose HTTP/1.1\r\nHost: smoke\r\n"
       f"Content-Length: {len(body)}\r\n\r\n{body}")
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=120)
s.sendall(req.encode())
out = b""
while True:
    chunk = s.recv(65536)
    if not chunk:
        break
    out += chunk
sys.stdout.write(out.decode())
EOF
}

post_decompose > /tmp/ci-serve-1.txt
post_decompose > /tmp/ci-serve-2.txt

python3 - /tmp/ci-cli-summary.json /tmp/ci-serve-1.txt /tmp/ci-serve-2.txt <<'EOF'
import json, sys

cli = json.load(open(sys.argv[1]))

def done_summary(path):
    for line in open(path):
        if line.startswith('{"event":"done"'):
            return json.loads(line)["summary"]
    sys.exit(f"{path}: no done event in the streamed response")

first = done_summary(sys.argv[2])
repeat = done_summary(sys.argv[3])
for served, who in ((first, "first"), (repeat, "repeat")):
    assert served["cost"] == cli["cost"], (
        f"{who}: served cost {served['cost']} != CLI {cli['cost']}")
    for engine in ("matching", "colorgnn", "ec", "ilp"):
        assert served["usage"][engine] == cli["usage"][engine], (
            f"{who}: served {engine} usage {served['usage'][engine]} "
            f"!= CLI {cli['usage'][engine]}")
assert repeat["inference"]["routing_memo_hits"] > 0, (
    "repeat request missed the cross-request routing memo")
assert repeat["inference"]["units_inferred"] == 0, (
    "repeat request re-ran routing inference")
print("served digests match the CLI run; repeat hit the cross-request memo")
EOF

# Graceful drain: SIGTERM must finish queued work and exit 0.
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
grep -q "drained, exiting" "$LOG"
trap - EXIT
echo "server smoke passed"
