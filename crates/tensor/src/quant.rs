//! Quantized inference planes: f16 / int8 weight storage and the GEMM /
//! SpMM kernels that consume them with f32 accumulation.
//!
//! The frozen inference engines (see `mpld-gnn`) compile their folded f32
//! weights into two additional *planes* at model load:
//!
//! - [`F16Matrix`] — IEEE 754 binary16 storage, converted back to f32 in
//!   the inner loop (hardware `vcvtph2ps` where available). Halves weight
//!   memory traffic; error is pure rounding (~2^-11 relative).
//! - [`QuantMatrix`] — per-row asymmetric int8 with an f32 scale and an
//!   i8 zero-point per row (`w ≈ scale * (q - zero)`). Quarter memory
//!   traffic; the dequantize-and-FMA runs 8/16-wide.
//!
//! Both planes accumulate in f32, so the quantization error of a product
//! is bounded by the per-row scales — small enough for routing *scores*,
//! not for bit-exact digests. Callers that need decision stability gate
//! the quantized result (see the trust-ladder fallback in `mpld-core`).
//!
//! Dispatch extends the f32 layer's AVX2/FMA runtime detection with
//! AVX-512 and NEON tiers; the plain scalar loops double as the proptest
//! oracles (`tests/quant_kernels.rs`):
//!
//! | kernel          | AVX-512F      | AVX2+FMA(+F16C) | NEON (aarch64) | fallback     |
//! |-----------------|---------------|-----------------|----------------|--------------|
//! | `gemm_nn_q8`    | `avx512-q8`   | `avx2-q8`       | `neon-q8`      | `scalar-q8`  |
//! | `gemm_nn_f16`   | `avx512-f16`  | `avx2-f16c`     | software cvt   | `scalar-f16` |
//! | `spmm_f16_into` | `avx512-f16`  | `avx2-f16c`     | software cvt   | `scalar-f16` |

use crate::infer::Csr;
use crate::Matrix;

/// Arithmetic precision of a frozen-inference pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full f32 — bit-identical to the autodiff tape.
    #[default]
    F32,
    /// f16-stored weights and message activations, f32 accumulate.
    F16,
    /// Per-row int8 weights, f32 activations and accumulate.
    Int8,
}

impl Precision {
    /// Parses `"f32"` / `"f16"` / `"int8"` (case-insensitive; `"i8"` and
    /// `"q8"` are accepted aliases for `int8`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "f32" | "fp32" => Some(Precision::F32),
            "f16" | "fp16" | "half" => Some(Precision::F16),
            "int8" | "i8" | "q8" => Some(Precision::Int8),
            _ => None,
        }
    }

    /// Reads `MPLD_PRECISION`, defaulting to [`Precision::F32`] when the
    /// variable is unset or unparseable.
    pub fn from_env() -> Self {
        std::env::var("MPLD_PRECISION")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// Stable lower-case label (`"f32"` / `"f16"` / `"int8"`), used in
    /// CLI flags and benchmark artifacts.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::Int8 => "int8",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Name of the microkernel the given precision dispatches to on this
/// host. Recorded in `InferenceStats` and benchmark artifacts so CI only
/// compares fp-sensitive digests between runs on the same kernels.
pub fn kernel_name_for(p: Precision) -> &'static str {
    match p {
        Precision::F32 => crate::matrix::kernel_name(),
        Precision::F16 => {
            #[cfg(target_arch = "x86_64")]
            {
                if have_avx512() {
                    return "avx512-f16";
                }
                if have_avx2_f16c() {
                    return "avx2-f16c";
                }
            }
            "scalar-f16"
        }
        Precision::Int8 => {
            #[cfg(target_arch = "x86_64")]
            {
                if have_avx512() {
                    return "avx512-q8";
                }
                if have_avx2_fma() {
                    return "avx2-q8";
                }
            }
            #[cfg(target_arch = "aarch64")]
            if arm::have_neon() {
                return "neon-q8";
            }
            "scalar-q8"
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn have_avx512() -> bool {
    // The quantized kernels widen loads with AVX2 shuffles inside the
    // AVX-512 tile, so require both (true on every AVX-512 part).
    is_x86_feature_detected!("avx512f")
        && is_x86_feature_detected!("avx2")
        && is_x86_feature_detected!("fma")
}

#[cfg(target_arch = "x86_64")]
fn have_avx2_fma() -> bool {
    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
}

#[cfg(target_arch = "x86_64")]
fn have_avx2_f16c() -> bool {
    have_avx2_fma() && is_x86_feature_detected!("f16c")
}

// ---------------------------------------------------------------------
// IEEE 754 binary16 <-> f32 software conversion (round to nearest even).
// ---------------------------------------------------------------------

/// Converts one f32 to binary16 bits, rounding to nearest even — the
/// same rounding `vcvtps2ph` performs, so the software and hardware
/// paths agree bit for bit.
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;
    if exp == 0xFF {
        // Inf / NaN (keep NaN-ness with a quiet bit).
        return sign | 0x7C00 | if mant != 0 { 0x0200 } else { 0 };
    }
    let e = exp - 127 + 15;
    if e >= 0x1F {
        return sign | 0x7C00; // overflow -> inf
    }
    if e <= 0 {
        if e < -10 {
            return sign; // underflow -> signed zero
        }
        // Subnormal half: shift the (implicit-1) mantissa into place.
        let m = mant | 0x0080_0000;
        let shift = (14 - e) as u32;
        let half = m >> shift;
        let rem = m & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let round = u32::from(rem > halfway || (rem == halfway && (half & 1) == 1));
        return sign | (half + round) as u16;
    }
    let half = ((e as u32) << 10) | (mant >> 13);
    let rem = mant & 0x1FFF;
    // A mantissa carry propagates into the exponent (and on to inf)
    // correctly through plain addition.
    let round = u32::from(rem > 0x1000 || (rem == 0x1000 && (half & 1) == 1));
    sign | (half + round) as u16
}

/// Converts binary16 bits back to f32 (exact — every half is
/// representable).
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = u32::from(h >> 10) & 0x1F;
    let mant = u32::from(h & 0x03FF);
    if exp == 0 {
        // Subnormal half: mant * 2^-24, exact in f32.
        let v = mant as f32 * 5.960_464_5e-8;
        return if sign != 0 { -v } else { v };
    }
    if exp == 0x1F {
        let bits = sign | 0x7F80_0000 | (mant << 13);
        return f32::from_bits(bits);
    }
    f32::from_bits(sign | ((exp + 112) << 23) | (mant << 13))
}

/// Converts a whole slice to f16 bits (hardware `vcvtps2ph` when
/// available; bit-identical to the software path either way).
///
/// # Panics
///
/// Panics if the slices' lengths differ.
pub fn f16_from_f32_slice(src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len(), "length mismatch");
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("f16c") {
        // SAFETY: the F16C feature check just passed.
        unsafe { cvt_f32_to_f16_f16c(src, dst) };
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f32_to_f16(s);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "f16c")]
unsafe fn cvt_f32_to_f16_f16c(src: &[f32], dst: &mut [u16]) {
    use core::arch::x86_64::*;
    let n = src.len();
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_loadu_ps(sp.add(i));
        let h = _mm256_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(v);
        _mm_storeu_si128(dp.add(i) as *mut __m128i, h);
        i += 8;
    }
    while i < n {
        *dp.add(i) = f32_to_f16(*sp.add(i));
        i += 1;
    }
}

// ---------------------------------------------------------------------
// Quantized weight storage.
// ---------------------------------------------------------------------

/// A dense row-major matrix stored as binary16 bits.
#[derive(Debug, Clone, PartialEq)]
pub struct F16Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u16>,
}

impl F16Matrix {
    /// Rounds an f32 matrix to binary16.
    pub fn from_matrix(m: &Matrix) -> Self {
        let mut data = vec![0u16; m.rows() * m.cols()];
        f16_from_f32_slice(m.as_slice(), &mut data);
        F16Matrix {
            rows: m.rows(),
            cols: m.cols(),
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw binary16 bits, row-major.
    pub fn bits(&self) -> &[u16] {
        &self.data
    }

    /// Exact f32 reconstruction (the oracle side of the parity tests).
    pub fn dequantize(&self) -> Matrix {
        let data = self.data.iter().map(|&h| f16_to_f32(h)).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

/// A dense row-major matrix stored as per-row asymmetric int8:
/// `w[r][c] ≈ scale[r] * (q[r][c] - zero[r])` with `q` clamped to
/// `[-127, 127]`. The quantization range of each row is widened to
/// include 0 so the zero-point always fits an `i8`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scale: Vec<f32>,
    zero: Vec<i8>,
}

impl QuantMatrix {
    /// Quantizes an f32 matrix row by row. The reconstruction error of
    /// any element is at most `scale/2` for its row (tested in
    /// `tests/quant_kernels.rs`).
    pub fn from_matrix(m: &Matrix) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        let mut data = vec![0i8; rows * cols];
        let mut scale = vec![0.0f32; rows];
        let mut zero = vec![0i8; rows];
        for r in 0..rows {
            let row = m.row(r);
            let mut lo = 0.0f32;
            let mut hi = 0.0f32;
            for &v in row {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let s = if hi - lo > 1e-12 {
                (hi - lo) / 254.0
            } else {
                // Degenerate row (constant, possibly all-zero): pick a
                // scale that represents the constant exactly at q = ±127.
                (hi.abs().max(lo.abs()) / 127.0).max(1e-12)
            };
            let z = (-127.0 - (lo / s).round()) as i32;
            debug_assert!((-127..=127).contains(&z), "zero-point fits i8");
            scale[r] = s;
            zero[r] = z as i8;
            for (d, &v) in data[r * cols..(r + 1) * cols].iter_mut().zip(row) {
                let q = (v / s).round() as i32 + z;
                *d = q.clamp(-127, 127) as i8;
            }
        }
        QuantMatrix {
            rows,
            cols,
            data,
            scale,
            zero,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-row scales.
    pub fn scales(&self) -> &[f32] {
        &self.scale
    }

    /// Raw int8 codes, row-major (test hook for the per-tier kernels).
    pub fn codes(&self) -> &[i8] {
        &self.data
    }

    /// Per-row zero-points (test hook for the per-tier kernels).
    pub fn zeros(&self) -> &[i8] {
        &self.zero
    }

    /// f32 reconstruction `scale * (q - zero)` (the oracle side of the
    /// parity tests).
    pub fn dequantize(&self) -> Matrix {
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            let s = self.scale[r];
            let z = i32::from(self.zero[r]);
            data.extend(
                self.data[r * self.cols..(r + 1) * self.cols]
                    .iter()
                    .map(|&q| s * (i32::from(q) - z) as f32),
            );
        }
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

// ---------------------------------------------------------------------
// Kernels.
// ---------------------------------------------------------------------

/// `C = A * dequant(B)` for row-major `A` (`m x k`), int8 `B` (`k x n`)
/// and `C` (`m x n`). Accumulates in f32; `c` is fully overwritten.
/// Dequantization is fused into the inner loop: each k-step broadcasts
/// `a[i][p] * scale[p]` against the widened `(q - zero)` row of `B`.
///
/// # Panics
///
/// Debug-asserts the shapes implied by `(m, k, n)`.
pub fn gemm_nn_q8(m: usize, k: usize, n: usize, a: &[f32], b: &QuantMatrix, c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!((b.rows, b.cols), (k, n));
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    {
        if have_avx512() {
            // SAFETY: the AVX-512F (+AVX2/FMA) feature check just passed.
            unsafe { x86::gemm_q8_avx512(m, k, n, a, &b.data, &b.scale, &b.zero, c) };
            return;
        }
        if have_avx2_fma() {
            // SAFETY: the AVX2+FMA feature check just passed.
            unsafe { x86::gemm_q8_avx2(m, k, n, a, &b.data, &b.scale, &b.zero, c) };
            return;
        }
    }
    #[cfg(target_arch = "aarch64")]
    if arm::have_neon() {
        // SAFETY: the NEON feature check just passed.
        unsafe { arm::gemm_q8_neon(m, k, n, a, &b.data, &b.scale, &b.zero, c) };
        return;
    }
    gemm_q8_scalar(m, k, n, a, &b.data, &b.scale, &b.zero, c);
}

/// Scalar-oracle entry point for [`gemm_nn_q8`]: always runs the plain
/// loop regardless of host features, so property tests can pin every
/// SIMD tier against it.
pub fn gemm_nn_q8_ref(m: usize, k: usize, n: usize, a: &[f32], b: &QuantMatrix, c: &mut [f32]) {
    gemm_q8_scalar(m, k, n, a, &b.data, &b.scale, &b.zero, c);
}

/// `C += A * dequant(B)` — the accumulating twin of [`gemm_nn_q8`],
/// letting the quantized backbone fuse its three per-layer products
/// into one output buffer instead of producing into a temporary and
/// adding. Per element the result is `c + full-dot`, exactly what the
/// separate product-then-add computes, so the fused AVX-512 tier and
/// the product+add fallback are bit-identical.
pub fn gemm_nn_q8_acc(m: usize, k: usize, n: usize, a: &[f32], b: &QuantMatrix, c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!((b.rows, b.cols), (k, n));
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if have_avx512() {
        // SAFETY: the AVX-512F (+AVX2/FMA) feature check just passed.
        unsafe { x86::gemm_q8_avx512_acc(m, k, n, a, &b.data, &b.scale, &b.zero, c) };
        return;
    }
    acc_via_tmp(m, n, c, |tmp| gemm_nn_q8(m, k, n, a, b, tmp));
}

/// Scalar-oracle entry point for [`gemm_nn_q8_acc`].
pub fn gemm_nn_q8_acc_ref(m: usize, k: usize, n: usize, a: &[f32], b: &QuantMatrix, c: &mut [f32]) {
    acc_via_tmp(m, n, c, |tmp| gemm_nn_q8_ref(m, k, n, a, b, tmp));
}

/// `C += A * dequant(B)` for the f16 plane; see [`gemm_nn_q8_acc`].
pub fn gemm_nn_f16_acc(m: usize, k: usize, n: usize, a: &[f32], b: &F16Matrix, c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!((b.rows, b.cols), (k, n));
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if have_avx512() {
        // SAFETY: the AVX-512F feature check just passed.
        unsafe { x86::gemm_f16_avx512_acc(m, k, n, a, &b.data, c) };
        return;
    }
    acc_via_tmp(m, n, c, |tmp| gemm_nn_f16(m, k, n, a, b, tmp));
}

/// Scalar-oracle entry point for [`gemm_nn_f16_acc`].
pub fn gemm_nn_f16_acc_ref(m: usize, k: usize, n: usize, a: &[f32], b: &F16Matrix, c: &mut [f32]) {
    acc_via_tmp(m, n, c, |tmp| gemm_nn_f16_ref(m, k, n, a, b, tmp));
}

/// Product-into-temporary + elementwise add: the accumulate fallback
/// for hosts without the fused tile.
fn acc_via_tmp(m: usize, n: usize, c: &mut [f32], product: impl FnOnce(&mut [f32])) {
    let mut tmp = vec![0.0f32; m * n];
    product(&mut tmp);
    for (o, &v) in c.iter_mut().zip(&tmp) {
        *o += v;
    }
}

/// Scalar-oracle entry point for [`gemm_nn_f16`].
pub fn gemm_nn_f16_ref(m: usize, k: usize, n: usize, a: &[f32], b: &F16Matrix, c: &mut [f32]) {
    gemm_f16_scalar(m, k, n, a, &b.data, c);
}

/// Scalar-oracle entry point for [`spmm_f16_into`].
pub fn spmm_f16_ref(csr: &Csr, x: &[u16], cols: usize, out: &mut [f32]) {
    spmm_f16_scalar(csr, x, cols, out);
}

/// Plain-loop int8 GEMM — the dispatch fallback *and* the proptest
/// oracle the SIMD tiers are compared against.
#[allow(clippy::too_many_arguments)]
fn gemm_q8_scalar(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    q: &[i8],
    scale: &[f32],
    zero: &[i8],
    c: &mut [f32],
) {
    c.fill(0.0);
    for i in 0..m {
        let crow = &mut c[i * n..(i + 1) * n];
        for p in 0..k {
            let ae = a[i * k + p] * scale[p];
            if ae == 0.0 {
                continue;
            }
            let z = i32::from(zero[p]);
            let qrow = &q[p * n..(p + 1) * n];
            for (o, &qv) in crow.iter_mut().zip(qrow) {
                *o += ae * (i32::from(qv) - z) as f32;
            }
        }
    }
}

/// `C = A * dequant(B)` for row-major `A` (`m x k`), binary16 `B`
/// (`k x n`) and `C` (`m x n`). Accumulates in f32; `c` is fully
/// overwritten.
///
/// # Panics
///
/// Debug-asserts the shapes implied by `(m, k, n)`.
pub fn gemm_nn_f16(m: usize, k: usize, n: usize, a: &[f32], b: &F16Matrix, c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!((b.rows, b.cols), (k, n));
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    {
        if have_avx512() {
            // SAFETY: the AVX-512F feature check just passed.
            unsafe { x86::gemm_f16_avx512(m, k, n, a, &b.data, c) };
            return;
        }
        if have_avx2_f16c() {
            // SAFETY: the AVX2+FMA+F16C feature check just passed.
            unsafe { x86::gemm_f16_avx2(m, k, n, a, &b.data, c) };
            return;
        }
    }
    gemm_f16_scalar(m, k, n, a, &b.data, c);
}

/// Plain-loop f16 GEMM — dispatch fallback and proptest oracle.
fn gemm_f16_scalar(m: usize, k: usize, n: usize, a: &[f32], b: &[u16], c: &mut [f32]) {
    c.fill(0.0);
    for i in 0..m {
        let crow = &mut c[i * n..(i + 1) * n];
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &h) in crow.iter_mut().zip(brow) {
                *o += av * f16_to_f32(h);
            }
        }
    }
}

/// Sparse-dense product `out = csr * X` where `X` is `? x cols` stored
/// as binary16 bits and `out` accumulates neighbor rows in f32 — the
/// half-bandwidth twin of [`crate::infer::spmm_into`] with the same
/// CSR-order accumulation.
///
/// # Panics
///
/// Panics if `out` is shorter than `csr.num_rows() * cols` or a column
/// index exceeds `x`.
pub fn spmm_f16_into(csr: &Csr, x: &[u16], cols: usize, out: &mut [f32]) {
    let n = csr.num_rows();
    assert!(out.len() >= n * cols, "output too small");
    assert!(csr.max_col_bound() * cols <= x.len(), "x too small");
    #[cfg(target_arch = "x86_64")]
    {
        if have_avx512() {
            // SAFETY: the AVX-512F feature check just passed; bounds
            // were asserted above.
            unsafe { x86::spmm_f16_avx512(csr, x, cols, out) };
            return;
        }
        if have_avx2_f16c() {
            // SAFETY: the AVX2+F16C feature check just passed; bounds
            // were asserted above.
            unsafe { x86::spmm_f16_avx2(csr, x, cols, out) };
            return;
        }
    }
    spmm_f16_scalar(csr, x, cols, out);
}

/// Sparse-dense product `out = csr * X` on plain f32 activations, with
/// the dispatch ladder widened past AVX2 — the quantized backbone's
/// twin of [`crate::infer::spmm_into`]. Per output element the adds
/// happen in the same CSR neighbor order regardless of lane width
/// (lanes are independent columns), so every tier is bit-identical to
/// the scalar path; it still lives here rather than in `infer` because
/// only the quantized lane is allowed off the pinned-AVX2 ladder.
///
/// # Panics
///
/// Panics if `out` is shorter than `csr.num_rows() * cols` or a column
/// index exceeds `x`.
pub fn spmm_f32_wide(csr: &Csr, x: &[f32], cols: usize, out: &mut [f32]) {
    let n = csr.num_rows();
    assert!(out.len() >= n * cols, "output too small");
    assert!(csr.max_col_bound() * cols <= x.len(), "x too small");
    #[cfg(target_arch = "x86_64")]
    {
        if have_avx512() {
            // SAFETY: the AVX-512F feature check just passed; bounds
            // were asserted above.
            unsafe { x86::spmm_f32_avx512(csr, x, cols, out) };
            return;
        }
        if have_avx2_fma() {
            // SAFETY: the AVX2 feature check just passed; bounds were
            // asserted above.
            unsafe { x86::spmm_f32_avx2(csr, x, cols, out) };
            return;
        }
    }
    crate::infer::spmm_into(csr, x, cols, out);
}

/// Plain-loop f16 SpMM — dispatch fallback and proptest oracle.
fn spmm_f16_scalar(csr: &Csr, x: &[u16], cols: usize, out: &mut [f32]) {
    for i in 0..csr.num_rows() {
        let orow = &mut out[i * cols..(i + 1) * cols];
        orow.fill(0.0);
        for &j in csr.row(i) {
            let src = &x[j as usize * cols..(j as usize + 1) * cols];
            for (o, &h) in orow.iter_mut().zip(src) {
                *o += f16_to_f32(h);
            }
        }
    }
}

/// A weight plane a frozen model can multiply by: implemented by
/// [`F16Matrix`] and [`QuantMatrix`] so the quantized forward pass in
/// `mpld-gnn` is generic over the storage format.
pub trait QuantGemm {
    /// Number of rows (the GEMM `k` dimension).
    fn rows(&self) -> usize;
    /// Number of columns (the GEMM `n` dimension).
    fn cols(&self) -> usize;
    /// `c = a * dequant(self)` with `a` of shape `m x rows()`.
    fn gemm_nn_into(&self, m: usize, a: &[f32], c: &mut [f32]);
    /// `c += a * dequant(self)` — fused accumulate, so a multi-term sum
    /// of products needs no temporary.
    fn gemm_nn_acc_into(&self, m: usize, a: &[f32], c: &mut [f32]);
    /// The precision this plane implements.
    fn precision() -> Precision;
}

impl QuantGemm for F16Matrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn gemm_nn_into(&self, m: usize, a: &[f32], c: &mut [f32]) {
        gemm_nn_f16(m, self.rows, self.cols, a, self, c);
    }
    fn gemm_nn_acc_into(&self, m: usize, a: &[f32], c: &mut [f32]) {
        gemm_nn_f16_acc(m, self.rows, self.cols, a, self, c);
    }
    fn precision() -> Precision {
        Precision::F16
    }
}

impl QuantGemm for QuantMatrix {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn gemm_nn_into(&self, m: usize, a: &[f32], c: &mut [f32]) {
        gemm_nn_q8(m, self.rows, self.cols, a, self, c);
    }
    fn gemm_nn_acc_into(&self, m: usize, a: &[f32], c: &mut [f32]) {
        gemm_nn_q8_acc(m, self.rows, self.cols, a, self, c);
    }
    fn precision() -> Precision {
        Precision::Int8
    }
}

/// Runtime-dispatched AVX2 and AVX-512 quantized microkernels. Unlike
/// the f32 GEMM (pinned to AVX2 for tape/frozen bit-identity), these
/// are free to use the widest unit available: their contract is
/// tolerance parity with the scalar oracle, not bit-identity. Public
/// (but hidden) so `tests/quant_kernels.rs` can pin every tier the host
/// can run, not just the one auto-dispatch picks.
#[doc(hidden)]
#[cfg(target_arch = "x86_64")]
pub mod x86 {
    use super::{f16_to_f32, Csr};
    use core::arch::x86_64::*;

    /// Microkernel row tile (output rows held in registers).
    const MR: usize = 4;
    /// Column tile of the AVX-512 f32 microkernel: two zmm registers per
    /// output row.
    const NR16: usize = 32;

    // The GEMM tiers all share one strategy. The frozen weight planes at
    // routing time are tiny (k, n <= 64 — the whole matrix is
    // L1-resident), so the product is compute-bound, not bandwidth-bound:
    // decoding int8/f16 inside the inner loop re-pays the decode once per
    // MR-row tile (~m/4 times) and loses to the plain f32 kernel. Each
    // tier instead dequantizes the whole `k x n` panel ONCE into an f32
    // scratch, then runs a pure f32 microkernel on it: the AVX2 tiers
    // reuse the pinned `infer::gemm_into` path, the AVX-512 tiers run the
    // 32-column [`gemm_f32_avx512`] below — the one place the dispatch
    // ladder widens past AVX2, safe because only quantized planes (whose
    // contract is tolerance parity, not bit-identity) can reach it.

    /// int8 GEMM, AVX2+FMA tier: vectorized panel dequant, then the
    /// pinned AVX2 f32 GEMM.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2+FMA and the shapes implied by `(m, k, n)`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_q8_avx2(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        q: &[i8],
        scale: &[f32],
        zero: &[i8],
        c: &mut [f32],
    ) {
        let mut panel = vec![0.0f32; k * n];
        q8_panel_avx2(k, n, q, scale, zero, &mut panel);
        crate::infer::gemm_into(m, k, n, a, &panel, c);
    }

    /// int8 GEMM, AVX-512F tier: same panel dequant 16 codes at a time,
    /// then the wide f32 microkernel.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F+AVX2+FMA and the shapes implied by
    /// `(m, k, n)`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f,avx2,fma")]
    pub unsafe fn gemm_q8_avx512(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        q: &[i8],
        scale: &[f32],
        zero: &[i8],
        c: &mut [f32],
    ) {
        let mut panel = vec![0.0f32; k * n];
        q8_panel_avx512(k, n, q, scale, zero, &mut panel);
        gemm_f32_avx512::<false>(m, k, n, a, &panel, c);
    }

    /// Accumulating twin of [`gemm_q8_avx512`]: `C += A * dequant(B)`.
    ///
    /// # Safety
    ///
    /// Same contract as [`gemm_q8_avx512`].
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f,avx2,fma")]
    pub unsafe fn gemm_q8_avx512_acc(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        q: &[i8],
        scale: &[f32],
        zero: &[i8],
        c: &mut [f32],
    ) {
        let mut panel = vec![0.0f32; k * n];
        q8_panel_avx512(k, n, q, scale, zero, &mut panel);
        gemm_f32_avx512::<true>(m, k, n, a, &panel, c);
    }

    /// f16 GEMM, AVX2+FMA+F16C tier: `vcvtph2ps` panel dequant, then the
    /// pinned AVX2 f32 GEMM.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2+FMA+F16C and the shapes implied by
    /// `(m, k, n)`.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub unsafe fn gemm_f16_avx2(m: usize, k: usize, n: usize, a: &[f32], b: &[u16], c: &mut [f32]) {
        let mut panel = vec![0.0f32; k * n];
        f16_panel_avx2(b, &mut panel);
        crate::infer::gemm_into(m, k, n, a, &panel, c);
    }

    /// f16 GEMM, AVX-512F tier: 16-half `vcvtph2ps` panel dequant, then
    /// the wide f32 microkernel.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F and the shapes implied by `(m, k, n)`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn gemm_f16_avx512(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[u16],
        c: &mut [f32],
    ) {
        let mut panel = vec![0.0f32; k * n];
        f16_panel_avx512(b, &mut panel);
        gemm_f32_avx512::<false>(m, k, n, a, &panel, c);
    }

    /// Accumulating twin of [`gemm_f16_avx512`]: `C += A * dequant(B)`.
    ///
    /// # Safety
    ///
    /// Same contract as [`gemm_f16_avx512`].
    #[target_feature(enable = "avx512f")]
    pub unsafe fn gemm_f16_avx512_acc(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[u16],
        c: &mut [f32],
    ) {
        let mut panel = vec![0.0f32; k * n];
        f16_panel_avx512(b, &mut panel);
        gemm_f32_avx512::<true>(m, k, n, a, &panel, c);
    }

    /// Dequantize a `k x n` int8 panel into f32, 8 codes per step.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2; `q`/`out` must hold `k * n` elements and
    /// `scale`/`zero` `k` rows.
    #[target_feature(enable = "avx2")]
    unsafe fn q8_panel_avx2(
        k: usize,
        n: usize,
        q: &[i8],
        scale: &[f32],
        zero: &[i8],
        out: &mut [f32],
    ) {
        let qp = q.as_ptr();
        let op = out.as_mut_ptr();
        for p in 0..k {
            let s = *scale.get_unchecked(p);
            let z = i32::from(*zero.get_unchecked(p));
            let sv = _mm256_set1_ps(s);
            let zv = _mm256_set1_epi32(z);
            let row = qp.add(p * n);
            let orow = op.add(p * n);
            let mut j = 0;
            while j + 8 <= n {
                let raw = _mm_loadl_epi64(row.add(j) as *const __m128i);
                let w = _mm256_sub_epi32(_mm256_cvtepi8_epi32(raw), zv);
                _mm256_storeu_ps(orow.add(j), _mm256_mul_ps(sv, _mm256_cvtepi32_ps(w)));
                j += 8;
            }
            while j < n {
                *orow.add(j) = s * (i32::from(*row.add(j)) - z) as f32;
                j += 1;
            }
        }
    }

    /// Dequantize a `k x n` int8 panel into f32, 16 codes per step.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F; same bounds as [`q8_panel_avx2`].
    #[target_feature(enable = "avx512f")]
    unsafe fn q8_panel_avx512(
        k: usize,
        n: usize,
        q: &[i8],
        scale: &[f32],
        zero: &[i8],
        out: &mut [f32],
    ) {
        let qp = q.as_ptr();
        let op = out.as_mut_ptr();
        for p in 0..k {
            let s = *scale.get_unchecked(p);
            let z = i32::from(*zero.get_unchecked(p));
            let sv = _mm512_set1_ps(s);
            let zv = _mm512_set1_epi32(z);
            let row = qp.add(p * n);
            let orow = op.add(p * n);
            let mut j = 0;
            while j + 16 <= n {
                let raw = _mm_loadu_si128(row.add(j) as *const __m128i);
                let w = _mm512_sub_epi32(_mm512_cvtepi8_epi32(raw), zv);
                _mm512_storeu_ps(orow.add(j), _mm512_mul_ps(sv, _mm512_cvtepi32_ps(w)));
                j += 16;
            }
            while j < n {
                *orow.add(j) = s * (i32::from(*row.add(j)) - z) as f32;
                j += 1;
            }
        }
    }

    /// Convert a flat binary16 panel to f32, 8 halves per step.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2+F16C; `out.len() >= bits.len()`.
    #[target_feature(enable = "avx2,f16c")]
    unsafe fn f16_panel_avx2(bits: &[u16], out: &mut [f32]) {
        let bp = bits.as_ptr();
        let op = out.as_mut_ptr();
        let len = bits.len();
        let mut i = 0;
        while i + 8 <= len {
            let f = _mm256_cvtph_ps(_mm_loadu_si128(bp.add(i) as *const __m128i));
            _mm256_storeu_ps(op.add(i), f);
            i += 8;
        }
        while i < len {
            *op.add(i) = f16_to_f32(*bp.add(i));
            i += 1;
        }
    }

    /// Convert a flat binary16 panel to f32, 16 halves per step.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F; `out.len() >= bits.len()`.
    #[target_feature(enable = "avx512f")]
    unsafe fn f16_panel_avx512(bits: &[u16], out: &mut [f32]) {
        let bp = bits.as_ptr();
        let op = out.as_mut_ptr();
        let len = bits.len();
        let mut i = 0;
        while i + 16 <= len {
            let f = _mm512_cvtph_ps(_mm256_loadu_si256(bp.add(i) as *const __m256i));
            _mm512_storeu_ps(op.add(i), f);
            i += 16;
        }
        while i < len {
            *op.add(i) = f16_to_f32(*bp.add(i));
            i += 1;
        }
    }

    /// f32 GEMM, AVX-512F: register-blocked row groups (8, then 4, then
    /// single rows), 32-column main tiles, and masked loads/stores for
    /// the ragged column tail — so even `n == 2` head layers stay on
    /// the vector unit. Reached only through the quantized tiers above —
    /// the main f32 path stays on AVX2 so the tape and frozen engines
    /// remain bit-identical. With `ACC` the finished dot product is
    /// added onto `c` instead of overwriting it — per element
    /// `c + full-dot`, exactly product-then-add.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F and the shapes implied by `(m, k, n)`.
    #[target_feature(enable = "avx512f")]
    unsafe fn gemm_f32_avx512<const ACC: bool>(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= m {
            gemm_rows_avx512::<8, ACC>(i, k, n, ap, bp, cp);
            i += 8;
        }
        while i + MR <= m {
            gemm_rows_avx512::<MR, ACC>(i, k, n, ap, bp, cp);
            i += MR;
        }
        while i < m {
            gemm_rows_avx512::<1, ACC>(i, k, n, ap, bp, cp);
            i += 1;
        }
    }

    /// One `RB`-row block of [`gemm_f32_avx512`]: 32-column tiles, then
    /// a 16-column tile, then a masked sub-16 tail. Every column — tail
    /// included — accumulates its dot product in `p` order through the
    /// same FMA, so the result is independent of `n`'s alignment.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F; rows `[i, i + RB)` must lie within
    /// the `m x n` output and `m x k` lhs.
    #[allow(clippy::needless_range_loop)] // `r` also offsets raw row pointers
    #[target_feature(enable = "avx512f")]
    unsafe fn gemm_rows_avx512<const RB: usize, const ACC: bool>(
        i: usize,
        k: usize,
        n: usize,
        ap: *const f32,
        bp: *const f32,
        cp: *mut f32,
    ) {
        let mut j = 0;
        while j + NR16 <= n {
            // 2*RB live accumulators (<= 16 zmm at RB == 8).
            let mut acc = [_mm512_setzero_ps(); 16];
            for p in 0..k {
                let row = bp.add(p * n + j);
                let b0 = _mm512_loadu_ps(row);
                let b1 = _mm512_loadu_ps(row.add(16));
                for r in 0..RB {
                    let av = _mm512_set1_ps(*ap.add((i + r) * k + p));
                    acc[2 * r] = _mm512_fmadd_ps(av, b0, acc[2 * r]);
                    acc[2 * r + 1] = _mm512_fmadd_ps(av, b1, acc[2 * r + 1]);
                }
            }
            for r in 0..RB {
                let crow = cp.add((i + r) * n + j);
                let (mut v0, mut v1) = (acc[2 * r], acc[2 * r + 1]);
                if ACC {
                    v0 = _mm512_add_ps(_mm512_loadu_ps(crow), v0);
                    v1 = _mm512_add_ps(_mm512_loadu_ps(crow.add(16)), v1);
                }
                _mm512_storeu_ps(crow, v0);
                _mm512_storeu_ps(crow.add(16), v1);
            }
            j += NR16;
        }
        if j + 16 <= n {
            let mut acc = [_mm512_setzero_ps(); 8];
            for p in 0..k {
                let b0 = _mm512_loadu_ps(bp.add(p * n + j));
                for r in 0..RB {
                    let av = _mm512_set1_ps(*ap.add((i + r) * k + p));
                    acc[r] = _mm512_fmadd_ps(av, b0, acc[r]);
                }
            }
            for r in 0..RB {
                let crow = cp.add((i + r) * n + j);
                let mut v = acc[r];
                if ACC {
                    v = _mm512_add_ps(_mm512_loadu_ps(crow), v);
                }
                _mm512_storeu_ps(crow, v);
            }
            j += 16;
        }
        if j < n {
            let mask: __mmask16 = (1u16 << (n - j)) - 1;
            let mut acc = [_mm512_setzero_ps(); 8];
            for p in 0..k {
                let b0 = _mm512_maskz_loadu_ps(mask, bp.add(p * n + j));
                for r in 0..RB {
                    let av = _mm512_set1_ps(*ap.add((i + r) * k + p));
                    acc[r] = _mm512_fmadd_ps(av, b0, acc[r]);
                }
            }
            for r in 0..RB {
                let crow = cp.add((i + r) * n + j);
                let mut v = acc[r];
                if ACC {
                    v = _mm512_add_ps(_mm512_maskz_loadu_ps(mask, crow), v);
                }
                _mm512_mask_storeu_ps(crow, mask, v);
            }
        }
    }

    /// f32 SpMM, AVX2: accumulate neighbor rows 8 floats at a time.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2; `out` and `x` bounds are the
    /// dispatcher's asserted contract.
    #[target_feature(enable = "avx2")]
    pub unsafe fn spmm_f32_avx2(csr: &Csr, x: &[f32], cols: usize, out: &mut [f32]) {
        let xp = x.as_ptr();
        // Routing backbones only ever aggregate at cols == 1 (input
        // features) or cols == 32 (hidden width); keep those rows'
        // sums in registers so each neighbor is load+add instead of a
        // store-forwarded read-modify-write of `out`. Per column the
        // adds still run in CSR neighbor order from a 0.0 start, so the
        // result is bit-identical to the generic loop below.
        if cols == 32 {
            for i in 0..csr.num_rows() {
                let mut a0 = _mm256_setzero_ps();
                let mut a1 = _mm256_setzero_ps();
                let mut a2 = _mm256_setzero_ps();
                let mut a3 = _mm256_setzero_ps();
                for &j in csr.row(i) {
                    let src = xp.add(j as usize * 32);
                    a0 = _mm256_add_ps(a0, _mm256_loadu_ps(src));
                    a1 = _mm256_add_ps(a1, _mm256_loadu_ps(src.add(8)));
                    a2 = _mm256_add_ps(a2, _mm256_loadu_ps(src.add(16)));
                    a3 = _mm256_add_ps(a3, _mm256_loadu_ps(src.add(24)));
                }
                let op = out.as_mut_ptr().add(i * 32);
                _mm256_storeu_ps(op, a0);
                _mm256_storeu_ps(op.add(8), a1);
                _mm256_storeu_ps(op.add(16), a2);
                _mm256_storeu_ps(op.add(24), a3);
            }
            return;
        }
        if cols == 1 {
            for (i, o) in out.iter_mut().enumerate().take(csr.num_rows()) {
                let mut s = 0.0f32;
                for &j in csr.row(i) {
                    s += *xp.add(j as usize);
                }
                *o = s;
            }
            return;
        }
        for i in 0..csr.num_rows() {
            let orow = &mut out[i * cols..(i + 1) * cols];
            orow.fill(0.0);
            let op = orow.as_mut_ptr();
            for &j in csr.row(i) {
                let src = xp.add(j as usize * cols);
                let mut cidx = 0;
                while cidx + 8 <= cols {
                    let f = _mm256_loadu_ps(src.add(cidx));
                    let o = _mm256_loadu_ps(op.add(cidx));
                    _mm256_storeu_ps(op.add(cidx), _mm256_add_ps(o, f));
                    cidx += 8;
                }
                while cidx < cols {
                    *op.add(cidx) += *src.add(cidx);
                    cidx += 1;
                }
            }
        }
    }

    /// f32 SpMM, AVX-512F: accumulate neighbor rows 16 floats at a time.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F; `out` and `x` bounds are the
    /// dispatcher's asserted contract.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn spmm_f32_avx512(csr: &Csr, x: &[f32], cols: usize, out: &mut [f32]) {
        let xp = x.as_ptr();
        // Same register-resident specializations as the AVX2 kernel
        // (see there for the bit-identity argument).
        if cols == 32 {
            for i in 0..csr.num_rows() {
                let mut a0 = _mm512_setzero_ps();
                let mut a1 = _mm512_setzero_ps();
                for &j in csr.row(i) {
                    let src = xp.add(j as usize * 32);
                    a0 = _mm512_add_ps(a0, _mm512_loadu_ps(src));
                    a1 = _mm512_add_ps(a1, _mm512_loadu_ps(src.add(16)));
                }
                let op = out.as_mut_ptr().add(i * 32);
                _mm512_storeu_ps(op, a0);
                _mm512_storeu_ps(op.add(16), a1);
            }
            return;
        }
        if cols == 1 {
            for (i, o) in out.iter_mut().enumerate().take(csr.num_rows()) {
                let mut s = 0.0f32;
                for &j in csr.row(i) {
                    s += *xp.add(j as usize);
                }
                *o = s;
            }
            return;
        }
        for i in 0..csr.num_rows() {
            let orow = &mut out[i * cols..(i + 1) * cols];
            orow.fill(0.0);
            let op = orow.as_mut_ptr();
            for &j in csr.row(i) {
                let src = xp.add(j as usize * cols);
                let mut cidx = 0;
                while cidx + 16 <= cols {
                    let f = _mm512_loadu_ps(src.add(cidx));
                    let o = _mm512_loadu_ps(op.add(cidx));
                    _mm512_storeu_ps(op.add(cidx), _mm512_add_ps(o, f));
                    cidx += 16;
                }
                while cidx < cols {
                    *op.add(cidx) += *src.add(cidx);
                    cidx += 1;
                }
            }
        }
    }

    /// f16 SpMM, AVX2+F16C: accumulate neighbor rows 8 halves at a time.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2+F16C; `out` and `x` bounds are the
    /// dispatcher's asserted contract.
    #[target_feature(enable = "avx2,f16c")]
    pub unsafe fn spmm_f16_avx2(csr: &Csr, x: &[u16], cols: usize, out: &mut [f32]) {
        let xp = x.as_ptr();
        for i in 0..csr.num_rows() {
            let orow = &mut out[i * cols..(i + 1) * cols];
            orow.fill(0.0);
            let op = orow.as_mut_ptr();
            for &j in csr.row(i) {
                let src = xp.add(j as usize * cols);
                let mut cidx = 0;
                while cidx + 8 <= cols {
                    let f = _mm256_cvtph_ps(_mm_loadu_si128(src.add(cidx) as *const __m128i));
                    let o = _mm256_loadu_ps(op.add(cidx));
                    _mm256_storeu_ps(op.add(cidx), _mm256_add_ps(o, f));
                    cidx += 8;
                }
                while cidx < cols {
                    *op.add(cidx) += f16_to_f32(*src.add(cidx));
                    cidx += 1;
                }
            }
        }
    }

    /// f16 SpMM, AVX-512F: accumulate neighbor rows 16 halves at a time.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F; `out` and `x` bounds are the
    /// dispatcher's asserted contract.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn spmm_f16_avx512(csr: &Csr, x: &[u16], cols: usize, out: &mut [f32]) {
        let xp = x.as_ptr();
        for i in 0..csr.num_rows() {
            let orow = &mut out[i * cols..(i + 1) * cols];
            orow.fill(0.0);
            let op = orow.as_mut_ptr();
            for &j in csr.row(i) {
                let src = xp.add(j as usize * cols);
                let mut cidx = 0;
                while cidx + 16 <= cols {
                    let f = _mm512_cvtph_ps(_mm256_loadu_si256(src.add(cidx) as *const __m256i));
                    let o = _mm512_loadu_ps(op.add(cidx));
                    _mm512_storeu_ps(op.add(cidx), _mm512_add_ps(o, f));
                    cidx += 16;
                }
                while cidx < cols {
                    *op.add(cidx) += f16_to_f32(*src.add(cidx));
                    cidx += 1;
                }
            }
        }
    }
}

/// NEON int8 microkernel for aarch64 hosts. The f16 kernels fall back
/// to the software-conversion scalar loops there (see the dispatch
/// matrix in the module docs); f32 GEMM keeps its portable tiled path.
#[doc(hidden)]
#[cfg(target_arch = "aarch64")]
pub mod arm {
    use core::arch::aarch64::*;

    const MR: usize = 4;
    const NR: usize = 16;

    /// Whether the NEON kernel may run (true on every aarch64 Linux
    /// target, but checked anyway for odd configurations).
    pub fn have_neon() -> bool {
        std::arch::is_aarch64_feature_detected!("neon")
    }

    /// int8 GEMM, NEON: widen 16 `q` bytes to four 4-lane f32 vectors,
    /// subtract the zero-point, FMA against `a[i][p] * scale[p]`.
    ///
    /// # Safety
    ///
    /// Caller must ensure NEON and the shapes implied by `(m, k, n)`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "neon")]
    pub unsafe fn gemm_q8_neon(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        q: &[i8],
        scale: &[f32],
        zero: &[i8],
        c: &mut [f32],
    ) {
        let ap = a.as_ptr();
        let qp = q.as_ptr();
        let cp = c.as_mut_ptr();
        let mut i = 0;
        while i + MR <= m {
            let mut j = 0;
            while j + NR <= n {
                let mut acc = [vdupq_n_f32(0.0); 4 * MR];
                for p in 0..k {
                    let raw = vld1q_s8(qp.add(p * n + j));
                    let z = vdupq_n_s16(i16::from(*zero.get_unchecked(p)));
                    let lo = vsubq_s16(vmovl_s8(vget_low_s8(raw)), z);
                    let hi = vsubq_s16(vmovl_s8(vget_high_s8(raw)), z);
                    let f = [
                        vcvtq_f32_s32(vmovl_s16(vget_low_s16(lo))),
                        vcvtq_f32_s32(vmovl_s16(vget_high_s16(lo))),
                        vcvtq_f32_s32(vmovl_s16(vget_low_s16(hi))),
                        vcvtq_f32_s32(vmovl_s16(vget_high_s16(hi))),
                    ];
                    let s = *scale.get_unchecked(p);
                    for r in 0..MR {
                        let ae = *ap.add((i + r) * k + p) * s;
                        for (qi, fv) in f.iter().enumerate() {
                            acc[4 * r + qi] = vfmaq_n_f32(acc[4 * r + qi], *fv, ae);
                        }
                    }
                }
                for r in 0..MR {
                    let crow = cp.add((i + r) * n + j);
                    for (qi, av) in acc[4 * r..4 * r + 4].iter().enumerate() {
                        vst1q_f32(crow.add(4 * qi), *av);
                    }
                }
                j += NR;
            }
            if j < n {
                edge_q8(i, MR, j, n, k, ap, qp, scale, zero, cp);
            }
            i += MR;
        }
        if i < m {
            edge_q8(i, m - i, 0, n, k, ap, qp, scale, zero, cp);
        }
    }

    /// Ragged-edge rows/columns: plain dot loops.
    ///
    /// # Safety
    ///
    /// `[i, i + ib) x [j, n)` must lie within the output.
    #[allow(clippy::too_many_arguments)]
    unsafe fn edge_q8(
        i: usize,
        ib: usize,
        j: usize,
        n: usize,
        k: usize,
        ap: *const f32,
        qp: *const i8,
        scale: &[f32],
        zero: &[i8],
        cp: *mut f32,
    ) {
        for r in i..i + ib {
            for col in j..n {
                let mut s = 0.0f32;
                for p in 0..k {
                    let ae = *ap.add(r * k + p) * scale.get_unchecked(p).to_owned();
                    let z = i32::from(*zero.get_unchecked(p));
                    s += ae * (i32::from(*qp.add(p * n + col)) - z) as f32;
                }
                *cp.add(r * n + col) = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrip_specials() {
        for &(x, bits) in &[
            (0.0f32, 0x0000u16),
            (-0.0, 0x8000),
            (1.0, 0x3C00),
            (-2.0, 0xC000),
            (65504.0, 0x7BFF), // max finite half
            (f32::INFINITY, 0x7C00),
            (f32::NEG_INFINITY, 0xFC00),
        ] {
            assert_eq!(f32_to_f16(x), bits, "{x}");
            if x.is_finite() {
                assert_eq!(f16_to_f32(bits), x);
            }
        }
        assert_eq!(f32_to_f16(1e9), 0x7C00, "overflow saturates to inf");
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        // Subnormal halves roundtrip exactly.
        let tiny = 5.960_464_5e-8; // smallest positive subnormal half
        assert_eq!(f16_to_f32(f32_to_f16(tiny)), tiny);
    }

    #[test]
    fn f16_round_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next half;
        // ties-to-even keeps the even mantissa (1.0).
        let halfway = f32::from_bits(0x3F80_1000);
        assert_eq!(f32_to_f16(halfway), 0x3C00);
        // Just above halfway rounds up.
        let above = f32::from_bits(0x3F80_1001);
        assert_eq!(f32_to_f16(above), 0x3C01);
    }

    #[test]
    fn quant_matrix_constant_row_is_exact() {
        let m = Matrix::from_rows(&[&[0.5, 0.5, 0.5], &[0.0, 0.0, 0.0]]);
        let q = QuantMatrix::from_matrix(&m);
        let d = q.dequantize();
        for c in 0..3 {
            assert_eq!(d[(0, c)], 0.5);
            assert_eq!(d[(1, c)], 0.0);
        }
    }

    #[test]
    fn precision_parse_and_env_default() {
        assert_eq!(Precision::parse("F16"), Some(Precision::F16));
        assert_eq!(Precision::parse("q8"), Some(Precision::Int8));
        assert_eq!(Precision::parse("fp32"), Some(Precision::F32));
        assert_eq!(Precision::parse("bf16"), None);
        assert_eq!(Precision::default(), Precision::F32);
        assert_eq!(Precision::Int8.to_string(), "int8");
    }

    #[test]
    fn kernel_names_are_distinct_per_precision() {
        let names: Vec<&str> = [Precision::F32, Precision::F16, Precision::Int8]
            .iter()
            .map(|&p| kernel_name_for(p))
            .collect();
        assert!(names.iter().all(|n| !n.is_empty()));
        assert_ne!(names[1], names[0]);
        assert_ne!(names[2], names[0]);
    }
}
