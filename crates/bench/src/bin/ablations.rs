//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. sum vs max readout for the two classifier heads;
//! 2. ColorGNN restart count (`iter` in Algorithm 1);
//! 3. ColorGNN neighbor sampling on/off;
//! 4. redundancy-prediction confidence bar.

use mpld::ConfusionMatrix;
use mpld_bench::{env_usize, print_table, Bench};
use mpld_gnn::{ColorGnn, ColorGnnTrainConfig, Readout, RgcnClassifier, TrainConfig};
use mpld_graph::{Budget, Decomposer, LayoutGraph};
use mpld_ilp::IlpDecomposer;
use std::time::Instant;

fn main() {
    let bench = Bench::load();
    let epochs = env_usize("MPLD_EPOCHS", 12);
    let cfg = TrainConfig {
        epochs,
        ..TrainConfig::default()
    };
    let n = bench.circuits.len();
    let split = (n / 2).max(1);
    let train_idx: Vec<usize> = (0..split).collect();
    let test_idx: Vec<usize> = (split..n).collect();
    let train = bench.merged_data(&train_idx);

    // ---------------------------------------------------------------
    println!("Ablation 1: readout choice per classification head\n");
    let mut rows = Vec::new();
    type LabelFn = fn(&mpld::TrainingData) -> Vec<(usize, u8)>;
    let tasks: [(&str, LabelFn); 2] = [
        ("selector", |d| {
            d.selector_labels
                .iter()
                .enumerate()
                .map(|(i, &l)| (i, l))
                .collect()
        }),
        ("redundancy", |d| d.redundancy_labels.clone()),
    ];
    for (task, labels_of) in tasks {
        for readout in [Readout::Sum, Readout::Max] {
            let head: Vec<usize> = if task == "selector" {
                vec![64, 2]
            } else {
                vec![64, 32, 2]
            };
            let mut model = RgcnClassifier::new(&[1, 32, 64], 2, readout, &head, 11);
            let data: Vec<(&LayoutGraph, u8)> = labels_of(&train)
                .iter()
                .map(|&(i, l)| (&train.units[i], l))
                .collect();
            if data.is_empty() {
                continue;
            }
            model.train(&data, &cfg);
            let mut cm = ConfusionMatrix::new();
            for &ci in &test_idx {
                let d = &bench.data[ci];
                let pairs = labels_of(d);
                let graphs: Vec<&LayoutGraph> = pairs.iter().map(|&(i, _)| &d.units[i]).collect();
                if graphs.is_empty() {
                    continue;
                }
                let probs = model.predict_batch(&graphs);
                for ((_, l), p) in pairs.iter().zip(&probs) {
                    cm.record(u8::from(p[1] > p[0]), *l);
                }
            }
            rows.push(vec![
                task.to_string(),
                format!("{readout:?}"),
                format!("{:.3}", cm.f1()),
                format!("{:.3}", cm.recall()),
                format!("{:.3}", cm.accuracy()),
            ]);
        }
    }
    print_table(&["task", "readout", "F1", "recall", "accuracy"], &rows);
    println!("paper choice: Sum for selection, Max for redundancy.\n");

    // ---------------------------------------------------------------
    println!("Ablation 2+3: ColorGNN restarts and neighbor sampling\n");
    let parents: Vec<LayoutGraph> = test_idx
        .iter()
        .flat_map(|&ci| bench.prepared[ci].units.iter())
        .map(|u| u.hetero.merge_stitch_edges().0)
        .collect();
    let refs: Vec<&LayoutGraph> = parents.iter().collect();
    let ilp = IlpDecomposer::new();
    let optima: Vec<u32> = refs
        .iter()
        .map(|g| ilp.decompose_unbounded(g, &bench.params).cost.conflicts)
        .collect();
    let train_parents: Vec<LayoutGraph> = train
        .units
        .iter()
        .filter(|g| !g.conflict_edges().is_empty())
        .map(|g| g.merge_stitch_edges().0)
        .collect();
    let train_refs: Vec<&LayoutGraph> = train_parents.iter().collect();

    let mut rows = Vec::new();
    for (restarts, sample_keep) in [(1usize, 0.8), (5, 0.8), (10, 0.8), (25, 0.8), (25, 1.0)] {
        let mut gnn = ColorGnn::with_shape(10, restarts, sample_keep, 0xC01);
        gnn.train(
            &train_refs,
            bench.params.k,
            &ColorGnnTrainConfig {
                epochs: env_usize("MPLD_COLORGNN_EPOCHS", 15),
                ..Default::default()
            },
        );
        let t = Instant::now();
        let results = gnn.decompose_batch(&refs, &bench.params, &Budget::unlimited());
        let elapsed = t.elapsed();
        let optimal = results
            .iter()
            .zip(&optima)
            .filter(|(d, &o)| d.cost.conflicts == o)
            .count();
        rows.push(vec![
            restarts.to_string(),
            format!("{sample_keep}"),
            format!("{optimal}/{}", refs.len()),
            mpld_bench::fmt_duration(elapsed),
        ]);
    }
    print_table(
        &["restarts", "neighbor keep p", "optimal", "runtime"],
        &rows,
    );
    println!("paper uses iter = 5 with GPU batching; sampling helps escape local optima.\n");

    // ---------------------------------------------------------------
    println!("Ablation 4: redundancy confidence bar\n");
    let mut model = RgcnClassifier::redundancy(13);
    let data: Vec<(&LayoutGraph, u8)> = train
        .redundancy_labels
        .iter()
        .map(|&(i, l)| (&train.units[i], l))
        .collect();
    if !data.is_empty() {
        model.train(&data, &cfg);
        let mut rows = Vec::new();
        for bar in [0.5f32, 0.9, 0.99, 0.999] {
            let mut cm = ConfusionMatrix::new();
            for &ci in &test_idx {
                let d = &bench.data[ci];
                let graphs: Vec<&LayoutGraph> = d
                    .redundancy_labels
                    .iter()
                    .map(|&(i, _)| &d.units[i])
                    .collect();
                if graphs.is_empty() {
                    continue;
                }
                let probs = model.predict_batch(&graphs);
                for ((_, l), p) in d.redundancy_labels.iter().zip(&probs) {
                    cm.record(u8::from(p[0] <= bar), *l);
                }
            }
            rows.push(vec![
                bar.to_string(),
                cm.tp.to_string(),
                cm.fp.to_string(),
                format!("{:.3}", cm.precision()),
                format!("{:.3}", cm.recall()),
            ]);
        }
        print_table(
            &["bar", "pred-redundant TP", "FP", "precision", "recall"],
            &rows,
        );
        println!("higher bars trade recall (fewer ColorGNN routes) for precision.");
    }
}
