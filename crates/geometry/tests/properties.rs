//! Property-based tests for the geometry kernel.

use mpld_geometry::{feature_distance_sq, gap_distance_sq, Feature, GridIndex, Rect};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-1000i64..1000, -1000i64..1000, 1i64..200, 1i64..200)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_feature(id: u32) -> impl Strategy<Value = Feature> {
    prop::collection::vec(arb_rect(), 1..4).prop_map(move |rects| Feature::new(id, rects))
}

proptest! {
    #[test]
    fn gap_distance_is_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(gap_distance_sq(&a, &b), gap_distance_sq(&b, &a));
    }

    #[test]
    fn gap_distance_self_is_zero(a in arb_rect()) {
        prop_assert_eq!(gap_distance_sq(&a, &a), 0);
    }

    #[test]
    fn intersecting_rects_have_zero_distance(a in arb_rect(), b in arb_rect()) {
        if a.intersects(&b) {
            prop_assert_eq!(gap_distance_sq(&a, &b), 0);
        } else {
            prop_assert!(gap_distance_sq(&a, &b) > 0);
        }
    }

    #[test]
    fn translation_preserves_distance(a in arb_rect(), b in arb_rect(),
                                      dx in -500i64..500, dy in -500i64..500) {
        let ta = Rect::new(a.xl + dx, a.yl + dy, a.xh + dx, a.yh + dy);
        let tb = Rect::new(b.xl + dx, b.yl + dy, b.xh + dx, b.yh + dy);
        prop_assert_eq!(gap_distance_sq(&a, &b), gap_distance_sq(&ta, &tb));
    }

    #[test]
    fn split_preserves_area(a in arb_rect(), frac in 1i64..99) {
        let x = a.xl + a.width() * frac / 100;
        if let Some((l, r)) = a.split_at_x(x) {
            prop_assert_eq!(l.area() + r.area(), a.area());
            prop_assert_eq!(l.union(&r), a);
        }
    }

    #[test]
    fn feature_distance_symmetric(a in arb_feature(0), b in arb_feature(1)) {
        prop_assert_eq!(feature_distance_sq(&a, &b), feature_distance_sq(&b, &a));
    }

    #[test]
    fn grid_index_matches_bruteforce(
        feats in prop::collection::vec(arb_rect(), 2..25),
        d in 1i64..300,
    ) {
        let feats: Vec<Feature> = feats
            .into_iter()
            .enumerate()
            .map(|(i, r)| Feature::new(i as u32, vec![r]))
            .collect();
        let index = GridIndex::build(&feats, d);
        let got = index.conflict_pairs(&feats, d);
        let mut expect = Vec::new();
        for i in 0..feats.len() {
            for j in (i + 1)..feats.len() {
                if feature_distance_sq(&feats[i], &feats[j]) < d * d {
                    expect.push((i, j));
                }
            }
        }
        prop_assert_eq!(got, expect);
    }
}
