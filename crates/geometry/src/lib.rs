//! Rectilinear geometry kernel for multiple patterning layout decomposition.
//!
//! This crate provides the geometric substrate used by the rest of the MPLD
//! workspace: axis-aligned [`Rect`]s in integer (nanometre) coordinates,
//! polygonal [`Feature`]s assembled from rectangles, gap-distance queries
//! between features, and a uniform-grid [`GridIndex`] used to find all
//! feature pairs closer than the minimum coloring distance.
//!
//! # Example
//!
//! ```
//! use mpld_geometry::{Feature, GridIndex, Rect};
//!
//! let a = Feature::new(0, vec![Rect::new(0, 0, 100, 20)]);
//! let b = Feature::new(1, vec![Rect::new(0, 60, 100, 80)]);
//! let index = GridIndex::build(&[a.clone(), b.clone()], 120);
//! // The two wires are 40 nm apart, which is closer than d = 120 nm.
//! let pairs = index.conflict_pairs(&[a, b], 120);
//! assert_eq!(pairs, vec![(0, 1)]);
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod feature;
mod index;
mod polygon;
mod rect;

pub use feature::{Feature, FeatureId};
pub use index::GridIndex;
pub use polygon::{Polygon, PolygonError};
pub use rect::Rect;

/// Squared Euclidean gap distance between two axis-aligned rectangles.
///
/// Returns `0` when the rectangles touch or overlap. Using the squared
/// distance keeps everything in exact integer arithmetic; callers compare
/// against `d * d`.
///
/// # Example
///
/// ```
/// use mpld_geometry::{gap_distance_sq, Rect};
/// let a = Rect::new(0, 0, 10, 10);
/// let b = Rect::new(13, 14, 20, 20);
/// assert_eq!(gap_distance_sq(&a, &b), 3 * 3 + 4 * 4);
/// ```
pub fn gap_distance_sq(a: &Rect, b: &Rect) -> i64 {
    let dx = axis_gap(a.xl, a.xh, b.xl, b.xh);
    let dy = axis_gap(a.yl, a.yh, b.yl, b.yh);
    dx * dx + dy * dy
}

/// Gap between two 1-D intervals; zero when they overlap or touch.
fn axis_gap(al: i64, ah: i64, bl: i64, bh: i64) -> i64 {
    if bh < al {
        al - bh
    } else if ah < bl {
        bl - ah
    } else {
        0
    }
}

/// Squared gap distance between two polygonal features (minimum over their
/// rectangle pairs). Returns `0` for touching/overlapping features.
pub fn feature_distance_sq(a: &Feature, b: &Feature) -> i64 {
    let mut best = i64::MAX;
    for ra in a.rects() {
        for rb in b.rects() {
            best = best.min(gap_distance_sq(ra, rb));
            if best == 0 {
                return 0;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_gap_overlapping_is_zero() {
        assert_eq!(axis_gap(0, 10, 5, 15), 0);
        assert_eq!(axis_gap(0, 10, 10, 15), 0);
    }

    #[test]
    fn axis_gap_disjoint() {
        assert_eq!(axis_gap(0, 10, 14, 20), 4);
        assert_eq!(axis_gap(14, 20, 0, 10), 4);
    }

    #[test]
    fn gap_distance_diagonal() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(13, 14, 20, 20);
        assert_eq!(gap_distance_sq(&a, &b), 25);
        assert_eq!(gap_distance_sq(&b, &a), 25);
    }

    #[test]
    fn gap_distance_overlap_is_zero() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 20, 20);
        assert_eq!(gap_distance_sq(&a, &b), 0);
    }

    #[test]
    fn feature_distance_uses_minimum_rect_pair() {
        let a = Feature::new(0, vec![Rect::new(0, 0, 10, 10), Rect::new(0, 100, 10, 110)]);
        let b = Feature::new(1, vec![Rect::new(0, 115, 10, 125)]);
        assert_eq!(feature_distance_sq(&a, &b), 25);
    }
}
