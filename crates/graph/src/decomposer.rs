use crate::{Coloring, CostBreakdown, LayoutGraph};

/// Parameters shared by every decomposition engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecomposeParams {
    /// Number of masks `k` (3 for triple patterning).
    pub k: u8,
    /// Relative stitch weight `alpha` in the objective (usually 0.1).
    pub alpha: f64,
}

impl Default for DecomposeParams {
    fn default() -> Self {
        DecomposeParams {
            k: crate::DEFAULT_MASKS,
            alpha: crate::DEFAULT_ALPHA,
        }
    }
}

impl DecomposeParams {
    /// Triple-patterning parameters with the standard stitch weight.
    pub fn tpl() -> Self {
        Self::default()
    }

    /// Quadruple-patterning parameters with the standard stitch weight.
    pub fn qpl() -> Self {
        DecomposeParams {
            k: 4,
            alpha: crate::DEFAULT_ALPHA,
        }
    }
}

/// The result of decomposing one layout graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Per-node mask assignment.
    pub coloring: Coloring,
    /// Cost of `coloring` under the graph's objective.
    pub cost: CostBreakdown,
}

impl Decomposition {
    /// Builds a decomposition, evaluating the cost of `coloring` on `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `coloring.len() != graph.num_nodes()`.
    pub fn from_coloring(graph: &LayoutGraph, coloring: Coloring, alpha: f64) -> Self {
        let cost = graph.evaluate(&coloring, alpha);
        Decomposition { coloring, cost }
    }
}

/// A layout decomposition engine.
///
/// Implementations in this workspace: the exact ILP engines
/// (`mpld-ilp`), the SDP relaxation (`mpld-sdp`), the exact-cover engine
/// (`mpld-ec`), and the GNN decomposer (`mpld-gnn`). All receive an
/// already-simplified component graph.
pub trait Decomposer {
    /// Short stable identifier used in reports ("ILP", "EC", ...).
    fn name(&self) -> &'static str;

    /// Decomposes `graph` with `params.k` masks.
    ///
    /// The returned coloring always has `graph.num_nodes()` entries with
    /// values in `0..params.k`, and the reported cost equals
    /// `graph.evaluate(&coloring, params.alpha)`.
    fn decompose(&self, graph: &LayoutGraph, params: &DecomposeParams) -> Decomposition;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_tpl() {
        let p = DecomposeParams::default();
        assert_eq!(p.k, 3);
        assert!((p.alpha - 0.1).abs() < 1e-12);
        assert_eq!(DecomposeParams::tpl(), p);
        assert_eq!(DecomposeParams::qpl().k, 4);
    }

    #[test]
    fn from_coloring_evaluates() {
        let g = LayoutGraph::homogeneous(2, vec![(0, 1)]).unwrap();
        let d = Decomposition::from_coloring(&g, vec![1, 1], 0.1);
        assert_eq!(d.cost.conflicts, 1);
        let d = Decomposition::from_coloring(&g, vec![0, 1], 0.1);
        assert_eq!(d.cost.conflicts, 0);
    }
}
