//! Chip-scale tiled preprocessing: O(tile) geometry with exact
//! boundary-conflict stitching.
//!
//! The monolithic [`crate::prepare`] holds the whole layout, a chip-wide
//! [`GridIndex`], and the full candidate/pair vectors in memory at once —
//! fine for the ISCAS suite, fatal for full-chip density. This module
//! windows the layout into overlapping tiles and discovers conflict edges
//! one tile at a time, so the geometry working set is one tile (plus its
//! halo), not the chip.
//!
//! # Halo invariant
//!
//! Every feature is replicated to each tile whose window its bounding box,
//! expanded by the halo width `h >= d`, intersects. For any conflict pair
//! `(a, b)` (gap `< d`), pick the closest points `p ∈ bbox(a)`,
//! `q ∈ bbox(b)`: the tile whose window contains `p` holds `a` (its bbox
//! meets the window) *and* `b` (every axis gap from `bbox(b)` to `p` is
//! `< d <= h`), so at least one tile sees both endpoints and **no
//! cross-tile conflict edge is ever dropped**.
//!
//! # Exactly-once emission
//!
//! Replication means a pair can be discovered by several tiles. Both
//! replication tile-sets are clamped axis-aligned rectangles of tile
//! coordinates computable locally from the two bounding boxes, so each
//! tile emits the pair iff it is the minimum tile (smallest `ty`, then
//! `tx`) of their intersection — non-empty by the halo invariant, hence
//! every edge is emitted exactly once, with no cross-tile coordination.
//! The merged edge list is sorted and defensively deduplicated before
//! graph construction.
//!
//! # Parity contract
//!
//! The tiled path reconstructs the **same conflict-edge set** as
//! [`mpld_layout::Layout::to_conflict_graph`], then runs the same
//! whole-graph simplify and per-unit stitch insertion as
//! [`crate::prepare`]. The resulting [`PreparedLayout`] is structurally
//! identical, so [`crate::Engine`] solves it with the exact serial RNG
//! stream and every cost, coloring, and routing digest matches the
//! non-tiled oracle bit for bit (asserted by `tests/tiled_parity.rs`).
//! What is bounded by the tile is the *geometry* working set (features,
//! spatial index, candidate scratch); the id-level edge list, graph, and
//! simplification metadata remain O(N + E) with small constants — the
//! memory model DESIGN.md §12 spells out.

use crate::pipeline::{PreparedLayout, UnitInstance};
use crate::AdaptiveResult;
use mpld_geometry::{Feature, GridIndex, Rect};
use mpld_graph::simplify::{simplify, SimplifyOptions};
use mpld_graph::{audit_coloring, DecomposeParams, LayoutGraph, MpldError};
use mpld_layout::{read_layout_streaming, Layout, ParseLayoutError, ReadLimits};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Tiling knobs. Zeros mean "derive from the coloring distance".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilingConfig {
    /// Tile side length in nm; `0` picks `DEFAULT_TILE_MULTIPLE * d`.
    pub tile_span: i64,
    /// Halo width in nm; `0` picks `d`. Values below `d` are clamped up
    /// to `d` — the halo invariant (module docs) is unsound below that.
    pub halo: i64,
    /// Worker threads for per-tile edge discovery (`0`/`1` = serial).
    /// Discovery is pure geometry, so thread count never changes results.
    pub threads: usize,
}

/// Default tile side as a multiple of the coloring distance.
pub const DEFAULT_TILE_MULTIPLE: i64 = 48;

impl Default for TilingConfig {
    fn default() -> Self {
        TilingConfig {
            tile_span: 0,
            halo: 0,
            threads: 1,
        }
    }
}

/// Counters describing one tiled preparation (committed to benches and
/// served from `/stats`, so everything here is a plain number).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TiledStats {
    /// Tile grid width and height.
    pub tiles_x: usize,
    /// Tile grid height.
    pub tiles_y: usize,
    /// Resolved tile side length in nm.
    pub tile_span: i64,
    /// Resolved halo width in nm.
    pub halo: i64,
    /// Features in the layout.
    pub features: usize,
    /// Rectangles in the layout.
    pub rects: usize,
    /// Sum of per-tile feature counts (replication included).
    pub replicated_features: usize,
    /// Largest per-tile feature count — the geometry working-set bound.
    pub max_tile_features: usize,
    /// Conflict edges discovered (equals the monolithic edge count).
    pub edges: usize,
    /// Edges whose endpoints live in different home tiles.
    pub boundary_edges: usize,
    /// Simplified components spanning more than one home tile.
    pub boundary_components: usize,
    /// Decomposition units belonging to boundary components; each one is
    /// a boundary subgraph re-solved whole (the reconciliation ladder of
    /// DESIGN.md §12) rather than stitched from per-tile guesses.
    pub boundary_resolves: usize,
}

/// A layout prepared through the tiler: the standard [`PreparedLayout`]
/// (solvable by every existing path), the tiling counters, and the unit
/// indices that straddle tile boundaries (for the independent re-audit).
#[derive(Debug)]
pub struct TiledPrepared {
    /// Structurally identical to what [`crate::prepare`] builds.
    pub prep: PreparedLayout,
    /// Tiling counters.
    pub stats: TiledStats,
    /// Indices into `prep.units` whose features span multiple home tiles.
    pub boundary_units: Vec<usize>,
}

/// Streaming progress of a tiled preparation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TiledProgress {
    /// The ingest scan finished (file variant: first pass over the file).
    Scanned {
        /// Features seen.
        features: usize,
        /// Rectangles seen.
        rects: usize,
    },
    /// The tile grid is fixed.
    Grid {
        /// Grid width in tiles.
        tiles_x: usize,
        /// Grid height in tiles.
        tiles_y: usize,
        /// Tile side in nm.
        tile_span: i64,
        /// Halo width in nm.
        halo: i64,
    },
    /// One tile finished edge discovery.
    Tile {
        /// Tile index (row-major).
        index: usize,
        /// Total tiles.
        total: usize,
        /// Features replicated into this tile.
        features: usize,
        /// Edges this tile emitted (after exactly-once filtering).
        edges: usize,
    },
    /// The global graph is assembled and simplified.
    Simplified {
        /// Conflict edges in the global graph.
        edges: usize,
        /// Decomposition units.
        units: usize,
        /// Units straddling tile boundaries.
        boundary_units: usize,
    },
}

/// The uniform tile grid over the layout bounding box.
#[derive(Debug, Clone, Copy)]
struct TileGrid {
    x0: i64,
    y0: i64,
    span: i64,
    nx: i64,
    ny: i64,
}

impl TileGrid {
    fn new(bbox: &Rect, span: i64) -> TileGrid {
        let nx = ((bbox.xh - bbox.xl).max(0) / span + 1).max(1);
        let ny = ((bbox.yh - bbox.yl).max(0) / span + 1).max(1);
        TileGrid {
            x0: bbox.xl,
            y0: bbox.yl,
            span,
            nx,
            ny,
        }
    }

    fn tile_count(&self) -> usize {
        (self.nx * self.ny) as usize
    }

    /// Clamped tile-coordinate rectangle covered by `bb` expanded by
    /// `margin` (the replication set for `margin == halo`).
    fn range(&self, bb: &Rect, margin: i64) -> (i64, i64, i64, i64) {
        let tx0 = (bb.xl - margin - self.x0).div_euclid(self.span).max(0);
        let tx1 = (bb.xh + margin - self.x0)
            .div_euclid(self.span)
            .min(self.nx - 1);
        let ty0 = (bb.yl - margin - self.y0).div_euclid(self.span).max(0);
        let ty1 = (bb.yh + margin - self.y0)
            .div_euclid(self.span)
            .min(self.ny - 1);
        (tx0, tx1, ty0, ty1)
    }

    /// The home tile of a feature: the (clamped) tile holding its
    /// bounding box's lower-left corner. Used only for boundary
    /// accounting, never for edge discovery.
    fn home(&self, bb: &Rect) -> u32 {
        let tx = (bb.xl - self.x0)
            .div_euclid(self.span)
            .clamp(0, self.nx - 1);
        let ty = (bb.yl - self.y0)
            .div_euclid(self.span)
            .clamp(0, self.ny - 1);
        (ty * self.nx + tx) as u32
    }
}

/// Where tile jobs fetch feature geometry from: the in-memory layout, or
/// the on-disk store the streaming pass spilled (random access by id).
enum Geometry<'a> {
    Mem(&'a [Feature]),
    Store(Mutex<FeatureStore>),
}

impl Geometry<'_> {
    /// Loads the features with the given ids (tile working set or unit
    /// membership), in order.
    fn load(&self, ids: &[u32]) -> Result<Vec<Feature>, MpldError> {
        match self {
            Geometry::Mem(features) => Ok(ids
                .iter()
                .map(|&id| features[id as usize].clone())
                .collect()),
            Geometry::Store(store) => {
                let mut store = store.lock().map_err(|_| {
                    MpldError::Io("tiled feature store poisoned by a worker panic".into())
                })?;
                ids.iter().map(|&id| store.read_feature(id)).collect()
            }
        }
    }
}

/// Append-only binary spill of feature geometry (`u32` rect count, then
/// `4 x i64` per rect), unlinked on creation so it can never outlive the
/// process. Offsets live in memory: 8 bytes per feature.
struct FeatureStore {
    file: std::fs::File,
    offsets: Vec<u64>,
}

static STORE_COUNTER: AtomicU64 = AtomicU64::new(0);

impl FeatureStore {
    fn create() -> Result<FeatureStore, MpldError> {
        let path = std::env::temp_dir().join(format!(
            "mpld-tiled-{}-{}.spill",
            std::process::id(),
            STORE_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let file = std::fs::OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| MpldError::Io(format!("create {}: {e}", path.display())))?;
        // Unlink immediately: the open handle keeps the data alive and
        // the kernel reclaims it when the process exits, crash included.
        std::fs::remove_file(&path).map_err(|e| MpldError::Io(e.to_string()))?;
        Ok(FeatureStore {
            file,
            offsets: Vec::new(),
        })
    }

    fn read_feature(&mut self, id: u32) -> Result<Feature, MpldError> {
        let offset = self.offsets[id as usize];
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| MpldError::Io(e.to_string()))?;
        let mut len = [0u8; 4];
        self.file
            .read_exact(&mut len)
            .map_err(|e| MpldError::Io(e.to_string()))?;
        let n = u32::from_le_bytes(len) as usize;
        let mut buf = vec![0u8; n * 32];
        self.file
            .read_exact(&mut buf)
            .map_err(|e| MpldError::Io(e.to_string()))?;
        let rects = buf
            .chunks_exact(32)
            .map(|c| {
                let coord = |i: usize| {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&c[i * 8..i * 8 + 8]);
                    i64::from_le_bytes(b)
                };
                Rect::new(coord(0), coord(1), coord(2), coord(3))
            })
            .collect();
        Ok(Feature::new(id, rects))
    }
}

/// Serializes one feature into the spill format.
fn encode_feature(f: &Feature, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&(f.rects().len() as u32).to_le_bytes());
    for r in f.rects() {
        for v in [r.xl, r.yl, r.xh, r.yh] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Tiled [`crate::prepare`] over an in-memory layout: identical output,
/// O(tile) geometry working set during edge discovery. Used for parity
/// testing and for served circuit requests; truly chip-scale inputs go
/// through [`prepare_tiled_file`].
///
/// # Panics
///
/// Panics if `params.k == 0` (as [`crate::prepare`]).
#[allow(clippy::expect_used)] // in-memory tiling performs no I/O
pub fn prepare_tiled(
    layout: &Layout,
    params: &DecomposeParams,
    config: &TilingConfig,
    progress: &(dyn Fn(TiledProgress) + Sync),
) -> TiledPrepared {
    let rects = layout.features.iter().map(|f| f.rects().len()).sum();
    let mut bbox: Option<Rect> = None;
    for f in &layout.features {
        let bb = f.bounding_box();
        bbox = Some(match bbox {
            Some(acc) => acc.union(&bb),
            None => bb,
        });
    }
    prepare_tiled_inner(
        layout.name.clone(),
        layout.d,
        &Geometry::Mem(&layout.features),
        layout.features.len(),
        rects,
        bbox,
        params,
        config,
        progress,
    )
    .expect("in-memory tiled preparation performs no I/O")
}

/// Streaming tiled preparation from a layout file: the file is parsed
/// once, geometry is spilled to an unlinked on-disk store, and tiles load
/// only their own working set — the layout is never resident in memory.
///
/// # Errors
///
/// Parse errors from the layout file (with `limits` enforced as in
/// [`mpld_layout::read_layout_limited`]) and I/O errors from the spill
/// store.
pub fn prepare_tiled_file(
    path: &Path,
    limits: &ReadLimits,
    params: &DecomposeParams,
    config: &TilingConfig,
    progress: &(dyn Fn(TiledProgress) + Sync),
) -> Result<TiledPrepared, MpldError> {
    let file =
        std::fs::File::open(path).map_err(|e| MpldError::Io(format!("{}: {e}", path.display())))?;
    let store = FeatureStore::create()?;
    let mut writer = BufWriter::new(store.file);
    let mut offsets = store.offsets;
    let mut pos = 0u64;
    let mut record = Vec::new();
    let mut bbox: Option<Rect> = None;
    let mut rects = 0usize;
    let header = read_layout_streaming(BufReader::new(file), limits, |f| {
        encode_feature(&f, &mut record);
        writer
            .write_all(&record)
            .map_err(|e| ParseLayoutError::Io(e.to_string()))?;
        offsets.push(pos);
        pos += record.len() as u64;
        rects += f.rects().len();
        let bb = f.bounding_box();
        bbox = Some(match bbox {
            Some(acc) => acc.union(&bb),
            None => bb,
        });
        Ok(())
    })
    .map_err(MpldError::from)?;
    let file = writer
        .into_inner()
        .map_err(|e| MpldError::Io(e.to_string()))?;
    let n = offsets.len();
    let store = FeatureStore { file, offsets };
    prepare_tiled_inner(
        header.name,
        header.d,
        &Geometry::Store(Mutex::new(store)),
        n,
        rects,
        bbox,
        params,
        config,
        progress,
    )
}

/// Shared tiling core (see module docs for the phase breakdown).
#[allow(clippy::too_many_arguments)]
fn prepare_tiled_inner(
    name: String,
    d: i64,
    geometry: &Geometry<'_>,
    num_features: usize,
    num_rects: usize,
    bbox: Option<Rect>,
    params: &DecomposeParams,
    config: &TilingConfig,
    progress: &(dyn Fn(TiledProgress) + Sync),
) -> Result<TiledPrepared, MpldError> {
    let start = Instant::now();
    progress(TiledProgress::Scanned {
        features: num_features,
        rects: num_rects,
    });

    let halo = if config.halo > 0 {
        config.halo.max(d)
    } else {
        d
    };
    let span = if config.tile_span > 0 {
        config.tile_span.max(1)
    } else {
        DEFAULT_TILE_MULTIPLE * d
    };
    let grid = TileGrid::new(&bbox.unwrap_or(Rect::new(0, 0, 1, 1)), span);
    let tiles = grid.tile_count();
    progress(TiledProgress::Grid {
        tiles_x: grid.nx as usize,
        tiles_y: grid.ny as usize,
        tile_span: span,
        halo,
    });

    // Replication pass: assign every feature to the tiles its halo-grown
    // bounding box touches, and record its home tile for boundary
    // accounting. One sequential sweep over the geometry.
    let mut tile_features: Vec<Vec<u32>> = vec![Vec::new(); tiles];
    let mut home = vec![0u32; num_features];
    {
        let mut assign = |f: &Feature| {
            let bb = f.bounding_box();
            home[f.id() as usize] = grid.home(&bb);
            let (tx0, tx1, ty0, ty1) = grid.range(&bb, halo);
            for ty in ty0..=ty1 {
                for tx in tx0..=tx1 {
                    tile_features[(ty * grid.nx + tx) as usize].push(f.id());
                }
            }
        };
        match geometry {
            Geometry::Mem(features) => {
                for f in *features {
                    assign(f);
                }
            }
            Geometry::Store(store) => {
                let mut store = store.lock().map_err(|_| {
                    MpldError::Io("tiled feature store poisoned by a worker panic".into())
                })?;
                for id in 0..num_features as u32 {
                    assign(&store.read_feature(id)?);
                }
            }
        }
    }
    let replicated_features = tile_features.iter().map(Vec::len).sum();
    let max_tile_features = tile_features.iter().map(Vec::len).max().unwrap_or(0);

    // Edge discovery, one tile at a time, largest tile first through the
    // shared worker pool. Pure geometry: thread count cannot change the
    // discovered set, and the exactly-once rule (module docs) makes the
    // per-tile outputs disjoint.
    let threads = config.threads.max(1);
    let tile_edges: Vec<Result<Vec<(u32, u32)>, MpldError>> = crate::parallel::run_largest_first(
        tiles,
        threads,
        |t| tile_features[t].len(),
        |t| {
            let ids = &tile_features[t];
            let feats = geometry.load(ids)?;
            let tx_self = (t as i64) % grid.nx;
            let ty_self = (t as i64) / grid.nx;
            let index = GridIndex::build(&feats, d);
            let mut edges: Vec<(u32, u32)> = Vec::new();
            index.for_each_conflict_pair(&feats, d, |i, j| {
                let (ra, rb) = (
                    grid.range(&feats[i].bounding_box(), halo),
                    grid.range(&feats[j].bounding_box(), halo),
                );
                // Minimum tile (smallest ty, then tx) of the replication
                // intersection — the unique emitter of this pair.
                let tx_min = ra.0.max(rb.0);
                let ty_min = ra.2.max(rb.2);
                if tx_min == tx_self && ty_min == ty_self {
                    let (a, b) = (ids[i], ids[j]);
                    edges.push((a.min(b), a.max(b)));
                }
            });
            progress(TiledProgress::Tile {
                index: t,
                total: tiles,
                features: ids.len(),
                edges: edges.len(),
            });
            Ok(edges)
        },
    );
    drop(tile_features);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for per_tile in tile_edges {
        edges.extend(per_tile?);
    }
    edges.sort_unstable();
    let before = edges.len();
    edges.dedup();
    debug_assert_eq!(before, edges.len(), "exactly-once emission was violated");

    let boundary_edges = edges
        .iter()
        .filter(|&&(a, b)| home[a as usize] != home[b as usize])
        .count();
    let num_edges = edges.len();

    // From here the flow is exactly `crate::prepare`: same graph, same
    // whole-graph simplify, same per-unit stitch insertion — structural
    // identity is what buys bit-identical solves downstream.
    let graph = LayoutGraph::homogeneous(num_features, edges)
        .map_err(|e| MpldError::Io(format!("tiled conflict graph rejected: {e}")))?;
    let simplified = simplify(&graph, params.k, SimplifyOptions::default());

    let mut occurrences: HashMap<u32, usize> = HashMap::new();
    for unit in simplified.units() {
        for &g in &unit.global_nodes {
            *occurrences.entry(g).or_insert(0) += 1;
        }
    }

    let mut boundary_units = Vec::new();
    let mut boundary_components = std::collections::HashSet::new();
    let mut units = Vec::with_capacity(simplified.units().len());
    for (i, unit) in simplified.units().iter().enumerate() {
        let feats = geometry.load(&unit.global_nodes)?;
        let splittable: Vec<bool> = unit
            .global_nodes
            .iter()
            .map(|g| occurrences[g] == 1)
            .collect();
        let stitched = insert_stitch_candidates_checked(&feats, d, &splittable)?;
        if unit
            .global_nodes
            .iter()
            .any(|&g| home[g as usize] != home[unit.global_nodes[0] as usize])
        {
            boundary_units.push(i);
            boundary_components.insert(unit.component);
        }
        units.push(UnitInstance {
            hetero: stitched,
            unit_index: i,
        });
    }

    progress(TiledProgress::Simplified {
        edges: num_edges,
        units: units.len(),
        boundary_units: boundary_units.len(),
    });

    let stats = TiledStats {
        tiles_x: grid.nx as usize,
        tiles_y: grid.ny as usize,
        tile_span: span,
        halo,
        features: num_features,
        rects: num_rects,
        replicated_features,
        max_tile_features,
        edges: num_edges,
        boundary_edges,
        boundary_components: boundary_components.len(),
        boundary_resolves: boundary_units.len(),
    };
    Ok(TiledPrepared {
        prep: PreparedLayout {
            name,
            graph,
            simplified,
            units,
            d,
            prepare_time: start.elapsed(),
        },
        stats,
        boundary_units,
    })
}

/// Stitch insertion with the panic of the monolithic path converted into
/// a typed error (streamed inputs are user data, not generator output).
fn insert_stitch_candidates_checked(
    feats: &[Feature],
    d: i64,
    splittable: &[bool],
) -> Result<LayoutGraph, MpldError> {
    mpld_layout::insert_stitch_candidates_masked(feats, d, splittable)
        .map(|s| s.graph)
        .map_err(|e| MpldError::Io(format!("stitch insertion rejected unit geometry: {e}")))
}

/// Independent Eq. 1 re-audit of the boundary subgraphs: recomputes each
/// boundary unit's cost from its kept coloring and compares it to the
/// cost the solver reported. Returns `(audited, clean)` — `clean` is
/// false if any boundary unit's audit disagrees.
pub fn audit_boundary_units(
    prep: &PreparedLayout,
    result: &AdaptiveResult,
    boundary_units: &[usize],
    k: u8,
) -> (usize, bool) {
    let mut clean = true;
    for &i in boundary_units {
        let coloring = &result.pipeline.decomposition.unit_subfeature_colorings[i];
        match audit_coloring(&prep.units[i].hetero, coloring, k) {
            Ok(cost) if cost == result.pipeline.unit_costs[i] => {}
            _ => clean = false,
        }
    }
    (boundary_units.len(), clean)
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpld_layout::circuit_by_name;

    fn quiet() -> impl Fn(TiledProgress) + Sync {
        |_| {}
    }

    #[test]
    fn tiled_prepare_matches_monolithic_on_a_circuit() {
        let layout = circuit_by_name("C432").expect("exists").generate();
        let params = DecomposeParams::tpl();
        let serial = crate::prepare(&layout, &params);
        let tiled = prepare_tiled(&layout, &params, &TilingConfig::default(), &quiet());

        assert_eq!(tiled.prep.graph, serial.graph);
        assert_eq!(tiled.prep.units.len(), serial.units.len());
        for (t, s) in tiled.prep.units.iter().zip(&serial.units) {
            assert_eq!(t.hetero, s.hetero);
            assert_eq!(t.unit_index, s.unit_index);
        }
        assert_eq!(tiled.stats.features, layout.features.len());
        assert_eq!(tiled.stats.edges, serial.graph.conflict_edges().len());
    }

    #[test]
    fn small_tiles_force_boundary_units_without_changing_the_graph() {
        let layout = circuit_by_name("C432").expect("exists").generate();
        let params = DecomposeParams::tpl();
        let serial = crate::prepare(&layout, &params);
        // Tiny tiles: every component straddles tiles, nothing changes.
        let config = TilingConfig {
            tile_span: 2 * layout.d,
            ..Default::default()
        };
        let tiled = prepare_tiled(&layout, &params, &config, &quiet());
        assert_eq!(tiled.prep.graph, serial.graph);
        assert!(tiled.stats.tiles_x * tiled.stats.tiles_y > 4);
        assert!(tiled.stats.boundary_edges > 0);
        assert!(tiled.stats.boundary_resolves > 0);
        assert_eq!(
            tiled.boundary_units.len(),
            tiled.stats.boundary_resolves,
            "boundary unit list and counter must agree"
        );
    }

    #[test]
    fn file_variant_matches_in_memory() {
        let layout = circuit_by_name("C432").expect("exists").generate();
        let params = DecomposeParams::tpl();
        let dir = std::env::temp_dir().join(format!("mpld-tiled-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("c432.layout");
        let mut buf = Vec::new();
        mpld_layout::write_layout(&layout, &mut buf).expect("write");
        std::fs::write(&path, &buf).expect("write file");

        let mem = prepare_tiled(&layout, &params, &TilingConfig::default(), &quiet());
        let file = prepare_tiled_file(
            &path,
            &ReadLimits::unlimited(),
            &params,
            &TilingConfig::default(),
            &quiet(),
        )
        .expect("file prepare");
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(file.prep.graph, mem.prep.graph);
        assert_eq!(file.prep.units.len(), mem.prep.units.len());
        for (a, b) in file.prep.units.iter().zip(&mem.prep.units) {
            assert_eq!(a.hetero, b.hetero);
        }
        assert_eq!(file.stats, mem.stats);
        assert_eq!(file.boundary_units, mem.boundary_units);
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss.is_some_and(|b| b > 0), "VmHWM should parse: {rss:?}");
        }
    }
}
