//! Backtracking graph isomorphism (VF2-style) for small typed graphs.
//!
//! Used as the exact fallback when embedding-based node matching is
//! ambiguous, and by tests as ground truth. Candidate lists can be
//! restricted by the caller (e.g. to embedding-similar nodes), which turns
//! the search into the paper's embedding-guided mapping with exact
//! verification.

use mpld_graph::{LayoutGraph, NodeId};

/// Finds a node bijection `f: a -> b` preserving conflict edges, stitch
/// edges, and non-edges. `candidates[u]` restricts the images of `u`
/// (pass full ranges for unrestricted search).
///
/// Returns `None` when no isomorphism respects the candidate lists.
///
/// # Panics
///
/// Panics if `candidates.len() != a.num_nodes()`.
pub fn find_isomorphism(
    a: &LayoutGraph,
    b: &LayoutGraph,
    candidates: &[Vec<NodeId>],
) -> Option<Vec<NodeId>> {
    assert_eq!(
        candidates.len(),
        a.num_nodes(),
        "one candidate list per node"
    );
    if a.num_nodes() != b.num_nodes()
        || a.conflict_edges().len() != b.conflict_edges().len()
        || a.stitch_edges().len() != b.stitch_edges().len()
    {
        return None;
    }
    let n = a.num_nodes();
    if n == 0 {
        return Some(Vec::new());
    }
    // Order nodes by ascending candidate count (most constrained first).
    let mut order: Vec<NodeId> = (0..n as u32).collect();
    order.sort_by_key(|&v| candidates[v as usize].len());

    let mut mapping = vec![u32::MAX; n];
    let mut used = vec![false; n];
    if backtrack(a, b, &order, 0, candidates, &mut mapping, &mut used) {
        Some(mapping)
    } else {
        None
    }
}

fn compatible(a: &LayoutGraph, b: &LayoutGraph, u: NodeId, bu: NodeId, mapping: &[u32]) -> bool {
    if a.conflict_degree(u) != b.conflict_degree(bu)
        || a.stitch_neighbors(u).len() != b.stitch_neighbors(bu).len()
    {
        return false;
    }
    // Every already-mapped neighbor must map to a matching-typed neighbor.
    for &w in a.conflict_neighbors(u) {
        let bw = mapping[w as usize];
        if bw != u32::MAX && !b.conflict_neighbors(bu).contains(&bw) {
            return false;
        }
    }
    for &w in a.stitch_neighbors(u) {
        let bw = mapping[w as usize];
        if bw != u32::MAX && !b.stitch_neighbors(bu).contains(&bw) {
            return false;
        }
    }
    // And non-edges must stay non-edges (counts are equal, so checking
    // mapped neighbors of bu in reverse suffices).
    for &bw in b.conflict_neighbors(bu) {
        if let Some(w) = mapping.iter().position(|&m| m == bw) {
            if !a.conflict_neighbors(u).contains(&(w as u32)) {
                return false;
            }
        }
    }
    for &bw in b.stitch_neighbors(bu) {
        if let Some(w) = mapping.iter().position(|&m| m == bw) {
            if !a.stitch_neighbors(u).contains(&(w as u32)) {
                return false;
            }
        }
    }
    true
}

fn backtrack(
    a: &LayoutGraph,
    b: &LayoutGraph,
    order: &[NodeId],
    pos: usize,
    candidates: &[Vec<NodeId>],
    mapping: &mut Vec<u32>,
    used: &mut Vec<bool>,
) -> bool {
    if pos == order.len() {
        return true;
    }
    let u = order[pos];
    for &bu in &candidates[u as usize] {
        if used[bu as usize] || !compatible(a, b, u, bu, mapping) {
            continue;
        }
        mapping[u as usize] = bu;
        used[bu as usize] = true;
        if backtrack(a, b, order, pos + 1, candidates, mapping, used) {
            return true;
        }
        mapping[u as usize] = u32::MAX;
        used[bu as usize] = false;
    }
    false
}

/// Unrestricted candidate lists (every node of `b` allowed).
pub fn full_candidates(a: &LayoutGraph, b: &LayoutGraph) -> Vec<Vec<NodeId>> {
    vec![(0..b.num_nodes() as u32).collect(); a.num_nodes()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_triangle_mapping() {
        let a = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let b = LayoutGraph::homogeneous(3, vec![(2, 1), (1, 0), (2, 0)]).unwrap();
        let cands = full_candidates(&a, &b);
        let m = find_isomorphism(&a, &b, &cands).expect("triangles are isomorphic");
        // Verify the mapping preserves edges.
        for &(u, v) in a.conflict_edges() {
            let (bu, bv) = (m[u as usize], m[v as usize]);
            assert!(b.conflict_neighbors(bu).contains(&bv));
        }
    }

    #[test]
    fn rejects_non_isomorphic() {
        let path = LayoutGraph::homogeneous(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        let star = LayoutGraph::homogeneous(4, vec![(0, 1), (0, 2), (0, 3)]).unwrap();
        let cands = full_candidates(&path, &star);
        assert!(find_isomorphism(&path, &star, &cands).is_none());
    }

    #[test]
    fn respects_candidate_restrictions() {
        let a = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let b = a.clone();
        // Force node 0 -> 1.
        let cands = vec![vec![1], vec![0, 1, 2], vec![0, 1, 2]];
        let m = find_isomorphism(&a, &b, &cands).expect("triangle automorphism exists");
        assert_eq!(m[0], 1);
    }

    #[test]
    fn stitch_types_must_match() {
        let a = LayoutGraph::new(vec![0, 0, 1], vec![(0, 2), (1, 2)], vec![(0, 1)]).unwrap();
        let b = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let cands = full_candidates(&a, &b);
        assert!(find_isomorphism(&a, &b, &cands).is_none());
    }

    #[test]
    fn empty_graphs_match_trivially() {
        let a = LayoutGraph::homogeneous(0, vec![]).unwrap();
        let m = find_isomorphism(&a, &a, &[]).expect("empty matches");
        assert!(m.is_empty());
    }
}
