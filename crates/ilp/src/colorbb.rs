//! Specialized exact branch-and-bound over node colors.
//!
//! Branches on nodes in decreasing degree order, maintains the objective
//! incrementally (per-feature-pair capped conflict cost plus stitch cost,
//! in exact scaled-integer arithmetic), prunes on the admissible bound
//! "already-incurred cost", and breaks mask-name symmetry by only allowing
//! one fresh color per branch level.

use mpld_graph::{
    Budget, BudgetGauge, Certainty, DecomposeParams, Decomposer, Decomposition, LayoutGraph,
    MpldError, NodeId,
};
use std::collections::HashMap;

const UNSET: u8 = u8::MAX;

/// The exact "ILP" decomposer of the workspace (see crate docs).
///
/// # Example
///
/// ```
/// use mpld_graph::{Decomposer, DecomposeParams, LayoutGraph};
/// use mpld_ilp::IlpDecomposer;
///
/// let g = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
/// let d = IlpDecomposer::new().decompose_unbounded(&g, &DecomposeParams::tpl());
/// assert_eq!(d.cost.conflicts, 0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct IlpDecomposer {
    _private: (),
}

impl IlpDecomposer {
    /// Creates the exact decomposer.
    pub fn new() -> Self {
        IlpDecomposer { _private: () }
    }
}

impl Decomposer for IlpDecomposer {
    fn name(&self) -> &'static str {
        "ILP-BB"
    }

    fn decompose(
        &self,
        graph: &LayoutGraph,
        params: &DecomposeParams,
        budget: &Budget,
    ) -> Result<Decomposition, MpldError> {
        let mut solver = Solver::new(graph, params, budget);
        let coloring = solver.solve();
        let certainty = if solver.gauge.is_exhausted() {
            Certainty::BudgetExhausted
        } else {
            Certainty::Certified
        };
        #[cfg(feature = "failpoints")]
        mpld_graph::failpoints::inject_error("ilp.bb.result", "ILP-BB")?;
        #[cfg_attr(not(feature = "failpoints"), allow(unused_mut))]
        let mut d = Decomposition::try_from_coloring(graph, coloring, params.alpha)?
            .with_certainty(certainty);
        #[cfg(feature = "failpoints")]
        // Flip a color after the cost was evaluated: the decomposition now
        // lies about its cost, which only the independent audit can catch.
        mpld_graph::failpoints::corrupt_coloring("ilp.bb.result", &mut d.coloring, params.k);
        Ok(d)
    }
}

/// Scaled integer weights so the search is exact: conflict = 1000 units,
/// stitch = `round(alpha * 1000)` units.
fn weights(alpha: f64) -> (u64, u64) {
    (1000, (alpha * 1000.0).round().max(0.0) as u64)
}

struct Solver<'g> {
    g: &'g LayoutGraph,
    k: u8,
    cw: u64,
    sw: u64,
    /// Branch order: node ids sorted by decreasing total degree.
    order: Vec<NodeId>,
    color: Vec<u8>,
    /// Same-color conflict-edge count per feature pair among assigned nodes.
    pair_count: HashMap<(u32, u32), u32>,
    cost: u64,
    best_cost: u64,
    best: Vec<u8>,
    /// Strided budget checker ticked once per search node.
    gauge: BudgetGauge<'g>,
}

impl<'g> Solver<'g> {
    fn new(g: &'g LayoutGraph, params: &DecomposeParams, budget: &'g Budget) -> Self {
        let (cw, sw) = weights(params.alpha);
        let mut order: Vec<NodeId> = (0..g.num_nodes() as u32).collect();
        order.sort_by_key(|&v| {
            std::cmp::Reverse(g.conflict_degree(v) + g.stitch_neighbors(v).len())
        });
        Solver {
            g,
            k: params.k,
            cw,
            sw,
            order,
            color: vec![UNSET; g.num_nodes()],
            pair_count: HashMap::new(),
            cost: 0,
            best_cost: u64::MAX,
            best: vec![0; g.num_nodes()],
            gauge: BudgetGauge::new(budget),
        }
    }

    fn pair_key(&self, u: NodeId, v: NodeId) -> (u32, u32) {
        let (a, b) = (self.g.feature_of(u), self.g.feature_of(v));
        if a < b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Incremental cost of assigning color `c` to `v`, and the bookkeeping
    /// deltas (feature pairs whose same-color count went 0 → 1).
    fn assign(&mut self, v: NodeId, c: u8) -> (u64, Vec<(u32, u32)>) {
        let mut delta = 0u64;
        let mut bumped = Vec::new();
        for &w in self.g.conflict_neighbors(v) {
            if self.color[w as usize] == c {
                let key = self.pair_key(v, w);
                let cnt = self.pair_count.entry(key).or_insert(0);
                if *cnt == 0 {
                    delta += self.cw;
                }
                *cnt += 1;
                bumped.push(key);
            }
        }
        for &w in self.g.stitch_neighbors(v) {
            let cw = self.color[w as usize];
            if cw != UNSET && cw != c {
                delta += self.sw;
            }
        }
        self.color[v as usize] = c;
        self.cost += delta;
        (delta, bumped)
    }

    fn unassign(&mut self, v: NodeId, delta: u64, bumped: Vec<(u32, u32)>) {
        self.color[v as usize] = UNSET;
        self.cost -= delta;
        for key in bumped {
            // Invariant: every bumped pair was inserted during assign.
            if let Some(cnt) = self.pair_count.get_mut(&key) {
                *cnt -= 1;
                if *cnt == 0 {
                    self.pair_count.remove(&key);
                }
            }
        }
    }

    /// Greedy warm start: assign nodes in branch order, picking the color
    /// with the smallest incremental cost.
    fn greedy(&mut self) {
        let order = self.order.clone();
        for &v in &order {
            let mut best_c = 0u8;
            let mut best_d = u64::MAX;
            for c in 0..self.k {
                let (d, bumped) = self.assign(v, c);
                self.unassign(v, d, bumped);
                if d < best_d {
                    best_d = d;
                    best_c = c;
                }
            }
            let _ = self.assign(v, best_c);
        }
        self.best_cost = self.cost;
        self.best = self.color.clone();
        // Reset state for the exact search.
        self.color = vec![UNSET; self.g.num_nodes()];
        self.pair_count.clear();
        self.cost = 0;
    }

    fn solve(&mut self) -> Vec<u8> {
        if self.g.num_nodes() == 0 {
            return Vec::new();
        }
        self.greedy();
        if self.best_cost > 0 {
            self.dfs(0, 0);
        }
        self.best.clone()
    }

    fn dfs(&mut self, depth: usize, colors_used: u8) {
        if self.gauge.tick() {
            return; // budget expired: keep the greedy/best-so-far incumbent
        }
        #[cfg(feature = "failpoints")]
        mpld_graph::failpoints::tick("ilp.bb.search");
        if self.cost >= self.best_cost {
            return; // admissible bound: remaining assignments cost >= 0
        }
        if depth == self.order.len() {
            self.best_cost = self.cost;
            self.best = self.color.clone();
            return;
        }
        let v = self.order[depth];
        // Symmetry breaking: allow at most one previously-unused color.
        let limit = (colors_used + 1).min(self.k);
        for c in 0..limit {
            let (delta, bumped) = self.assign(v, c);
            let next_used = colors_used.max(c + 1);
            self.dfs(depth + 1, next_used);
            self.unassign(v, delta, bumped);
            if self.best_cost == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn params() -> DecomposeParams {
        DecomposeParams::tpl()
    }

    #[test]
    fn empty_graph() {
        let g = LayoutGraph::homogeneous(0, vec![]).unwrap();
        let d = IlpDecomposer::new().decompose_unbounded(&g, &params());
        assert!(d.coloring.is_empty());
        assert_eq!(d.cost.conflicts, 0);
    }

    #[test]
    fn single_node() {
        let g = LayoutGraph::homogeneous(1, vec![]).unwrap();
        let d = IlpDecomposer::new().decompose_unbounded(&g, &params());
        assert_eq!(d.coloring.len(), 1);
    }

    #[test]
    fn odd_cycle_is_three_colorable() {
        let g = LayoutGraph::homogeneous(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let d = IlpDecomposer::new().decompose_unbounded(&g, &params());
        assert_eq!(d.cost.conflicts, 0);
    }

    #[test]
    fn k5_needs_two_conflicts_at_k3() {
        let mut edges = vec![];
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = LayoutGraph::homogeneous(5, edges).unwrap();
        let d = IlpDecomposer::new().decompose_unbounded(&g, &params());
        let bf = brute_force(&g, &params());
        assert_eq!(d.cost, bf.cost);
    }

    #[test]
    fn stitch_allows_escaping_conflicts() {
        // Feature A = {0, 1} split by a stitch. Subfeature 0 conflicts with
        // B and C, subfeature 1 conflicts with D and E; {B, C} and {D, E}
        // pairwise conflict and B-D, C-E conflict so colors are forced apart.
        let g = LayoutGraph::new(
            vec![0, 0, 1, 2, 3, 4],
            vec![
                (0, 2),
                (0, 3),
                (1, 4),
                (1, 5),
                (2, 3),
                (4, 5),
                (2, 4),
                (3, 5),
            ],
            vec![(0, 1)],
        )
        .unwrap();
        let d = IlpDecomposer::new().decompose_unbounded(&g, &params());
        let bf = brute_force(&g, &params());
        assert_eq!(d.cost, bf.cost);
    }

    fn random_hetero(
        rng: &mut SmallRng,
        n_feat: usize,
        p_conflict: f64,
        p_split: f64,
    ) -> LayoutGraph {
        // Random features, some split into two subfeatures with a stitch.
        let mut node_feature = Vec::new();
        let mut stitch_edges = Vec::new();
        let mut sub_of_feat: Vec<Vec<u32>> = Vec::new();
        for f in 0..n_feat {
            let start = node_feature.len() as u32;
            if rng.gen_bool(p_split) {
                node_feature.extend([f as u32, f as u32]);
                stitch_edges.push((start, start + 1));
                sub_of_feat.push(vec![start, start + 1]);
            } else {
                node_feature.push(f as u32);
                sub_of_feat.push(vec![start]);
            }
        }
        let mut conflict_edges = Vec::new();
        for a in 0..n_feat {
            for b in (a + 1)..n_feat {
                for &u in &sub_of_feat[a] {
                    for &v in &sub_of_feat[b] {
                        if rng.gen_bool(p_conflict) {
                            conflict_edges.push((u, v));
                        }
                    }
                }
            }
        }
        LayoutGraph::new(node_feature, conflict_edges, stitch_edges).unwrap()
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        for _ in 0..40 {
            let g = random_hetero(&mut rng, 6, 0.5, 0.4);
            if g.num_nodes() > 10 {
                continue;
            }
            let d = IlpDecomposer::new().decompose_unbounded(&g, &params());
            let bf = brute_force(&g, &params());
            assert_eq!(d.cost.value(0.1), bf.cost.value(0.1), "graph: {:?}", g);
        }
    }

    #[test]
    fn matches_brute_force_at_k4() {
        let mut rng = SmallRng::seed_from_u64(42);
        let p = DecomposeParams::qpl();
        for _ in 0..20 {
            let g = random_hetero(&mut rng, 6, 0.6, 0.3);
            if g.num_nodes() > 9 {
                continue;
            }
            let d = IlpDecomposer::new().decompose_unbounded(&g, &p);
            let bf = brute_force(&g, &p);
            assert_eq!(d.cost.value(0.1), bf.cost.value(0.1));
        }
    }
}
