//! Independent result auditing.
//!
//! Every decomposition the adaptive framework accepts — an engine result,
//! a library-matching hit, an isomorphism-memo label transfer, a
//! checkpointed coloring — can be re-checked here against the
//! *unsimplified* unit graph it claims to color. The audit deliberately
//! does **not** call [`LayoutGraph::evaluate`]: it recomputes the Eq. 1
//! objective (`conflicts + alpha * stitches`, conflicts counted once per
//! violated feature *pair*) from scratch over the raw edge lists, so a bug
//! or an injected fault in the production cost path cannot vouch for
//! itself.
//!
//! Checks, in order:
//!
//! 1. the coloring covers every node (length);
//! 2. every color lies in `0..k`;
//! 3. the claimed [`CostBreakdown`] equals the independently recomputed
//!    one;
//! 4. optionally, pinned nodes honor a [`Precoloring`] up to the global
//!    mask permutation (masks are interchangeable).
//!
//! The audit is linear in the edge count — cheap enough to run on every
//! unit of every layout (the acceptance bar is < 5% of suite wall time).

use crate::{CostBreakdown, Decomposition, LayoutGraph, NodeId, Precoloring};
use std::fmt;

/// Why a decomposition failed its independent audit.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditError {
    /// The coloring does not cover the graph.
    LengthMismatch {
        /// `graph.num_nodes()`.
        expected: usize,
        /// The coloring's actual length.
        got: usize,
    },
    /// A node carries a color outside `0..k`.
    ColorOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Its color.
        color: u8,
        /// The mask count the run was configured for.
        k: u8,
    },
    /// The claimed cost differs from the independently recomputed one.
    CostMismatch {
        /// What the producer claimed.
        claimed: CostBreakdown,
        /// What the audit recomputed from the raw edges.
        recomputed: CostBreakdown,
    },
    /// A pinned node does not honor the precoloring (after mask-permutation
    /// canonicalization).
    PrecolorViolated {
        /// The offending node.
        node: NodeId,
        /// The mask the node was pinned to.
        pinned: u8,
        /// The color it actually received.
        got: u8,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "audit: coloring has {got} entries, graph has {expected} nodes"
                )
            }
            AuditError::ColorOutOfRange { node, color, k } => {
                write!(f, "audit: node {node} has color {color}, outside 0..{k}")
            }
            AuditError::CostMismatch {
                claimed,
                recomputed,
            } => write!(
                f,
                "audit: claimed cost {}c+{}s but recomputed {}c+{}s",
                claimed.conflicts, claimed.stitches, recomputed.conflicts, recomputed.stitches
            ),
            AuditError::PrecolorViolated { node, pinned, got } => {
                write!(
                    f,
                    "audit: node {node} pinned to mask {pinned} but colored {got}"
                )
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Recomputes the Eq. 1 cost of `coloring` on `graph` from scratch.
///
/// Conflicts are counted once per *feature pair* with at least one
/// same-colored conflict edge (the paper's capped conflict count);
/// stitches are counted per stitch edge with differently colored
/// endpoints. This is an independent implementation — it walks the raw
/// edge lists and dedups feature pairs by sort, sharing no code with
/// [`LayoutGraph::evaluate`].
///
/// # Panics
///
/// Panics if `coloring` does not cover the graph; call
/// [`audit_coloring`] for untrusted input.
pub fn recompute_cost(graph: &LayoutGraph, coloring: &[u8]) -> CostBreakdown {
    assert_eq!(
        coloring.len(),
        graph.num_nodes(),
        "audit over a full coloring"
    );
    let mut violated: Vec<(u32, u32)> = Vec::new();
    for &(u, v) in graph.conflict_edges() {
        if coloring[u as usize] == coloring[v as usize] {
            let (a, b) = (graph.feature_of(u), graph.feature_of(v));
            violated.push(if a < b { (a, b) } else { (b, a) });
        }
    }
    violated.sort_unstable();
    violated.dedup();
    let mut stitches = 0u32;
    for &(u, v) in graph.stitch_edges() {
        if coloring[u as usize] != coloring[v as usize] {
            stitches += 1;
        }
    }
    CostBreakdown {
        conflicts: violated.len() as u32,
        stitches,
    }
}

/// Audits a bare coloring: coverage, color range, and the independently
/// recomputed cost (returned on success so callers can compare it with
/// whatever was claimed).
///
/// # Errors
///
/// Returns the first failed check as an [`AuditError`].
pub fn audit_coloring(
    graph: &LayoutGraph,
    coloring: &[u8],
    k: u8,
) -> Result<CostBreakdown, AuditError> {
    if coloring.len() != graph.num_nodes() {
        return Err(AuditError::LengthMismatch {
            expected: graph.num_nodes(),
            got: coloring.len(),
        });
    }
    for (v, &c) in coloring.iter().enumerate() {
        if c >= k {
            return Err(AuditError::ColorOutOfRange {
                node: v as NodeId,
                color: c,
                k,
            });
        }
    }
    Ok(recompute_cost(graph, coloring))
}

/// Audits a full [`Decomposition`] against the graph it claims to color:
/// coverage, color range, and claimed-versus-recomputed cost.
///
/// # Errors
///
/// Returns the first failed check as an [`AuditError`].
pub fn audit_decomposition(
    graph: &LayoutGraph,
    d: &Decomposition,
    k: u8,
) -> Result<(), AuditError> {
    let recomputed = audit_coloring(graph, &d.coloring, k)?;
    if recomputed != d.cost {
        return Err(AuditError::CostMismatch {
            claimed: d.cost,
            recomputed,
        });
    }
    Ok(())
}

/// Audits a decomposition and additionally checks that `pins` are honored
/// up to the global mask permutation: every node pinned to the same mask
/// must share one color, and distinct pinned masks must map to distinct
/// colors.
///
/// # Errors
///
/// Returns the first failed check as an [`AuditError`].
pub fn audit_with_precoloring(
    graph: &LayoutGraph,
    d: &Decomposition,
    k: u8,
    pins: &Precoloring,
) -> Result<(), AuditError> {
    audit_decomposition(graph, d, k)?;
    // mask -> color witness, built pin by pin; a consistent witness map
    // that is injective is exactly a partial mask permutation.
    let mut witness: Vec<Option<u8>> = vec![None; k as usize];
    for &(node, mask) in pins.pins() {
        if node as usize >= d.coloring.len() || mask >= k {
            continue; // pins outside this unit graph are not auditable here
        }
        let got = d.coloring[node as usize];
        match witness[mask as usize] {
            None => {
                if witness.iter().flatten().any(|&c| c == got) {
                    return Err(AuditError::PrecolorViolated {
                        node,
                        pinned: mask,
                        got,
                    });
                }
                witness[mask as usize] = Some(got);
            }
            Some(c) if c == got => {}
            Some(_) => {
                return Err(AuditError::PrecolorViolated {
                    node,
                    pinned: mask,
                    got,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Certainty, DecomposeParams};

    fn hetero() -> LayoutGraph {
        // Features: 0 = {0, 1} (stitch-split), 1 = {2}, 2 = {3}. Conflict
        // edges 0-2, 1-3, 2-3; the 0-2 and 1-3 edges belong to feature
        // pairs (0,1) and (0,2).
        LayoutGraph::new(vec![0, 0, 1, 2], vec![(0, 2), (1, 3), (2, 3)], vec![(0, 1)]).unwrap()
    }

    #[test]
    fn recompute_matches_evaluate_on_hetero_graphs() {
        let g = hetero();
        for coloring in [
            vec![0, 0, 0, 0],
            vec![0, 1, 0, 1],
            vec![0, 0, 1, 2],
            vec![2, 1, 0, 1],
        ] {
            assert_eq!(
                recompute_cost(&g, &coloring),
                g.evaluate(&coloring, 0.1),
                "coloring {coloring:?}"
            );
        }
    }

    #[test]
    fn conflicts_are_capped_per_feature_pair() {
        // Feature 0 split in two, both subfeatures conflicting with the
        // same feature 1 node: one violated pair even if both edges clash.
        let g = LayoutGraph::new(vec![0, 0, 1], vec![(0, 2), (1, 2)], vec![(0, 1)]).unwrap();
        let cost = recompute_cost(&g, &[1, 1, 1]);
        assert_eq!(cost.conflicts, 1);
        assert_eq!(cost.stitches, 0);
    }

    #[test]
    fn audit_accepts_honest_decompositions() {
        let g = hetero();
        let d = Decomposition::from_coloring(&g, vec![0, 0, 1, 2], 0.1);
        assert_eq!(audit_decomposition(&g, &d, 3), Ok(()));
    }

    #[test]
    fn audit_rejects_stale_cost() {
        let g = hetero();
        let mut d = Decomposition::from_coloring(&g, vec![0, 0, 1, 2], 0.1);
        // Corrupt the coloring without re-evaluating: the hallmark of a
        // wrong transfer or an injected fault.
        d.coloring[2] = 0;
        let err = audit_decomposition(&g, &d, 3).unwrap_err();
        assert!(matches!(err, AuditError::CostMismatch { .. }), "{err}");
    }

    #[test]
    fn audit_rejects_bad_length_and_range() {
        let g = hetero();
        let err = audit_coloring(&g, &[0, 1], 3).unwrap_err();
        assert!(matches!(err, AuditError::LengthMismatch { .. }));
        let err = audit_coloring(&g, &[0, 1, 2, 3], 3).unwrap_err();
        assert!(matches!(
            err,
            AuditError::ColorOutOfRange {
                node: 3,
                color: 3,
                k: 3
            }
        ));
    }

    #[test]
    fn precolor_audit_is_permutation_invariant() {
        let g = hetero();
        let pins: Precoloring = [(2u32, 0u8), (3u32, 1u8)].into_iter().collect();
        // Colors 1 and 2 for the pinned nodes: a valid permutation of the
        // pinned masks 0 and 1.
        let d = Decomposition::from_coloring(&g, vec![0, 0, 1, 2], 0.1);
        assert_eq!(audit_with_precoloring(&g, &d, 3, &pins), Ok(()));
        // Both pinned masks mapped to one color: no permutation exists.
        let d = Decomposition::from_coloring(&g, vec![0, 0, 1, 1], 0.1);
        let err = audit_with_precoloring(&g, &d, 3, &pins).unwrap_err();
        assert!(matches!(err, AuditError::PrecolorViolated { .. }));
    }

    #[test]
    fn audit_checks_certainty_agnostic() {
        let g = hetero();
        let params = DecomposeParams::tpl();
        let d = Decomposition::from_coloring(&g, vec![0, 1, 0, 1], params.alpha)
            .with_certainty(Certainty::Degraded);
        assert_eq!(audit_decomposition(&g, &d, params.k), Ok(()));
    }
}
