//! Durable job identities and in-memory event logs for the server.
//!
//! Every `POST /decompose` resolves to a stable **job id** — either the
//! client-supplied `job_id` (validated to be filesystem-safe, since it
//! names the on-disk journal) or an id derived deterministically from the
//! request content and seed, so byte-identical re-submissions map to the
//! same job. The [`JobRegistry`] makes the id idempotent within one
//! server process: the first claim runs the decomposition, every later
//! claim (or `GET /jobs/<id>`) attaches to the same [`Job`] and replays
//! its NDJSON event log from the start, then follows live appends via a
//! condvar. Across restarts the registry starts empty and durability is
//! the journal's problem: re-claiming an id resumes from its JSONL
//! journal on disk.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Finished jobs kept attachable in memory; the oldest beyond this are
/// evicted (their journals, if any, survive on disk).
pub const MAX_FINISHED_JOBS: usize = 64;

#[derive(Debug, Default)]
struct JobLog {
    lines: Vec<Arc<str>>,
    done: bool,
    failed: bool,
}

/// One job's append-only NDJSON event log, shared between the worker
/// running it and any number of attached followers.
#[derive(Debug, Default)]
pub struct Job {
    log: Mutex<JobLog>,
    cond: Condvar,
}

impl Job {
    fn lock(&self) -> MutexGuard<'_, JobLog> {
        // A follower observing a poisoned log still sees coherent lines;
        // the runner marks failure through `fail`, not via poisoning.
        self.log.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends one event line and wakes all followers.
    pub fn append(&self, line: &str) {
        let mut log = self.lock();
        log.lines.push(Arc::from(line));
        self.cond.notify_all();
    }

    /// Marks the job complete (`failed` records whether it ended in an
    /// error event) and wakes all followers for the final drain.
    pub fn finish(&self, failed: bool) {
        let mut log = self.lock();
        log.done = true;
        log.failed = failed;
        self.cond.notify_all();
    }

    /// Whether the job has finished (successfully or not).
    pub fn is_done(&self) -> bool {
        self.lock().done
    }

    /// Whether the job finished in failure.
    pub fn is_failed(&self) -> bool {
        let log = self.lock();
        log.done && log.failed
    }

    /// Returns the event lines at index `from..`, blocking up to
    /// `timeout` for news when none are pending, plus the done flag.
    /// A `(empty, false)` return is a timeout: the caller gets a chance
    /// to notice its peer hung up before waiting again.
    pub fn wait_events(&self, from: usize, timeout: Duration) -> (Vec<Arc<str>>, bool) {
        let mut log = self.lock();
        if log.lines.len() <= from && !log.done {
            let (next, _timed_out) = self
                .cond
                .wait_timeout(log, timeout)
                .unwrap_or_else(|e| e.into_inner());
            log = next;
        }
        (log.lines.get(from..).unwrap_or(&[]).to_vec(), log.done)
    }
}

/// Outcome of claiming a job id.
pub enum Claim {
    /// This caller owns the id: run the decomposition and feed the log.
    Run(Arc<Job>),
    /// Another caller (now or earlier) owns it: replay/follow its log.
    Attach(Arc<Job>),
}

/// The registry's guarded state: the id map plus insertion-ordered ids
/// for finished-job eviction.
type JobTable = (HashMap<String, Arc<Job>>, Vec<String>);

/// Process-local map from job id to live/finished [`Job`]s.
#[derive(Debug, Default)]
pub struct JobRegistry {
    jobs: Mutex<JobTable>,
}

impl JobRegistry {
    fn lock(&self) -> MutexGuard<'_, JobTable> {
        self.jobs.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Atomically claims `id`: the first claimant gets [`Claim::Run`],
    /// everyone else [`Claim::Attach`] on the same job. Claiming also
    /// evicts the oldest finished jobs beyond [`MAX_FINISHED_JOBS`].
    pub fn claim(&self, id: &str) -> Claim {
        let mut guard = self.lock();
        let (map, order) = &mut *guard;
        if let Some(job) = map.get(id) {
            return Claim::Attach(Arc::clone(job));
        }
        let job = Arc::new(Job::default());
        map.insert(id.to_string(), Arc::clone(&job));
        order.push(id.to_string());
        if order.len() > MAX_FINISHED_JOBS {
            // Evict oldest *finished* jobs only; running jobs stay.
            let mut kept = Vec::with_capacity(order.len());
            for old in order.drain(..) {
                let done = map.get(&old).is_some_and(|j| j.is_done());
                if done && map.len() > MAX_FINISHED_JOBS {
                    map.remove(&old);
                } else {
                    kept.push(old);
                }
            }
            *order = kept;
        }
        Claim::Run(job)
    }

    /// Looks up a job without claiming it.
    pub fn get(&self, id: &str) -> Option<Arc<Job>> {
        self.lock().0.get(id).map(Arc::clone)
    }

    /// Forgets a job id (used for failed jobs, so a retry re-runs
    /// instead of replaying the failure).
    pub fn remove(&self, id: &str) {
        let mut guard = self.lock();
        guard.0.remove(id);
        guard.1.retain(|j| j != id);
    }

    /// Number of registered (live + finished, unevicted) jobs.
    pub fn len(&self) -> usize {
        self.lock().0.len()
    }

    /// Whether no jobs are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Whether `id` is acceptable as a client-supplied job id: 1–64 chars of
/// `[A-Za-z0-9._-]`, not starting with a dot (ids name journal files).
pub fn valid_job_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && !id.starts_with('.')
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// Derives a stable job id from request content and seed: identical
/// submissions (same circuit or byte-identical upload, same seed and
/// budget) land on the same job without the client naming one.
pub fn derive_job_id(kind: &str, content: &[u8], seed: u64, time_limit_ms: Option<u64>) -> String {
    let mut h = 0xcbf29ce484222325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
    };
    eat(kind.as_bytes());
    eat(&[0]);
    eat(content);
    eat(&[0]);
    eat(&seed.to_le_bytes());
    eat(&time_limit_ms.unwrap_or(u64::MAX).to_le_bytes());
    format!("j{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn claim_is_idempotent_and_attach_replays() {
        let reg = JobRegistry::default();
        let Claim::Run(job) = reg.claim("a") else {
            panic!("first claim must run");
        };
        job.append("{\"event\":\"unit\"}");
        let Claim::Attach(peer) = reg.claim("a") else {
            panic!("second claim must attach");
        };
        let (lines, done) = peer.wait_events(0, Duration::from_millis(10));
        assert_eq!(lines.len(), 1);
        assert!(!done);
        job.finish(false);
        let (rest, done) = peer.wait_events(1, Duration::from_millis(10));
        assert!(rest.is_empty());
        assert!(done && !job.is_failed());
    }

    #[test]
    fn failed_jobs_can_be_removed_for_retry() {
        let reg = JobRegistry::default();
        let Claim::Run(job) = reg.claim("boom") else {
            panic!("runs");
        };
        job.finish(true);
        assert!(job.is_failed());
        reg.remove("boom");
        assert!(matches!(reg.claim("boom"), Claim::Run(_)), "retry re-runs");
    }

    #[test]
    fn finished_jobs_are_evicted_beyond_cap_but_running_stay() {
        let reg = JobRegistry::default();
        let Claim::Run(running) = reg.claim("running") else {
            panic!("runs");
        };
        for i in 0..(MAX_FINISHED_JOBS + 10) {
            if let Claim::Run(j) = reg.claim(&format!("f{i}")) {
                j.finish(false);
            }
        }
        assert!(reg.len() <= MAX_FINISHED_JOBS + 1);
        assert!(reg.get("running").is_some(), "running job never evicted");
        drop(running);
    }

    #[test]
    fn job_id_validation_and_derivation() {
        assert!(valid_job_id("job-1.retry_2"));
        assert!(!valid_job_id(""));
        assert!(!valid_job_id(".hidden"));
        assert!(!valid_job_id("has/slash"));
        assert!(!valid_job_id("has space"));
        assert!(!valid_job_id(&"x".repeat(65)));

        let a = derive_job_id("circuit", b"C432", 7, None);
        assert_eq!(a, derive_job_id("circuit", b"C432", 7, None));
        assert_ne!(a, derive_job_id("circuit", b"C432", 8, None));
        assert_ne!(a, derive_job_id("circuit", b"C432", 7, Some(100)));
        assert_ne!(a, derive_job_id("upload", b"C432", 7, None));
        assert!(valid_job_id(&a));
    }
}
