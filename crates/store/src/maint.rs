//! Compaction: rewrite-and-swap. A long-lived store accumulates
//! superseded duplicates, orphaned dump fragments, and skipped corrupt
//! lines; compaction re-loads the file through the same verified path
//! the server uses, writes only the surviving records to a sibling
//! `.tmp`, fsyncs, and atomically renames over the original. A crash at
//! any point leaves either the old file or the new file — never a mix.

use crate::format::{parse_header, render_lib, render_lib_done, render_solve, StoreKey};
use crate::reader::{accumulate, verify_file};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// What one [`compact_file`] run dropped and kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Deduplicated solve records rewritten.
    pub kept_solves: usize,
    /// Library entries rewritten (complete dump only).
    pub kept_lib: usize,
    /// Superseded duplicates dropped.
    pub dropped_superseded: usize,
    /// Malformed lines dropped.
    pub dropped_corrupt: usize,
    /// Audit-failed records dropped.
    pub dropped_audit: usize,
    /// Orphaned library fragments dropped.
    pub dropped_orphaned: usize,
    /// File size before compaction.
    pub bytes_before: u64,
    /// File size after compaction.
    pub bytes_after: u64,
}

/// Compacts one store file in place (rewrite-and-swap).
///
/// # Errors
///
/// `InvalidData` when the header is unreadable (the file cannot be
/// keyed, so rewriting it would forge provenance); otherwise real I/O
/// failures only.
pub fn compact_file(path: &Path) -> std::io::Result<CompactReport> {
    let bytes_before = std::fs::metadata(path)?.len();
    let file = std::fs::File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut raw: Vec<u8> = Vec::new();
    reader.read_until(b'\n', &mut raw)?;
    let header_text = String::from_utf8_lossy(&raw).into_owned();
    let Some(header) = parse_header(&header_text) else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: unreadable store header", path.display()),
        ));
    };
    let header_line = header_text.trim_end().to_string();
    let mut lines: Vec<String> = Vec::new();
    loop {
        raw.clear();
        if reader.read_until(b'\n', &mut raw)? == 0 {
            break;
        }
        let line = String::from_utf8_lossy(&raw);
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if !trimmed.is_empty() && trimmed.ends_with('}') && line.ends_with('\n') {
            lines.push(trimmed.to_string());
        }
    }
    let acc = accumulate(&lines, header.k);

    let tmp = tmp_path(path);
    let mut out = std::fs::File::create(&tmp)?;
    let mut buf = Vec::new();
    buf.extend_from_slice(header_line.as_bytes());
    buf.push(b'\n');
    if let Some(lib) = &acc.lib {
        for e in lib {
            buf.extend_from_slice(render_lib(e).as_bytes());
            buf.push(b'\n');
        }
        buf.extend_from_slice(render_lib_done(lib.len()).as_bytes());
        buf.push(b'\n');
    }
    let mut kept_solves = 0usize;
    for s in &acc.solves {
        if let Some(line) = render_solve(s) {
            buf.extend_from_slice(line.as_bytes());
            buf.push(b'\n');
            kept_solves += 1;
        }
    }
    out.write_all(&buf)?;
    out.sync_all()?;
    drop(out);
    std::fs::rename(&tmp, path)?;

    Ok(CompactReport {
        kept_solves,
        kept_lib: acc.lib.as_ref().map_or(0, Vec::len),
        dropped_superseded: acc.superseded,
        dropped_corrupt: acc.skipped_corrupt,
        dropped_audit: acc.skipped_audit,
        dropped_orphaned: acc.orphaned,
        bytes_before,
        bytes_after: buf.len() as u64,
    })
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    PathBuf::from(tmp)
}

/// Compacts every store file under `dir` (sorted by name), returning
/// one report per file alongside its path.
///
/// # Errors
///
/// Propagates the first I/O failure; a missing directory yields an
/// empty list.
pub fn compact_dir(dir: &Path) -> std::io::Result<Vec<(PathBuf, CompactReport)>> {
    let mut out = Vec::new();
    for fs in crate::reader::scan_dir(dir)? {
        let report = compact_file(&fs.path)?;
        out.push((fs.path, report));
    }
    Ok(out)
}

/// Compacts the single file keyed by `key` under `dir` if it exists.
///
/// # Errors
///
/// Same as [`compact_file`]; a missing file yields `None`.
pub fn compact_keyed(dir: &Path, key: &StoreKey) -> std::io::Result<Option<CompactReport>> {
    let path = key.path_in(dir);
    if !path.exists() {
        return Ok(None);
    }
    compact_file(&path).map(Some)
}

/// Sanity helper for tests and the CLI: compact then verify the result
/// is clean.
///
/// # Errors
///
/// Same as [`compact_file`] / [`verify_file`].
pub fn compact_and_verify(path: &Path) -> std::io::Result<(CompactReport, bool)> {
    let report = compact_file(path)?;
    let verify = verify_file(path)?;
    Ok((report, verify.is_clean()))
}
