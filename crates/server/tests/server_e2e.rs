//! In-process end-to-end test of the decomposition server: a warm
//! shared engine behind a real TCP listener, driven by raw
//! `TcpStream` clients. Covers the streaming protocol, cross-request
//! cache reuse, admission control (429), and graceful drain.

use mpld::{prepare, train_framework, Engine, OfflineConfig, RunSummary, TrainingData};
use mpld_graph::DecomposeParams;
use mpld_layout::circuit_by_name;
use mpld_server::{serve, ServerConfig};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One server shared by every test in this file (spawned once, reaped
/// with the process): its address and shutdown flag.
struct TestServer {
    addr: std::net::SocketAddr,
    #[allow(dead_code)]
    shutdown: Arc<AtomicBool>,
}

/// A quickly trained engine (and its training cap, for reference).
fn tiny_engine() -> (Arc<Engine>, usize) {
    let params = DecomposeParams::tpl();
    let layout = circuit_by_name("C432").expect("exists").generate();
    let prep = prepare(&layout, &params);
    let mut data = TrainingData::default();
    data.add_layout_capped(&prep, &params, 8);
    let mut cfg = OfflineConfig::default();
    cfg.rgcn.epochs = 1;
    cfg.colorgnn.epochs = 1;
    cfg.library = mpld_matching::LibraryConfig {
        max_parent_size: 4,
        max_splits: 1,
        max_nodes: 5,
        stitches: false,
    };
    (
        Arc::new(Engine::new(train_framework(&data, &params, &cfg))),
        8,
    )
}

fn server() -> &'static TestServer {
    static SERVER: OnceLock<TestServer> = OnceLock::new();
    SERVER.get_or_init(|| {
        let (engine, _) = tiny_engine();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            let cfg = ServerConfig {
                workers: 2,
                queue_depth: 4,
                read_timeout: Duration::from_secs(5),
                ..ServerConfig::default()
            };
            serve(engine, listener, &cfg, &flag).expect("serve");
        });
        TestServer { addr, shutdown }
    })
}

fn request(addr: std::net::SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    out
}

fn post_decompose(addr: std::net::SocketAddr, body: &str) -> String {
    request(
        addr,
        &format!(
            "POST /decompose HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// The final `done` line of a streamed decomposition response.
fn done_line(response: &str) -> &str {
    response
        .lines()
        .find(|l| l.starts_with("{\"event\":\"done\""))
        .unwrap_or_else(|| panic!("no done event in response:\n{response}"))
}

#[test]
fn healthz_answers_ok() {
    let s = server();
    let r = request(s.addr, "GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 200 OK"), "{r}");
    assert!(r.contains("\"status\":\"ok\""), "{r}");
}

#[test]
fn unknown_route_is_404_and_bad_body_is_400() {
    let s = server();
    let r = request(s.addr, "GET /nope HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 404"), "{r}");
    let r = post_decompose(s.addr, "{}");
    assert!(r.starts_with("HTTP/1.1 400"), "{r}");
    let r = post_decompose(s.addr, r#"{"circuit":"NOT_A_CIRCUIT"}"#);
    assert!(r.starts_with("HTTP/1.1 404"), "{r}");
}

#[test]
fn repeated_requests_share_the_warm_engine() {
    let s = server();
    let body = r#"{"circuit":"C432","seed":7}"#;

    let first = post_decompose(s.addr, body);
    assert!(first.starts_with("HTTP/1.1 200 OK"), "{first}");
    assert!(first.contains("application/x-ndjson"), "{first}");
    assert!(first.contains("{\"event\":\"job\""), "{first}");
    assert!(first.contains("{\"event\":\"routed\""), "{first}");
    let a = RunSummary::parse(done_line(&first)).expect("summary parses");

    // A distinct job id forces a fresh run (a byte-identical re-POST
    // would idempotently replay the first job's log instead).
    let second = post_decompose(s.addr, r#"{"circuit":"C432","seed":7,"job_id":"warm-2"}"#);
    let b = RunSummary::parse(done_line(&second)).expect("summary parses");

    // Identical request, identical digest…
    assert_eq!(a.layout, "C432");
    assert_eq!((a.conflicts, a.stitches), (b.conflicts, b.stitches));
    assert_eq!(
        (a.matching, a.colorgnn, a.ec, a.ilp),
        (b.matching, b.colorgnn, b.ec, b.ilp)
    );
    assert_eq!(a.seed, Some(7));
    // …and the repeat was served from the cross-request routing memo.
    assert!(
        b.routing_memo_hits > 0,
        "second request must hit the shared routing memo: {b:?}"
    );
    assert_eq!(b.units_inferred, 0, "{b:?}");

    // The stats route reflects the shared-cache traffic.
    let stats = request(s.addr, "GET /stats HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(stats.contains("\"routing\":{\"hits\":"), "{stats}");
}

#[test]
fn deadline_requests_stream_incumbents_not_errors() {
    let s = server();
    let r = post_decompose(s.addr, r#"{"circuit":"C432","seed":7,"time_limit_ms":0}"#);
    assert!(r.starts_with("HTTP/1.1 200 OK"), "{r}");
    let summary = RunSummary::parse(done_line(&r)).expect("summary parses");
    // Every unit still resolved; budget pressure shows up as certainty
    // accounting, never as an error event.
    assert_eq!(
        summary.certified + summary.heuristic + summary.budget_exhausted + summary.quarantined,
        summary.units
    );
    assert!(!r.contains("{\"event\":\"error\""), "{r}");
}

#[test]
fn saturated_queue_rejects_with_429_and_recovers() {
    // A private single-worker server so saturating it cannot interfere
    // with the shared instance used by the other tests.
    let (engine, _) = tiny_engine();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let handle = std::thread::spawn(move || {
        let cfg = ServerConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout: Duration::from_secs(2),
            ..ServerConfig::default()
        };
        serve(engine, listener, &cfg, &flag)
    });

    // Wedge the worker and the queue slot with connections that never
    // send a request line (released by the server's read timeout).
    let held: Vec<TcpStream> = (0..2)
        .map(|_| {
            let c = TcpStream::connect(addr).expect("connect");
            std::thread::sleep(Duration::from_millis(100));
            c
        })
        .collect();
    // With the pool and backlog full, a new connection is turned away
    // immediately. Retry briefly in case a held slot had not yet been
    // dequeued when we connected.
    let mut saw_429 = false;
    for _ in 0..20 {
        let mut c = TcpStream::connect(addr).expect("connect");
        c.set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        c.write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n")
            .expect("send");
        let mut out = String::new();
        let _ = c.read_to_string(&mut out);
        if out.starts_with("HTTP/1.1 429") {
            assert!(out.contains("queue is full"), "{out}");
            saw_429 = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    drop(held);
    assert!(saw_429, "saturation never produced a 429");
    // After the held connections time out, service recovers.
    let mut ok = false;
    for _ in 0..60 {
        let mut c = TcpStream::connect(addr).expect("connect");
        c.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        c.write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n")
            .expect("send");
        let mut out = String::new();
        let _ = c.read_to_string(&mut out);
        if out.starts_with("HTTP/1.1 200") {
            ok = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    assert!(ok, "server did not recover after saturation");
    shutdown.store(true, Ordering::SeqCst);
    assert!(handle.join().expect("no panic").is_ok());
}

/// Sends raw bytes best-effort (the server may close mid-write on a
/// rejected request) and returns whatever response came back.
fn send_raw(addr: std::net::SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let _ = stream.write_all(raw); // EPIPE is fine: rejection beat the write
    let _ = stream.flush();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

#[test]
fn malformed_and_oversized_requests_get_fast_typed_errors() {
    let s = server();

    // A multi-megabyte request line with no newline must be cut off at
    // the cap with a 431, never buffered whole.
    let mut raw = b"GET /".to_vec();
    raw.extend(std::iter::repeat_n(b'a', 1 << 20));
    let r = send_raw(s.addr, &raw);
    assert!(r.starts_with("HTTP/1.1 431"), "{r}");

    // Same for one giant header line and for a header flood.
    let mut raw = b"GET /healthz HTTP/1.1\r\nX-Big: ".to_vec();
    raw.extend(std::iter::repeat_n(b'a', 1 << 20));
    let r = send_raw(s.addr, &raw);
    assert!(r.starts_with("HTTP/1.1 431"), "{r}");
    let mut raw = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..500 {
        raw.extend(format!("X-{i}: v\r\n").into_bytes());
    }
    raw.extend(b"\r\n");
    let r = send_raw(s.addr, &raw);
    assert!(r.starts_with("HTTP/1.1 431"), "{r}");

    // An absurd Content-Length is rejected up front (413), a POST with
    // none at all gets 411, and binary garbage gets 400.
    let r = send_raw(
        s.addr,
        b"POST /decompose HTTP/1.1\r\nContent-Length: 1073741824\r\n\r\n",
    );
    assert!(r.starts_with("HTTP/1.1 413"), "{r}");
    let r = send_raw(s.addr, b"POST /decompose HTTP/1.1\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 411"), "{r}");
    let r = send_raw(s.addr, b"\x00\x01\x02\x03\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 400"), "{r}");

    // The server is still healthy and counted the abuse.
    let health = request(s.addr, "GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    let stats = request(s.addr, "GET /stats HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(stats.contains("\"bad_requests\":"), "{stats}");
}

#[test]
fn stats_reports_queue_uptime_and_job_counters() {
    let s = server();
    let stats = request(s.addr, "GET /stats HTTP/1.1\r\nHost: test\r\n\r\n");
    for key in [
        "\"uptime_ms\":",
        "\"queue_depth\":",
        "\"active_requests\":",
        "\"draining\":false",
        "\"jobs\":{",
        "\"journal_records\":",
        "\"journal_restarts\":",
    ] {
        assert!(stats.contains(key), "missing {key} in {stats}");
    }
    let health = request(s.addr, "GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(health.contains("\"uptime_ms\":"), "{health}");
    assert!(health.contains("\"queue_depth\":"), "{health}");
}

#[test]
fn raw_upload_decomposes_like_the_named_circuit() {
    let s = server();
    let layout = circuit_by_name("C432").expect("exists").generate();
    let mut text = Vec::new();
    mpld_layout::write_layout(&layout, &mut text).expect("serialize");
    let text = String::from_utf8(text).expect("utf8");

    let r = send_raw(
        s.addr,
        format!(
            "POST /decompose?seed=7&job_id=upload-e2e HTTP/1.1\r\nHost: test\r\n\
             Content-Length: {}\r\n\r\n{text}",
            text.len()
        )
        .as_bytes(),
    );
    assert!(r.starts_with("HTTP/1.1 200 OK"), "{r}");
    let up = RunSummary::parse(done_line(&r)).expect("summary parses");

    // Same geometry, same seed — the served digests must match the
    // named-circuit path bit for bit.
    let named = post_decompose(
        s.addr,
        r#"{"circuit":"C432","seed":7,"job_id":"named-e2e"}"#,
    );
    let nm = RunSummary::parse(done_line(&named)).expect("summary parses");
    assert_eq!(up.layout, "C432");
    assert_eq!((up.conflicts, up.stitches), (nm.conflicts, nm.stitches));
    assert_eq!(
        (up.matching, up.colorgnn, up.ec, up.ilp),
        (nm.matching, nm.colorgnn, nm.ec, nm.ilp)
    );

    // A garbage upload gets a typed 400 carrying the offending line.
    let bad = "# mpld layout interchange v1\nlayout X d=100\nrect 1 2 three 4\n";
    let r = send_raw(
        s.addr,
        format!(
            "POST /decompose HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{bad}",
            bad.len()
        )
        .as_bytes(),
    );
    assert!(r.starts_with("HTTP/1.1 400"), "{r}");
    assert!(r.contains("\"line\":3"), "{r}");
}

#[test]
fn draining_server_reports_draining_and_refuses_new_work() {
    // Private instance: wedge its only worker so the drain phase stays
    // observable, then flip shutdown and probe from the acceptor side.
    let (engine, _) = tiny_engine();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let handle = std::thread::spawn(move || {
        let cfg = ServerConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout: Duration::from_secs(3),
            ..ServerConfig::default()
        };
        serve(engine, listener, &cfg, &flag)
    });
    // Wedge the worker with a connection that never sends its request.
    let held = TcpStream::connect(addr).expect("connect");
    std::thread::sleep(Duration::from_millis(100));
    shutdown.store(true, Ordering::SeqCst);

    let mut saw_draining = false;
    let mut saw_refusal = false;
    for _ in 0..50 {
        let health = send_raw(addr, b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n");
        if health.contains("\"status\":\"draining\"") {
            saw_draining = true;
            let post = send_raw(
                addr,
                b"POST /decompose HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}",
            );
            saw_refusal = post.starts_with("HTTP/1.1 503");
            break;
        }
        if health.is_empty() {
            break; // drain finished: listener gone
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    drop(held);
    assert!(saw_draining, "never observed draining health status");
    assert!(saw_refusal, "draining server must refuse new work with 503");
    assert!(handle.join().expect("no panic").is_ok());
}

#[test]
fn graceful_drain_joins_workers() {
    // A private server instance so the shared one keeps running for the
    // other tests.
    let (engine, _) = tiny_engine();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let handle = std::thread::spawn(move || {
        let cfg = ServerConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout: Duration::from_secs(1),
            ..ServerConfig::default()
        };
        serve(engine, listener, &cfg, &flag)
    });
    std::thread::sleep(Duration::from_millis(100));
    shutdown.store(true, Ordering::SeqCst);
    let joined = handle.join().expect("no panic");
    assert!(joined.is_ok());
}
