//! Tape-based reverse-mode automatic differentiation over [`Matrix`]
//! values.
//!
//! A [`Graph`] records every forward operation; [`Graph::backward`]
//! replays the tape in reverse, accumulating gradients. The operation set
//! is exactly what the MPLD networks need: dense linear algebra, ReLU,
//! sparse neighbor aggregation, sum/max readouts, softmax cross-entropy,
//! and the pairwise margin loss that trains ColorGNN.

use crate::Matrix;
use std::sync::Arc;

/// Handle to a value in the autodiff graph.
pub type VarId = usize;

/// Sparse adjacency used by [`Graph::agg_sum`]: `fwd[i]` lists the rows
/// summed into output row `i`. The reverse lists are derived on
/// construction so backprop is a plain re-aggregation.
#[derive(Debug, Clone)]
pub struct Adjacency {
    fwd: Vec<Vec<u32>>,
    rev: Vec<Vec<u32>>,
}

impl Adjacency {
    /// Builds an adjacency over `n` rows.
    ///
    /// # Panics
    ///
    /// Panics if a neighbor index is out of range.
    pub fn new(fwd: Vec<Vec<u32>>) -> Self {
        let n = fwd.len();
        let mut rev = vec![Vec::new(); n];
        for (i, ns) in fwd.iter().enumerate() {
            for &j in ns {
                assert!((j as usize) < n, "neighbor index out of range");
                rev[j as usize].push(i as u32);
            }
        }
        Adjacency { fwd, rev }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.fwd.len()
    }

    /// Whether the adjacency is empty.
    pub fn is_empty(&self) -> bool {
        self.fwd.is_empty()
    }

    /// The rows summed into output row `i` (the forward neighbor list, in
    /// insertion order — the order [`Graph::agg_sum`] accumulates in).
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.fwd[i]
    }
}

enum Op {
    Leaf,
    /// C = A * B.
    MatMul(VarId, VarId),
    /// C = A + B (same shape).
    Add(VarId, VarId),
    /// C = A + row-broadcast b (1 x d).
    AddRow(VarId, VarId),
    /// C = relu(A).
    Relu(VarId),
    /// C = s * A for a constant s.
    ScaleConst(VarId, f32),
    /// C = scalar-var * A (scalar is a 1 x 1 var).
    ScaleByScalar(VarId, VarId),
    /// C[i] = sum_{j in adj[i]} A[j].
    AggSum(VarId, Arc<Adjacency>),
    /// 1 x d row: sum of all rows of A.
    SumRows(VarId),
    /// 1 x d row: column-wise max of A; remembers argmax rows.
    MaxRows(VarId, Vec<u32>),
    /// k x d: per-segment row sums (`seg[r]` = output row of input row r).
    SegmentSum(VarId, Arc<Vec<u32>>),
    /// k x d: per-segment column-wise max; remembers argmax rows.
    SegmentMax(VarId, Vec<u32>),
    /// Row-wise L2 normalization; caches the row norms.
    RowNormalize(VarId, Vec<f32>),
    /// Scalar: mean softmax cross-entropy of logits (n x C) vs labels.
    SoftmaxCrossEntropy(VarId, Arc<Vec<u8>>, Matrix),
    /// Scalar: sum over edges of max(margin - ||x_u - x_v||^2, 0).
    MarginPairLoss(VarId, Arc<Vec<(u32, u32)>>, f32),
}

/// Storage for a node's forward value. Computed nodes own their matrix;
/// inputs inserted via [`Graph::input_shared`] borrow one through an
/// `Arc`, so hot callers (the GNN encodings, whose feature matrices
/// outlive any single tape) stop cloning them onto every forward pass.
enum Stored {
    Owned(Matrix),
    Shared(Arc<Matrix>),
}

impl Stored {
    fn get(&self) -> &Matrix {
        match self {
            Stored::Owned(m) => m,
            Stored::Shared(m) => m,
        }
    }
}

struct Node {
    op: Op,
    value: Stored,
    grad: Option<Matrix>,
    needs_grad: bool,
}

/// The autodiff tape (see module docs).
///
/// # Example
///
/// ```
/// use mpld_tensor::{Graph, Matrix};
///
/// let mut g = Graph::new();
/// let x = g.param(Matrix::from_rows(&[&[2.0]]));
/// let y = g.scale_const(x, 3.0); // y = 3x
/// g.backward(y);
/// assert_eq!(g.grad(x).scalar(), 3.0);
/// ```
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    fn push(&mut self, op: Op, value: Matrix, needs_grad: bool) -> VarId {
        self.nodes.push(Node {
            op,
            value: Stored::Owned(value),
            grad: None,
            needs_grad,
        });
        self.nodes.len() - 1
    }

    /// Inserts a constant input (no gradient is tracked).
    pub fn input(&mut self, value: Matrix) -> VarId {
        self.push(Op::Leaf, value, false)
    }

    /// Inserts a constant input backed by a shared matrix (no gradient,
    /// and — unlike [`Graph::input`] — no copy of the data).
    pub fn input_shared(&mut self, value: Arc<Matrix>) -> VarId {
        self.nodes.push(Node {
            op: Op::Leaf,
            value: Stored::Shared(value),
            grad: None,
            needs_grad: false,
        });
        self.nodes.len() - 1
    }

    /// Inserts a trainable leaf (gradient is accumulated).
    pub fn param(&mut self, value: Matrix) -> VarId {
        self.push(Op::Leaf, value, true)
    }

    /// The current value of `id`.
    pub fn value(&self, id: VarId) -> &Matrix {
        self.nodes[id].value.get()
    }

    /// The gradient of the last [`Graph::backward`] target w.r.t. `id`.
    ///
    /// # Panics
    ///
    /// Panics if no gradient was computed for `id` (not reachable from the
    /// loss, or `backward` not called).
    pub fn grad(&self, id: VarId) -> &Matrix {
        #[allow(clippy::expect_used)] // documented panic contract (see above)
        self.nodes[id]
            .grad
            .as_ref()
            .expect("gradient not computed; call backward on a reachable loss first")
    }

    /// The gradient of `id`, or `None` when `id` was not reached by the
    /// last backward pass.
    pub fn try_grad(&self, id: VarId) -> Option<&Matrix> {
        self.nodes[id].grad.as_ref()
    }

    fn needs(&self, id: VarId) -> bool {
        self.nodes[id].needs_grad
    }

    /// `a * b`.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a].value.get().matmul(self.nodes[b].value.get());
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::MatMul(a, b), v, ng)
    }

    /// `a + b` (same shape).
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let mut v = self.nodes[a].value.get().clone();
        v.add_assign(self.nodes[b].value.get());
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Add(a, b), v, ng)
    }

    /// `a + bias` broadcasting the `1 x d` bias over rows.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x a.cols`.
    pub fn add_row(&mut self, a: VarId, bias: VarId) -> VarId {
        let b = self.nodes[bias].value.get();
        assert_eq!(b.rows(), 1, "bias must be a single row");
        let a_val = self.nodes[a].value.get();
        assert_eq!(b.cols(), a_val.cols(), "bias width mismatch");
        let mut v = a_val.clone();
        for r in 0..v.rows() {
            for c in 0..v.cols() {
                v[(r, c)] += b[(0, c)];
            }
        }
        let ng = self.needs(a) || self.needs(bias);
        self.push(Op::AddRow(a, bias), v, ng)
    }

    /// Element-wise ReLU.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let mut v = self.nodes[a].value.get().clone();
        for x in v.as_mut_slice() {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
        let ng = self.needs(a);
        self.push(Op::Relu(a), v, ng)
    }

    /// `s * a` for a constant scalar.
    pub fn scale_const(&mut self, a: VarId, s: f32) -> VarId {
        let v = self.nodes[a].value.get().scaled(s);
        let ng = self.needs(a);
        self.push(Op::ScaleConst(a, s), v, ng)
    }

    /// `scalar * a` where `scalar` is a trainable `1 x 1` variable.
    ///
    /// # Panics
    ///
    /// Panics if `scalar` is not `1 x 1`.
    pub fn scale_by_scalar(&mut self, a: VarId, scalar: VarId) -> VarId {
        let s = self.nodes[scalar].value.get().scalar();
        let v = self.nodes[a].value.get().scaled(s);
        let ng = self.needs(a) || self.needs(scalar);
        self.push(Op::ScaleByScalar(a, scalar), v, ng)
    }

    /// Sparse neighbor aggregation: `out[i] = sum_{j in adj[i]} a[j]`.
    ///
    /// # Panics
    ///
    /// Panics if `adj.len() != a.rows()`.
    pub fn agg_sum(&mut self, a: VarId, adj: Arc<Adjacency>) -> VarId {
        let x = self.nodes[a].value.get();
        assert_eq!(adj.len(), x.rows(), "adjacency size mismatch");
        let mut v = Matrix::zeros(x.rows(), x.cols());
        for (i, ns) in adj.fwd.iter().enumerate() {
            for &j in ns {
                let row = x.row(j as usize).to_vec();
                for (c, val) in row.iter().enumerate() {
                    v[(i, c)] += val;
                }
            }
        }
        let ng = self.needs(a);
        self.push(Op::AggSum(a, adj), v, ng)
    }

    /// Graph readout: `1 x d` sum of all rows.
    pub fn sum_rows(&mut self, a: VarId) -> VarId {
        let x = self.nodes[a].value.get();
        let mut v = Matrix::zeros(1, x.cols());
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                v[(0, c)] += x[(r, c)];
            }
        }
        let ng = self.needs(a);
        self.push(Op::SumRows(a), v, ng)
    }

    /// Graph readout: `1 x d` column-wise max of all rows.
    ///
    /// # Panics
    ///
    /// Panics if `a` has no rows.
    pub fn max_rows(&mut self, a: VarId) -> VarId {
        let x = self.nodes[a].value.get();
        assert!(x.rows() > 0, "max over zero rows");
        let mut v = Matrix::zeros(1, x.cols());
        let mut arg = vec![0u32; x.cols()];
        for c in 0..x.cols() {
            let mut best = f32::NEG_INFINITY;
            for r in 0..x.rows() {
                if x[(r, c)] > best {
                    best = x[(r, c)];
                    arg[c] = r as u32;
                }
            }
            v[(0, c)] = best;
        }
        let ng = self.needs(a);
        self.push(Op::MaxRows(a, arg), v, ng)
    }

    /// Batched graph readout: `out[s] = sum of rows r with seg[r] == s`,
    /// producing a `num_segments x d` matrix. Used to pool node embeddings
    /// of a disjoint union of graphs into per-graph embeddings.
    ///
    /// # Panics
    ///
    /// Panics if `seg.len() != a.rows()` or a segment id is
    /// `>= num_segments`.
    pub fn segment_sum(&mut self, a: VarId, seg: Vec<u32>, num_segments: usize) -> VarId {
        let x = self.nodes[a].value.get();
        assert_eq!(seg.len(), x.rows(), "one segment id per row");
        assert!(
            seg.iter().all(|&s| (s as usize) < num_segments),
            "segment id out of range"
        );
        let mut v = Matrix::zeros(num_segments, x.cols());
        for (r, &s) in seg.iter().enumerate() {
            for c in 0..x.cols() {
                v[(s as usize, c)] += x[(r, c)];
            }
        }
        let ng = self.needs(a);
        self.push(Op::SegmentSum(a, Arc::new(seg)), v, ng)
    }

    /// Batched max readout: `out[s]` is the column-wise max over rows with
    /// `seg[r] == s`. Every segment must be non-empty.
    ///
    /// # Panics
    ///
    /// Panics on length/range mismatch or an empty segment.
    pub fn segment_max(&mut self, a: VarId, seg: Vec<u32>, num_segments: usize) -> VarId {
        let x = self.nodes[a].value.get();
        assert_eq!(seg.len(), x.rows(), "one segment id per row");
        assert!(
            seg.iter().all(|&s| (s as usize) < num_segments),
            "segment id out of range"
        );
        let mut v = Matrix::zeros(num_segments, x.cols());
        for e in v.as_mut_slice() {
            *e = f32::NEG_INFINITY;
        }
        let mut arg = vec![u32::MAX; num_segments * x.cols()];
        for (r, &s) in seg.iter().enumerate() {
            for c in 0..x.cols() {
                if x[(r, c)] > v[(s as usize, c)] {
                    v[(s as usize, c)] = x[(r, c)];
                    arg[s as usize * x.cols() + c] = r as u32;
                }
            }
        }
        assert!(
            arg.iter().all(|&r| r != u32::MAX),
            "empty segment in segment_max"
        );
        let ng = self.needs(a);
        self.push(Op::SegmentMax(a, arg), v, ng)
    }

    /// Row-wise L2 normalization: `y_r = x_r / max(||x_r||, eps)`. Makes
    /// downstream losses scale-invariant (used by the ColorGNN margin
    /// loss so belief magnitudes cannot trivially satisfy the margin).
    pub fn row_l2_normalize(&mut self, a: VarId) -> VarId {
        let x = self.nodes[a].value.get();
        let mut v = x.clone();
        let mut norms = Vec::with_capacity(x.rows());
        for r in 0..x.rows() {
            let norm = x
                .row(r)
                .iter()
                .map(|&e| e * e)
                .sum::<f32>()
                .sqrt()
                .max(1e-6);
            norms.push(norm);
            for c in 0..x.cols() {
                v[(r, c)] /= norm;
            }
        }
        let ng = self.needs(a);
        self.push(Op::RowNormalize(a, norms), v, ng)
    }

    /// Mean softmax cross-entropy between `logits` (`n x C`) and integer
    /// `labels` (`n` entries `< C`). Returns a `1 x 1` loss.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != logits.rows()` or a label is out of range.
    pub fn softmax_cross_entropy(&mut self, logits: VarId, labels: Vec<u8>) -> VarId {
        let x = self.nodes[logits].value.get();
        let (n, c) = (x.rows(), x.cols());
        assert_eq!(labels.len(), n, "one label per row");
        assert!(
            labels.iter().all(|&l| (l as usize) < c),
            "label out of range"
        );
        // Cache softmax probabilities for the backward pass.
        let mut probs = Matrix::zeros(n, c);
        let mut loss = 0.0f32;
        for r in 0..n {
            let row = x.row(r);
            let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let mut z = 0.0;
            for (j, &v) in row.iter().enumerate() {
                let e = (v - max).exp();
                probs[(r, j)] = e;
                z += e;
            }
            for j in 0..c {
                probs[(r, j)] /= z;
            }
            loss -= probs[(r, labels[r] as usize)].max(1e-12).ln();
        }
        loss /= n.max(1) as f32;
        let ng = self.needs(logits);
        self.push(
            Op::SoftmaxCrossEntropy(logits, Arc::new(labels), probs),
            Matrix::from_vec(1, 1, vec![loss]),
            ng,
        )
    }

    /// Softmax probabilities of `logits` (`n x C`), computed outside the
    /// tape (no gradient).
    pub fn softmax_values(&self, logits: VarId) -> Matrix {
        let x = self.nodes[logits].value.get();
        let (n, c) = (x.rows(), x.cols());
        let mut probs = Matrix::zeros(n, c);
        for r in 0..n {
            let row = x.row(r);
            let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let mut z = 0.0;
            for (j, &v) in row.iter().enumerate() {
                let e = (v - max).exp();
                probs[(r, j)] = e;
                z += e;
            }
            for j in 0..c {
                probs[(r, j)] /= z;
            }
        }
        probs
    }

    /// The ColorGNN margin loss (Eq. 14): for each edge `(u, v)`,
    /// `max(margin - ||x_u - x_v||^2, 0)`, summed. Returns a `1 x 1` loss.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range.
    pub fn margin_pair_loss(&mut self, x: VarId, edges: Vec<(u32, u32)>, margin: f32) -> VarId {
        let m = self.nodes[x].value.get();
        let mut loss = 0.0f32;
        for &(u, v) in &edges {
            assert!(
                (u as usize) < m.rows() && (v as usize) < m.rows(),
                "edge out of range"
            );
            let d2: f32 = m
                .row(u as usize)
                .iter()
                .zip(m.row(v as usize))
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum();
            loss += (margin - d2).max(0.0);
        }
        let ng = self.needs(x);
        self.push(
            Op::MarginPairLoss(x, Arc::new(edges), margin),
            Matrix::from_vec(1, 1, vec![loss]),
            ng,
        )
    }

    fn accumulate(&mut self, id: VarId, delta: Matrix) {
        let node = &mut self.nodes[id];
        match &mut node.grad {
            Some(g) => g.add_assign(&delta),
            None => node.grad = Some(delta),
        }
    }

    /// Backpropagates from the `1 x 1` loss variable, filling gradients of
    /// all reachable variables that need them.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `1 x 1`.
    pub fn backward(&mut self, loss: VarId) {
        assert_eq!(
            (
                self.nodes[loss].value.get().rows(),
                self.nodes[loss].value.get().cols()
            ),
            (1, 1),
            "backward target must be a scalar"
        );
        for n in &mut self.nodes {
            n.grad = None;
        }
        self.nodes[loss].grad = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for id in (0..self.nodes.len()).rev() {
            if self.nodes[id].grad.is_none() || !self.nodes[id].needs_grad {
                continue;
            }
            #[allow(clippy::expect_used)] // `is_none` checked at the top of the loop
            let grad = self.nodes[id].grad.clone().expect("checked above");
            // Dispatch per op. Values are cloned where the borrow checker
            // needs it; matrices are small.
            match &self.nodes[id].op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    if self.needs(a) {
                        let d = grad.matmul_nt(self.nodes[b].value.get());
                        self.accumulate(a, d);
                    }
                    if self.needs(b) {
                        let d = self.nodes[a].value.get().matmul_tn(&grad);
                        self.accumulate(b, d);
                    }
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    if self.needs(a) {
                        self.accumulate(a, grad.clone());
                    }
                    if self.needs(b) {
                        self.accumulate(b, grad);
                    }
                }
                Op::AddRow(a, bias) => {
                    let (a, bias) = (*a, *bias);
                    if self.needs(bias) {
                        let mut d = Matrix::zeros(1, grad.cols());
                        for r in 0..grad.rows() {
                            for c in 0..grad.cols() {
                                d[(0, c)] += grad[(r, c)];
                            }
                        }
                        self.accumulate(bias, d);
                    }
                    if self.needs(a) {
                        self.accumulate(a, grad);
                    }
                }
                Op::Relu(a) => {
                    let a = *a;
                    if self.needs(a) {
                        let mut d = grad.clone();
                        let inp = self.nodes[a].value.get().clone();
                        for (g, &x) in d.as_mut_slice().iter_mut().zip(inp.as_slice()) {
                            if x <= 0.0 {
                                *g = 0.0;
                            }
                        }
                        self.accumulate(a, d);
                    }
                }
                Op::ScaleConst(a, s) => {
                    let (a, s) = (*a, *s);
                    if self.needs(a) {
                        self.accumulate(a, grad.scaled(s));
                    }
                }
                Op::ScaleByScalar(a, scalar) => {
                    let (a, scalar) = (*a, *scalar);
                    let s = self.nodes[scalar].value.get().scalar();
                    if self.needs(a) {
                        self.accumulate(a, grad.scaled(s));
                    }
                    if self.needs(scalar) {
                        let dot: f32 = grad
                            .as_slice()
                            .iter()
                            .zip(self.nodes[a].value.get().as_slice())
                            .map(|(&g, &x)| g * x)
                            .sum();
                        self.accumulate(scalar, Matrix::from_vec(1, 1, vec![dot]));
                    }
                }
                Op::AggSum(a, adj) => {
                    let a = *a;
                    let adj = Arc::clone(adj);
                    if self.needs(a) {
                        let mut d = Matrix::zeros(grad.rows(), grad.cols());
                        for (j, srcs) in adj.rev.iter().enumerate() {
                            for &i in srcs {
                                for c in 0..grad.cols() {
                                    d[(j, c)] += grad[(i as usize, c)];
                                }
                            }
                        }
                        self.accumulate(a, d);
                    }
                }
                Op::SumRows(a) => {
                    let a = *a;
                    if self.needs(a) {
                        let rows = self.nodes[a].value.get().rows();
                        let mut d = Matrix::zeros(rows, grad.cols());
                        for r in 0..rows {
                            for c in 0..grad.cols() {
                                d[(r, c)] = grad[(0, c)];
                            }
                        }
                        self.accumulate(a, d);
                    }
                }
                Op::MaxRows(a, arg) => {
                    let (a, arg) = (*a, arg.clone());
                    if self.needs(a) {
                        let rows = self.nodes[a].value.get().rows();
                        let mut d = Matrix::zeros(rows, grad.cols());
                        for (c, &r) in arg.iter().enumerate() {
                            d[(r as usize, c)] = grad[(0, c)];
                        }
                        self.accumulate(a, d);
                    }
                }
                Op::SegmentSum(a, seg) => {
                    let a = *a;
                    let seg = Arc::clone(seg);
                    if self.needs(a) {
                        let rows = self.nodes[a].value.get().rows();
                        let mut d = Matrix::zeros(rows, grad.cols());
                        for (r, &s) in seg.iter().enumerate() {
                            for c in 0..grad.cols() {
                                d[(r, c)] = grad[(s as usize, c)];
                            }
                        }
                        self.accumulate(a, d);
                    }
                }
                Op::RowNormalize(a, norms) => {
                    let (a, norms) = (*a, norms.clone());
                    if self.needs(a) {
                        // dL/dx_r = (g_r - y_r (y_r · g_r)) / norm_r
                        let y = self.nodes[id].value.get().clone();
                        let mut d = Matrix::zeros(grad.rows(), grad.cols());
                        for r in 0..grad.rows() {
                            let dot: f32 = (0..grad.cols()).map(|c| y[(r, c)] * grad[(r, c)]).sum();
                            for c in 0..grad.cols() {
                                d[(r, c)] = (grad[(r, c)] - y[(r, c)] * dot) / norms[r];
                            }
                        }
                        self.accumulate(a, d);
                    }
                }
                Op::SegmentMax(a, arg) => {
                    let (a, arg) = (*a, arg.clone());
                    if self.needs(a) {
                        let rows = self.nodes[a].value.get().rows();
                        let cols = grad.cols();
                        let mut d = Matrix::zeros(rows, cols);
                        for (i, &r) in arg.iter().enumerate() {
                            let (s, c) = (i / cols, i % cols);
                            d[(r as usize, c)] += grad[(s, c)];
                        }
                        self.accumulate(a, d);
                    }
                }
                Op::SoftmaxCrossEntropy(logits, labels, probs) => {
                    let logits = *logits;
                    let labels = Arc::clone(labels);
                    let probs = probs.clone();
                    if self.needs(logits) {
                        let g0 = grad.scalar();
                        let n = probs.rows();
                        let mut d = probs;
                        for (r, &l) in labels.iter().enumerate() {
                            d[(r, l as usize)] -= 1.0;
                        }
                        let d = d.scaled(g0 / n.max(1) as f32);
                        self.accumulate(logits, d);
                    }
                }
                Op::MarginPairLoss(x, edges, margin) => {
                    let x = *x;
                    let edges = Arc::clone(edges);
                    let margin = *margin;
                    if self.needs(x) {
                        let g0 = grad.scalar();
                        let m = self.nodes[x].value.get().clone();
                        let mut d = Matrix::zeros(m.rows(), m.cols());
                        for &(u, v) in edges.iter() {
                            let (u, v) = (u as usize, v as usize);
                            let d2: f32 = m
                                .row(u)
                                .iter()
                                .zip(m.row(v))
                                .map(|(&a, &b)| (a - b) * (a - b))
                                .sum();
                            if margin - d2 > 0.0 {
                                // d/da of -(a-b)^2 = -2(a-b)
                                for c in 0..m.cols() {
                                    let diff = m[(u, c)] - m[(v, c)];
                                    d[(u, c)] += g0 * -2.0 * diff;
                                    d[(v, c)] += g0 * 2.0 * diff;
                                }
                            }
                        }
                        self.accumulate(x, d);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite difference of `f` w.r.t. entry `(r, c)` of the leaf.
    fn finite_diff<F: Fn(&Matrix) -> f32>(f: F, at: &Matrix, r: usize, c: usize) -> f32 {
        let eps = 1e-2f32;
        let mut plus = at.clone();
        plus[(r, c)] += eps;
        let mut minus = at.clone();
        minus[(r, c)] -= eps;
        (f(&plus) - f(&minus)) / (2.0 * eps)
    }

    #[test]
    fn matmul_gradients_match_finite_difference() {
        let a0 = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.3]]);
        let b0 = Matrix::from_rows(&[&[1.0, 0.2], &[-0.4, 0.9]]);
        let run = |a: &Matrix, b: &Matrix| -> f32 {
            let mut g = Graph::new();
            let va = g.param(a.clone());
            let vb = g.param(b.clone());
            let c = g.matmul(va, vb);
            let s = g.sum_rows(c);
            // Reduce to scalar via sum of the row (cols may be > 1): use
            // margin-free trick: matmul with ones.
            let ones = g.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
            let out = g.matmul(s, ones);
            g.value(out).scalar()
        };
        let mut g = Graph::new();
        let va = g.param(a0.clone());
        let vb = g.param(b0.clone());
        let c = g.matmul(va, vb);
        let s = g.sum_rows(c);
        let ones = g.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
        let out = g.matmul(s, ones);
        g.backward(out);
        for r in 0..2 {
            for col in 0..2 {
                let fd = finite_diff(|a| run(a, &b0), &a0, r, col);
                assert!(
                    (g.grad(va)[(r, col)] - fd).abs() < 1e-2,
                    "dA[{r},{col}]: {} vs {fd}",
                    g.grad(va)[(r, col)]
                );
                let fd = finite_diff(|b| run(&a0, b), &b0, r, col);
                assert!(
                    (g.grad(vb)[(r, col)] - fd).abs() < 1e-2,
                    "dB[{r},{col}]: {} vs {fd}",
                    g.grad(vb)[(r, col)]
                );
            }
        }
    }

    #[test]
    fn relu_blocks_negative_gradients() {
        let mut g = Graph::new();
        let x = g.param(Matrix::from_rows(&[&[-1.0, 2.0]]));
        let y = g.relu(x);
        let ones = g.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
        let s = g.matmul(y, ones);
        g.backward(s);
        assert_eq!(g.grad(x).row(0), &[0.0, 1.0]);
    }

    #[test]
    fn agg_sum_forward_and_backward() {
        // Path 0 - 1 - 2.
        let adj = Arc::new(Adjacency::new(vec![vec![1], vec![0, 2], vec![1]]));
        let mut g = Graph::new();
        let x = g.param(Matrix::from_rows(&[&[1.0], &[10.0], &[100.0]]));
        let y = g.agg_sum(x, adj);
        assert_eq!(g.value(y).as_slice(), &[10.0, 101.0, 10.0]);
        let w = g.input(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let s = g.matmul(w, y); // scalar: y0 + 2 y1 + 3 y2
        g.backward(s);
        // ds/dx0 = coefficient of x0 in 1*y0 + 2*y1 + 3*y2 = 2 (x0 only in y1)
        // ds/dx1 = 1 + 3 = 4 ; ds/dx2 = 2.
        assert_eq!(g.grad(x).as_slice(), &[2.0, 4.0, 2.0]);
    }

    #[test]
    fn max_rows_routes_gradient_to_argmax() {
        let mut g = Graph::new();
        let x = g.param(Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 2.0]]));
        let y = g.max_rows(x);
        let ones = g.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
        let s = g.matmul(y, ones);
        assert_eq!(g.value(s).scalar(), 3.0 + 5.0);
        g.backward(s);
        assert_eq!(g.grad(x).as_slice(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn cross_entropy_decreases_toward_label() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0, 0.0]]);
        let mut g = Graph::new();
        let x = g.param(logits);
        let loss = g.softmax_cross_entropy(x, vec![1]);
        let l0 = g.value(loss).scalar();
        assert!((l0 - (3f32).ln()).abs() < 1e-5);
        g.backward(loss);
        let d = g.grad(x);
        // Gradient pushes label logit up (negative grad) and others down.
        assert!(d[(0, 1)] < 0.0);
        assert!(d[(0, 0)] > 0.0 && d[(0, 2)] > 0.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let x0 = Matrix::from_rows(&[&[0.3, -0.7, 1.2], &[0.1, 0.9, -0.5]]);
        let labels = vec![2u8, 0u8];
        let run = |m: &Matrix| -> f32 {
            let mut g = Graph::new();
            let x = g.param(m.clone());
            let loss = g.softmax_cross_entropy(x, labels.clone());
            g.value(loss).scalar()
        };
        let mut g = Graph::new();
        let x = g.param(x0.clone());
        let loss = g.softmax_cross_entropy(x, labels.clone());
        g.backward(loss);
        for r in 0..2 {
            for c in 0..3 {
                let fd = finite_diff(run, &x0, r, c);
                let an = g.grad(x)[(r, c)];
                assert!((an - fd).abs() < 1e-2, "[{r},{c}] {an} vs {fd}");
            }
        }
    }

    #[test]
    fn margin_loss_gradient_matches_finite_difference() {
        // Keep both hinge terms strictly active and away from the kink so
        // finite differences are valid.
        let x0 = Matrix::from_rows(&[&[0.2, 0.1], &[0.3, -0.2], &[-0.45, 0.4]]);
        let edges = vec![(0u32, 1u32), (1, 2)];
        let run = |m: &Matrix| -> f32 {
            let mut g = Graph::new();
            let x = g.param(m.clone());
            let loss = g.margin_pair_loss(x, edges.clone(), 1.0);
            g.value(loss).scalar()
        };
        let mut g = Graph::new();
        let x = g.param(x0.clone());
        let loss = g.margin_pair_loss(x, edges.clone(), 1.0);
        g.backward(loss);
        for r in 0..3 {
            for c in 0..2 {
                let fd = finite_diff(run, &x0, r, c);
                let an = g.grad(x)[(r, c)];
                assert!((an - fd).abs() < 2e-2, "[{r},{c}] {an} vs {fd}");
            }
        }
    }

    #[test]
    fn scale_by_scalar_gradients() {
        let mut g = Graph::new();
        let s = g.param(Matrix::from_vec(1, 1, vec![2.0]));
        let x = g.param(Matrix::from_rows(&[&[3.0, -1.0]]));
        let y = g.scale_by_scalar(x, s);
        let ones = g.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
        let out = g.matmul(y, ones); // 2 * (3 - 1) = 4
        assert_eq!(g.value(out).scalar(), 4.0);
        g.backward(out);
        assert_eq!(g.grad(s).scalar(), 2.0); // d/ds = 3 - 1
        assert_eq!(g.grad(x).as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn segment_sum_pools_per_segment() {
        let mut g = Graph::new();
        let x = g.param(Matrix::from_rows(&[&[1.0], &[2.0], &[4.0], &[8.0]]));
        let y = g.segment_sum(x, vec![0, 1, 0, 1], 2);
        assert_eq!(g.value(y).as_slice(), &[5.0, 10.0]);
        let w = g.input(Matrix::from_rows(&[&[1.0, 3.0]]));
        let s = g.matmul(w, y); // 1*seg0 + 3*seg1
        g.backward(s);
        assert_eq!(g.grad(x).as_slice(), &[1.0, 3.0, 1.0, 3.0]);
    }

    #[test]
    fn segment_max_pools_and_routes_grads() {
        let mut g = Graph::new();
        let x = g.param(Matrix::from_rows(&[&[1.0, 9.0], &[2.0, 3.0], &[5.0, 4.0]]));
        let y = g.segment_max(x, vec![0, 0, 1], 2);
        assert_eq!(g.value(y).as_slice(), &[2.0, 9.0, 5.0, 4.0]);
        let ones = g.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
        let col = g.matmul(y, ones); // 2x1
        let w = g.input(Matrix::from_rows(&[&[1.0, 1.0]]));
        let s = g.matmul(w, col);
        g.backward(s);
        assert_eq!(g.grad(x).as_slice(), &[0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn row_normalize_forward_and_gradient() {
        let x0 = Matrix::from_rows(&[&[3.0, 4.0], &[0.5, -0.2]]);
        let run = |m: &Matrix| -> f32 {
            let mut g = Graph::new();
            let x = g.param(m.clone());
            let y = g.row_l2_normalize(x);
            // Scalar: weighted sum of normalized entries.
            let w = g.input(Matrix::from_rows(&[&[1.0, 2.0]]));
            let wy = g.matmul(w, y); // (1x2)*(2x2) = 1x2
            let ones = g.input(Matrix::from_rows(&[&[1.0], &[-0.5]]));
            let s = g.matmul(wy, ones);
            g.value(s).scalar()
        };
        let mut g = Graph::new();
        let x = g.param(x0.clone());
        let y = g.row_l2_normalize(x);
        assert!((g.value(y)[(0, 0)] - 0.6).abs() < 1e-6);
        assert!((g.value(y)[(0, 1)] - 0.8).abs() < 1e-6);
        let w = g.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let wy = g.matmul(w, y);
        let ones = g.input(Matrix::from_rows(&[&[1.0], &[-0.5]]));
        let s = g.matmul(wy, ones);
        g.backward(s);
        for r in 0..2 {
            for c in 0..2 {
                let fd = finite_diff(run, &x0, r, c);
                let an = g.grad(x)[(r, c)];
                assert!((an - fd).abs() < 2e-2, "[{r},{c}] {an} vs {fd}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty segment")]
    fn segment_max_rejects_empty_segment() {
        let mut g = Graph::new();
        let x = g.param(Matrix::from_rows(&[&[1.0]]));
        let _ = g.segment_max(x, vec![0], 2);
    }

    #[test]
    fn unreachable_param_has_no_grad() {
        let mut g = Graph::new();
        let a = g.param(Matrix::from_vec(1, 1, vec![1.0]));
        let b = g.param(Matrix::from_vec(1, 1, vec![1.0]));
        let out = g.scale_const(a, 2.0);
        g.backward(out);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = g.grad(b);
        }))
        .is_err());
    }
}
