//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this local shim provides exactly the surface the workspace uses:
//! `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`
//! over integer and float ranges, and `seq::SliceRandom::shuffle`.
//!
//! The generator is xorshift64* seeded through SplitMix64 — statistically
//! solid for simulation/test workloads, deterministic per seed, and `Clone`.
//! It is **not** a cryptographic RNG.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open or inclusive range.
    /// Panics on empty ranges, matching rand 0.8 behavior.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (`0.0 <= p <= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps a raw `u64` to `[0, 1)` using the top 53 bits.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                start + u * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (xorshift64* core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 scrambles the (possibly low-entropy) seed so that
            // nearby seeds produce unrelated streams; also guarantees a
            // non-zero xorshift state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            if z == 0 {
                z = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { state: z }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Fisher–Yates shuffling for slices.
    pub trait SliceRandom {
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..6);
            assert!((-5..6).contains(&v));
            let f = rng.gen_range(0.05f64..1.0);
            assert!((0.05..1.0).contains(&f));
            let u = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} out of range");
        }
    }
}
