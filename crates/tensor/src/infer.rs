//! Tape-free inference primitives.
//!
//! The autodiff [`Graph`](crate::Graph) is the right tool for training:
//! every op allocates a fresh output matrix and records itself so
//! gradients can flow back. Inference needs none of that, and the
//! adaptive pipeline runs inference on *every* decomposition unit — so
//! this module provides the same forward arithmetic as the tape ops, but
//! writing into caller-provided scratch buffers with zero per-call
//! allocation after warmup.
//!
//! Bit-identity contract: each primitive documents the tape op it
//! mirrors and reproduces its accumulation order exactly (same
//! microkernel for GEMM via [`crate::matrix::gemm_nn`], same neighbor
//! iteration order for SpMM, same fold/scan orders for the readouts).
//! The frozen GNN engines built on top therefore produce outputs that
//! match the tape to the last ulp, which is property-tested in
//! `mpld-gnn`.

use crate::graph::Adjacency;
use std::sync::Mutex;

pub use crate::matrix::kernel_name;

/// Compressed-sparse-row adjacency: row `i`'s neighbor column indices are
/// `cols[row_ptr[i]..row_ptr[i + 1]]`, in the same order as the
/// [`Adjacency`] forward lists (so SpMM accumulates in the tape's order).
/// Unlike [`Adjacency`] no reverse lists are built — inference never
/// needs them.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    row_ptr: Vec<u32>,
    cols: Vec<u32>,
}

impl Csr {
    /// Builds a CSR view of an [`Adjacency`]'s forward lists. Since the
    /// adjacency is itself CSR-backed, this is a plain buffer clone.
    pub fn from_adjacency(adj: &Adjacency) -> Self {
        adj.fwd_csr().clone()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.row_ptr.len().saturating_sub(1)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Row `i`'s neighbor list.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.cols[self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize]
    }

    /// Resets to an empty 0-row matrix, keeping allocated capacity — for
    /// callers that rebuild a (sampled) adjacency every layer without
    /// reallocating.
    pub fn clear(&mut self) {
        self.row_ptr.clear();
        self.row_ptr.push(0);
        self.cols.clear();
    }

    /// Appends one row's neighbor indices (kept in iteration order).
    pub fn push_row(&mut self, neighbors: impl IntoIterator<Item = u32>) {
        if self.row_ptr.is_empty() {
            self.row_ptr.push(0);
        }
        self.cols.extend(neighbors);
        self.row_ptr.push(self.cols.len() as u32);
    }

    /// Largest stored column index plus one, i.e. the minimum column count
    /// this matrix is consistent with (0 when there are no entries).
    pub fn max_col_bound(&self) -> usize {
        self.cols.iter().map(|&c| c as usize + 1).max().unwrap_or(0)
    }

    /// Transpose of a square `n x n` sparse matrix: entry `(i, j)` becomes
    /// `(j, i)`. Rows are scattered in ascending source-row order, so row
    /// `j` of the result lists the sources `i` with `j ∈ row(i)` in
    /// ascending `i` — the exact order the tape's `AggSum` backward pass
    /// historically folded reverse neighbors in. Duplicate entries are
    /// preserved (consecutively, since they share a source row).
    pub fn transpose(&self) -> Csr {
        let n = self.num_rows();
        let mut row_ptr = vec![0u32; n + 1];
        for &c in &self.cols {
            row_ptr[c as usize + 1] += 1;
        }
        for j in 0..n {
            row_ptr[j + 1] += row_ptr[j];
        }
        let mut next = row_ptr.clone();
        let mut cols = vec![0u32; self.cols.len()];
        for i in 0..n {
            for &j in self.row(i) {
                let slot = next[j as usize] as usize;
                cols[slot] = i as u32;
                next[j as usize] += 1;
            }
        }
        Csr { row_ptr, cols }
    }
}

/// Incremental [`Csr`] constructor for callers that produce neighbor
/// lists row by row (e.g. batching several graphs into one block-diagonal
/// adjacency without materializing intermediate `Vec<Vec<u32>>`s).
#[derive(Debug)]
pub struct CsrBuilder {
    csr: Csr,
}

impl CsrBuilder {
    /// Starts a builder; `rows_hint` pre-sizes the row-pointer table.
    pub fn new(rows_hint: usize) -> Self {
        let mut row_ptr = Vec::with_capacity(rows_hint + 1);
        row_ptr.push(0);
        CsrBuilder {
            csr: Csr {
                row_ptr,
                cols: Vec::new(),
            },
        }
    }

    /// Appends one row's neighbor indices (kept in iteration order).
    pub fn push_row(&mut self, neighbors: impl IntoIterator<Item = u32>) {
        self.csr.push_row(neighbors);
    }

    /// Finalizes the matrix.
    pub fn finish(self) -> Csr {
        self.csr
    }
}

/// Sparse-times-dense product `out = A * X` where `A` is a [`Csr`]
/// 0/1-adjacency and `X` is row-major `n x cols`. Mirrors
/// [`Graph::agg_sum`](crate::Graph::agg_sum): output rows are formed by
/// adding neighbor rows in CSR order, columns innermost, so the result
/// is bit-identical to the tape op.
///
/// # Panics
///
/// Panics if the buffer sizes disagree with `csr.num_rows() * cols`.
pub fn spmm_into(csr: &Csr, x: &[f32], cols: usize, out: &mut [f32]) {
    let n = csr.num_rows();
    assert_eq!(x.len(), n * cols, "spmm input size mismatch");
    assert_eq!(out.len(), n * cols, "spmm output size mismatch");
    for (i, o) in out.chunks_exact_mut(cols).enumerate() {
        o.fill(0.0);
        for &j in csr.row(i) {
            let src = &x[j as usize * cols..(j as usize + 1) * cols];
            for (a, &b) in o.iter_mut().zip(src) {
                *a += b;
            }
        }
    }
}

/// Dense product `out = A * B` (`m x k` times `k x n`, all row-major),
/// dispatching to the same microkernel as [`Matrix::matmul`]
/// (`crate::matrix::gemm_nn`) so results are bit-identical to the tape.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_into(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm lhs size mismatch");
    assert_eq!(b.len(), k * n, "gemm rhs size mismatch");
    assert_eq!(out.len(), m * n, "gemm output size mismatch");
    crate::matrix::gemm_nn(m, k, n, a, b, out);
}

/// Dense product `out = Aᵀ * B` (A stored `k x m`, B `k x n`, all
/// row-major), dispatching to the same kernel as [`Matrix::matmul_tn`] so
/// results are bit-identical to the tape's MatMul backward.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_tn_into(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), k * m, "gemm_tn lhs size mismatch");
    assert_eq!(b.len(), k * n, "gemm_tn rhs size mismatch");
    assert_eq!(out.len(), m * n, "gemm_tn output size mismatch");
    crate::matrix::gemm_tn(k, m, n, a, b, out);
}

/// Dense product `out = A * Bᵀ` (A stored `m x k`, B `n x k`, all
/// row-major), dispatching to the same kernel as [`Matrix::matmul_nt`] so
/// results are bit-identical to the tape's MatMul backward.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_nt_into(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nt lhs size mismatch");
    assert_eq!(b.len(), n * k, "gemm_nt rhs size mismatch");
    assert_eq!(out.len(), m * n, "gemm_nt output size mismatch");
    crate::matrix::gemm_nt(m, k, n, a, b, out);
}

/// Element-wise `out += x` (mirrors [`Matrix::add_assign`]).
///
/// # Panics
///
/// Panics on length mismatch.
pub fn add_assign_slice(out: &mut [f32], x: &[f32]) {
    assert_eq!(out.len(), x.len(), "add size mismatch");
    for (a, &b) in out.iter_mut().zip(x) {
        *a += b;
    }
}

/// Element-wise ReLU (mirrors [`Graph::relu`](crate::Graph::relu)).
/// The branchless select keeps the same `v < 0.0` predicate as the tape
/// op (NaN and -0.0 pass through unchanged) while letting the loop
/// autovectorize.
pub fn relu_in_place(x: &mut [f32]) {
    for v in x {
        *v = if *v < 0.0 { 0.0 } else { *v };
    }
}

/// Broadcast `x[r] += bias` over the rows of a row-major `rows x cols`
/// buffer (mirrors [`Graph::add_row`](crate::Graph::add_row)).
///
/// # Panics
///
/// Panics on size mismatch.
pub fn add_row_in_place(x: &mut [f32], cols: usize, bias: &[f32]) {
    assert_eq!(bias.len(), cols, "bias width mismatch");
    assert_eq!(
        x.len() % cols.max(1),
        0,
        "buffer not a whole number of rows"
    );
    for row in x.chunks_exact_mut(cols) {
        for (a, &b) in row.iter_mut().zip(bias) {
            *a += b;
        }
    }
}

/// Segment sum readout into `out` (`num_segments x cols`), mirroring
/// [`Graph::segment_sum`](crate::Graph::segment_sum): rows are folded in
/// ascending order, columns innermost.
///
/// # Panics
///
/// Panics on size mismatch or an out-of-range segment id.
pub fn segment_sum_into(x: &[f32], cols: usize, seg: &[u32], num_segments: usize, out: &mut [f32]) {
    assert_eq!(x.len(), seg.len() * cols, "one segment id per row");
    assert_eq!(out.len(), num_segments * cols, "readout size mismatch");
    out.fill(0.0);
    // Per-row slices instead of indexed accesses: same fold order
    // (ascending rows, columns innermost) with bounds checks hoisted out
    // of the inner loop so it autovectorizes.
    for (row, &s) in x.chunks_exact(cols.max(1)).zip(seg) {
        let s = s as usize;
        assert!(s < num_segments, "segment id out of range");
        let dst = &mut out[s * cols..(s + 1) * cols];
        for (a, &b) in dst.iter_mut().zip(row) {
            *a += b;
        }
    }
}

/// Segment max readout into `out` (`num_segments x cols`), mirroring
/// [`Graph::segment_max`](crate::Graph::segment_max) (strict `>` against
/// a `NEG_INFINITY` start, rows scanned in ascending order).
///
/// # Panics
///
/// Panics on size mismatch, an out-of-range segment id, or an empty
/// segment.
pub fn segment_max_into(x: &[f32], cols: usize, seg: &[u32], num_segments: usize, out: &mut [f32]) {
    assert_eq!(x.len(), seg.len() * cols, "one segment id per row");
    assert_eq!(out.len(), num_segments * cols, "readout size mismatch");
    out.fill(f32::NEG_INFINITY);
    let mut touched = vec![false; num_segments];
    for (row, &s) in x.chunks_exact(cols.max(1)).zip(seg) {
        let s = s as usize;
        assert!(s < num_segments, "segment id out of range");
        touched[s] = true;
        let dst = &mut out[s * cols..(s + 1) * cols];
        for (a, &b) in dst.iter_mut().zip(row) {
            *a = if b > *a { b } else { *a };
        }
    }
    assert!(
        touched.iter().all(|&t| t),
        "empty segment in segment_max_into"
    );
}

/// Segment max readout that also records, per output cell, which input
/// row supplied the winning value (`arg`, `num_segments x cols`, row
/// indices as `u32`). Same scan order and strict-`>` tie-breaking as
/// [`segment_max_into`], so `out` is bit-identical to the tape's
/// `SegmentMax` forward while `arg` is exactly the routing its backward
/// pass needs.
///
/// # Panics
///
/// Panics on size mismatch, an out-of-range segment id, or an empty
/// segment (message contains "empty segment" to match the tape op).
pub fn segment_max_argmax_into(
    x: &[f32],
    cols: usize,
    seg: &[u32],
    num_segments: usize,
    out: &mut [f32],
    arg: &mut [u32],
) {
    assert_eq!(x.len(), seg.len() * cols, "one segment id per row");
    assert_eq!(out.len(), num_segments * cols, "readout size mismatch");
    assert_eq!(arg.len(), num_segments * cols, "argmax size mismatch");
    out.fill(f32::NEG_INFINITY);
    arg.fill(u32::MAX);
    for (r, &s) in seg.iter().enumerate() {
        let s = s as usize;
        assert!(s < num_segments, "segment id out of range");
        for c in 0..cols {
            if x[r * cols + c] > out[s * cols + c] {
                out[s * cols + c] = x[r * cols + c];
                arg[s * cols + c] = r as u32;
            }
        }
    }
    assert!(
        cols == 0 || arg.iter().all(|&a| a != u32::MAX),
        "empty segment in segment_max"
    );
}

/// Row-wise softmax in place, mirroring
/// [`Graph::softmax_values`](crate::Graph::softmax_values) (max-shifted
/// exp, sum in column order, then divide).
pub fn softmax_rows_in_place(x: &mut [f32], cols: usize) {
    if cols == 0 {
        return;
    }
    for row in x.chunks_exact_mut(cols) {
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut z = 0.0;
        for v in row.iter_mut() {
            let e = (*v - max).exp();
            *v = e;
            z += e;
        }
        for v in row.iter_mut() {
            *v /= z;
        }
    }
}

/// Row-wise L2 normalization in place, mirroring
/// [`Graph::row_l2_normalize`](crate::Graph::row_l2_normalize):
/// `row /= max(||row||, 1e-6)` with the norm summed in column order.
pub fn row_l2_normalize_in_place(x: &mut [f32], cols: usize) {
    if cols == 0 {
        return;
    }
    for row in x.chunks_exact_mut(cols) {
        let norm = row.iter().map(|&e| e * e).sum::<f32>().sqrt().max(1e-6);
        for v in row.iter_mut() {
            *v /= norm;
        }
    }
}

/// A free-list of reusable `Vec<f32>` buffers. `take` hands out a zeroed
/// buffer (recycling a returned one when available), `put` returns it.
/// After warmup a fixed-shape inference pass allocates nothing: every
/// buffer it needs is already in the free list.
///
/// The scratch also tracks the high-water mark of concurrently
/// checked-out bytes, which `perf_baseline` reports as the inference
/// engine's working-set size.
#[derive(Debug, Default)]
pub struct Scratch {
    free: Vec<Vec<f32>>,
    outstanding_bytes: usize,
    peak_bytes: usize,
}

impl Scratch {
    /// An empty scratch.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Checks out a zeroed buffer of `len` floats.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        self.outstanding_bytes += len * std::mem::size_of::<f32>();
        self.peak_bytes = self.peak_bytes.max(self.outstanding_bytes);
        buf
    }

    /// Checks out a buffer of `len` floats whose contents are
    /// unspecified (stale data from an earlier checkout). Every GEMM /
    /// SpMM / segment-readout `_into` kernel fully overwrites its
    /// output before reading it, so the inference hot loops use this to
    /// skip [`Scratch::take`]'s zero-fill — which is otherwise pure
    /// memset bandwidth, megabytes per routing pass.
    pub fn take_dirty(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.free.pop().unwrap_or_default();
        if buf.len() < len {
            buf.resize(len, 0.0);
        } else {
            buf.truncate(len);
        }
        self.outstanding_bytes += len * std::mem::size_of::<f32>();
        self.peak_bytes = self.peak_bytes.max(self.outstanding_bytes);
        buf
    }

    /// Returns a buffer to the free list for reuse.
    pub fn put(&mut self, buf: Vec<f32>) {
        self.outstanding_bytes = self
            .outstanding_bytes
            .saturating_sub(buf.len() * std::mem::size_of::<f32>());
        self.free.push(buf);
    }

    /// Peak bytes concurrently checked out over this scratch's lifetime.
    pub fn high_water_bytes(&self) -> usize {
        self.peak_bytes
    }
}

/// A pool manager handing out per-worker [`Scratch`] arenas so frozen
/// models can be shared across decomposition worker threads and
/// concurrent server requests: [`ScratchPool::lease`] checks an arena out
/// (creating it on first use) and the returned [`ScratchLease`] gives the
/// holder exclusive, lock-free access until it drops, at which point the
/// arena returns to the free list and its high-water mark folds into the
/// pool-wide peak. A worker that holds one lease across a whole request
/// pays the pool mutex twice per request instead of twice per forward.
///
/// [`ScratchPool::with`] is the closure-scoped convenience wrapper over a
/// single lease.
#[derive(Debug, Default)]
pub struct ScratchPool {
    inner: Mutex<PoolState>,
}

#[derive(Debug, Default)]
struct PoolState {
    free: Vec<Scratch>,
    peak_bytes: usize,
}

/// Exclusive RAII checkout of one [`Scratch`] arena from a
/// [`ScratchPool`]. Dereferences to the arena; dropping it returns the
/// arena to the pool and records its high-water mark.
#[derive(Debug)]
pub struct ScratchLease<'p> {
    pool: &'p ScratchPool,
    // Always `Some` until `drop` takes it back.
    scratch: Option<Scratch>,
}

impl std::ops::Deref for ScratchLease<'_> {
    type Target = Scratch;

    fn deref(&self) -> &Scratch {
        #[allow(clippy::expect_used)] // invariant: emptied only in drop
        self.scratch.as_ref().expect("lease holds a scratch")
    }
}

impl std::ops::DerefMut for ScratchLease<'_> {
    fn deref_mut(&mut self) -> &mut Scratch {
        #[allow(clippy::expect_used)] // invariant: emptied only in drop
        self.scratch.as_mut().expect("lease holds a scratch")
    }
}

impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        let Some(scratch) = self.scratch.take() else {
            return;
        };
        if let Ok(mut st) = self.pool.inner.lock() {
            st.peak_bytes = st.peak_bytes.max(scratch.high_water_bytes());
            st.free.push(scratch);
        }
    }
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Checks one arena out of the pool (creating it when the free list
    /// is empty). The lease holds the arena exclusively — no lock is
    /// taken between checkout and drop.
    pub fn lease(&self) -> ScratchLease<'_> {
        let scratch = match self.inner.lock() {
            Ok(mut st) => st.free.pop().unwrap_or_default(),
            Err(_) => Scratch::new(), // poisoned: degrade to a throwaway
        };
        ScratchLease {
            pool: self,
            scratch: Some(scratch),
        }
    }

    /// Runs `f` with a checked-out scratch (a single-closure lease).
    pub fn with<R>(&self, f: impl FnOnce(&mut Scratch) -> R) -> R {
        let mut lease = self.lease();
        f(&mut lease)
    }

    /// Peak high-water bytes observed across all scratches in the pool.
    pub fn high_water_bytes(&self) -> usize {
        match self.inner.lock() {
            Ok(st) => st.peak_bytes.max(
                st.free
                    .iter()
                    .map(Scratch::high_water_bytes)
                    .max()
                    .unwrap_or(0),
            ),
            Err(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, Matrix};
    use std::sync::Arc;

    fn adj(fwd: Vec<Vec<u32>>) -> Arc<Adjacency> {
        Arc::new(Adjacency::new(fwd))
    }

    #[test]
    fn spmm_matches_tape_agg_sum() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let fwd = vec![vec![1, 2], vec![], vec![0, 0, 1]];
        let a = adj(fwd.clone());
        let mut g = Graph::new();
        let xi = g.input(x.clone());
        let y = g.agg_sum(xi, Arc::clone(&a));
        let want = g.value(y).as_slice().to_vec();

        // Independent naive-loop oracle (the tape itself now runs on the
        // SpMM kernel, so the reference must not).
        let mut naive = vec![0.0f32; 6];
        for (i, ns) in fwd.iter().enumerate() {
            for &j in ns {
                for c in 0..2 {
                    naive[i * 2 + c] += x[(j as usize, c)];
                }
            }
        }
        assert_eq!(want, naive);

        let csr = Csr::from_adjacency(&a);
        let mut out = vec![0.0; 6];
        spmm_into(&csr, x.as_slice(), 2, &mut out);
        assert_eq!(out, want);
    }

    #[test]
    fn transpose_reverses_edges_and_preserves_order() {
        let mut b = CsrBuilder::new(3);
        b.push_row([1u32, 2]);
        b.push_row([]);
        b.push_row([0u32, 0, 1]);
        let csr = b.finish();
        let t = csr.transpose();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.row(0), &[2, 2]); // duplicates preserved, ascending i
        assert_eq!(t.row(1), &[0, 2]);
        assert_eq!(t.row(2), &[0]);
    }

    #[test]
    fn gemm_matches_matmul_bitwise() {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(9);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (7, 32, 64),
            (13, 64, 2),
        ] {
            let a = Matrix::glorot(m, k, &mut rng);
            let b = Matrix::glorot(k, n, &mut rng);
            let want = a.matmul(&b);
            let mut out = vec![0.0; m * n];
            gemm_into(m, k, n, a.as_slice(), b.as_slice(), &mut out);
            assert_eq!(out, want.as_slice());
        }
    }

    #[test]
    fn readouts_match_tape_segments() {
        let x = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0], &[-5.0, 6.0], &[0.5, 0.25]]);
        let seg = vec![0u32, 0, 1, 1];
        let mut g = Graph::new();
        let xi = g.input(x.clone());
        let s = g.segment_sum(xi, Arc::new(seg.clone()), 2);
        let m = g.segment_max(xi, &seg, 2);
        let (want_s, want_m) = (
            g.value(s).as_slice().to_vec(),
            g.value(m).as_slice().to_vec(),
        );

        // Independent naive oracles (the tape ops now run on these very
        // kernels, so the reference is recomputed by hand).
        let mut naive_s = vec![0.0f32; 4];
        let mut naive_m = vec![f32::NEG_INFINITY; 4];
        for (r, &s) in seg.iter().enumerate() {
            for c in 0..2 {
                naive_s[s as usize * 2 + c] += x[(r, c)];
                naive_m[s as usize * 2 + c] = naive_m[s as usize * 2 + c].max(x[(r, c)]);
            }
        }
        assert_eq!(want_s, naive_s);
        assert_eq!(want_m, naive_m);

        let mut out = vec![0.0; 4];
        segment_sum_into(x.as_slice(), 2, &seg, 2, &mut out);
        assert_eq!(out, want_s);
        segment_max_into(x.as_slice(), 2, &seg, 2, &mut out);
        assert_eq!(out, want_m);

        let mut arg = vec![0u32; 4];
        segment_max_argmax_into(x.as_slice(), 2, &seg, 2, &mut out, &mut arg);
        assert_eq!(out, want_m);
        assert_eq!(arg, vec![1, 1, 3, 2]);
    }

    #[test]
    fn softmax_and_normalize_match_tape() {
        let x = Matrix::from_rows(&[&[0.3, -1.2, 4.0], &[-0.5, -0.5, 2.5]]);
        let mut g = Graph::new();
        let xi = g.input(x.clone());
        let want_soft = g.softmax_values(xi);
        let norm = g.row_l2_normalize(xi);
        let want_norm = g.value(norm).as_slice().to_vec();

        let mut buf = x.as_slice().to_vec();
        softmax_rows_in_place(&mut buf, 3);
        assert_eq!(buf, want_soft.as_slice());
        let mut buf = x.as_slice().to_vec();
        row_l2_normalize_in_place(&mut buf, 3);
        assert_eq!(buf, want_norm);
    }

    #[test]
    fn scratch_reuses_buffers_and_tracks_high_water() {
        let mut s = Scratch::new();
        let a = s.take(8);
        let b = s.take(4);
        assert_eq!(s.high_water_bytes(), 12 * 4);
        let cap_a = a.capacity();
        s.put(a);
        s.put(b);
        let c = s.take(6); // recycled, no fresh allocation needed
        assert!(c.capacity() >= 6);
        assert!(c.iter().all(|&v| v == 0.0));
        assert!(cap_a >= 6 || c.capacity() >= 6);
        assert_eq!(s.high_water_bytes(), 12 * 4);
    }

    #[test]
    fn scratch_pool_folds_peaks() {
        let pool = ScratchPool::new();
        pool.with(|s| {
            let a = s.take(16);
            s.put(a);
        });
        assert_eq!(pool.high_water_bytes(), 64);
    }

    #[test]
    fn lease_holds_arena_exclusively_and_returns_it() {
        let pool = ScratchPool::new();
        {
            let mut lease = pool.lease();
            let a = lease.take(32);
            lease.put(a);
            // A second concurrent lease gets its own arena, not the
            // checked-out one.
            let mut other = pool.lease();
            let b = other.take(8);
            other.put(b);
        }
        // Both arenas returned; the pool-wide peak folds the larger one.
        assert_eq!(pool.high_water_bytes(), 128);
        // The free list is reused: a new lease recycles a returned arena
        // whose per-arena high-water mark is already recorded.
        let lease = pool.lease();
        assert!(lease.high_water_bytes() > 0);
    }

    #[test]
    fn lease_concurrent_leases_do_not_share_state() {
        let pool = ScratchPool::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        let mut lease = pool.lease();
                        let a = lease.take(64);
                        assert!(a.iter().all(|&v| v == 0.0));
                        lease.put(a);
                    }
                });
            }
        });
        assert_eq!(pool.high_water_bytes(), 256);
    }
}
