//! The isomorphism-free graph library and embedding-based matching
//! (Algorithm 2 and Section IV-D-1 of the paper).
//!
//! Offline, [`GraphLibrary::build`] enumerates every valid small parent
//! graph and its stitch variants, uses normalized RGCN graph embeddings to
//! skip isomorphic duplicates (`max(Lh · h) ≈ 1` ⇒ already stored), and
//! stores each new graph with its optimal ILP decomposition and node
//! embeddings.
//!
//! Online, [`GraphLibrary::lookup`] embeds the target graph, finds the
//! entry with unit dot product, derives the node-to-node mapping by
//! comparing node embeddings (falling back to exact search on ties), and
//! transfers the stored optimal coloring through the mapping — after
//! verifying the mapping really is an isomorphism, so a false embedding
//! match can never produce a wrong decomposition.

use crate::canon::{canonical_form, CanonicalForm};
use crate::enumerate::{enumerate_parent_graphs, enumerate_stitch_variants};
use crate::vf2::{find_isomorphism, full_candidates};
use mpld_gnn::RgcnClassifier;
use mpld_graph::{
    Budget, Certainty, CostBreakdown, DecomposeParams, Decomposer, Decomposition, LayoutGraph,
};
use mpld_ilp::IlpDecomposer;
use mpld_tensor::Matrix;
use std::collections::HashMap;

/// Library construction options.
#[derive(Debug, Clone, Copy)]
pub struct LibraryConfig {
    /// Largest parent (non-stitch) graph size enumerated (paper: < 7).
    pub max_parent_size: usize,
    /// Maximum nodes split per stitch variant.
    pub max_splits: usize,
    /// Hard cap on stored graph size (after splitting).
    pub max_nodes: usize,
    /// Whether to enumerate stitch variants at all.
    pub stitches: bool,
}

impl Default for LibraryConfig {
    fn default() -> Self {
        LibraryConfig {
            max_parent_size: 6,
            max_splits: 1,
            max_nodes: 7,
            stitches: true,
        }
    }
}

/// One stored graph with its embeddings and optimal solution.
#[derive(Debug, Clone)]
pub struct LibraryEntry {
    /// The stored graph.
    pub graph: LayoutGraph,
    /// L2-normalized graph embedding.
    pub embedding: Vec<f32>,
    /// Node embeddings (`n x D`), used for node-to-node mapping.
    pub node_embeddings: Matrix,
    /// Optimal coloring from the ILP decomposer.
    pub solution: Vec<u8>,
    /// Cost of `solution`.
    pub cost: CostBreakdown,
}

/// Statistics gathered during construction and lookup.
#[derive(Debug, Clone, Copy, Default)]
pub struct LibraryStats {
    /// Graphs skipped because an isomorphic entry existed.
    pub duplicates_skipped: usize,
    /// Isomorphic duplicates the embedding test failed to flag
    /// (`max(Lh · h) < 1` although an isomorphic entry existed). Must be
    /// zero — RGCN embeddings are permutation invariant, so this validates
    /// the paper's dedup rule.
    pub embedding_missed_duplicates: usize,
    /// Distinct (non-isomorphic) graphs whose embeddings collided with a
    /// stored entry. Collisions are harmless: the exact canonical check
    /// arbitrates during construction and lookups verify every mapping.
    pub embedding_collisions: usize,
}

/// The graph library (see module docs).
#[derive(Debug)]
pub struct GraphLibrary {
    entries: Vec<LibraryEntry>,
    /// Exact canonical index (ground truth behind the embedding index).
    canon_index: HashMap<CanonicalForm, usize>,
    max_nodes: usize,
    stats: LibraryStats,
}

impl GraphLibrary {
    /// Builds the library per Algorithm 2 using `embedder` for graph
    /// embeddings and the exact ILP engine for solutions.
    pub fn build(
        embedder: &RgcnClassifier,
        cfg: &LibraryConfig,
        params: &DecomposeParams,
    ) -> GraphLibrary {
        let mut lib = GraphLibrary {
            entries: Vec::new(),
            canon_index: HashMap::new(),
            max_nodes: cfg.max_nodes,
            stats: LibraryStats::default(),
        };
        let parents = enumerate_parent_graphs(cfg.max_parent_size.min(cfg.max_nodes), params.k);
        for parent in &parents {
            lib.insert_graph(embedder, params, parent.clone());
            if cfg.stitches {
                for variant in enumerate_stitch_variants(parent, cfg.max_splits, cfg.max_nodes) {
                    lib.insert_graph(embedder, params, variant);
                }
            }
        }
        lib
    }

    /// Rebuilds a library from persisted entries (e.g. loaded from the
    /// on-disk store), preserving entry order so lookups behave
    /// identically across processes. An entry whose canonical form
    /// duplicates an earlier one is skipped and counted — a persisted
    /// dump should never contain one, but a hand-edited or merged file
    /// might.
    pub fn from_entries(entries: Vec<LibraryEntry>, max_nodes: usize) -> GraphLibrary {
        let mut lib = GraphLibrary {
            entries: Vec::with_capacity(entries.len()),
            canon_index: HashMap::new(),
            max_nodes,
            stats: LibraryStats::default(),
        };
        for e in entries {
            let canon = canonical_form(&e.graph);
            if lib.canon_index.contains_key(&canon) {
                lib.stats.duplicates_skipped += 1;
                continue;
            }
            lib.canon_index.insert(canon, lib.entries.len());
            lib.entries.push(e);
        }
        lib
    }

    /// Inserts `graph` unless an isomorphic entry exists (Algorithm 2
    /// lines 7–12). Returns `true` when the graph was stored. The optimal
    /// solution is computed with the exact ILP engine.
    pub fn insert_graph(
        &mut self,
        embedder: &RgcnClassifier,
        params: &DecomposeParams,
        graph: LayoutGraph,
    ) -> bool {
        let ilp = IlpDecomposer::new();
        let canon = canonical_form(&graph);
        let embedding = normalize(embedder.graph_embedding(&graph));
        // The paper's dedup: max dot with stored embeddings == 1.
        let embedding_dup = self
            .entries
            .iter()
            .any(|e| dot(&e.embedding, &embedding) > 1.0 - 1e-5);
        let exact_dup = self.canon_index.contains_key(&canon);
        if exact_dup && !embedding_dup {
            self.stats.embedding_missed_duplicates += 1;
        }
        if embedding_dup && !exact_dup {
            self.stats.embedding_collisions += 1;
        }
        if exact_dup {
            self.stats.duplicates_skipped += 1;
            return false;
        }
        let node_embeddings = embedder.node_embeddings(&graph);
        // Library solutions must be certified optimal, so the offline build
        // always runs the exact engine to completion.
        #[allow(clippy::expect_used)] // ILP serves every k the enumerator emits
        let d = ilp
            .decompose(&graph, params, &Budget::unlimited())
            .expect("exact ILP on an unlimited budget");
        self.canon_index.insert(canon, self.entries.len());
        self.entries.push(LibraryEntry {
            graph,
            embedding,
            node_embeddings,
            solution: d.coloring,
            cost: d.cost,
        });
        true
    }

    /// Number of stored graphs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored entries.
    pub fn entries(&self) -> &[LibraryEntry] {
        &self.entries
    }

    /// Test-only corruption of a stored solution: overwrites the coloring
    /// with a monochromatic one while leaving the stored cost untouched,
    /// exactly what a bit-rotted or wrongly-transferred entry looks like
    /// to the lookup re-verification.
    #[doc(hidden)]
    pub fn corrupt_entry_solution_for_tests(&mut self, idx: usize) {
        for c in &mut self.entries[idx].solution {
            *c = 0;
        }
    }

    /// Construction/lookup statistics.
    pub fn stats(&self) -> LibraryStats {
        self.stats
    }

    /// The size cap; larger graphs are never matched.
    pub fn max_nodes(&self) -> usize {
        self.max_nodes
    }

    /// Whether any stored entry has the same node/conflict/stitch counts
    /// as `graph` — the structural prefilter of
    /// [`GraphLibrary::lookup_with_embeddings`] without the embedding
    /// test. A graph with no size-compatible entry can never match no
    /// matter what its embeddings are, so a routing tier may safely feed
    /// such graphs reduced-precision embeddings without risking a changed
    /// lookup outcome.
    pub fn has_size_compatible(&self, graph: &LayoutGraph) -> bool {
        graph.num_nodes() > 0
            && graph.num_nodes() <= self.max_nodes
            && self.entries.iter().any(|e| {
                e.graph.num_nodes() == graph.num_nodes()
                    && e.graph.conflict_edges().len() == graph.conflict_edges().len()
                    && e.graph.stitch_edges().len() == graph.stitch_edges().len()
            })
    }

    /// Attempts to decompose `graph` by matching it against the library.
    ///
    /// Returns the transferred optimal decomposition, or `None` when the
    /// graph is too large, not in the library, or the mapping could not be
    /// verified.
    pub fn lookup(&self, embedder: &RgcnClassifier, graph: &LayoutGraph) -> Option<Decomposition> {
        if graph.num_nodes() == 0 || graph.num_nodes() > self.max_nodes {
            return None;
        }
        let h = embedder.graph_embedding(graph);
        let u = embedder.node_embeddings(graph);
        self.lookup_with_embeddings(graph, &h, &u)
    }

    /// Like [`GraphLibrary::lookup`], but with the graph and node
    /// embeddings already computed (e.g. by batched inference). The graph
    /// embedding need not be normalized.
    pub fn lookup_with_embeddings(
        &self,
        graph: &LayoutGraph,
        graph_embedding: &[f32],
        node_embeddings: &Matrix,
    ) -> Option<Decomposition> {
        if graph.num_nodes() == 0 || graph.num_nodes() > self.max_nodes {
            return None;
        }
        let h = normalize(graph_embedding.to_vec());
        // arg max over stored embeddings (Eq. 10).
        let mut candidates: Vec<usize> = (0..self.entries.len())
            .filter(|&i| dot(&self.entries[i].embedding, &h) > 1.0 - 1e-4)
            .collect();
        // Cheap structural prefilter.
        candidates.retain(|&i| {
            let e = &self.entries[i];
            e.graph.num_nodes() == graph.num_nodes()
                && e.graph.conflict_edges().len() == graph.conflict_edges().len()
                && e.graph.stitch_edges().len() == graph.stitch_edges().len()
        });
        if candidates.is_empty() {
            return None;
        }
        let u = node_embeddings;
        for &i in &candidates {
            let entry = &self.entries[i];
            // Candidate images per node by embedding proximity (Eq. 11).
            let mut lists: Vec<Vec<u32>> = Vec::with_capacity(graph.num_nodes());
            let mut degenerate = false;
            for j in 0..graph.num_nodes() {
                let row = u.row(j);
                let scale = 1.0 + row.iter().map(|x| x.abs()).sum::<f32>();
                let mut cand = Vec::new();
                for k in 0..entry.graph.num_nodes() {
                    let dist: f32 = row
                        .iter()
                        .zip(entry.node_embeddings.row(k))
                        .map(|(a, b)| (a - b).abs())
                        .sum();
                    if dist < 1e-3 * scale {
                        cand.push(k as u32);
                    }
                }
                if cand.is_empty() {
                    degenerate = true;
                    break;
                }
                lists.push(cand);
            }
            let mapping = if degenerate {
                find_isomorphism(graph, &entry.graph, &full_candidates(graph, &entry.graph))
            } else {
                find_isomorphism(graph, &entry.graph, &lists).or_else(|| {
                    find_isomorphism(graph, &entry.graph, &full_candidates(graph, &entry.graph))
                })
            };
            if let Some(m) = mapping {
                // Transfer the stored solution (Eq. 12). A stored solution
                // whose length disagrees with its graph (a corrupt entry)
                // must surface as an error, not index out of bounds, so the
                // transfer goes through the checked constructor.
                let coloring: Option<Vec<u8>> = (0..graph.num_nodes())
                    .map(|j| entry.solution.get(m[j] as usize).copied())
                    .collect();
                let Some(coloring) = coloring else { continue };
                match Decomposition::try_from_coloring(graph, coloring, 0.1) {
                    Ok(d) => {
                        // Re-verification: a corrupt stored solution (or a
                        // wrong mapping) transfers to a coloring whose
                        // evaluated cost disagrees with the stored optimum.
                        // Reject it so the caller falls through to a fresh
                        // solve instead of propagating a wrong coloring.
                        if d.cost != entry.cost {
                            continue;
                        }
                        #[cfg_attr(not(feature = "failpoints"), allow(unused_mut))]
                        let mut d = d.with_certainty(Certainty::Certified);
                        #[cfg(feature = "failpoints")]
                        {
                            // Corrupt *after* re-verification: the stale
                            // claimed cost is exactly what the framework's
                            // independent audit must catch.
                            let k = (1 + d.coloring.iter().copied().max().unwrap_or(0)).max(3);
                            mpld_graph::failpoints::corrupt_coloring(
                                "matching.transfer",
                                &mut d.coloring,
                                k,
                            );
                        }
                        return Some(d);
                    }
                    Err(_) => continue,
                }
            }
        }
        None
    }
}

fn normalize(mut v: Vec<f32>) -> Vec<f32> {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpld_ilp::brute_force;
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn small_library() -> (GraphLibrary, RgcnClassifier) {
        let embedder = RgcnClassifier::selector(0xAB);
        let cfg = LibraryConfig {
            max_parent_size: 5,
            max_splits: 1,
            max_nodes: 6,
            stitches: true,
        };
        let lib = GraphLibrary::build(&embedder, &cfg, &DecomposeParams::tpl());
        (lib, embedder)
    }

    #[test]
    fn library_contains_parents_and_variants() {
        let (lib, _) = small_library();
        // 4 parents (K4 + three 5-node graphs) plus stitch variants.
        let parents = lib
            .entries()
            .iter()
            .filter(|e| !e.graph.has_stitches())
            .count();
        assert_eq!(parents, 4);
        assert!(lib.len() > parents);
    }

    #[test]
    fn solutions_are_optimal() {
        let (lib, _) = small_library();
        let p = DecomposeParams::tpl();
        for e in lib.entries().iter().take(20) {
            let bf = brute_force(&e.graph, &p);
            assert_eq!(e.cost.value(0.1), bf.cost.value(0.1));
        }
    }

    #[test]
    fn embedding_never_misses_a_duplicate() {
        let (mut lib, embedder) = small_library();
        // Permutation invariance: every isomorphic duplicate is flagged.
        assert_eq!(lib.stats().embedding_missed_duplicates, 0);
        // Re-inserting a relabeled copy of a stored graph must be skipped.
        let e = lib.entries()[0].graph.clone();
        let n = e.num_nodes() as u32;
        let relabel: Vec<u32> = (0..n).map(|v| (v + 1) % n).collect();
        let ce = e
            .conflict_edges()
            .iter()
            .map(|&(a, b)| (relabel[a as usize], relabel[b as usize]))
            .collect();
        let g = LayoutGraph::homogeneous(e.num_nodes(), ce).expect("relabeled copy");
        let before = lib.len();
        assert!(!lib.insert_graph(&embedder, &DecomposeParams::tpl(), g));
        assert_eq!(lib.len(), before);
        assert_eq!(lib.stats().duplicates_skipped, 1);
        assert_eq!(lib.stats().embedding_missed_duplicates, 0);
    }

    #[test]
    fn lookup_matches_relabeled_entries() {
        let (lib, embedder) = small_library();
        let mut rng = SmallRng::seed_from_u64(17);
        let mut matched = 0;
        for e in lib.entries().iter().take(15) {
            // Relabel the stored graph randomly and look it up.
            let n = e.graph.num_nodes();
            let mut relabel: Vec<u32> = (0..n as u32).collect();
            relabel.shuffle(&mut rng);
            let feat: Vec<u32> = {
                // Features must follow stitch components: remap densely.
                let mut feats = vec![0u32; n];
                for v in 0..n {
                    feats[relabel[v] as usize] = e.graph.feature_of(v as u32);
                }
                feats
            };
            let ce: Vec<(u32, u32)> = e
                .graph
                .conflict_edges()
                .iter()
                .map(|&(a, b)| (relabel[a as usize], relabel[b as usize]))
                .collect();
            let se: Vec<(u32, u32)> = e
                .graph
                .stitch_edges()
                .iter()
                .map(|&(a, b)| (relabel[a as usize], relabel[b as usize]))
                .collect();
            let g = LayoutGraph::new(feat, ce, se).expect("relabeling is valid");
            let d = lib
                .lookup(&embedder, &g)
                .expect("isomorphic entry must match");
            assert_eq!(d.cost, e.cost);
            // The transferred coloring must be valid for g.
            assert_eq!(g.evaluate(&d.coloring, 0.1), e.cost);
            matched += 1;
        }
        assert_eq!(matched, 15);
    }

    #[test]
    fn corrupted_transfer_is_rejected_and_falls_through_to_a_fresh_solve() {
        use mpld_graph::{Budget, Decomposer};
        let (mut lib, embedder) = small_library();
        let g = lib.entries()[0].graph.clone();
        // Sanity: the healthy entry matches its own graph.
        assert!(lib.lookup(&embedder, &g).is_some());
        // Corrupt the stored canonical solution (color flipped, stored
        // cost untouched): the transferred coloring now evaluates to a
        // cost disagreeing with the claimed optimum, so re-verification
        // must reject the hit instead of propagating a wrong coloring.
        lib.corrupt_entry_solution_for_tests(0);
        assert!(
            lib.lookup(&embedder, &g).is_none(),
            "corrupted transfer must be rejected by cost re-verification"
        );
        // The adaptive framework treats the miss as any other miss: a
        // fresh exact solve still recovers the true optimum.
        let fresh = mpld_ilp::IlpDecomposer::new()
            .decompose(&g, &DecomposeParams::tpl(), &Budget::unlimited())
            .expect("fresh solve succeeds");
        assert_eq!(fresh.cost, lib.entries()[0].cost);
    }

    #[test]
    fn lookup_rejects_unknown_graphs() {
        let (lib, embedder) = small_library();
        // A 4-cycle: min degree 2 < 3, never enumerated.
        let g = LayoutGraph::homogeneous(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert!(lib.lookup(&embedder, &g).is_none());
    }

    #[test]
    fn lookup_respects_size_cap() {
        let (lib, embedder) = small_library();
        let n = lib.max_nodes() + 1;
        let edges = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let g = LayoutGraph::homogeneous(n, edges).unwrap();
        assert!(lib.lookup(&embedder, &g).is_none());
    }
}
