//! Layout graph model for multiple patterning layout decomposition (MPLD).
//!
//! The MPLD problem is a variation of graph coloring over a *heterogeneous*
//! layout graph whose nodes are (sub)features and whose edges are of two
//! kinds: **conflict** edges between features closer than the minimum
//! coloring distance, and **stitch** edges between subfeatures of one
//! feature split by a stitch candidate. The objective (Eq. 1 of the paper)
//! minimizes `conflicts + alpha * stitches` over all k-colorings.
//!
//! This crate provides:
//!
//! - [`LayoutGraph`] — the heterogeneous graph with its node → parent
//!   feature map and validated edge sets;
//! - [`Coloring`] and [`CostBreakdown`] with the exact paper cost function;
//! - [`Decomposer`] — the trait every decomposition engine in the workspace
//!   implements;
//! - [`audit`] — independent re-verification of any decomposition against
//!   the raw conflict/stitch edges (and, behind the `failpoints` feature,
//!   [`failpoints`] — deterministic fault injection for chaos tests);
//! - [`simplify`] — the OpenMPL-style simplification pipeline (independent
//!   component computation, hide-small-degree, biconnected decomposition)
//!   together with sound color recovery.
//!
//! # Example
//!
//! ```
//! use mpld_graph::{CostBreakdown, LayoutGraph};
//!
//! // A triangle of three features: 3-colorable with zero cost.
//! let g = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
//! let coloring = vec![0, 1, 2];
//! let cost = g.evaluate(&coloring, 0.1);
//! assert_eq!(cost, CostBreakdown { conflicts: 0, stitches: 0 });
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod audit;
mod bicc;
mod budget;
mod coloring;
mod decomposer;
mod error;
#[cfg(feature = "failpoints")]
pub mod failpoints;
mod hetero;
mod precolor;
pub mod simplify;

pub use audit::{audit_coloring, audit_decomposition, audit_with_precoloring, AuditError};
pub use bicc::{biconnected_components, BlockCutTree};
pub use budget::{Budget, BudgetGauge, CancelToken, Clock, MockClock, SystemClock};
pub use coloring::{Coloring, CostBreakdown};
pub use decomposer::{greedy_coloring, Certainty, DecomposeParams, Decomposer, Decomposition};
pub use error::MpldError;
pub use hetero::{EdgeKind, GraphError, LayoutGraph, NodeId};
pub use precolor::{apply_precoloring, Precoloring, PrecoloringMap};

/// Default relative weight of a stitch versus a conflict (the paper and all
/// prior TPL work set `alpha = 0.1`).
pub const DEFAULT_ALPHA: f64 = 0.1;

/// Default number of masks (triple patterning).
pub const DEFAULT_MASKS: u8 = 3;
