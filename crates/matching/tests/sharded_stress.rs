//! Threaded stress test for the sharded cross-request graph map
//! (`ShardedGraphMap`): N threads hammer a mix of identical and
//! isomorphic-but-structurally-different unit graphs and the test
//! asserts no insert is lost, only equality-verified hits are served,
//! and the surviving entries are exactly what a serial run produces.

use mpld_graph::LayoutGraph;
use mpld_matching::{graphs_identical, ShardedGraphMap};
use std::sync::Arc;

/// A small population of unit-graph shapes, several of which are
/// isomorphic to each other without being structurally identical (same
/// shape, different node labeling) — the case the fingerprint bucket
/// alone cannot distinguish and the equality check must.
fn population() -> Vec<LayoutGraph> {
    vec![
        // Three pairwise-isomorphic 3-paths under different labelings.
        LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2)]).unwrap(),
        LayoutGraph::homogeneous(3, vec![(0, 2), (1, 2)]).unwrap(),
        LayoutGraph::homogeneous(3, vec![(0, 1), (0, 2)]).unwrap(),
        // Two isomorphic 4-cycles.
        LayoutGraph::homogeneous(4, vec![(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap(),
        LayoutGraph::homogeneous(4, vec![(0, 2), (1, 2), (1, 3), (0, 3)]).unwrap(),
        // Two isomorphic perfect matchings on 4 nodes.
        LayoutGraph::homogeneous(4, vec![(0, 1), (2, 3)]).unwrap(),
        LayoutGraph::homogeneous(4, vec![(0, 2), (1, 3)]).unwrap(),
        // A triangle and a star, plus a singleton.
        LayoutGraph::homogeneous(3, vec![(0, 1), (0, 2), (1, 2)]).unwrap(),
        LayoutGraph::homogeneous(4, vec![(0, 1), (0, 2), (0, 3)]).unwrap(),
        LayoutGraph::homogeneous(1, vec![]).unwrap(),
    ]
}

/// The value each thread publishes for population graph `gi`: keyed by
/// the graph index so a cross-graph mixup (an unverified hit) is
/// immediately visible as a wrong value.
fn value_for(gi: usize) -> u64 {
    0xA000 + gi as u64
}

#[test]
fn threaded_inserts_are_never_lost_and_hits_are_equality_verified() {
    let graphs = Arc::new(population());
    let map: Arc<ShardedGraphMap<u64>> = Arc::new(ShardedGraphMap::new(4));
    let threads = 8;
    let rounds = 200;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let graphs = Arc::clone(&graphs);
            let map = Arc::clone(&map);
            scope.spawn(move || {
                for r in 0..rounds {
                    // Each thread walks the population at its own phase so
                    // identical graphs are hammered concurrently from
                    // different threads in different orders.
                    let gi = (r + t * 3) % graphs.len();
                    let g = &graphs[gi];
                    match map.get(g) {
                        // An equality-verified hit must carry the value
                        // of *this* structure class — an isomorphic but
                        // structurally different graph's value showing up
                        // here would mean an unverified fingerprint hit.
                        Some(v) => assert_eq!(v, value_for(gi)),
                        None => {
                            let stored = map.insert(g, value_for(gi));
                            assert_eq!(stored, value_for(gi));
                        }
                    }
                }
            });
        }
    });

    // No lost inserts: every structure class is present with its own
    // value, and no spurious extra entries exist.
    assert_eq!(map.len(), graphs.len());
    for (gi, g) in graphs.iter().enumerate() {
        assert_eq!(
            map.get(g),
            Some(value_for(gi)),
            "lost insert for graph {gi}"
        );
    }

    // Digest identical to the serial run: a fresh map populated serially
    // holds exactly the same (graph, value) association.
    let serial: ShardedGraphMap<u64> = ShardedGraphMap::new(4);
    for (gi, g) in graphs.iter().enumerate() {
        serial.insert(g, value_for(gi));
    }
    for g in graphs.iter() {
        assert_eq!(map.get(g), serial.get(g));
    }

    let stats = map.stats();
    assert_eq!(stats.entries, graphs.len());
    // Every get was either a verified hit or an honest miss.
    assert!(stats.hits + stats.misses >= threads * rounds);
}

#[test]
fn racing_writers_on_one_graph_converge_on_the_first_value() {
    let g = LayoutGraph::homogeneous(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
    let map: Arc<ShardedGraphMap<usize>> = Arc::new(ShardedGraphMap::new(2));
    let winners: Vec<usize> = std::thread::scope(|scope| {
        (0..8)
            .map(|t| {
                let map = Arc::clone(&map);
                let g = g.clone();
                scope.spawn(move || map.insert(&g, t))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    // Exactly one value won and every racer observed it.
    let first = winners[0];
    assert!(winners.iter().all(|&w| w == first));
    assert_eq!(map.get(&g), Some(first));
    assert_eq!(map.len(), 1);
}

#[test]
fn isomorphic_population_is_genuinely_unequal() {
    // Sanity guard for the test itself: the isomorphic pairs above must
    // not be structurally identical, or the stress test would not be
    // exercising the equality verification at all.
    let graphs = population();
    for (i, a) in graphs.iter().enumerate() {
        for b in graphs.iter().skip(i + 1) {
            assert!(!graphs_identical(a, b));
        }
    }
}
