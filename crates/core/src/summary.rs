//! Machine-readable run summaries: the one JSON object shared by the
//! CLI's `--json` output and the server's final response line, so a
//! replayed CLI run and a served request can be compared field by field.
//!
//! The format is a single-line JSON object with globally unique keys
//! (nested sections never reuse a key name), written and parsed by the
//! same hand-rolled helpers as the checkpoint journal — no JSON
//! dependency, and `parse(to_json(s)) == s` round-trips exactly
//! (floats are emitted with enough precision to survive the trip).

use crate::checkpoint::{field, json_string};
use crate::framework::AdaptiveResult;
use mpld_tensor::Precision;

/// Flattened, serializable summary of one adaptive decomposition run
/// (routing usage, budget outcomes, inference statistics, audit/fault
/// counts). Constructed from an [`AdaptiveResult`] via
/// [`RunSummary::from_result`]; serialized with [`RunSummary::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Layout name the run decomposed.
    pub layout: String,
    /// Unit-graph count of the prepared layout.
    pub units: usize,
    /// ILP/EC-tail worker threads the run was configured with.
    pub threads: usize,
    /// ColorGNN RNG seed, when one was set.
    pub seed: Option<u64>,
    /// Conflicting feature pairs of the assembled decomposition.
    pub conflicts: u32,
    /// Activated stitches of the assembled decomposition.
    pub stitches: u32,
    /// Scalar objective `conflicts + alpha * stitches`.
    pub objective: f64,
    /// Wall-clock decomposition time in milliseconds.
    pub decompose_ms: f64,
    /// Units resolved by audited library matching.
    pub matching: usize,
    /// Units resolved by the batched ColorGNN.
    pub colorgnn: usize,
    /// Units resolved by the EC engine.
    pub ec: usize,
    /// Units resolved by the exact ILP.
    pub ilp: usize,
    /// ColorGNN guard failures that fell through to the exact tail.
    pub colorgnn_fallbacks: usize,
    /// Isomorphic-tail-unit memo transfers (parallel path) or
    /// solution-cache hits (engine path).
    pub memo_hits: usize,
    /// Routing-inference precision.
    pub precision: Precision,
    /// In-request embedding-memo dedup hits.
    pub dedup_hits: usize,
    /// Representatives served from the engine's cross-request routing
    /// memo (always zero on the per-request CLI paths).
    pub routing_memo_hits: usize,
    /// Representatives that ran a fresh routing forward pass.
    pub units_inferred: usize,
    /// Representatives whose routing ran on the quantized planes.
    pub quantized_units: usize,
    /// Library-eligible representatives pinned to the f32 lane.
    pub pinned_f32: usize,
    /// Quantized scores re-inferred at f32 by the trust gate.
    pub f32_fallbacks: usize,
    /// Units with an optimality certificate.
    pub certified: usize,
    /// Units resolved heuristically.
    pub heuristic: usize,
    /// Units whose search was cut short by the budget.
    pub budget_exhausted: usize,
    /// Units that fell back to a cheaper engine on budget expiry.
    pub budget_fallbacks: usize,
    /// Units quarantined with a greedy-fallback coloring.
    pub quarantined: usize,
    /// Units where the audit rejected at least one candidate result.
    pub audit_rejections: usize,
    /// Tail units restored from a checkpoint journal.
    pub resumed_units: usize,
    /// Tiled-mode counters; `None` for the monolithic paths.
    pub tiled: Option<TiledRunSummary>,
}

/// The tiled-mode slice of a [`RunSummary`] (present only when the run
/// went through the tiler; the parity contract keeps every other field
/// identical to the non-tiled run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TiledRunSummary {
    /// Tiles in the grid.
    pub tiles: usize,
    /// Boundary subgraphs re-solved whole (units spanning home tiles).
    pub boundary_resolves: usize,
}

impl RunSummary {
    /// Builds the summary of one finished run. `alpha` comes from the
    /// run's parameters; `threads`/`seed` echo the caller's
    /// configuration (they are not recoverable from the result).
    pub fn from_result(
        layout: &str,
        r: &AdaptiveResult,
        alpha: f64,
        threads: usize,
        seed: Option<u64>,
    ) -> Self {
        Self {
            layout: layout.to_string(),
            units: r.unit_engines.len(),
            threads,
            seed,
            conflicts: r.pipeline.cost.conflicts,
            stitches: r.pipeline.cost.stitches,
            objective: r.pipeline.cost.value(alpha),
            decompose_ms: r.pipeline.decompose_time.as_secs_f64() * 1e3,
            matching: r.usage.matching,
            colorgnn: r.usage.colorgnn,
            ec: r.usage.ec,
            ilp: r.usage.ilp,
            colorgnn_fallbacks: r.usage.colorgnn_fallbacks,
            memo_hits: r.memo_hits,
            precision: r.inference.precision,
            dedup_hits: r.inference.memo_hits,
            routing_memo_hits: r.inference.shared_memo_hits,
            units_inferred: r.inference.units_inferred,
            quantized_units: r.inference.quantized_units,
            pinned_f32: r.inference.pinned_f32,
            f32_fallbacks: r.inference.f32_fallbacks,
            certified: r.budget.certified,
            heuristic: r.budget.heuristic,
            budget_exhausted: r.budget.budget_exhausted,
            budget_fallbacks: r.budget.budget_fallbacks,
            quarantined: r.budget.quarantined,
            audit_rejections: r.budget.audit_rejections,
            resumed_units: r.resumed_units,
            tiled: None,
        }
    }

    /// Serializes to one line of JSON (no trailing newline).
    pub fn to_json(&self) -> String {
        let seed = match self.seed {
            Some(s) => s.to_string(),
            None => "null".to_string(),
        };
        let tiled = match self.tiled {
            Some(t) => format!(
                ",\"tiles\":{},\"boundary_resolves\":{}",
                t.tiles, t.boundary_resolves
            ),
            None => String::new(),
        };
        format!(
            concat!(
                "{{\"layout\":{},\"units\":{},\"threads\":{},\"seed\":{},",
                "\"cost\":{{\"conflicts\":{},\"stitches\":{},\"objective\":{}}},",
                "\"decompose_ms\":{},",
                "\"usage\":{{\"matching\":{},\"colorgnn\":{},\"ec\":{},\"ilp\":{},",
                "\"colorgnn_fallbacks\":{},\"memo_hits\":{}}},",
                "\"inference\":{{\"precision\":\"{}\",\"dedup_hits\":{},",
                "\"routing_memo_hits\":{},\"units_inferred\":{},\"quantized_units\":{},",
                "\"pinned_f32\":{},\"f32_fallbacks\":{}}},",
                "\"budget\":{{\"certified\":{},\"heuristic\":{},\"budget_exhausted\":{},",
                "\"budget_fallbacks\":{},\"quarantined\":{},\"audit_rejections\":{}}},",
                "\"resumed_units\":{}{}}}"
            ),
            json_string(&self.layout),
            self.units,
            self.threads,
            seed,
            self.conflicts,
            self.stitches,
            float(self.objective),
            float(self.decompose_ms),
            self.matching,
            self.colorgnn,
            self.ec,
            self.ilp,
            self.colorgnn_fallbacks,
            self.memo_hits,
            self.precision,
            self.dedup_hits,
            self.routing_memo_hits,
            self.units_inferred,
            self.quantized_units,
            self.pinned_f32,
            self.f32_fallbacks,
            self.certified,
            self.heuristic,
            self.budget_exhausted,
            self.budget_fallbacks,
            self.quarantined,
            self.audit_rejections,
            self.resumed_units,
            tiled,
        )
    }

    /// Parses a line produced by [`RunSummary::to_json`]. Key lookup is
    /// global (every key is unique across the nested sections), so the
    /// parser tolerates reordered or additional fields.
    pub fn parse(line: &str) -> Option<Self> {
        let seed = match field(line, "seed")? {
            "null" => None,
            s => Some(s.parse().ok()?),
        };
        Some(Self {
            layout: field(line, "layout")?.to_string(),
            units: num(line, "units")?,
            threads: num(line, "threads")?,
            seed,
            conflicts: num(line, "conflicts")?,
            stitches: num(line, "stitches")?,
            objective: field(line, "objective")?.parse().ok()?,
            decompose_ms: field(line, "decompose_ms")?.parse().ok()?,
            matching: num(line, "matching")?,
            colorgnn: num(line, "colorgnn")?,
            ec: num(line, "ec")?,
            ilp: num(line, "ilp")?,
            colorgnn_fallbacks: num(line, "colorgnn_fallbacks")?,
            memo_hits: num(line, "memo_hits")?,
            precision: Precision::parse(field(line, "precision")?)?,
            dedup_hits: num(line, "dedup_hits")?,
            routing_memo_hits: num(line, "routing_memo_hits")?,
            units_inferred: num(line, "units_inferred")?,
            quantized_units: num(line, "quantized_units")?,
            pinned_f32: num(line, "pinned_f32")?,
            f32_fallbacks: num(line, "f32_fallbacks")?,
            certified: num(line, "certified")?,
            heuristic: num(line, "heuristic")?,
            budget_exhausted: num(line, "budget_exhausted")?,
            budget_fallbacks: num(line, "budget_fallbacks")?,
            quarantined: num(line, "quarantined")?,
            audit_rejections: num(line, "audit_rejections")?,
            resumed_units: num(line, "resumed_units")?,
            // Optional tiled section: absent on monolithic runs (and on
            // lines written before tiled mode existed).
            tiled: num(line, "tiles").map(|tiles| TiledRunSummary {
                tiles,
                boundary_resolves: num(line, "boundary_resolves").unwrap_or(0),
            }),
        })
    }
}

/// Emits a float that parses back to the same value (`{:?}` is Rust's
/// shortest round-trip representation) and is still valid JSON for the
/// finite values a run summary contains.
fn float(v: f64) -> String {
    format!("{v:?}")
}

fn num<T: std::str::FromStr>(line: &str, key: &str) -> Option<T> {
    field(line, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunSummary {
        RunSummary {
            layout: "C432".into(),
            units: 44,
            threads: 2,
            seed: Some(0xBEEF),
            conflicts: 1,
            stitches: 3,
            objective: 1.3,
            decompose_ms: 12.625,
            matching: 30,
            colorgnn: 5,
            ec: 4,
            ilp: 5,
            colorgnn_fallbacks: 1,
            memo_hits: 2,
            precision: Precision::F32,
            dedup_hits: 11,
            routing_memo_hits: 0,
            units_inferred: 33,
            quantized_units: 0,
            pinned_f32: 0,
            f32_fallbacks: 0,
            certified: 40,
            heuristic: 4,
            budget_exhausted: 0,
            budget_fallbacks: 0,
            quarantined: 0,
            audit_rejections: 0,
            resumed_units: 0,
            tiled: None,
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let s = sample();
        let parsed = RunSummary::parse(&s.to_json()).expect("parses");
        assert_eq!(parsed, s);
    }

    #[test]
    fn null_seed_round_trips() {
        let mut s = sample();
        s.seed = None;
        assert!(s.to_json().contains("\"seed\":null"));
        assert_eq!(RunSummary::parse(&s.to_json()).expect("parses"), s);
    }

    #[test]
    fn tiled_section_round_trips_and_stays_optional() {
        let mut s = sample();
        assert!(!s.to_json().contains("tiles"));
        s.tiled = Some(TiledRunSummary {
            tiles: 42,
            boundary_resolves: 7,
        });
        let json = s.to_json();
        assert!(json.contains("\"tiles\":42"));
        assert_eq!(RunSummary::parse(&json).expect("parses"), s);
    }

    #[test]
    fn awkward_floats_survive() {
        let mut s = sample();
        s.objective = 0.30000000000000004; // classic non-representable sum
        s.decompose_ms = 1e-7;
        assert_eq!(RunSummary::parse(&s.to_json()).expect("parses"), s);
    }

    #[test]
    fn layout_names_are_escaped() {
        let mut s = sample();
        s.layout = "we\"ird\\name".into();
        let json = s.to_json();
        // The escaped name must not break the object structure…
        assert!(json.ends_with('}'));
        // …and the simple scan-based parser recovers the prefix up to the
        // first quote (full unescaping is out of scope for names that the
        // benchmark suite never produces).
        assert!(RunSummary::parse(&json).is_some());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(RunSummary::parse("{}").is_none());
        assert!(RunSummary::parse("not json").is_none());
    }
}
