//! Write-behind appending: records buffer in memory and hit the disk in
//! batches with a single `fsync` per batch, so the solve path never
//! blocks on durability. A `kill -9` between batches loses at most the
//! buffered tail plus one torn line — exactly what the loader's
//! torn-tail rule skips.

use crate::format::{render_lib, render_lib_done, render_solve, StoreKey, StoredSolve};
use crate::reader::{load, LoadReport, StoreLoad};
use mpld_matching::LibraryEntry;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Records buffered before a batched write + `sync_data`.
const FLUSH_EVERY: usize = 32;

/// Size/entry bounds for a long-lived store. `None` means unbounded.
/// Caps apply to appended solve records; the library dump (bounded by
/// construction) is always written.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCaps {
    /// Maximum solve records the file may hold.
    pub max_entries: Option<usize>,
    /// Maximum file size in bytes.
    pub max_bytes: Option<u64>,
}

/// Counters for one [`StoreWriter`]'s lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriterStats {
    /// Records accepted for append.
    pub appended: u64,
    /// Records dropped by the size/entry caps.
    pub dropped: u64,
    /// Batched write+fsync cycles completed.
    pub flushes: u64,
    /// Append batches lost to I/O errors (best-effort persistence).
    pub io_errors: u64,
    /// Solve records the file holds (loaded + appended).
    pub entries: u64,
    /// Approximate file size in bytes.
    pub bytes: u64,
}

struct Inner {
    file: File,
    pending: Vec<u8>,
    pending_records: usize,
    entries: u64,
    bytes: u64,
}

/// Thread-safe append handle for one store file.
///
/// Persistence is best-effort by design: an I/O failure drops the
/// pending batch and bumps `io_errors` — correctness never depends on a
/// record reaching disk, only warmth does.
pub struct StoreWriter {
    inner: Mutex<Inner>,
    caps: StoreCaps,
    appended: AtomicU64,
    dropped: AtomicU64,
    flushes: AtomicU64,
    io_errors: AtomicU64,
    path: PathBuf,
}

impl StoreWriter {
    fn new(file: File, caps: StoreCaps, path: PathBuf, entries: u64, bytes: u64) -> Self {
        StoreWriter {
            inner: Mutex::new(Inner {
                file,
                pending: Vec::new(),
                pending_records: 0,
                entries,
                bytes,
            }),
            caps,
            appended: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            path,
        }
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn flush_locked(&self, inner: &mut Inner) {
        if inner.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut inner.pending);
        inner.pending_records = 0;
        let ok = inner
            .file
            .write_all(&batch)
            .and_then(|()| inner.file.sync_data());
        match ok {
            Ok(()) => {
                self.flushes.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn push_locked(&self, inner: &mut Inner, line: &str) {
        inner.pending.extend_from_slice(line.as_bytes());
        inner.pending.push(b'\n');
        inner.pending_records += 1;
        inner.bytes += line.len() as u64 + 1;
        if inner.pending_records >= FLUSH_EVERY {
            self.flush_locked(inner);
        }
    }

    /// Queues one solve record. Uncacheable certainties and cap
    /// overflows are dropped (counted), never errors.
    pub fn append_solve(&self, solve: &StoredSolve) {
        let Some(line) = render_solve(solve) else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let over_entries = self
            .caps
            .max_entries
            .is_some_and(|cap| inner.entries as usize >= cap);
        let over_bytes = self
            .caps
            .max_bytes
            .is_some_and(|cap| inner.bytes + line.len() as u64 + 1 > cap);
        if over_entries || over_bytes {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        inner.entries += 1;
        self.appended.fetch_add(1, Ordering::Relaxed);
        self.push_locked(&mut inner, &line);
    }

    /// Writes a complete library dump (entries + completion marker) and
    /// flushes immediately: the dump is the store's foundation and must
    /// be durable before solves start referencing warm state.
    pub fn append_lib(&self, entries: &[LibraryEntry]) {
        if entries.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for e in entries {
            let line = render_lib(e);
            self.push_locked(&mut inner, &line);
        }
        let done = render_lib_done(entries.len());
        self.push_locked(&mut inner, &done);
        self.flush_locked(&mut inner);
    }

    /// Forces the pending batch to disk.
    pub fn flush(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        self.flush_locked(&mut inner);
    }

    /// Current counters.
    pub fn stats(&self) -> WriterStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        WriterStats {
            appended: self.appended.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            entries: inner.entries,
            bytes: inner.bytes,
        }
    }
}

impl Drop for StoreWriter {
    fn drop(&mut self) {
        let inner = self.inner.get_mut().unwrap_or_else(|e| e.into_inner());
        if !inner.pending.is_empty() {
            let batch = std::mem::take(&mut inner.pending);
            if inner
                .file
                .write_all(&batch)
                .and_then(|()| inner.file.sync_data())
                .is_err()
            {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A store opened for serving: what the file already held, plus the
/// append handle for the flywheel.
pub struct OpenedStore {
    /// Verified contents loaded from disk.
    pub load: StoreLoad,
    /// Append handle for new tail solves.
    pub writer: StoreWriter,
}

impl OpenedStore {
    /// The load-time report (convenience).
    pub fn report(&self) -> &LoadReport {
        &self.load.report
    }
}

fn ends_with_newline(path: &Path) -> std::io::Result<bool> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = File::open(path)?;
    if f.metadata()?.len() == 0 {
        return Ok(true);
    }
    f.seek(SeekFrom::End(-1))?;
    let mut buf = [0u8; 1];
    f.read_exact(&mut buf)?;
    Ok(buf[0] == b'\n')
}

/// Opens (creating as needed) the store for `key` under `dir`: loads and
/// verifies existing records, moves aside a key-mismatched file, writes
/// the header into a fresh file, and returns an append handle seeded
/// with the file's current entry/byte counts.
///
/// # Errors
///
/// Real I/O failures only (directory creation, open, header write).
pub fn open(dir: &Path, key: &StoreKey, caps: StoreCaps) -> std::io::Result<OpenedStore> {
    std::fs::create_dir_all(dir)?;
    let loaded = load(dir, key)?;
    let path = key.path_in(dir);
    let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
    if file.metadata()?.len() == 0 {
        let mut header = key.header_line();
        header.push('\n');
        file.write_all(header.as_bytes())?;
        file.sync_data()?;
    } else if !ends_with_newline(&path)? {
        // Terminate a torn final line so fresh appends start on their
        // own line instead of concatenating into the tear.
        file.write_all(b"\n")?;
        file.sync_data()?;
    }
    let bytes = file.metadata()?.len();
    let writer = StoreWriter::new(file, caps, path, loaded.report.solves as u64, bytes);
    Ok(OpenedStore {
        load: loaded,
        writer,
    })
}
