//! Criterion bench: preprocessing throughput — conflict-graph
//! construction, level-3 simplification, and stitch insertion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpld::prepare;
use mpld_graph::simplify::{simplify, SimplifyOptions};
use mpld_graph::DecomposeParams;
use mpld_layout::circuit_by_name;

fn bench_simplify(c: &mut Criterion) {
    let params = DecomposeParams::tpl();
    let mut group = c.benchmark_group("preprocessing");
    for name in ["C432", "C2670", "S1488"] {
        let layout = circuit_by_name(name).expect("known circuit").generate();
        group.bench_with_input(BenchmarkId::new("conflict_graph", name), &layout, |b, l| {
            b.iter(|| l.to_conflict_graph().conflict_edges().len())
        });
        let graph = layout.to_conflict_graph();
        group.bench_with_input(BenchmarkId::new("simplify_l3", name), &graph, |b, g| {
            b.iter(|| {
                simplify(g, params.k, SimplifyOptions::default())
                    .units()
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("full_prepare", name), &layout, |b, l| {
            b.iter(|| prepare(l, &params).units.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simplify);
criterion_main!(benches);
