#!/usr/bin/env bash
# Chip-scale smoke test: the streaming tiled pipeline end to end under
# an enforced memory cap.
#
# 1. Train a tiny model and stream a ~100k-rect synthetic layout to disk
#    with `mpld gen` (the generator and writer are both incremental).
# 2. Decompose it with `mpld adaptive --tiled true` inside a subshell
#    whose address space is capped by `ulimit -v` — the run must fit in
#    O(tile) working memory plus the model and graph metadata, with no
#    way to silently fall back to holding the layout whole.
# 3. Decompose the same file through the monolithic path and assert the
#    deterministic digest fields (cost, units, routing usage, budget)
#    are bit-identical — the tiled pipeline's parity contract.
#
# Usage: scripts/chip_scale_smoke.sh [model-path]
# Knobs: MPLD_BIN (default target/release/mpld),
#        MPLD_SMOKE_RECTS (default 100000),
#        MPLD_SMOKE_MEM_KB (ulimit -v cap, default 262144 = 256 MiB;
#        measured peak at 100k rects is ~78 MiB, so the cap holds real
#        headroom while still forbidding layout-proportional blowup).
set -euo pipefail

BIN=${MPLD_BIN:-target/release/mpld}
MODEL=${1:-/tmp/ci-chip-model.bin}
RECTS=${MPLD_SMOKE_RECTS:-100000}
MEM_KB=${MPLD_SMOKE_MEM_KB:-262144}
LAYOUT=/tmp/ci-chip.mpld

"$BIN" train -o "$MODEL" --circuits C432 --cap 20 --epochs 2

"$BIN" gen --rects "$RECTS" --out "$LAYOUT" --seed 5
test -s "$LAYOUT"

echo "== tiled run under ulimit -v ${MEM_KB}kB =="
(
  ulimit -v "$MEM_KB"
  "$BIN" adaptive "$LAYOUT" --model "$MODEL" --tiled true --seed 7 \
    --json true > /tmp/ci-chip-tiled.json
)
cat /tmp/ci-chip-tiled.json

echo "== monolithic oracle =="
"$BIN" adaptive "$LAYOUT" --model "$MODEL" --seed 7 \
  --json true > /tmp/ci-chip-serial.json
cat /tmp/ci-chip-serial.json

echo "== digest parity =="
python3 - /tmp/ci-chip-tiled.json /tmp/ci-chip-serial.json <<'EOF'
import json, sys

tiled = json.load(open(sys.argv[1]))
serial = json.load(open(sys.argv[2]))

# Deterministic digest fields; cache accounting (memo_hits) and timings
# legitimately differ between the engine and legacy paths.
def digest(s):
    usage = dict(s["usage"])
    usage.pop("memo_hits", None)
    return {
        "layout": s["layout"],
        "units": s["units"],
        "seed": s["seed"],
        "cost": s["cost"],
        "usage": usage,
        "budget": s["budget"],
    }

dt, ds = digest(tiled), digest(serial)
if dt != ds:
    print(f"tiled digest diverged:\n  tiled:  {dt}\n  serial: {ds}")
    sys.exit(1)

tiles = tiled.get("tiles", 0)
if tiles <= 1:
    print(f"tiled run degenerated to {tiles} tile(s)")
    sys.exit(1)
if tiled["budget"]["quarantined"] or tiled["budget"]["audit_rejections"]:
    print("tiled run was not audit-clean")
    sys.exit(1)
print(
    f"chip-scale smoke OK: {dt['units']} units over {tiles} tiles, "
    f"{tiled.get('boundary_resolves')} boundary re-solves, "
    f"digest identical to the monolithic run"
)
EOF
