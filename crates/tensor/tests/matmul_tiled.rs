//! Property tests pinning the register-tiled matmul kernels to the naive
//! triple-loop reference oracles. Tiling reorders floating-point
//! accumulation, so equality is up to an FP tolerance, not bit-exact.

use mpld_tensor::Matrix;
use proptest::prelude::*;

/// Shape triples covering tile-aligned, sub-tile, and ragged-edge sizes
/// relative to the MR x NR microkernel.
fn arb_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..24, 1usize..24, 1usize..24)
}

fn assert_close(a: &Matrix, b: &Matrix) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        let tol = 1e-4f32 * (1.0 + x.abs().max(y.abs()));
        assert!(
            (x - y).abs() <= tol,
            "tiled {x} vs naive {y} differ beyond tolerance {tol}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tiled_matmul_matches_naive(dims in arb_dims(), seed in 0u64..1000) {
        let (m, k, n) = dims;
        let a = arb_sample(m, k, seed);
        let b = arb_sample(k, n, seed.wrapping_add(1));
        assert_close(&a.matmul(&b), &a.matmul_naive(&b));
    }

    #[test]
    fn tiled_matmul_tn_matches_naive(dims in arb_dims(), seed in 0u64..1000) {
        let (k, m, n) = dims;
        let a = arb_sample(k, m, seed);
        let b = arb_sample(k, n, seed.wrapping_add(2));
        assert_close(&a.matmul_tn(&b), &a.matmul_tn_naive(&b));
    }

    #[test]
    fn tiled_matmul_nt_matches_naive(dims in arb_dims(), seed in 0u64..1000) {
        let (m, k, n) = dims;
        let a = arb_sample(m, k, seed);
        let b = arb_sample(n, k, seed.wrapping_add(3));
        assert_close(&a.matmul_nt(&b), &a.matmul_nt_naive(&b));
    }

    #[test]
    fn tiled_matmul_matches_naive_random_entries(
        av in prop::collection::vec(-2.0f32..2.0, 5 * 13),
        bv in prop::collection::vec(-2.0f32..2.0, 13 * 9),
    ) {
        let a = Matrix::from_vec(5, 13, av);
        let b = Matrix::from_vec(13, 9, bv);
        assert_close(&a.matmul(&b), &a.matmul_naive(&b));
    }
}

/// Deterministic pseudo-random matrix from a seed (keeps the proptest case
/// space to shapes while still varying entries).
fn arb_sample(rows: usize, cols: usize, seed: u64) -> Matrix {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-1.5f32..1.5))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

#[test]
fn tile_aligned_shapes_match() {
    // Exactly tile-aligned 128x128 (the bench shape) plus a zero-heavy
    // matrix exercising the naive kernel's zero-skip path.
    let a = arb_sample(128, 128, 7);
    let mut b = arb_sample(128, 128, 8);
    for (i, v) in b.as_mut_slice().iter_mut().enumerate() {
        if i % 3 == 0 {
            *v = 0.0;
        }
    }
    assert_close(&a.matmul(&b), &a.matmul_naive(&b));
    assert_close(&a.matmul_tn(&b), &a.matmul_tn_naive(&b));
    assert_close(&a.matmul_nt(&b), &a.matmul_nt_naive(&b));
}

#[test]
fn identity_still_exact() {
    let a = arb_sample(17, 17, 3);
    let eye = Matrix::eye(17);
    // Products with identity involve no reassociation, so they stay exact.
    assert_eq!(a.matmul(&eye), a);
    assert_eq!(eye.matmul(&a), a);
}
