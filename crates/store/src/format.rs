//! On-disk JSONL format: the keyed header and the two record kinds.
//!
//! One store file is a sequence of `\n`-terminated single-line JSON
//! objects following the checkpoint journal's discipline: the first line
//! is the header, every later line is a record, a record is valid only
//! if its line is complete (ends in `}`), and a torn final line — the
//! kill -9 signature — is tolerated and skipped by the loader.
//!
//! The header carries the format version, the **model fingerprint**
//! (FNV-64 of the serialized framework weights) and the layout/library
//! parameters (`k`, `alpha`, embedding dimension `d`, library-config
//! token). Together these form the [`StoreKey`]; the key's digest also
//! names the file, so a retrained model writes a *different* file
//! (re-keying in the Plexus "embedding drift" style) and a header that
//! disagrees with its expected key is never served.
//!
//! Records:
//!
//! - `"t":"s"` — one audit-clean tail solve (the online flywheel):
//!   graph, `ec_first` routing bucket, engine, certainty, coloring,
//!   claimed cost.
//! - `"t":"l"` — one graph-library entry: graph, bit-exact embeddings
//!   (f32 bit patterns in hex), optimal solution, claimed cost.
//! - `"t":"ld"` — library-dump completion marker carrying the entry
//!   count; a dump without its marker (torn mid-dump) is orphaned and
//!   rebuilt, never half-trusted.
//!
//! Floats that must round-trip bit-exactly (embeddings, `alpha`) are
//! stored as hex bit patterns, not decimal.

use mpld_graph::{Certainty, CostBreakdown, LayoutGraph};
use mpld_matching::LibraryEntry;
use mpld_tensor::Matrix;
use std::path::{Path, PathBuf};

/// On-disk format version; bumped on any incompatible layout change.
pub const FORMAT_VERSION: u32 = 1;

/// FNV-1a 64-bit over raw bytes — the store's model-fingerprint hash
/// (same constants as the matcher's `graph_fingerprint`).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0001_0000_01b3);
    }
    h
}

/// Everything a stored entry's validity depends on: the model that
/// produced the embeddings and routing decisions, and the decomposition
/// parameters its solutions were optimal under. Any component changing
/// re-keys the store instead of ever serving a stale match.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreKey {
    /// [`fnv64`] of the serialized framework weights (the `model.bin`
    /// bytes).
    pub model_digest: u64,
    /// Mask count `k`.
    pub k: u8,
    /// Stitch weight `alpha` (compared bit-exactly).
    pub alpha: f64,
    /// Graph-embedding dimension `d` of the selector head.
    pub dim: usize,
    /// Canonical library-config token (e.g. `p6s1n7t1`).
    pub library: String,
}

impl StoreKey {
    /// Digest over every key component; names the store file.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(&self.model_digest.to_le_bytes());
        bytes.push(self.k);
        bytes.extend_from_slice(&self.alpha.to_bits().to_le_bytes());
        bytes.extend_from_slice(&(self.dim as u64).to_le_bytes());
        bytes.extend_from_slice(self.library.as_bytes());
        fnv64(&bytes)
    }

    /// The file this key loads from / appends to.
    pub fn file_name(&self) -> String {
        format!("library-{:016x}.jsonl", self.digest())
    }

    /// [`StoreKey::file_name`] under `dir`.
    pub fn path_in(&self, dir: &Path) -> PathBuf {
        dir.join(self.file_name())
    }

    /// Whether a parsed header matches this key exactly (version,
    /// model fingerprint, and every parameter).
    pub fn matches(&self, h: &Header) -> bool {
        h.version == FORMAT_VERSION
            && h.model_digest == self.model_digest
            && h.k == self.k
            && h.alpha.to_bits() == self.alpha.to_bits()
            && h.dim == self.dim
            && h.library == self.library
    }

    pub(crate) fn header_line(&self) -> String {
        format!(
            "{{\"v\":{FORMAT_VERSION},\"model\":\"{:016x}\",\"k\":{},\"alpha_bits\":\"{:016x}\",\
             \"alpha\":{},\"dim\":{},\"lib\":\"{}\"}}",
            self.model_digest,
            self.k,
            self.alpha.to_bits(),
            self.alpha,
            self.dim,
            self.library,
        )
    }
}

/// Parsed store-file header (see [`StoreKey`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Format version the file was written with.
    pub version: u32,
    /// Model weights fingerprint.
    pub model_digest: u64,
    /// Mask count.
    pub k: u8,
    /// Stitch weight (restored bit-exactly from `alpha_bits`).
    pub alpha: f64,
    /// Embedding dimension.
    pub dim: usize,
    /// Library-config token.
    pub library: String,
}

pub(crate) fn parse_header(line: &str) -> Option<Header> {
    if !line.trim_end().ends_with('}') {
        return None;
    }
    Some(Header {
        version: field(line, "v")?.parse().ok()?,
        model_digest: u64::from_str_radix(field(line, "model")?, 16).ok()?,
        k: field(line, "k")?.parse().ok()?,
        alpha: f64::from_bits(u64::from_str_radix(field(line, "alpha_bits")?, 16).ok()?),
        dim: field(line, "dim")?.parse().ok()?,
        library: field(line, "lib")?.to_string(),
    })
}

/// Which tail engine produced a stored solve. The store deliberately
/// carries only the two engines that reach the solution cache; matching
/// and ColorGNN results are never persisted (the former is the library
/// itself, the latter is RNG-stream-dependent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailEngine {
    /// Exact ILP.
    Ilp,
    /// Exact cover.
    Ec,
}

impl TailEngine {
    fn as_str(self) -> &'static str {
        match self {
            TailEngine::Ilp => "ilp",
            TailEngine::Ec => "ec",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "ilp" => Some(TailEngine::Ilp),
            "ec" => Some(TailEngine::Ec),
            _ => None,
        }
    }
}

/// One audit-clean tail solve restored from (or bound for) the store.
#[derive(Debug, Clone)]
pub struct StoredSolve {
    /// The unit graph, reconstructed through the validating constructor.
    pub graph: LayoutGraph,
    /// The `ec_first` routing bucket the solve was cached under.
    pub ec_first: bool,
    /// Engine whose coloring was kept.
    pub engine: TailEngine,
    /// Only deterministic certainties are ever stored.
    pub certainty: Certainty,
    /// Per-node mask assignment.
    pub coloring: Vec<u8>,
    /// Claimed cost; re-audited against the graph on every load.
    pub cost: CostBreakdown,
}

/// One parsed record line.
#[derive(Debug)]
pub(crate) enum Record {
    Solve(StoredSolve),
    Lib(Box<LibraryEntry>),
    LibDone { n: usize },
}

fn certainty_str(c: Certainty) -> Option<&'static str> {
    match c {
        Certainty::Certified => Some("certified"),
        Certainty::Heuristic => Some("heuristic"),
        // Budget-cut and degraded results are request-dependent and are
        // never published to the cache, hence never stored.
        Certainty::BudgetExhausted | Certainty::Degraded => None,
    }
}

fn certainty_parse(s: &str) -> Option<Certainty> {
    match s {
        "certified" => Some(Certainty::Certified),
        "heuristic" => Some(Certainty::Heuristic),
        _ => None,
    }
}

fn push_u8s(line: &mut String, xs: &[u8]) {
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&x.to_string());
    }
}

fn push_u32s(line: &mut String, xs: &[u32]) {
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&x.to_string());
    }
}

fn push_edges(line: &mut String, edges: &[(u32, u32)]) {
    for (i, &(u, v)) in edges.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&u.to_string());
        line.push(',');
        line.push_str(&v.to_string());
    }
}

fn push_graph(line: &mut String, g: &LayoutGraph) {
    line.push_str("\"nf\":[");
    push_u32s(line, g.node_features());
    line.push_str("],\"ce\":[");
    push_edges(line, g.conflict_edges());
    line.push_str("],\"se\":[");
    push_edges(line, g.stitch_edges());
    line.push(']');
}

fn push_f32s_hex(line: &mut String, xs: &[f32]) {
    use std::fmt::Write as _;
    for x in xs {
        let _ = write!(line, "{:08x}", x.to_bits());
    }
}

/// Renders one solve record. Returns `None` for certainties that must
/// never be persisted.
pub(crate) fn render_solve(s: &StoredSolve) -> Option<String> {
    let cert = certainty_str(s.certainty)?;
    let mut line = format!(
        "{{\"t\":\"s\",\"ec\":{},\"eng\":\"{}\",\"cert\":\"{cert}\",",
        u8::from(s.ec_first),
        s.engine.as_str(),
    );
    push_graph(&mut line, &s.graph);
    line.push_str(",\"col\":[");
    push_u8s(&mut line, &s.coloring);
    line.push_str(&format!(
        "],\"cn\":{},\"st\":{}}}",
        s.cost.conflicts, s.cost.stitches
    ));
    Some(line)
}

pub(crate) fn render_lib(e: &LibraryEntry) -> String {
    let mut line = String::with_capacity(256);
    line.push_str("{\"t\":\"l\",");
    push_graph(&mut line, &e.graph);
    line.push_str(",\"emb\":\"");
    push_f32s_hex(&mut line, &e.embedding);
    line.push_str(&format!(
        "\",\"ner\":{},\"nec\":{},\"ne\":\"",
        e.node_embeddings.rows(),
        e.node_embeddings.cols()
    ));
    push_f32s_hex(&mut line, e.node_embeddings.as_slice());
    line.push_str("\",\"col\":[");
    push_u8s(&mut line, &e.solution);
    line.push_str(&format!(
        "],\"cn\":{},\"st\":{}}}",
        e.cost.conflicts, e.cost.stitches
    ));
    line
}

pub(crate) fn render_lib_done(n: usize) -> String {
    format!("{{\"t\":\"ld\",\"n\":{n}}}")
}

fn parse_u32s(body: &str) -> Option<Vec<u32>> {
    let body = body.trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|t| t.trim().parse().ok()).collect()
}

fn parse_u8s(body: &str) -> Option<Vec<u8>> {
    let body = body.trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|t| t.trim().parse().ok()).collect()
}

fn parse_edges(body: &str) -> Option<Vec<(u32, u32)>> {
    let flat = parse_u32s(body)?;
    if !flat.len().is_multiple_of(2) {
        return None;
    }
    Some(flat.chunks_exact(2).map(|p| (p[0], p[1])).collect())
}

fn parse_f32s_hex(s: &str) -> Option<Vec<f32>> {
    if !s.len().is_multiple_of(8) || !s.is_char_boundary(0) {
        return None;
    }
    s.as_bytes()
        .chunks_exact(8)
        .map(|c| {
            let hex = std::str::from_utf8(c).ok()?;
            Some(f32::from_bits(u32::from_str_radix(hex, 16).ok()?))
        })
        .collect()
}

/// Reconstructs the graph of a record through the validating
/// constructor: a corrupted edge list (self-loop, duplicate, edge
/// against the feature rules, out-of-range endpoint) is rejected here.
fn parse_record_graph(line: &str) -> Option<LayoutGraph> {
    let nf = parse_u32s(field(line, "nf")?)?;
    let ce = parse_edges(field(line, "ce")?)?;
    let se = parse_edges(field(line, "se")?)?;
    LayoutGraph::new(nf, ce, se).ok()
}

fn parse_cost(line: &str) -> Option<CostBreakdown> {
    Some(CostBreakdown {
        conflicts: field(line, "cn")?.parse().ok()?,
        stitches: field(line, "st")?.parse().ok()?,
    })
}

/// Parses one record line; `None` means malformed (the caller counts it
/// corrupt). A line is considered at all only when complete (`}`-
/// terminated) — the torn-tail rule is enforced by the caller.
pub(crate) fn parse_record(line: &str) -> Option<Record> {
    match field(line, "t")? {
        "s" => {
            let graph = parse_record_graph(line)?;
            let coloring = parse_u8s(field(line, "col")?)?;
            if coloring.len() != graph.num_nodes() {
                return None;
            }
            Some(Record::Solve(StoredSolve {
                graph,
                ec_first: field(line, "ec")? == "1",
                engine: TailEngine::parse(field(line, "eng")?)?,
                certainty: certainty_parse(field(line, "cert")?)?,
                coloring,
                cost: parse_cost(line)?,
            }))
        }
        "l" => {
            let graph = parse_record_graph(line)?;
            let embedding = parse_f32s_hex(field(line, "emb")?)?;
            let rows: usize = field(line, "ner")?.parse().ok()?;
            let cols: usize = field(line, "nec")?.parse().ok()?;
            let ne = parse_f32s_hex(field(line, "ne")?)?;
            if ne.len() != rows.checked_mul(cols)? || rows != graph.num_nodes() {
                return None;
            }
            let solution = parse_u8s(field(line, "col")?)?;
            if solution.len() != graph.num_nodes() {
                return None;
            }
            Some(Record::Lib(Box::new(LibraryEntry {
                graph,
                embedding,
                node_embeddings: Matrix::from_vec(rows, cols, ne),
                solution,
                cost: parse_cost(line)?,
            })))
        }
        "ld" => Some(Record::LibDone {
            n: field(line, "n")?.parse().ok()?,
        }),
        _ => None,
    }
}

/// Extracts the raw token following `"key":` in a single-line JSON
/// object — same discipline as the checkpoint journal's parser. Strings
/// return their contents, scalars the bare token, arrays the bracketed
/// body.
pub(crate) fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else if let Some(stripped) = rest.strip_prefix('[') {
        let end = stripped.find(']')?;
        Some(&stripped[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> LayoutGraph {
        LayoutGraph::homogeneous(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .expect("K4")
    }

    fn sample_solve() -> StoredSolve {
        let graph = k4();
        let coloring = vec![0, 1, 2, 0];
        let cost = mpld_graph::audit_coloring(&graph, &coloring, 3).expect("valid");
        StoredSolve {
            graph,
            ec_first: true,
            engine: TailEngine::Ec,
            certainty: Certainty::Heuristic,
            coloring,
            cost,
        }
    }

    #[test]
    fn solve_record_round_trips() {
        let s = sample_solve();
        let line = render_solve(&s).expect("storable certainty");
        assert!(line.ends_with('}'));
        let Record::Solve(back) = parse_record(&line).expect("parses") else {
            panic!("wrong record kind");
        };
        assert!(mpld_matching::graphs_identical(&back.graph, &s.graph));
        assert_eq!(back.coloring, s.coloring);
        assert_eq!(back.cost, s.cost);
        assert_eq!(back.engine, s.engine);
        assert_eq!(back.certainty, s.certainty);
        assert!(back.ec_first);
    }

    #[test]
    fn non_deterministic_certainties_are_never_rendered() {
        let mut s = sample_solve();
        s.certainty = Certainty::BudgetExhausted;
        assert!(render_solve(&s).is_none());
        s.certainty = Certainty::Degraded;
        assert!(render_solve(&s).is_none());
    }

    #[test]
    fn lib_record_round_trips_bit_exactly() {
        let graph = k4();
        let entry = LibraryEntry {
            graph: graph.clone(),
            embedding: vec![0.1f32, -0.25, 1.5e-7, f32::MIN_POSITIVE],
            node_embeddings: Matrix::from_vec(
                4,
                2,
                vec![1.0, -2.0, 0.3, 0.0, -0.0, 5.5, 9.0, 1e-30],
            ),
            solution: vec![0, 1, 2, 0],
            cost: mpld_graph::audit_coloring(&graph, &[0, 1, 2, 0], 3).expect("valid"),
        };
        let line = render_lib(&entry);
        let Record::Lib(back) = parse_record(&line).expect("parses") else {
            panic!("wrong record kind");
        };
        // Bit-exact float round-trip, including -0.0 and denormals.
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.embedding), bits(&entry.embedding));
        assert_eq!(
            bits(back.node_embeddings.as_slice()),
            bits(entry.node_embeddings.as_slice())
        );
        assert_eq!(back.solution, entry.solution);
        assert_eq!(back.cost, entry.cost);
    }

    #[test]
    fn header_round_trips_and_key_matches() {
        let key = StoreKey {
            model_digest: 0xDEAD_BEEF_0123_4567,
            k: 3,
            alpha: 0.1,
            dim: 8,
            library: "p6s1n7t1".into(),
        };
        let h = parse_header(&key.header_line()).expect("parses");
        assert!(key.matches(&h));
        assert_eq!(h.alpha.to_bits(), key.alpha.to_bits());
        // Any component changing breaks the match.
        let mut other = key.clone();
        other.model_digest ^= 1;
        assert!(!other.matches(&h));
        let mut other = key.clone();
        other.alpha = 0.2;
        assert!(!other.matches(&h));
        let mut other = key.clone();
        other.k = 4;
        assert!(!other.matches(&h));
    }

    #[test]
    fn key_digest_separates_every_component() {
        let base = StoreKey {
            model_digest: 7,
            k: 3,
            alpha: 0.1,
            dim: 8,
            library: "p6s1n7t1".into(),
        };
        let variants = [
            StoreKey {
                model_digest: 8,
                ..base.clone()
            },
            StoreKey {
                k: 4,
                ..base.clone()
            },
            StoreKey {
                alpha: 0.2,
                ..base.clone()
            },
            StoreKey {
                dim: 16,
                ..base.clone()
            },
            StoreKey {
                library: "p5s1n6t1".into(),
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(v.digest(), base.digest(), "{v:?} collided with base");
            assert_ne!(v.file_name(), base.file_name());
        }
    }

    #[test]
    fn malformed_lines_parse_to_none_not_panic() {
        for line in [
            "",
            "{",
            "{}",
            "{\"t\":\"s\"}",
            "{\"t\":\"s\",\"ec\":1,\"eng\":\"ilp\",\"cert\":\"certified\",\"nf\":[0],\"ce\":[0],\"se\":[],\"col\":[0],\"cn\":0,\"st\":0}",
            "{\"t\":\"l\",\"nf\":[0],\"ce\":[],\"se\":[],\"emb\":\"zzzz\",\"ner\":1,\"nec\":1,\"ne\":\"00000000\",\"col\":[0],\"cn\":0,\"st\":0}",
            "{\"t\":\"??\",\"n\":1}",
            "{\"t\":\"ld\",\"n\":\"x\"}",
        ] {
            assert!(parse_record(line).is_none(), "accepted: {line}");
        }
    }

    #[test]
    fn self_loop_and_bad_coloring_len_are_rejected() {
        // Self-loop conflict edge: the validating constructor refuses it.
        let line = "{\"t\":\"s\",\"ec\":0,\"eng\":\"ec\",\"cert\":\"heuristic\",\
                    \"nf\":[0,1],\"ce\":[0,0],\"se\":[],\"col\":[0,0],\"cn\":0,\"st\":0}";
        assert!(parse_record(line).is_none());
        // Coloring shorter than the graph.
        let line = "{\"t\":\"s\",\"ec\":0,\"eng\":\"ec\",\"cert\":\"heuristic\",\
                    \"nf\":[0,1],\"ce\":[0,1],\"se\":[],\"col\":[0],\"cn\":0,\"st\":0}";
        assert!(parse_record(line).is_none());
    }
}
