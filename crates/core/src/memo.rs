//! Embedding/logit memoization for the routing stage.
//!
//! Real layouts repeat small units constantly (the same 2–6-node motifs
//! occur hundreds of times per circuit), so running the GNN forward pass
//! once per *distinct* unit and scattering the result is a large win.
//! [`EmbeddingMemo`] keys units on the matcher's structural
//! [`graph_fingerprint`](mpld_matching::graph_fingerprint) and — because
//! GNN readouts are not bitwise permutation-invariant and hashes can in
//! principle collide — verifies every hit with exact structural equality
//! ([`graphs_identical`](mpld_matching::graphs_identical)) before it
//! serves a cached slot. A hit therefore means *the same graph*, so the
//! representative's probabilities and embeddings are bit-identical to
//! what a fresh forward pass on the duplicate would have produced.

use mpld_graph::LayoutGraph;
use mpld_matching::{graph_fingerprint, graphs_identical};
use std::collections::HashMap;

/// Deduplication memo mapping structurally identical unit graphs to a
/// shared "representative" slot (an index the caller assigns, typically
/// into a batched inference result).
#[derive(Debug, Default)]
pub struct EmbeddingMemo<'a> {
    buckets: HashMap<u64, Vec<(&'a LayoutGraph, usize)>>,
    hits: usize,
}

impl<'a> EmbeddingMemo<'a> {
    /// Empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a graph; on a verified hit returns the representative slot
    /// and counts it. A fingerprint match with a structurally different
    /// graph is *not* a hit.
    pub fn find(&mut self, g: &LayoutGraph) -> Option<usize> {
        let fp = graph_fingerprint(g);
        let slot = self
            .buckets
            .get(&fp)?
            .iter()
            .find(|(rep, _)| graphs_identical(rep, g))
            .map(|&(_, slot)| slot)?;
        self.hits += 1;
        Some(slot)
    }

    /// Register `g` as the representative for its structure class,
    /// associated with `slot`.
    pub fn insert(&mut self, g: &'a LayoutGraph, slot: usize) {
        self.buckets
            .entry(graph_fingerprint(g))
            .or_default()
            .push((g, slot));
    }

    /// Verified hits served so far.
    pub fn hits(&self) -> usize {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_graph_hits_and_counts() {
        let a = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2)]).unwrap();
        let b = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2)]).unwrap();
        let mut memo = EmbeddingMemo::new();
        assert_eq!(memo.find(&a), None);
        memo.insert(&a, 7);
        assert_eq!(memo.find(&b), Some(7));
        assert_eq!(memo.hits(), 1);
    }

    #[test]
    fn different_graph_misses() {
        let a = LayoutGraph::homogeneous(3, vec![(0, 1)]).unwrap();
        let b = LayoutGraph::homogeneous(3, vec![(1, 2)]).unwrap();
        let mut memo = EmbeddingMemo::new();
        memo.insert(&a, 0);
        assert_eq!(memo.find(&b), None);
        assert_eq!(memo.hits(), 0);
    }

    #[test]
    fn fingerprint_collision_is_rejected_by_equality_check() {
        // Force a synthetic collision by inserting under the *wrong*
        // bucket: find() must still refuse to serve a structurally
        // different graph even when the fingerprints agree.
        let a = LayoutGraph::homogeneous(4, vec![(0, 1), (2, 3)]).unwrap();
        let b = LayoutGraph::homogeneous(4, vec![(0, 2), (1, 3)]).unwrap();
        let mut memo = EmbeddingMemo::new();
        memo.buckets
            .entry(graph_fingerprint(&b))
            .or_default()
            .push((&a, 3));
        assert_eq!(memo.find(&b), None);
    }
}
