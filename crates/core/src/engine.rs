//! Decomposition-as-a-service: the immutable, shareable [`Engine`] and
//! the per-request [`Session`].
//!
//! The legacy entry points on [`AdaptiveFramework`] thread `&self`
//! through a run but hide two pieces of per-call mutability: they
//! re-freeze the RGCN heads on every call and drive the ColorGNN restart
//! sampler through the model's mutexed RNG. [`Engine`] lifts both out:
//! it compiles the frozen heads **once** at construction (the weight
//! fold is deterministic, so freeze-once output equals freeze-per-call
//! bit for bit) and moves the RNG into the caller's [`Session`], leaving
//! the engine itself `Send + Sync` — one warm instance serves any number
//! of concurrent requests behind an `Arc`.
//!
//! Cross-request state lives in two sharded, equality-verified maps
//! ([`ShardedGraphMap`]):
//!
//! - the **routing memo** caches per-representative selector/redundancy
//!   probabilities and embeddings. Bit-safe to share because per-graph
//!   frozen outputs are independent of batch composition
//!   (property-tested in `mpld-gnn`), so a cached entry is bitwise what
//!   a fresh forward pass would produce;
//! - the **solution caches** (one per `ec_first` routing flag, which
//!   decides which engines may answer) cache ILP/EC-tail colorings.
//!   Only deterministic solves are published: budget-cut, quarantined,
//!   audit-rejected, or degraded results never enter the cache, so a
//!   hit replays exactly what re-solving would compute.
//!
//! ColorGNN results are **never** cached across requests — the restart
//! sampler consumes the session's RNG stream, so its output is a
//! function of that stream, not of the graph alone.
//!
//! Parity contract: a fresh `Engine` serving one request produces
//! colorings, costs, engines, and usage identical to
//! `colorgnn.reseed(seed)` followed by
//! [`AdaptiveFramework::decompose_prepared_with`] — the serial path
//! stays the bit-identity oracle (asserted by `engine_parity` tests).

use crate::framework::{
    empty_result, finish, journal_record, AdaptiveFramework, AdaptiveResult, BudgetPolicy,
    ColorDriver, EngineKind, FinishParts, Recovery, RouteBackend, RoutedUnits,
};
use crate::pipeline::PreparedLayout;
use mpld_gnn::{FrozenColorGnn, FrozenRgcn};
use mpld_graph::{audit_coloring, Certainty, Decomposition, MpldError};
use mpld_matching::{ShardedGraphMap, ShardedMapStats};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One routed representative's cached inference outputs (see module
/// docs): everything `route_units_with` scatters per representative.
pub(crate) struct RoutingEntry {
    pub(crate) sel_probs: Vec<f32>,
    pub(crate) red_probs: Vec<f32>,
    pub(crate) graph_emb: Vec<f32>,
    pub(crate) node_emb: mpld_tensor::Matrix,
}

/// The engine's cross-request routing memo.
pub(crate) type SharedRoutingMemo = ShardedGraphMap<Arc<RoutingEntry>>;

/// One cached deterministic ILP/EC-tail solve.
struct CachedSolve {
    d: Decomposition,
    engine: EngineKind,
}

/// The engine's handle on a persistent store: the append writer plus
/// what loading it observed (frozen at construction).
struct EngineStore {
    writer: mpld_store::StoreWriter,
    load: mpld_store::LoadReport,
    lib_loaded: bool,
}

/// Snapshot of an [`Engine`]'s persistent-store counters: the load-time
/// report plus the live writer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStoreStats {
    /// Audit-clean tail solves preloaded into the solution caches.
    pub loaded_solves: usize,
    /// Malformed records skipped at load.
    pub skipped_corrupt: usize,
    /// Records whose coloring failed the load-time re-audit.
    pub skipped_audit: usize,
    /// Older duplicates superseded at load.
    pub superseded: usize,
    /// Library records orphaned by a missing completion marker.
    pub orphaned: usize,
    /// Whether a key-mismatched file was moved aside at open.
    pub rekeyed: bool,
    /// Whether the load ended on a torn final line.
    pub torn_tail: bool,
    /// Whether the graph library was served from the store (vs rebuilt).
    pub lib_loaded: bool,
    /// Store load time in milliseconds.
    pub load_ms: u64,
    /// Solve records appended by this engine so far.
    pub appended: u64,
    /// Records dropped by caps or uncacheable certainty.
    pub dropped: u64,
    /// Batched write+fsync cycles completed.
    pub flushes: u64,
    /// Append batches lost to I/O errors.
    pub io_errors: u64,
    /// Solve records the store file holds.
    pub entries: u64,
}

/// Immutable decomposition engine shared across concurrent requests (see
/// module docs). `Send + Sync`; wrap in an [`Arc`] and hand clones to
/// worker threads, each driving its own [`Session`].
pub struct Engine {
    fw: AdaptiveFramework,
    frozen_sel: FrozenRgcn,
    frozen_red: FrozenRgcn,
    frozen_color: FrozenColorGnn,
    routing_memo: SharedRoutingMemo,
    /// Tail-solution caches indexed by the `ec_first` routing flag (the
    /// flag decides which engines may answer, so it is part of the key).
    solutions: [ShardedGraphMap<Arc<CachedSolve>>; 2],
    /// Persistent store flywheel (see [`crate::engine_with_store`]):
    /// fresh deterministic tail solves are appended write-behind; `None`
    /// for a purely in-memory engine.
    store: Option<EngineStore>,
}

/// Snapshot of an [`Engine`]'s cross-request cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Routing-memo counters (selector/redundancy inference reuse).
    pub routing: ShardedMapStats,
    /// Tail-solution counters for ILP-first routed units.
    pub solutions_ilp_first: ShardedMapStats,
    /// Tail-solution counters for EC-first routed units.
    pub solutions_ec_first: ShardedMapStats,
    /// Persistent-store counters; `None` for an in-memory engine.
    pub store: Option<EngineStoreStats>,
}

/// Per-request mutable state: budget policy, the session's ColorGNN RNG
/// stream, and optional checkpoint recovery. Cheap to create per
/// request; never shared between requests.
pub struct Session<'a> {
    /// Wall-clock limits for this request.
    pub policy: BudgetPolicy,
    /// Checkpoint resume/journal hooks for this request.
    pub recovery: Recovery<'a>,
    seed: u64,
    rng: SmallRng,
}

impl Session<'_> {
    /// An unlimited session whose ColorGNN stream starts at `seed` —
    /// bit-identical to `colorgnn.reseed(seed)` on the legacy path.
    pub fn new(seed: u64) -> Self {
        Self {
            policy: BudgetPolicy::unlimited(),
            recovery: Recovery::default(),
            seed,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// [`Session::new`] with a budget policy.
    pub fn with_policy(seed: u64, policy: BudgetPolicy) -> Self {
        Self {
            policy,
            ..Self::new(seed)
        }
    }

    /// The seed this session's RNG stream started from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Streaming progress of one [`Engine::decompose_with_progress`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// The batched routing prefix finished: matching and ColorGNN
    /// resolved their units, the ILP/EC tail is about to start.
    Routed {
        /// Total unit count of the layout.
        units: usize,
        /// Units resolved by audited library matching.
        matched: usize,
        /// Units resolved by the batched ColorGNN.
        colorgnn: usize,
        /// Representatives served from the cross-request routing memo.
        routing_memo_hits: usize,
    },
    /// One ILP/EC-tail unit resolved.
    Unit {
        /// Unit index within the prepared layout.
        index: usize,
        /// Engine whose coloring was kept.
        engine: EngineKind,
        /// How much that engine vouches for the result.
        certainty: Certainty,
        /// Served from the cross-request solution cache (or restored
        /// from a checkpoint journal) instead of a fresh solve.
        cached: bool,
    },
}

impl Engine {
    /// Compiles a trained framework into a shareable engine: freezes
    /// both RGCN heads and the ColorGNN once, and starts with empty
    /// cross-request caches.
    pub fn new(fw: AdaptiveFramework) -> Self {
        Self::with_cache_cap(fw, None)
    }

    /// [`Engine::new`] with a solution/routing-cache entry cap: each of
    /// the three cross-request maps holds at most `cap` entries, evicting
    /// arbitrarily past it, so an unbounded-traffic server stays bounded.
    pub fn with_cache_cap(fw: AdaptiveFramework, cap: Option<usize>) -> Self {
        let frozen_sel = fw.selector.freeze();
        let frozen_red = fw.redundancy.freeze();
        let frozen_color = fw.colorgnn.freeze();
        let map = || ShardedGraphMap::with_capacity(mpld_matching::DEFAULT_SHARDS, cap);
        Self {
            fw,
            frozen_sel,
            frozen_red,
            frozen_color,
            routing_memo: ShardedGraphMap::with_capacity(mpld_matching::DEFAULT_SHARDS, cap),
            solutions: [map(), map()],
            store: None,
        }
    }

    /// Attaches an opened persistent store: preloads its audit-clean
    /// tail solves into the solution caches and appends fresh
    /// deterministic solves back (write-behind). `lib_loaded` records
    /// whether the graph library came from the store too.
    pub fn with_store(
        fw: AdaptiveFramework,
        opened: mpld_store::OpenedStore,
        lib_loaded: bool,
        cache_cap: Option<usize>,
    ) -> Self {
        let mut engine = Self::with_cache_cap(fw, cache_cap);
        let mpld_store::OpenedStore { load, writer } = opened;
        for s in &load.solves {
            let engine_kind = match s.engine {
                mpld_store::TailEngine::Ilp => EngineKind::Ilp,
                mpld_store::TailEngine::Ec => EngineKind::Ec,
            };
            engine.solutions[usize::from(s.ec_first)].insert(
                &s.graph,
                Arc::new(CachedSolve {
                    d: Decomposition {
                        coloring: s.coloring.clone(),
                        cost: s.cost,
                        certainty: s.certainty,
                    },
                    engine: engine_kind,
                }),
            );
        }
        engine.store = Some(EngineStore {
            writer,
            load: load.report,
            lib_loaded,
        });
        engine
    }

    /// The wrapped framework (parameters, library, thresholds).
    pub fn framework(&self) -> &AdaptiveFramework {
        &self.fw
    }

    /// Snapshot of the cross-request cache counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            routing: self.routing_memo.stats(),
            solutions_ilp_first: self.solutions[0].stats(),
            solutions_ec_first: self.solutions[1].stats(),
            store: self.store.as_ref().map(|s| {
                let w = s.writer.stats();
                EngineStoreStats {
                    loaded_solves: s.load.solves,
                    skipped_corrupt: s.load.skipped_corrupt,
                    skipped_audit: s.load.skipped_audit,
                    superseded: s.load.superseded,
                    orphaned: s.load.orphaned,
                    rekeyed: s.load.rekeyed,
                    torn_tail: s.load.torn_tail,
                    lib_loaded: s.lib_loaded,
                    load_ms: s.load.load_ms,
                    appended: w.appended,
                    dropped: w.dropped,
                    flushes: w.flushes,
                    io_errors: w.io_errors,
                    entries: w.entries,
                }
            }),
        }
    }

    /// Forces any write-behind store appends to disk.
    pub fn flush_store(&self) {
        if let Some(store) = &self.store {
            store.writer.flush();
        }
    }

    /// [`Engine::decompose_with_progress`] without progress events.
    ///
    /// # Errors
    ///
    /// `Err` means an engine rejected its input outright; budget
    /// exhaustion is never an error (see
    /// [`AdaptiveFramework::decompose_prepared_with`]).
    pub fn decompose(
        &self,
        prep: &PreparedLayout,
        session: &mut Session<'_>,
    ) -> Result<AdaptiveResult, MpldError> {
        self.decompose_with_progress(prep, session, &mut |_| {})
    }

    /// Decomposes a prepared layout against the shared caches, streaming
    /// [`Progress`] events as routing and each tail unit resolve.
    ///
    /// Serial-parity contract: with empty caches and a fresh
    /// [`Session::new(seed)`], the result's colorings, costs, engines,
    /// and usage are identical to `reseed(seed)` + the legacy serial
    /// path. With warm caches only `memo_hits`/`inference` accounting
    /// and timing change — cached entries are bitwise what re-computing
    /// them would produce (see module docs).
    ///
    /// # Errors
    ///
    /// `Err` means an engine rejected its input outright; budget
    /// exhaustion is never an error.
    pub fn decompose_with_progress(
        &self,
        prep: &PreparedLayout,
        session: &mut Session<'_>,
        on_event: &mut dyn FnMut(Progress),
    ) -> Result<AdaptiveResult, MpldError> {
        let start = Instant::now();
        let n = prep.units.len();
        let graphs: Vec<&mpld_graph::LayoutGraph> = prep.units.iter().map(|u| &u.hetero).collect();
        if n == 0 {
            return Ok(empty_result(prep, &self.fw.params, start));
        }
        let total = session.policy.total_budget();
        let mut routed = RoutedUnits::default();
        self.fw.route_units_with(
            &graphs,
            &total,
            &mut routed,
            RouteBackend {
                frozen_sel: &self.frozen_sel,
                frozen_red: &self.frozen_red,
                shared: Some(&self.routing_memo),
                color: ColorDriver::Session(&self.frozen_color, &mut session.rng),
            },
        )?;
        let RoutedUnits {
            mut unit_results,
            mut unit_engines,
            mut usage,
            mut timing,
            guard_failed,
            selector_probs,
            mut audit_rejected,
            inference,
        } = routed;
        on_event(Progress::Routed {
            units: n,
            matched: usage.matching,
            colorgnn: usage.colorgnn,
            routing_memo_hits: inference.shared_memo_hits,
        });

        let mut budget_fallback = vec![false; n];
        let mut unit_time = vec![Duration::ZERO; n];
        let mut quarantines = Vec::new();
        let mut resumed_units = 0usize;
        let mut memo_hits = 0usize;

        // Resume: restore journaled tail units whose records survive the
        // audit (same ladder as the recoverable parallel path).
        if let Some(cp) = session.recovery.resume {
            for (i, g) in graphs.iter().enumerate() {
                if unit_results[i].is_some() {
                    continue;
                }
                let Some(e) = cp.get(i, crate::checkpoint::unit_fingerprint(g)) else {
                    continue;
                };
                match audit_coloring(g, &e.coloring, self.fw.params.k) {
                    Ok(recomputed) if recomputed == e.cost => {}
                    _ => continue,
                }
                unit_results[i] = Some(Decomposition {
                    coloring: e.coloring.clone(),
                    cost: e.cost,
                    certainty: e.certainty,
                });
                unit_engines[i] = Some(e.engine);
                budget_fallback[i] = e.budget_fallback;
                resumed_units += 1;
                match e.engine {
                    EngineKind::Ilp => usage.ilp += 1,
                    _ => usage.ec += 1,
                }
                on_event(Progress::Unit {
                    index: i,
                    engine: e.engine,
                    certainty: e.certainty,
                    cached: true,
                });
            }
        }

        // The ILP/EC tail, serially in unit order, consulting the
        // cross-request solution cache first.
        for (i, g) in graphs.iter().enumerate() {
            if unit_results[i].is_some() {
                continue;
            }
            let ec_first = guard_failed[i] || selector_probs[i][1] > self.fw.ec_threshold;
            let cache = &self.solutions[usize::from(ec_first)];
            if let Some(hit) = cache.get(g) {
                match hit.engine {
                    EngineKind::Ilp => usage.ilp += 1,
                    _ => usage.ec += 1,
                }
                memo_hits += 1;
                journal_record(session.recovery.journal, i, g, &hit.d, hit.engine, false);
                on_event(Progress::Unit {
                    index: i,
                    engine: hit.engine,
                    certainty: hit.d.certainty,
                    cached: true,
                });
                unit_results[i] = Some(hit.d.clone());
                unit_engines[i] = Some(hit.engine);
                continue;
            }
            let unit_budget = session.policy.unit_budget(&total);
            let solver_before = timing.ilp + timing.ec;
            let solve = self
                .fw
                .solve_tail_guarded(i, g, ec_first, &unit_budget, &mut timing);
            match solve.engine {
                EngineKind::Ilp => usage.ilp += 1,
                _ => usage.ec += 1,
            }
            budget_fallback[i] = solve.budget_fallback;
            unit_time[i] = timing.ilp + timing.ec - solver_before;
            audit_rejected[i] |= solve.audit_rejected;
            // Publish only deterministic solves: a budget-cut, audit-
            // rejected, or quarantined result depends on this request's
            // deadline or failure, not on the graph alone, and must not
            // be replayed for other requests.
            let cacheable = solve.quarantine.is_none()
                && !solve.budget_fallback
                && !solve.audit_rejected
                && matches!(
                    solve.d.certainty,
                    Certainty::Certified | Certainty::Heuristic
                );
            if cacheable {
                cache.insert(
                    g,
                    Arc::new(CachedSolve {
                        d: solve.d.clone(),
                        engine: solve.engine,
                    }),
                );
                // Flywheel: persist the fresh deterministic solve
                // (write-behind; cache hits are never re-appended).
                if let Some(store) = &self.store {
                    store.writer.append_solve(&mpld_store::StoredSolve {
                        graph: (*g).clone(),
                        ec_first,
                        engine: match solve.engine {
                            EngineKind::Ilp => mpld_store::TailEngine::Ilp,
                            _ => mpld_store::TailEngine::Ec,
                        },
                        certainty: solve.d.certainty,
                        coloring: solve.d.coloring.clone(),
                        cost: solve.d.cost,
                    });
                }
            }
            if let Some(q) = solve.quarantine {
                quarantines.push((i, q));
            }
            journal_record(
                session.recovery.journal,
                i,
                g,
                &solve.d,
                solve.engine,
                solve.budget_fallback,
            );
            on_event(Progress::Unit {
                index: i,
                engine: solve.engine,
                certainty: solve.d.certainty,
                cached: false,
            });
            unit_results[i] = Some(solve.d);
            unit_engines[i] = Some(solve.engine);
        }

        // Batch-flush the store appends once per request: one fsync per
        // request tail instead of one per solve.
        self.flush_store();

        Ok(finish(
            prep,
            &self.fw.params,
            FinishParts {
                unit_results,
                unit_engines,
                budget_fallback,
                unit_time,
                audit_rejected,
                usage,
                timing,
                memo_hits,
                inference,
                quarantines,
                resumed_units,
            },
            start,
        ))
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("framework", &self.fw)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        // Sessions move into worker threads (one per request).
        fn assert_send<T: Send>() {}
        assert_send::<Session<'static>>();
    }
}
