//! Bounded HTTP/1.1 request parsing for the handful of routes the
//! server owns.
//!
//! Every read is capped *before* it happens: the request line and each
//! header line are read through a byte-limited `take`, the header count
//! is bounded, and a `Content-Length` larger than the body cap is
//! rejected without allocating or reading the body. A hostile client can
//! therefore never force an unbounded read or allocation — malformed or
//! oversized requests get a fast typed status (400/411/413/431) and the
//! connection is closed.

use std::io::BufRead;

/// Hard caps applied while parsing one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Longest accepted request line (method + path + version), bytes.
    pub max_request_line_bytes: usize,
    /// Longest accepted single header line, bytes.
    pub max_header_line_bytes: usize,
    /// Most headers accepted on one request.
    pub max_headers: usize,
    /// Largest accepted request body, bytes (checked against
    /// `Content-Length` before any body byte is read).
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        Self {
            max_request_line_bytes: 8 << 10,
            max_header_line_bytes: 8 << 10,
            max_headers: 64,
            max_body_bytes: 2 << 20,
        }
    }
}

/// Typed request-rejection outcome: maps one-to-one onto the HTTP status
/// the connection is answered with before being closed.
#[derive(Debug)]
pub enum HttpError {
    /// `400 Bad Request` — syntactically broken request.
    Malformed(String),
    /// `411 Length Required` — body-bearing request without a
    /// `Content-Length` (chunked encoding is not supported).
    LengthRequired,
    /// `413 Content Too Large` — declared body exceeds the cap.
    BodyTooLarge { declared: usize, limit: usize },
    /// `431 Request Header Fields Too Large` — request line, a header
    /// line, or the header count exceeds its cap.
    TooLarge(&'static str),
    /// Transport failure mid-request (no response is owed).
    Io(std::io::Error),
}

impl HttpError {
    /// The HTTP status line this rejection is answered with (`None` for
    /// transport failures, which get no response).
    pub fn status(&self) -> Option<&'static str> {
        match self {
            HttpError::Malformed(_) => Some("400 Bad Request"),
            HttpError::LengthRequired => Some("411 Length Required"),
            HttpError::BodyTooLarge { .. } => Some("413 Content Too Large"),
            HttpError::TooLarge(_) => Some("431 Request Header Fields Too Large"),
            HttpError::Io(_) => None,
        }
    }

    /// One-line JSON error body describing the rejection.
    pub fn body(&self) -> String {
        match self {
            HttpError::Malformed(m) => format!("{{\"error\":\"bad request\",\"reason\":{m:?}}}"),
            HttpError::LengthRequired => "{\"error\":\"content-length required\"}".to_string(),
            HttpError::BodyTooLarge { declared, limit } => format!(
                "{{\"error\":\"body too large\",\"declared\":{declared},\"limit\":{limit}}}"
            ),
            HttpError::TooLarge(what) => {
                format!("{{\"error\":\"request too large\",\"what\":{what:?}}}")
            }
            HttpError::Io(e) => format!("{{\"error\":\"i/o\",\"reason\":{:?}}}", e.to_string()),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request: start line, query, and (for POST) the body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Raw query string (without the `?`), empty when absent.
    pub query: String,
    /// Body bytes (empty for bodyless methods).
    pub body: Vec<u8>,
}

impl Request {
    /// The first `key=value` query parameter named `key`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Reads one line (up to `\n`) of at most `cap` bytes; longer lines are
/// a [`HttpError::TooLarge`] attributed to `what`, not an unbounded read.
fn read_line_capped<R: BufRead>(
    reader: &mut R,
    cap: usize,
    what: &'static str,
) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    let n =
        std::io::Read::take(reader, cap.saturating_add(1) as u64).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.len() > cap && !buf.ends_with(b"\n") {
        return Err(HttpError::TooLarge(what));
    }
    let line = String::from_utf8_lossy(&buf);
    Ok(Some(line.trim_end_matches(['\n', '\r']).to_string()))
}

/// Reads and validates one request under `limits` (see module docs).
///
/// # Errors
///
/// A typed [`HttpError`] naming the status the connection should be
/// answered with before closing.
pub fn read_request<R: BufRead>(reader: &mut R, limits: &HttpLimits) -> Result<Request, HttpError> {
    let request_line = read_line_capped(reader, limits.max_request_line_bytes, "request line")?
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    if !parts.next().is_some_and(|v| v.starts_with("HTTP/1.")) {
        return Err(HttpError::Malformed(format!(
            "not an HTTP/1.x request line: {request_line:?}"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length: Option<usize> = None;
    let mut headers = 0usize;
    loop {
        let line = read_line_capped(reader, limits.max_header_line_bytes, "header line")?
            .ok_or_else(|| HttpError::Malformed("truncated headers".into()))?;
        if line.is_empty() {
            break;
        }
        headers += 1;
        if headers > limits.max_headers {
            return Err(HttpError::TooLarge("header count"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("malformed header {line:?}")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = Some(
                value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")))?,
            );
        }
    }

    let body = if method == "POST" || method == "PUT" {
        let declared = content_length.ok_or(HttpError::LengthRequired)?;
        if declared > limits.max_body_bytes {
            // Rejected before reading or allocating a single body byte.
            return Err(HttpError::BodyTooLarge {
                declared,
                limit: limits.max_body_bytes,
            });
        }
        let mut body = vec![0u8; declared];
        std::io::Read::read_exact(reader, &mut body)?;
        body
    } else {
        Vec::new()
    };

    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw), &HttpLimits::default())
    }

    #[test]
    fn well_formed_requests_parse() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("parses");
        assert_eq!((r.method.as_str(), r.path.as_str()), ("GET", "/healthz"));
        let r = parse(b"POST /decompose?seed=7&job_id=a HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody")
            .expect("parses");
        assert_eq!(r.body, b"body");
        assert_eq!(r.query_param("seed"), Some("7"));
        assert_eq!(r.query_param("job_id"), Some("a"));
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn oversized_request_line_is_431() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 64 << 10));
        let err = parse(&raw).expect_err("rejected");
        assert!(
            matches!(err, HttpError::TooLarge("request line")),
            "{err:?}"
        );
        assert_eq!(err.status(), Some("431 Request Header Fields Too Large"));
    }

    #[test]
    fn oversized_header_and_header_flood_are_431() {
        let mut raw = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 64 << 10));
        assert!(matches!(
            parse(&raw).expect_err("rejected"),
            HttpError::TooLarge("header line")
        ));
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..1000 {
            raw.extend(format!("X-{i}: v\r\n").into_bytes());
        }
        raw.extend(b"\r\n");
        assert!(matches!(
            parse(&raw).expect_err("rejected"),
            HttpError::TooLarge("header count")
        ));
    }

    #[test]
    fn oversized_body_is_413_without_reading_it() {
        // Declared 1 GiB with no actual body bytes behind it: must reject
        // on the declaration alone.
        let raw = b"POST /decompose HTTP/1.1\r\nContent-Length: 1073741824\r\n\r\n";
        let err = parse(raw).expect_err("rejected");
        assert!(matches!(err, HttpError::BodyTooLarge { .. }), "{err:?}");
        assert_eq!(err.status(), Some("413 Content Too Large"));
    }

    #[test]
    fn missing_length_and_garbage_are_typed() {
        assert!(matches!(
            parse(b"POST /decompose HTTP/1.1\r\n\r\n").expect_err("rejected"),
            HttpError::LengthRequired
        ));
        assert!(matches!(
            parse(b"\x00\x01\x02\r\n\r\n").expect_err("rejected"),
            HttpError::Malformed(_)
        ));
        assert!(matches!(
            parse(b"GET /x NOTHTTP\r\n\r\n").expect_err("rejected"),
            HttpError::Malformed(_)
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n").expect_err("rejected"),
            HttpError::Malformed(_)
        ));
    }
}
