//! Structural graph fingerprinting shared by the matcher's memo layers.
//!
//! A fingerprint is a cheap FNV-1a hash over a [`LayoutGraph`]'s exact
//! structure (node count, per-node feature labels, both sorted edge
//! lists). Two *identical* graphs always collide; two different graphs
//! almost never do — but callers that key caches on it must still verify
//! a hit with [`graphs_identical`] before reusing anything
//! order-sensitive (GNN embeddings are not bitwise
//! permutation-invariant, so only exact structural equality licenses
//! reuse).

use mpld_graph::LayoutGraph;

/// FNV-1a structural fingerprint of a layout graph.
///
/// Identical graphs (same node order, features and edge lists) hash
/// equally; the checkpoint journal and the framework's embedding memo
/// both key on this.
pub fn graph_fingerprint(g: &LayoutGraph) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut mix = |x: u64| {
        h = (h ^ x).wrapping_mul(0x100000001b3);
    };
    mix(g.num_nodes() as u64);
    for v in 0..g.num_nodes() as u32 {
        mix(u64::from(g.feature_of(v)) + 1);
    }
    for &(u, v) in g.conflict_edges() {
        mix((u64::from(u) << 32) | u64::from(v));
    }
    mix(0x5711);
    for &(u, v) in g.stitch_edges() {
        mix((u64::from(u) << 32) | u64::from(v));
    }
    h
}

/// Exact structural equality: same node count, same feature labels in
/// the same order, same (sorted) conflict and stitch edge lists. This is
/// the verification a fingerprint hit must pass before an embedding or
/// logit may be reused — stricter than isomorphism on purpose.
pub fn graphs_identical(a: &LayoutGraph, b: &LayoutGraph) -> bool {
    a.num_nodes() == b.num_nodes()
        && a.conflict_edges() == b.conflict_edges()
        && a.stitch_edges() == b.stitch_edges()
        && (0..a.num_nodes() as u32).all(|v| a.feature_of(v) == b.feature_of(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_graphs_share_a_fingerprint() {
        let a = LayoutGraph::homogeneous(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        let b = LayoutGraph::homogeneous(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&b));
        assert!(graphs_identical(&a, &b));
    }

    #[test]
    fn relabeled_graphs_differ() {
        // Isomorphic but differently labeled: equality must fail (and the
        // fingerprints differ, though that is not load-bearing).
        let a = LayoutGraph::homogeneous(3, vec![(0, 1)]).unwrap();
        let b = LayoutGraph::homogeneous(3, vec![(1, 2)]).unwrap();
        assert!(!graphs_identical(&a, &b));
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&b));
    }

    #[test]
    fn features_distinguish_graphs() {
        let a = LayoutGraph::new(vec![0, 1], vec![(0, 1)], vec![]).unwrap();
        let b = LayoutGraph::new(vec![1, 0], vec![(0, 1)], vec![]).unwrap();
        assert!(!graphs_identical(&a, &b));
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&b));
    }
}
