//! Parameter storage and optimizers (SGD and Adam).
//!
//! Each forward pass builds a fresh [`crate::Graph`]; trainable weights
//! live across passes in a [`ParamSet`]. Bind them into a graph with
//! [`ParamSet::bind`], backpropagate, then call [`ParamSet::apply_grads`]
//! followed by an optimizer step.

use crate::{Graph, Matrix, VarId};

/// Identifier of a parameter inside a [`ParamSet`].
pub type ParamId = usize;

/// Which update rule [`ParamSet::step`] applies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Plain stochastic gradient descent.
    Sgd,
    /// Adam with the standard `beta1 = 0.9`, `beta2 = 0.999`.
    Adam,
}

/// A set of trainable matrices with Adam moment buffers.
///
/// # Example
///
/// ```
/// use mpld_tensor::{Graph, Matrix, Optimizer, ParamSet};
///
/// // Fit w to minimize (3 - w)^2-ish via the tape: loss = (x*w - y)^2
/// let mut params = ParamSet::new(Optimizer::Adam);
/// let w = params.add(Matrix::from_vec(1, 1, vec![0.0]));
/// for _ in 0..500 {
///     let mut g = Graph::new();
///     let wv = params.bind(&mut g, w);
///     let x = g.input(Matrix::from_vec(1, 1, vec![1.0]));
///     let pred = g.matmul(x, wv);
///     // (pred - 3)^2 expressed with the available ops:
///     let minus3 = g.input(Matrix::from_vec(1, 1, vec![-3.0]));
///     let diff = g.add(pred, minus3);
///     let sq = g.matmul(diff, diff);
///     g.backward(sq);
///     params.apply_grads(&g);
///     params.step(0.05);
/// }
/// assert!((params.value(w).scalar() - 3.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct ParamSet {
    values: Vec<Matrix>,
    grads: Vec<Matrix>,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: u64,
    optimizer: Optimizer,
    bindings: Vec<(ParamId, VarId)>,
}

impl ParamSet {
    /// Creates an empty parameter set with the given update rule.
    pub fn new(optimizer: Optimizer) -> Self {
        ParamSet {
            values: Vec::new(),
            grads: Vec::new(),
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
            optimizer,
            bindings: Vec::new(),
        }
    }

    /// Registers a new parameter initialized to `init`.
    pub fn add(&mut self, init: Matrix) -> ParamId {
        let id = self.values.len();
        self.grads.push(Matrix::zeros(init.rows(), init.cols()));
        self.m.push(Matrix::zeros(init.rows(), init.cols()));
        self.v.push(Matrix::zeros(init.rows(), init.cols()));
        self.values.push(init);
        id
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.values.iter().map(|m| m.rows() * m.cols()).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id]
    }

    /// Overwrites a parameter value (used by tests and model loading).
    ///
    /// # Panics
    ///
    /// Panics if the shape differs from the registered shape.
    pub fn set_value(&mut self, id: ParamId, value: Matrix) {
        assert_eq!(
            (self.values[id].rows(), self.values[id].cols()),
            (value.rows(), value.cols()),
            "parameter shape mismatch"
        );
        self.values[id] = value;
    }

    /// Inserts the parameter into `graph` as a trainable leaf and records
    /// the binding for [`ParamSet::apply_grads`]. The value is copied into
    /// the graph's pooled arena, so re-binding every step allocates
    /// nothing once the tape has warmed up.
    pub fn bind(&mut self, graph: &mut Graph, id: ParamId) -> VarId {
        let var = graph.param_copied(&self.values[id]);
        self.bindings.push((id, var));
        var
    }

    /// Inserts the parameter into `graph` as a **constant** leaf: no
    /// gradient is tracked and no binding is recorded, so the set itself
    /// stays immutable. This is the inference-path counterpart of
    /// [`ParamSet::bind`] — it makes forward passes `&self` and therefore
    /// shareable across threads (per-call tape state lives in `graph`,
    /// never in the parameter set).
    pub fn bind_frozen(&self, graph: &mut Graph, id: ParamId) -> VarId {
        graph.input(self.values[id].clone())
    }

    /// Accumulates the gradients of all bound parameters from `graph`
    /// (after `graph.backward(..)`) and clears the bindings.
    ///
    /// Parameters that were bound but not reached by backprop contribute
    /// nothing.
    pub fn apply_grads(&mut self, graph: &Graph) {
        let bindings = std::mem::take(&mut self.bindings);
        for (pid, var) in bindings {
            if let Some(g) = graph.try_grad(var) {
                self.grads[pid].add_assign(g);
            }
        }
    }

    /// Debug hook: Frobenius norms of the accumulated gradients.
    #[doc(hidden)]
    pub fn debug_grad_norms(&self) -> Vec<f32> {
        self.grads.iter().map(|g| g.norm()).collect()
    }

    /// Sets all accumulated gradients to zero.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            for x in g.as_mut_slice() {
                *x = 0.0;
            }
        }
    }

    /// Writes all parameter values to `writer` in a simple binary format
    /// (magic, parameter count, then per-matrix rows/cols/LE f32 data).
    /// Optimizer state is not persisted.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_values<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        writer.write_all(b"MPLDW001")?;
        writer.write_all(&(self.values.len() as u64).to_le_bytes())?;
        for m in &self.values {
            writer.write_all(&(m.rows() as u64).to_le_bytes())?;
            writer.write_all(&(m.cols() as u64).to_le_bytes())?;
            for &x in m.as_slice() {
                writer.write_all(&x.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Restores parameter values previously written with
    /// [`ParamSet::write_values`]. The parameter count and every matrix
    /// shape must match this set's registered parameters.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a magic/count/shape mismatch and
    /// propagates reader errors.
    pub fn read_values<R: std::io::Read>(&mut self, mut reader: R) -> std::io::Result<()> {
        use std::io::{Error, ErrorKind};
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != b"MPLDW001" {
            return Err(Error::new(ErrorKind::InvalidData, "bad weight-file magic"));
        }
        let mut u64buf = [0u8; 8];
        reader.read_exact(&mut u64buf)?;
        let count = u64::from_le_bytes(u64buf) as usize;
        if count != self.values.len() {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!(
                    "parameter count mismatch: file {count}, model {}",
                    self.values.len()
                ),
            ));
        }
        for m in &mut self.values {
            reader.read_exact(&mut u64buf)?;
            let rows = u64::from_le_bytes(u64buf) as usize;
            reader.read_exact(&mut u64buf)?;
            let cols = u64::from_le_bytes(u64buf) as usize;
            if rows != m.rows() || cols != m.cols() {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    format!(
                        "shape mismatch: file {rows}x{cols}, model {}x{}",
                        m.rows(),
                        m.cols()
                    ),
                ));
            }
            let mut f32buf = [0u8; 4];
            for x in m.as_mut_slice() {
                reader.read_exact(&mut f32buf)?;
                *x = f32::from_le_bytes(f32buf);
            }
        }
        Ok(())
    }

    /// Applies one optimizer step with learning rate `lr`, consuming the
    /// accumulated gradients (which are zeroed afterwards).
    ///
    /// Both update rules run as a single fused pass per parameter: the
    /// gradient is read and zeroed in the same sweep that updates the
    /// moments and the weights, so no per-step gradient clone or separate
    /// zeroing pass remains. The per-element arithmetic is unchanged, so
    /// trajectories are bit-identical to the unfused update.
    pub fn step(&mut self, lr: f32) {
        self.t += 1;
        let Self {
            values,
            grads,
            m,
            v,
            t,
            optimizer,
            ..
        } = self;
        match optimizer {
            Optimizer::Sgd => {
                for (value, grad) in values.iter_mut().zip(grads.iter_mut()) {
                    for (val, gx) in value.as_mut_slice().iter_mut().zip(grad.as_mut_slice()) {
                        *val += -lr * *gx;
                        *gx = 0.0;
                    }
                }
            }
            Optimizer::Adam => {
                let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);
                let bc1 = 1.0 - b1.powi(*t as i32);
                let bc2 = 1.0 - b2.powi(*t as i32);
                for i in 0..values.len() {
                    for ((m, v), (gx, val)) in
                        m[i].as_mut_slice().iter_mut().zip(v[i].as_mut_slice()).zip(
                            grads[i]
                                .as_mut_slice()
                                .iter_mut()
                                .zip(values[i].as_mut_slice()),
                        )
                    {
                        let g = *gx;
                        *gx = 0.0;
                        *m = b1 * *m + (1.0 - b1) * g;
                        *v = b2 * *v + (1.0 - b2) * g * g;
                        let mhat = *m / bc1;
                        let vhat = *v / bc2;
                        *val -= lr * mhat / (vhat.sqrt() + eps);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_minimizes_quadratic() {
        // loss = (w - 5)^2 via tape.
        let mut ps = ParamSet::new(Optimizer::Sgd);
        let w = ps.add(Matrix::from_vec(1, 1, vec![0.0]));
        for _ in 0..200 {
            let mut g = Graph::new();
            let wv = ps.bind(&mut g, w);
            let c = g.input(Matrix::from_vec(1, 1, vec![-5.0]));
            let diff = g.add(wv, c);
            let sq = g.matmul(diff, diff);
            g.backward(sq);
            ps.apply_grads(&g);
            ps.step(0.1);
        }
        assert!((ps.value(w).scalar() - 5.0).abs() < 1e-3);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut ps = ParamSet::new(Optimizer::Adam);
        let w = ps.add(Matrix::from_vec(1, 1, vec![10.0]));
        for _ in 0..800 {
            let mut g = Graph::new();
            let wv = ps.bind(&mut g, w);
            let c = g.input(Matrix::from_vec(1, 1, vec![2.0]));
            let diff = g.add(wv, c); // w + 2, min at w = -2
            let sq = g.matmul(diff, diff);
            g.backward(sq);
            ps.apply_grads(&g);
            ps.step(0.05);
        }
        assert!((ps.value(w).scalar() + 2.0).abs() < 0.05);
    }

    #[test]
    fn zero_grads_clears_accumulation() {
        let mut ps = ParamSet::new(Optimizer::Sgd);
        let w = ps.add(Matrix::from_vec(1, 1, vec![1.0]));
        let mut g = Graph::new();
        let wv = ps.bind(&mut g, w);
        let out = g.scale_const(wv, 3.0);
        g.backward(out);
        ps.apply_grads(&g);
        ps.zero_grads();
        ps.step(1.0); // no-op update
        assert_eq!(ps.value(w).scalar(), 1.0);
    }

    #[test]
    fn weights_round_trip() {
        let mut a = ParamSet::new(Optimizer::Adam);
        let w1 = a.add(Matrix::from_rows(&[&[1.5, -2.5], &[0.25, 4.0]]));
        let w2 = a.add(Matrix::from_vec(1, 1, vec![7.125]));
        let mut buf = Vec::new();
        a.write_values(&mut buf).expect("write");
        let mut b = ParamSet::new(Optimizer::Adam);
        let _ = b.add(Matrix::zeros(2, 2));
        let _ = b.add(Matrix::zeros(1, 1));
        b.read_values(buf.as_slice()).expect("read");
        assert_eq!(b.value(0), a.value(w1));
        assert_eq!(b.value(1), a.value(w2));
    }

    #[test]
    fn weights_reject_shape_mismatch() {
        let mut a = ParamSet::new(Optimizer::Sgd);
        a.add(Matrix::zeros(2, 3));
        let mut buf = Vec::new();
        a.write_values(&mut buf).expect("write");
        let mut b = ParamSet::new(Optimizer::Sgd);
        b.add(Matrix::zeros(3, 2));
        assert!(b.read_values(buf.as_slice()).is_err());
        let mut c = ParamSet::new(Optimizer::Sgd);
        c.add(Matrix::zeros(2, 3));
        c.add(Matrix::zeros(1, 1));
        assert!(c.read_values(buf.as_slice()).is_err());
    }

    #[test]
    fn weights_reject_bad_magic() {
        let mut b = ParamSet::new(Optimizer::Sgd);
        b.add(Matrix::zeros(1, 1));
        assert!(b.read_values(&b"NOTMAGIC_____"[..]).is_err());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn set_value_rejects_wrong_shape() {
        let mut ps = ParamSet::new(Optimizer::Sgd);
        let w = ps.add(Matrix::zeros(2, 2));
        ps.set_value(w, Matrix::zeros(1, 2));
    }
}
