use crate::{feature_distance_sq, Feature, Rect};
use std::collections::HashMap;

/// A uniform-grid spatial index over layout features.
///
/// The grid cell size is chosen as the coloring distance `d` plus the median
/// feature extent, so conflict-pair queries only need to inspect a feature's
/// own cell and its eight neighbors after expanding by `d`.
///
/// # Example
///
/// ```
/// use mpld_geometry::{Feature, GridIndex, Rect};
/// let feats = vec![
///     Feature::new(0, vec![Rect::new(0, 0, 50, 10)]),
///     Feature::new(1, vec![Rect::new(0, 50, 50, 60)]),
///     Feature::new(2, vec![Rect::new(0, 500, 50, 510)]),
/// ];
/// let index = GridIndex::build(&feats, 100);
/// let pairs = index.conflict_pairs(&feats, 100);
/// assert_eq!(pairs, vec![(0, 1)]); // feature 2 is far away
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell: i64,
    /// Map from (cell x, cell y) to the indices (positions in the feature
    /// slice, not `FeatureId`s) of features whose bounding box overlaps it.
    cells: HashMap<(i64, i64), Vec<usize>>,
}

impl GridIndex {
    /// Builds an index over `features` suited to queries at distance `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d <= 0`.
    pub fn build(features: &[Feature], d: i64) -> Self {
        assert!(d > 0, "coloring distance must be positive");
        let cell = (2 * d).max(1);
        let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (idx, f) in features.iter().enumerate() {
            let bb = f.bounding_box();
            for key in Self::covered_cells(&bb, cell) {
                cells.entry(key).or_default().push(idx);
            }
        }
        GridIndex { cell, cells }
    }

    fn covered_cells(bb: &Rect, cell: i64) -> impl Iterator<Item = (i64, i64)> {
        let x0 = bb.xl.div_euclid(cell);
        let x1 = bb.xh.div_euclid(cell);
        let y0 = bb.yl.div_euclid(cell);
        let y1 = bb.yh.div_euclid(cell);
        (x0..=x1).flat_map(move |cx| (y0..=y1).map(move |cy| (cx, cy)))
    }

    /// Indices of features whose bounding box, expanded by `margin`, might
    /// be within `margin` of `bb`. Superset of the true answer; callers
    /// filter by exact distance.
    pub fn candidates_near(&self, bb: &Rect, margin: i64) -> Vec<usize> {
        let grown = bb.expanded(margin);
        let mut out: Vec<usize> = Self::covered_cells(&grown, self.cell)
            .filter_map(|key| self.cells.get(&key))
            .flatten()
            .copied()
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All unordered pairs `(i, j)` with `i < j` of features whose exact gap
    /// distance is strictly less than `d`.
    ///
    /// Touching or overlapping features (distance zero) are included: on a
    /// single routed layer they cannot be separated onto different masks
    /// anyway, and the benchmark generator never produces them.
    pub fn conflict_pairs(&self, features: &[Feature], d: i64) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        self.for_each_conflict_pair(features, d, |i, j| pairs.push((i, j)));
        pairs.sort_unstable();
        pairs
    }

    /// Visits every unordered conflict pair `(i, j)` with `i < j` exactly
    /// once, without allocating a pair vector or per-query candidate lists.
    ///
    /// One scratch buffer is reused across all features, so the hot path is
    /// allocation-free after warm-up. Pairs are emitted grouped by `i` but in
    /// no particular order within a group; callers that need sorted output
    /// should collect and sort (see [`GridIndex::conflict_pairs`]).
    pub fn for_each_conflict_pair<F>(&self, features: &[Feature], d: i64, mut emit: F)
    where
        F: FnMut(usize, usize),
    {
        let dd = d * d;
        let mut scratch: Vec<usize> = Vec::new();
        for (i, f) in features.iter().enumerate() {
            let grown = f.bounding_box().expanded(d);
            scratch.clear();
            scratch.extend(
                Self::covered_cells(&grown, self.cell)
                    .filter_map(|key| self.cells.get(&key))
                    .flatten()
                    .copied()
                    .filter(|&j| j > i),
            );
            scratch.sort_unstable();
            scratch.dedup();
            for &j in &scratch {
                if feature_distance_sq(f, &features[j]) < dd {
                    emit(i, j);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(id: u32, x: i64, y: i64, len: i64) -> Feature {
        Feature::new(id, vec![Rect::new(x, y, x + len, y + 20)])
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_distance_panics() {
        let _ = GridIndex::build(&[], 0);
    }

    #[test]
    fn pairs_match_bruteforce() {
        // A small deterministic layout covering same-cell and cross-cell pairs.
        let mut feats = Vec::new();
        let mut id = 0;
        for row in 0..6 {
            for col in 0..6 {
                feats.push(wire(id, col * 130, row * 90, 100));
                id += 1;
            }
        }
        let d = 120;
        let index = GridIndex::build(&feats, d);
        let got = index.conflict_pairs(&feats, d);

        let mut expect = Vec::new();
        for i in 0..feats.len() {
            for j in (i + 1)..feats.len() {
                if feature_distance_sq(&feats[i], &feats[j]) < d * d {
                    expect.push((i, j));
                }
            }
        }
        assert_eq!(got, expect);
        assert!(!got.is_empty());
    }

    #[test]
    fn far_features_have_no_pairs() {
        let feats = vec![wire(0, 0, 0, 50), wire(1, 10_000, 10_000, 50)];
        let index = GridIndex::build(&feats, 120);
        assert!(index.conflict_pairs(&feats, 120).is_empty());
    }

    #[test]
    fn negative_coordinates_are_indexed() {
        let feats = vec![wire(0, -500, -500, 50), wire(1, -500, -460, 50)];
        let index = GridIndex::build(&feats, 120);
        assert_eq!(index.conflict_pairs(&feats, 120), vec![(0, 1)]);
    }

    #[test]
    fn callback_matches_collected_pairs() {
        let mut feats = Vec::new();
        let mut id = 0;
        for row in 0..8 {
            for col in 0..8 {
                feats.push(wire(id, col * 110 - 400, row * 85 - 300, 90));
                id += 1;
            }
        }
        let d = 120;
        let index = GridIndex::build(&feats, d);
        let collected = index.conflict_pairs(&feats, d);

        let mut via_callback = Vec::new();
        index.for_each_conflict_pair(&feats, d, |i, j| {
            assert!(i < j, "callback must emit ordered pairs");
            via_callback.push((i, j));
        });
        via_callback.sort_unstable();
        assert_eq!(via_callback, collected);

        // Exactly-once: no duplicates even for features spanning many cells.
        let mut deduped = via_callback.clone();
        deduped.dedup();
        assert_eq!(deduped.len(), via_callback.len());
    }
}
