//! Property-based tests for the exact engines: both must be optimal
//! (checked against exhaustive search) and must agree with each other on
//! arbitrary heterogeneous layout graphs.

use mpld_graph::{DecomposeParams, Decomposer, LayoutGraph};
use mpld_ilp::encode::BipDecomposer;
use mpld_ilp::{brute_force, IlpDecomposer};
use proptest::prelude::*;

/// Random heterogeneous layout graph: up to 7 features, some split in two
/// subfeatures with a stitch edge.
fn arb_hetero() -> impl Strategy<Value = LayoutGraph> {
    (
        2usize..7,
        prop::collection::vec(prop::bool::ANY, 8),
        0u64..10_000,
    )
        .prop_map(|(nf, splits, seed)| {
            use rand::rngs::SmallRng;
            use rand::{Rng, SeedableRng};
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut node_feature = Vec::new();
            let mut stitch = Vec::new();
            let mut nodes_of = Vec::new();
            for f in 0..nf {
                let start = node_feature.len() as u32;
                if splits.get(f).copied().unwrap_or(false) {
                    node_feature.extend([f as u32; 2]);
                    stitch.push((start, start + 1));
                    nodes_of.push(vec![start, start + 1]);
                } else {
                    node_feature.push(f as u32);
                    nodes_of.push(vec![start]);
                }
            }
            let mut conflicts = Vec::new();
            for a in 0..nf {
                for b in (a + 1)..nf {
                    for &u in &nodes_of[a] {
                        for &v in &nodes_of[b] {
                            if rng.gen_bool(0.4) {
                                conflicts.push((u, v));
                            }
                        }
                    }
                }
            }
            LayoutGraph::new(node_feature, conflicts, stitch).expect("valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn colorbb_is_optimal(g in arb_hetero()) {
        if g.num_nodes() > 10 {
            return Ok(());
        }
        let p = DecomposeParams::tpl();
        let d = IlpDecomposer::new().decompose_unbounded(&g, &p);
        let bf = brute_force(&g, &p);
        prop_assert!((d.cost.value(0.1) - bf.cost.value(0.1)).abs() < 1e-9);
        // Reported cost matches independent evaluation.
        prop_assert_eq!(d.cost, g.evaluate(&d.coloring, 0.1));
    }

    #[test]
    fn both_exact_engines_agree(g in arb_hetero()) {
        let p = DecomposeParams::tpl();
        let a = IlpDecomposer::new().decompose_unbounded(&g, &p);
        let b = BipDecomposer::new().decompose_unbounded(&g, &p);
        prop_assert!((a.cost.value(0.1) - b.cost.value(0.1)).abs() < 1e-9,
            "BB {:?} vs BIP {:?}", a.cost, b.cost);
    }

    #[test]
    fn quadruple_never_costs_more_than_triple(g in arb_hetero()) {
        let t = IlpDecomposer::new().decompose_unbounded(&g, &DecomposeParams::tpl());
        let q = IlpDecomposer::new().decompose_unbounded(&g, &DecomposeParams::qpl());
        prop_assert!(q.cost.value(0.1) <= t.cost.value(0.1) + 1e-9);
    }

    #[test]
    fn precoloring_is_honored_when_feasible(g in arb_hetero(), pin_mask in 0u8..3) {
        use mpld_graph::{apply_precoloring, Precoloring};
        if g.num_nodes() == 0 || g.num_nodes() > 7 {
            return Ok(());
        }
        let p = DecomposeParams::tpl();
        let base = IlpDecomposer::new().decompose_unbounded(&g, &p);
        // Pin node 0 to `pin_mask`.
        let pre: Precoloring = [(0u32, pin_mask)].into_iter().collect();
        let (gadget, map) = apply_precoloring(&g, &pre, p.k).expect("valid pins");
        let d = IlpDecomposer::new().decompose_unbounded(&gadget, &p);
        let colors = map.extract(&d.coloring);
        // A single pin never changes the optimal cost (masks are symmetric),
        // and the pinned node must get its mask.
        prop_assert!((d.cost.value(0.1) - base.cost.value(0.1)).abs() < 1e-9);
        prop_assert_eq!(colors[0], pin_mask);
    }

    #[test]
    fn colorings_are_always_in_range(g in arb_hetero()) {
        let p = DecomposeParams::tpl();
        let d = IlpDecomposer::new().decompose_unbounded(&g, &p);
        prop_assert_eq!(d.coloring.len(), g.num_nodes());
        prop_assert!(d.coloring.iter().all(|&c| c < p.k));
    }
}
