//! Property-based gradient checking: random small computation graphs must
//! match central finite differences.

use mpld_tensor::{Adjacency, Graph, Matrix};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.5f32..1.5, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Builds `scalar(f(x))` for a fixed op chain, so we can probe ∂f/∂x.
fn chain(x: &Matrix, w: &Matrix, adj: &Arc<Adjacency>) -> (Graph, usize, usize) {
    let mut g = Graph::new();
    let xv = g.param(x.clone());
    let wv = g.param(w.clone());
    let agg = g.agg_sum(xv, adj.clone());
    let lin = g.matmul(agg, wv);
    let act = g.relu(lin);
    let pooled = g.sum_rows(act);
    let out_cols = w.cols();
    let loss = {
        let ones = g.input(Matrix::from_vec(out_cols, 1, vec![0.5; out_cols]));
        g.matmul(pooled, ones)
    };
    g.backward(loss);
    (g, xv, wv)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chained_ops_match_finite_differences(
        x in arb_matrix(4, 3),
        w in arb_matrix(3, 2),
    ) {
        // Path adjacency over 4 rows.
        let adj = Arc::new(Adjacency::new(vec![vec![1], vec![0, 2], vec![1, 3], vec![2]]));
        let (g, xv, _) = chain(&x, &w, &adj);
        let eps = 1e-2f32;
        let value = |m: &Matrix| -> f32 {
            let mut g2 = Graph::new();
            let xv2 = g2.input(m.clone());
            let wv2 = g2.input(w.clone());
            let agg = g2.agg_sum(xv2, adj.clone());
            let lin = g2.matmul(agg, wv2);
            let act = g2.relu(lin);
            let pooled = g2.sum_rows(act);
            let ones = g2.input(Matrix::from_vec(2, 1, vec![0.5; 2]));
            let loss = g2.matmul(pooled, ones);
            g2.value(loss).scalar()
        };
        for r in 0..4 {
            for c in 0..3 {
                let mut plus = x.clone();
                plus[(r, c)] += eps;
                let mut minus = x.clone();
                minus[(r, c)] -= eps;
                let fd = (value(&plus) - value(&minus)) / (2.0 * eps);
                let an = g.grad(xv)[(r, c)];
                // ReLU kinks can make FD noisy; accept either a close match
                // or proximity to a kink (output changed between probes).
                let kinked = (value(&plus) - value(&minus)).abs() > 0.0
                    && (an - fd).abs() >= 3e-2
                    && {
                        // Check sub-gradient window: re-probe with tiny eps.
                        let e2 = 1e-3f32;
                        let mut p2 = x.clone();
                        p2[(r, c)] += e2;
                        let mut m2 = x.clone();
                        m2[(r, c)] -= e2;
                        let fd2 = (value(&p2) - value(&m2)) / (2.0 * e2);
                        (an - fd2).abs() >= 3e-2
                    };
                prop_assert!(!kinked || (an - fd).abs() < 0.5,
                    "grad[{r},{c}] = {an} vs fd {fd}");
            }
        }
    }

    #[test]
    fn sum_then_scale_gradients(x in arb_matrix(3, 2), s in -2.0f32..2.0) {
        let mut g = Graph::new();
        let xv = g.param(x.clone());
        let scaled = g.scale_const(xv, s);
        let pooled = g.sum_rows(scaled);
        let ones = g.input(Matrix::from_vec(2, 1, vec![1.0; 2]));
        let loss = g.matmul(pooled, ones);
        g.backward(loss);
        for v in g.grad(xv).as_slice() {
            prop_assert!((v - s).abs() < 1e-5);
        }
    }
}

// ---------------------------------------------------------------------------
// Per-op oracles: for every tape op the RGCN and ColorGNN training paths
// use, the kernel-backed backward must match (a) central finite differences
// and (b) an independent naive-loop backward. The tape output is reduced to
// a scalar as `sum_rows(out · w)`, so the upstream gradient reaching the op
// is analytically `G[r][c] = w[c]` and the naive oracles can start from it.
// ---------------------------------------------------------------------------

/// Distinct per-column weights so transposition bugs change the loss.
fn col_weights(n: usize) -> Matrix {
    Matrix::from_vec(n, 1, (0..n).map(|c| 0.3 + 0.4 * c as f32).collect())
}

/// Reduces an `m x n` var to a scalar loss: `sum_rows(out · w)`.
fn scalarize(g: &mut Graph, out: usize, n: usize) -> usize {
    let w = g.input(col_weights(n));
    let prod = g.matmul(out, w);
    g.sum_rows(prod)
}

/// Central finite difference of `value` at `x0[(r, c)]`.
fn fd(value: &dyn Fn(&Matrix) -> f32, x0: &Matrix, r: usize, c: usize, eps: f32) -> f32 {
    let mut plus = x0.clone();
    plus[(r, c)] += eps;
    let mut minus = x0.clone();
    minus[(r, c)] -= eps;
    (value(&plus) - value(&minus)) / (2.0 * eps)
}

/// Matrix entries bounded away from zero (for kink-free ReLU probing).
fn arb_matrix_off_zero(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec((0.1f32..1.5, prop::bool::ANY), rows * cols).prop_map(move |v| {
        Matrix::from_vec(
            rows,
            cols,
            v.into_iter()
                .map(|(m, neg)| if neg { -m } else { m })
                .collect(),
        )
    })
}

/// Breaks column-max ties so argmax-based backward is FD-safe.
fn detie(mut x: Matrix) -> Matrix {
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            x[(r, c)] += 1e-3 * (r as f32) + 1e-4 * (c as f32);
        }
    }
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn matmul_backward_matches_fd_and_naive(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        let mut g = Graph::new();
        let av = g.param(a.clone());
        let bv = g.param(b.clone());
        let m = g.matmul(av, bv);
        let loss = scalarize(&mut g, m, 2);
        g.backward(loss);
        let w = col_weights(2);
        // Naive oracle: G[i][c] = w[c]; dA = G Bᵀ, dB = Aᵀ G by triple loop.
        for i in 0..3 {
            for k in 0..4 {
                let mut want = 0.0f32;
                for c in 0..2 {
                    want += w[(c, 0)] * b[(k, c)];
                }
                prop_assert!((g.grad(av)[(i, k)] - want).abs() < 1e-4);
            }
        }
        for k in 0..4 {
            for c in 0..2 {
                let mut want = 0.0f32;
                for i in 0..3 {
                    want += a[(i, k)] * w[(c, 0)];
                }
                prop_assert!((g.grad(bv)[(k, c)] - want).abs() < 1e-4);
            }
        }
        let value = |m2: &Matrix| -> f32 {
            let mut g2 = Graph::new();
            let av2 = g2.input(m2.clone());
            let bv2 = g2.input(b.clone());
            let mm = g2.matmul(av2, bv2);
            let loss = scalarize(&mut g2, mm, 2);
            g2.value(loss).scalar()
        };
        for i in 0..3 {
            for k in 0..4 {
                let est = fd(&value, &a, i, k, 1e-2);
                prop_assert!((g.grad(av)[(i, k)] - est).abs() < 3e-2,
                    "dA[{i},{k}] {} vs fd {est}", g.grad(av)[(i, k)]);
            }
        }
    }

    #[test]
    fn add_and_add_row_backward(x in arb_matrix(3, 2), y in arb_matrix(3, 2), bias in arb_matrix(1, 2)) {
        let mut g = Graph::new();
        let xv = g.param(x.clone());
        let yv = g.param(y.clone());
        let bv = g.param(bias.clone());
        let s = g.add(xv, yv);
        let sb = g.add_row(s, bv);
        let loss = scalarize(&mut g, sb, 2);
        g.backward(loss);
        let w = col_weights(2);
        // Pass-through grads: dX = dY = G; dbias[c] = rows * w[c].
        for r in 0..3 {
            for c in 0..2 {
                prop_assert!((g.grad(xv)[(r, c)] - w[(c, 0)]).abs() < 1e-5);
                prop_assert!((g.grad(yv)[(r, c)] - w[(c, 0)]).abs() < 1e-5);
            }
        }
        for c in 0..2 {
            prop_assert!((g.grad(bv)[(0, c)] - 3.0 * w[(c, 0)]).abs() < 1e-5);
        }
    }

    #[test]
    fn relu_backward_matches_naive(x in arb_matrix_off_zero(4, 3)) {
        let mut g = Graph::new();
        let xv = g.param(x.clone());
        let a = g.relu(xv);
        let loss = scalarize(&mut g, a, 3);
        g.backward(loss);
        let w = col_weights(3);
        for r in 0..4 {
            for c in 0..3 {
                let want = if x[(r, c)] > 0.0 { w[(c, 0)] } else { 0.0 };
                prop_assert!((g.grad(xv)[(r, c)] - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn scale_by_scalar_backward_matches_fd_and_naive(x in arb_matrix(3, 2), s in 0.2f32..2.0) {
        let mut g = Graph::new();
        let sv = g.param(Matrix::from_vec(1, 1, vec![s]));
        let xv = g.param(x.clone());
        let y = g.scale_by_scalar(xv, sv);
        let loss = scalarize(&mut g, y, 2);
        g.backward(loss);
        let w = col_weights(2);
        // dX = s * G; ds = Σ x ⊙ G.
        let mut ds = 0.0f32;
        for r in 0..3 {
            for c in 0..2 {
                prop_assert!((g.grad(xv)[(r, c)] - s * w[(c, 0)]).abs() < 1e-5);
                ds += x[(r, c)] * w[(c, 0)];
            }
        }
        prop_assert!((g.grad(sv).scalar() - ds).abs() < 1e-4);
        let value = |m: &Matrix| -> f32 {
            let mut g2 = Graph::new();
            let sv2 = g2.input(m.clone());
            let xv2 = g2.input(x.clone());
            let y2 = g2.scale_by_scalar(xv2, sv2);
            let loss = scalarize(&mut g2, y2, 2);
            g2.value(loss).scalar()
        };
        let est = fd(&value, &Matrix::from_vec(1, 1, vec![s]), 0, 0, 1e-2);
        prop_assert!((g.grad(sv).scalar() - est).abs() < 3e-2);
    }

    #[test]
    fn agg_sum_backward_matches_naive(
        x in arb_matrix(5, 2),
        nbrs in prop::collection::vec(prop::collection::vec(0u32..5, 0..4), 5),
    ) {
        let adj = Arc::new(Adjacency::new(nbrs.clone()));
        let mut g = Graph::new();
        let xv = g.param(x.clone());
        let a = g.agg_sum(xv, adj);
        let loss = scalarize(&mut g, a, 2);
        g.backward(loss);
        let w = col_weights(2);
        // dX[j] = Σ_{i : j ∈ adj[i]} G[i], with multiplicity.
        for j in 0..5 {
            for c in 0..2 {
                let mut want = 0.0f32;
                for (i, ns) in nbrs.iter().enumerate() {
                    let _ = i;
                    want += ns.iter().filter(|&&v| v as usize == j).count() as f32 * w[(c, 0)];
                }
                prop_assert!((g.grad(xv)[(j, c)] - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn max_readouts_backward_matches_naive(x0 in arb_matrix(5, 3)) {
        let x = detie(x0);
        // max_rows: gradient lands only on each column's argmax row.
        let mut g = Graph::new();
        let xv = g.param(x.clone());
        let m = g.max_rows(xv);
        let loss = scalarize(&mut g, m, 3);
        g.backward(loss);
        let w = col_weights(3);
        for c in 0..3 {
            // First-max-wins scan, mirroring the tape's strict `>`.
            let mut arg = 0usize;
            for r in 1..5 {
                if x[(r, c)] > x[(arg, c)] {
                    arg = r;
                }
            }
            for r in 0..5 {
                let want = if r == arg { w[(c, 0)] } else { 0.0 };
                prop_assert!((g.grad(xv)[(r, c)] - want).abs() < 1e-5);
            }
        }
        // segment_max over two segments behaves like per-segment max_rows.
        let seg = vec![0u32, 0, 0, 1, 1];
        let mut g2 = Graph::new();
        let xv2 = g2.param(x.clone());
        let sm = g2.segment_max(xv2, &seg, 2);
        let loss2 = scalarize(&mut g2, sm, 3);
        g2.backward(loss2);
        for (lo, hi) in [(0usize, 3usize), (3, 5)] {
            for c in 0..3 {
                let mut arg = lo;
                for r in lo + 1..hi {
                    if x[(r, c)] > x[(arg, c)] {
                        arg = r;
                    }
                }
                for r in lo..hi {
                    let want = if r == arg { w[(c, 0)] } else { 0.0 };
                    prop_assert!((g2.grad(xv2)[(r, c)] - want).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn sum_readouts_backward_matches_naive(x in arb_matrix(5, 3)) {
        // sum_rows and segment_sum both broadcast the upstream gradient.
        let mut g = Graph::new();
        let xv = g.param(x.clone());
        let s = g.sum_rows(xv);
        let loss = scalarize(&mut g, s, 3);
        g.backward(loss);
        let w = col_weights(3);
        for r in 0..5 {
            for c in 0..3 {
                prop_assert!((g.grad(xv)[(r, c)] - w[(c, 0)]).abs() < 1e-5);
            }
        }
        let seg = Arc::new(vec![0u32, 1, 0, 1, 1]);
        let mut g2 = Graph::new();
        let xv2 = g2.param(x.clone());
        let ss = g2.segment_sum(xv2, Arc::clone(&seg), 2);
        let loss2 = scalarize(&mut g2, ss, 3);
        g2.backward(loss2);
        for r in 0..5 {
            for c in 0..3 {
                prop_assert!((g2.grad(xv2)[(r, c)] - w[(c, 0)]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn row_normalize_backward_matches_fd_and_naive(x in arb_matrix_off_zero(4, 3)) {
        let mut g = Graph::new();
        let xv = g.param(x.clone());
        let y = g.row_l2_normalize(xv);
        let loss = scalarize(&mut g, y, 3);
        g.backward(loss);
        let w = col_weights(3);
        // Naive: dX_r = (G_r - y_r (y_r · G_r)) / ||x_r||.
        for r in 0..4 {
            let norm: f32 = x.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm <= 0.2 {
                // Near-zero rows make the normalization gradient stiff.
                return Ok(());
            }
            let yr: Vec<f32> = x.row(r).iter().map(|v| v / norm).collect();
            let dot: f32 = yr.iter().zip(0..3).map(|(y, c)| y * w[(c, 0)]).sum();
            for c in 0..3 {
                let want = (w[(c, 0)] - yr[c] * dot) / norm;
                prop_assert!((g.grad(xv)[(r, c)] - want).abs() < 1e-4,
                    "dX[{r},{c}] {} vs naive {want}", g.grad(xv)[(r, c)]);
            }
        }
        let value = |m: &Matrix| -> f32 {
            let mut g2 = Graph::new();
            let xv2 = g2.input(m.clone());
            let y2 = g2.row_l2_normalize(xv2);
            let loss = scalarize(&mut g2, y2, 3);
            g2.value(loss).scalar()
        };
        for r in 0..4 {
            for c in 0..3 {
                let est = fd(&value, &x, r, c, 1e-2);
                prop_assert!((g.grad(xv)[(r, c)] - est).abs() < 5e-2,
                    "dX[{r},{c}] {} vs fd {est}", g.grad(xv)[(r, c)]);
            }
        }
    }

    #[test]
    fn softmax_ce_backward_matches_fd_and_naive(
        logits in arb_matrix(3, 2),
        labels in prop::collection::vec(0u8..2, 3),
    ) {
        let labels = Arc::new(labels);
        let mut g = Graph::new();
        let lv = g.param(logits.clone());
        let loss = g.softmax_cross_entropy(lv, Arc::clone(&labels));
        g.backward(loss);
        // Naive: (softmax(row) - onehot) / n, max-subtracted like the tape.
        for r in 0..3 {
            let row = logits.row(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|v| (v - max).exp()).collect();
            let z: f32 = exps.iter().sum();
            for (c, &e) in exps.iter().enumerate() {
                let mut want = e / z;
                if labels[r] as usize == c {
                    want -= 1.0;
                }
                want /= 3.0;
                prop_assert!((g.grad(lv)[(r, c)] - want).abs() < 1e-5);
            }
        }
        let value = |m: &Matrix| -> f32 {
            let mut g2 = Graph::new();
            let lv2 = g2.input(m.clone());
            let loss = g2.softmax_cross_entropy(lv2, Arc::clone(&labels));
            g2.value(loss).scalar()
        };
        for r in 0..3 {
            for c in 0..2 {
                let est = fd(&value, &logits, r, c, 1e-2);
                prop_assert!((g.grad(lv)[(r, c)] - est).abs() < 3e-2);
            }
        }
    }

    #[test]
    fn margin_pair_loss_backward_matches_fd_and_naive(x in arb_matrix(4, 2)) {
        let edges = Arc::new(vec![(0u32, 1u32), (1, 2), (2, 3), (0, 3)]);
        let margin = 1.0f32;
        // Keep every hinge away from its kink so FD is valid.
        for &(u, v) in edges.iter() {
            let d2: f32 = x
                .row(u as usize)
                .iter()
                .zip(x.row(v as usize))
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum();
            if (margin - d2).abs() <= 0.05 {
                // Too close to the hinge kink for finite differences.
                return Ok(());
            }
        }
        let mut g = Graph::new();
        let xv = g.param(x.clone());
        let loss = g.margin_pair_loss(xv, Arc::clone(&edges), margin);
        g.backward(loss);
        // Naive: active edges contribute -2(x_u - x_v) to u and +2(x_u - x_v) to v.
        let mut want = Matrix::zeros(4, 2);
        for &(u, v) in edges.iter() {
            let (u, v) = (u as usize, v as usize);
            let d2: f32 = x
                .row(u)
                .iter()
                .zip(x.row(v))
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum();
            if margin - d2 > 0.0 {
                for c in 0..2 {
                    let diff = x[(u, c)] - x[(v, c)];
                    want[(u, c)] -= 2.0 * diff;
                    want[(v, c)] += 2.0 * diff;
                }
            }
        }
        for r in 0..4 {
            for c in 0..2 {
                prop_assert!((g.grad(xv)[(r, c)] - want[(r, c)]).abs() < 1e-4);
            }
        }
        let value = |m: &Matrix| -> f32 {
            let mut g2 = Graph::new();
            let xv2 = g2.input(m.clone());
            let loss = g2.margin_pair_loss(xv2, Arc::clone(&edges), margin);
            g2.value(loss).scalar()
        };
        for r in 0..4 {
            for c in 0..2 {
                let est = fd(&value, &x, r, c, 1e-3);
                prop_assert!((g.grad(xv)[(r, c)] - est).abs() < 5e-2);
            }
        }
    }
}
