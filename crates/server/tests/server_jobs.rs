//! Durable-job integration tests: journaled resume across a simulated
//! kill -9 + restart, header-mismatch restarts, idempotent re-POSTs,
//! and concurrent `GET /jobs/<id>` reattach.
//!
//! A "restart" here is a new `serve` loop over a freshly trained engine
//! (training is deterministic, so it is bit-identical to the first) and
//! the same journal directory — exactly what a respawned process would
//! hold. The kill is simulated by truncating the journal mid-record,
//! which is the on-disk state a SIGKILL mid-append leaves behind; the
//! real-process variant (actual `kill -9`) runs in
//! `scripts/server_smoke.sh`.

mod util;

use mpld::RunSummary;
use mpld_server::ServerConfig;
use std::path::Path;
use std::time::Duration;
use util::{done_line, post_decompose, scratch_dir, send_raw, tiny_engine, TestServer};

fn cfg_with_journal(dir: &Path) -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_depth: 8,
        read_timeout: Duration::from_secs(5),
        journal_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

/// The digest fields that must be bit-identical between runs.
fn digest(s: &RunSummary) -> (u32, u32, String, usize, usize, usize, usize) {
    (
        s.conflicts,
        s.stitches,
        format!("{:.17e}", s.objective),
        s.matching,
        s.colorgnn,
        s.ec,
        s.ilp,
    )
}

/// Chops the journal to its header plus two whole records plus a torn
/// half-record — the on-disk state of a journal whose writer was killed
/// mid-append.
fn tear_journal(path: &Path) {
    let text = std::fs::read_to_string(path).expect("journal readable");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= 4,
        "need a header and >=3 records to tear, got {} lines",
        lines.len()
    );
    let mut torn = lines[..3].join("\n");
    torn.push('\n');
    torn.push_str(&lines[3][..lines[3].len() / 2]); // no trailing newline
    std::fs::write(path, torn).expect("tear journal");
}

#[test]
fn killed_job_resumes_bit_identical_after_restart() {
    let dir = scratch_dir("resume");
    let body = r#"{"circuit":"C432","seed":7,"job_id":"killjob"}"#;

    // Uninterrupted oracle run on server A (all units forced to the
    // journaled ILP/EC tail).
    let server_a = TestServer::start(tiny_engine(false), cfg_with_journal(&dir));
    let r1 = post_decompose(server_a.addr, body);
    assert!(r1.starts_with("HTTP/1.1 200 OK"), "{r1}");
    assert!(r1.contains("\"journal\":true,\"restarted\":false"), "{r1}");
    let oracle = RunSummary::parse(done_line(&r1)).expect("summary parses");
    assert_eq!(oracle.resumed_units, 0, "{oracle:?}");
    server_a.stop();

    // Simulated kill -9: the journal survives with a torn tail.
    let journal = dir.join("killjob.jsonl");
    assert!(journal.exists(), "journal must exist at {journal:?}");
    tear_journal(&journal);

    // Server B: fresh (bit-identical) engine, same journal dir. The
    // re-POSTed job resumes from the journal instead of starting over.
    let server_b = TestServer::start(tiny_engine(false), cfg_with_journal(&dir));
    let r2 = post_decompose(server_b.addr, body);
    assert!(r2.starts_with("HTTP/1.1 200 OK"), "{r2}");
    let resumed = RunSummary::parse(done_line(&r2)).expect("summary parses");
    assert!(
        resumed.resumed_units >= 2,
        "torn journal kept 2 whole records: {resumed:?}"
    );
    assert_eq!(
        digest(&resumed),
        digest(&oracle),
        "resumed digest must be bit-identical to the uninterrupted run"
    );

    // Reattaching to the finished job replays the same done line.
    let attach = send_raw(
        server_b.addr,
        b"GET /jobs/killjob HTTP/1.1\r\nHost: test\r\n\r\n",
    );
    assert_eq!(done_line(&attach), done_line(&r2));

    // Journal counters surfaced via /stats.
    let stats = send_raw(server_b.addr, b"GET /stats HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(stats.contains("\"resumed_units\":"), "{stats}");
    server_b.stop();
}

#[test]
fn header_mismatch_restarts_job_from_scratch() {
    let dir = scratch_dir("mismatch");

    // Seed the journal for job id "hdr" with a C432 run.
    let server_a = TestServer::start(tiny_engine(false), cfg_with_journal(&dir));
    let r = post_decompose(
        server_a.addr,
        r#"{"circuit":"C432","seed":7,"job_id":"hdr"}"#,
    );
    assert!(r.starts_with("HTTP/1.1 200 OK"), "{r}");
    server_a.stop();
    assert!(dir.join("hdr.jsonl").exists());

    // Re-use the id for a *different layout*: the C432 journal's header
    // no longer matches, so the job must restart from scratch — no
    // silent reuse of foreign records.
    let server_b = TestServer::start(tiny_engine(false), cfg_with_journal(&dir));
    let r = post_decompose(
        server_b.addr,
        r#"{"circuit":"C499","seed":7,"job_id":"hdr"}"#,
    );
    assert!(r.starts_with("HTTP/1.1 200 OK"), "{r}");
    assert!(r.contains("\"restarted\":true"), "{r}");
    let restarted = RunSummary::parse(done_line(&r)).expect("summary parses");
    assert_eq!(restarted.layout, "C499");
    assert_eq!(
        restarted.resumed_units, 0,
        "no record of the foreign journal may be reused: {restarted:?}"
    );

    // The restarted job's digest equals a clean C499 run.
    let clean = post_decompose(
        server_b.addr,
        r#"{"circuit":"C499","seed":7,"job_id":"hdr-clean"}"#,
    );
    let clean = RunSummary::parse(done_line(&clean)).expect("summary parses");
    assert_eq!(digest(&restarted), digest(&clean));

    let stats = send_raw(server_b.addr, b"GET /stats HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(
        stats.contains("\"journal_restarts\":1"),
        "restart must be counted: {stats}"
    );
    server_b.stop();
}

#[test]
fn identical_reposts_are_idempotent_and_seeds_derive_distinct_ids() {
    let server = TestServer::start(tiny_engine(true), ServerConfig::default());
    let body = r#"{"circuit":"C432","seed":11}"#;

    let first = post_decompose(server.addr, body);
    assert!(first.starts_with("HTTP/1.1 200 OK"), "{first}");
    let second = post_decompose(server.addr, body);

    // Byte-identical request, no explicit id: the derived id maps the
    // re-POST onto the same job, whose log is replayed verbatim.
    assert_eq!(done_line(&first), done_line(&second));
    let job_line = |r: &str| {
        r.lines()
            .find(|l| l.starts_with("{\"event\":\"job\""))
            .map(str::to_string)
            .unwrap_or_else(|| panic!("no job event in {r}"))
    };
    assert_eq!(job_line(&first), job_line(&second));

    // A different seed derives a different job id (and a fresh run).
    let other = post_decompose(server.addr, r#"{"circuit":"C432","seed":12}"#);
    assert_ne!(job_line(&first), job_line(&other));

    // Invalid explicit ids are rejected with a typed 400.
    let bad = post_decompose(server.addr, r#"{"circuit":"C432","job_id":"../escape"}"#);
    assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
    assert!(bad.contains("invalid job_id"), "{bad}");
    server.stop();
}

#[test]
fn concurrent_reattach_replays_the_full_event_log() {
    let cfg = ServerConfig {
        workers: 3,
        queue_depth: 8,
        read_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    let server = TestServer::start(tiny_engine(false), cfg);
    let addr = server.addr;

    // Run the job on one connection while this thread races GETs at it.
    let runner = std::thread::spawn(move || {
        post_decompose(addr, r#"{"circuit":"C499","seed":3,"job_id":"attach"}"#)
    });

    // Poll until the job is claimable, then stream it to completion —
    // whether we land mid-flight or after the job finished, the reattach
    // must replay the log from the first event.
    let mut attach = String::new();
    for _ in 0..200 {
        let r = send_raw(addr, b"GET /jobs/attach HTTP/1.1\r\nHost: test\r\n\r\n");
        if r.starts_with("HTTP/1.1 200 OK") {
            attach = r;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let posted = runner.join().expect("runner thread");
    assert!(posted.starts_with("HTTP/1.1 200 OK"), "{posted}");
    assert!(!attach.is_empty(), "reattach never succeeded");

    // Full replay: the attach stream starts at the job event and ends
    // with the same done line the runner saw.
    let first_event = attach
        .lines()
        .find(|l| l.starts_with('{'))
        .unwrap_or_default();
    assert!(first_event.starts_with("{\"event\":\"job\""), "{attach}");
    assert_eq!(done_line(&attach), done_line(&posted));

    // Both streams carry the same unit events, in order.
    let units = |r: &str| {
        r.lines()
            .filter(|l| l.starts_with("{\"event\":\"unit\""))
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    assert_eq!(units(&attach), units(&posted));
    assert!(!units(&posted).is_empty());

    // Unknown ids stay 404.
    let missing = send_raw(addr, b"GET /jobs/never-was HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    server.stop();
}
