//! `mpld` — command-line front end for the adaptive layout decomposition
//! framework.
//!
//! ```text
//! mpld list                                  # the benchmark circuits
//! mpld generate C432 -o c432.layout          # write a layout file
//! mpld stats C432                            # population statistics
//! mpld decompose C432 --engine ec            # one-engine decomposition
//! mpld train -o model.bin --circuits C499,C880 --epochs 12
//! mpld adaptive C432 --model model.bin       # adaptive decomposition
//! ```
//!
//! Layout arguments accept either a benchmark circuit name or a path to a
//! file in the text interchange format (see `mpld-layout::read_layout`).

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        // Typed solver errors (exit 1) vs usage/environment problems (exit 2).
        Err(e @ commands::CliError::Solver(_)) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
        Err(e @ commands::CliError::Usage(_)) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
