//! Tape-free frozen inference engines.
//!
//! [`RgcnClassifier`](crate::RgcnClassifier) and
//! [`ColorGnn`](crate::ColorGnn) record every forward pass on an autodiff
//! tape — the right thing during training, pure overhead at inference:
//! per-op output allocation, per-call re-folding of the basis
//! decomposition `W_e = Σ_b δ_eb V_b`, and feature-matrix copies. The
//! frozen twins here are compiled once from a trained model
//! ([`RgcnClassifier::freeze`](crate::RgcnClassifier::freeze) /
//! [`ColorGnn::freeze`](crate::ColorGnn::freeze)) and run the same
//! arithmetic through [`mpld_tensor::infer`]'s scratch-buffer primitives:
//! weights are folded at freeze time, buffers come from a reusable pool
//! (zero heap allocation per unit after warmup), and routing inference
//! over a layout's units runs as one block-diagonal mega-forward.
//!
//! Bit-identity: every primitive reproduces its tape op's accumulation
//! order and dispatches to the same GEMM microkernel, so on any given
//! batch the frozen outputs equal the tape outputs to the last bit.
//! The tape path stays as the training engine and correctness oracle —
//! `tests/frozen_equivalence.rs` property-tests the equivalence.

use crate::encoding::InferBatch;
use crate::rgcn::Readout;
use mpld_graph::{Budget, Certainty, DecomposeParams, Decomposition, LayoutGraph, MpldError};
use mpld_tensor::infer::{
    add_assign_slice, add_row_in_place, gemm_into, relu_in_place, row_l2_normalize_in_place,
    segment_max_into, segment_sum_into, softmax_rows_in_place, spmm_into, Csr, Scratch,
    ScratchPool,
};
use mpld_tensor::quant::{f16_from_f32_slice, spmm_f16_into, spmm_f32_wide, QuantGemm};
use mpld_tensor::{F16Matrix, Matrix, Precision, QuantMatrix};
use rand::rngs::SmallRng;
use rand::Rng;

/// One frozen RGCN layer: per-edge-type weights with the basis
/// decomposition already folded, plus the self-connection weight.
#[derive(Debug, Clone)]
pub(crate) struct FrozenLayer {
    /// `[conflict, stitch]` folded `W_e` (din x dout).
    pub(crate) w_edge: [Matrix; 2],
    /// Self-connection weight (din x dout).
    pub(crate) w_self: Matrix,
}

/// Everything a routing pass needs from one forward, computed in a
/// single traversal of the batch (the tape path needs two: one for
/// probabilities, one for embeddings).
#[derive(Debug, Clone, Default)]
pub struct FrozenOutputs {
    /// Per-graph class probabilities.
    pub probs: Vec<Vec<f32>>,
    /// Per-graph pooled embeddings (`D` floats each).
    pub graph_embeddings: Vec<Vec<f32>>,
    /// Per-graph node-embedding matrices (`n_g x D`), present only when
    /// requested via [`FrozenRgcn::infer_encoded`].
    pub node_embeddings: Vec<Matrix>,
}

/// One quantized RGCN layer: the folded per-edge-type and self weights
/// stored in a reduced-precision plane `W` ([`F16Matrix`] or
/// [`QuantMatrix`]).
#[derive(Debug, Clone)]
struct QuantLayer<W> {
    w_edge: [W; 2],
    w_self: W,
}

/// A full reduced-precision twin of the frozen model: backbone layers
/// plus the MLP head weights (biases stay f32 — they are added once per
/// row, so shrinking them buys nothing and costs accuracy).
#[derive(Debug, Clone)]
struct QuantPlanes<W> {
    layers: Vec<QuantLayer<W>>,
    head: Vec<(W, Matrix)>,
}

impl<W: QuantGemm> QuantPlanes<W> {
    fn compile(
        layers: &[FrozenLayer],
        head: &[(Matrix, Matrix)],
        quant: impl Fn(&Matrix) -> W,
    ) -> Self {
        QuantPlanes {
            layers: layers
                .iter()
                .map(|l| QuantLayer {
                    w_edge: [quant(&l.w_edge[0]), quant(&l.w_edge[1])],
                    w_self: quant(&l.w_self),
                })
                .collect(),
            head: head.iter().map(|(w, b)| (quant(w), b.clone())).collect(),
        }
    }
}

/// A tape-free RGCN classifier compiled by
/// [`RgcnClassifier::freeze`](crate::RgcnClassifier::freeze).
///
/// Besides the bit-exact f32 plane, freezing also compiles an f16 and a
/// per-row int8 plane of every weight (see [`mpld_tensor::quant`]), so
/// callers can trade the last bits of the forward pass for throughput
/// via [`FrozenRgcn::infer_encoded_with`]. The quantized planes promise
/// tolerance, not identity — routing callers gate their decisions and
/// fall back to f32 (the trust ladder in `mpld-core`).
#[derive(Debug)]
pub struct FrozenRgcn {
    layers: Vec<FrozenLayer>,
    /// MLP head (weight, bias) pairs.
    head: Vec<(Matrix, Matrix)>,
    readout: Readout,
    f16: QuantPlanes<F16Matrix>,
    q8: QuantPlanes<QuantMatrix>,
    pool: ScratchPool,
}

impl FrozenRgcn {
    pub(crate) fn from_parts(
        layers: Vec<FrozenLayer>,
        head: Vec<(Matrix, Matrix)>,
        readout: Readout,
    ) -> Self {
        assert!(!layers.is_empty(), "frozen model needs at least one layer");
        assert!(!head.is_empty(), "frozen model needs a head");
        let f16 = QuantPlanes::compile(&layers, &head, F16Matrix::from_matrix);
        let q8 = QuantPlanes::compile(&layers, &head, QuantMatrix::from_matrix);
        FrozenRgcn {
            layers,
            head,
            readout,
            f16,
            q8,
            pool: ScratchPool::new(),
        }
    }

    /// Embedding width.
    pub fn embedding_dim(&self) -> usize {
        #[allow(clippy::expect_used)] // non-empty, checked at construction
        self.layers.last().expect("layers nonempty").w_self.cols()
    }

    /// Peak scratch bytes checked out by this model's forwards so far.
    pub fn scratch_high_water_bytes(&self) -> usize {
        self.pool.high_water_bytes()
    }

    /// The backbone over a (block-diagonal) batch; returns the checked
    /// out `n x D` node-embedding buffer, which the caller must `put`
    /// back.
    fn backbone_into(&self, enc: &InferBatch, s: &mut Scratch) -> Vec<f32> {
        let n = enc.num_nodes();
        let mut owned: Option<Vec<f32>> = None;
        for layer in &self.layers {
            let (din, dout) = (layer.w_self.rows(), layer.w_self.cols());
            let h: &[f32] = owned.as_deref().unwrap_or(&enc.features);
            let mut agg = s.take_dirty(n * din);
            let mut sum = s.take_dirty(n * dout);
            let mut tmp = s.take_dirty(n * dout);
            // Same accumulation order as the tape backbone:
            // (msg_conflict + msg_stitch) + own, then ReLU.
            spmm_into(&enc.conflict, h, din, &mut agg);
            gemm_into(n, din, dout, &agg, layer.w_edge[0].as_slice(), &mut sum);
            spmm_into(&enc.stitch, h, din, &mut agg);
            gemm_into(n, din, dout, &agg, layer.w_edge[1].as_slice(), &mut tmp);
            add_assign_slice(&mut sum, &tmp);
            gemm_into(n, din, dout, h, layer.w_self.as_slice(), &mut tmp);
            add_assign_slice(&mut sum, &tmp);
            relu_in_place(&mut sum);
            s.put(agg);
            s.put(tmp);
            if let Some(prev) = owned.take() {
                s.put(prev);
            }
            owned = Some(sum);
        }
        #[allow(clippy::expect_used)] // at least one layer, checked at construction
        owned.expect("at least one layer")
    }

    /// The quantized backbone: weights come from the plane `W`;
    /// activations stay f32 end to end. (An earlier revision converted
    /// the activations to f16 per layer to halve SpMM bandwidth, but at
    /// routing shapes — hidden dims ≤ 64, L1-resident — the forward is
    /// compute-bound and the conversion was pure overhead.) Accumulation
    /// stays f32 throughout, so the output differs from
    /// [`Self::backbone_into`] only by weight-quantization noise, not by
    /// algorithm.
    fn backbone_quant_into<W: QuantGemm>(
        layers: &[QuantLayer<W>],
        enc: &InferBatch,
        s: &mut Scratch,
    ) -> Vec<f32> {
        let n = enc.num_nodes();
        let mut owned: Option<Vec<f32>> = None;
        for layer in layers {
            let (din, dout) = (layer.w_self.rows(), layer.w_self.cols());
            let h: &[f32] = owned.as_deref().unwrap_or(&enc.features);
            let mut agg = s.take_dirty(n * din);
            let mut sum = s.take_dirty(n * dout);
            // Same accumulation order as the f32 backbone:
            // (msg_conflict + msg_stitch) + own, then ReLU. The SpMMs
            // are bit-identical to `spmm_into`, just on a wider unit,
            // and each fused accumulate adds a finished dot product onto
            // `sum` — per element exactly product-then-add.
            spmm_f32_wide(&enc.conflict, h, din, &mut agg);
            layer.w_edge[0].gemm_nn_into(n, &agg, &mut sum);
            spmm_f32_wide(&enc.stitch, h, din, &mut agg);
            layer.w_edge[1].gemm_nn_acc_into(n, &agg, &mut sum);
            layer.w_self.gemm_nn_acc_into(n, h, &mut sum);
            relu_in_place(&mut sum);
            s.put(agg);
            if let Some(prev) = owned.take() {
                s.put(prev);
            }
            owned = Some(sum);
        }
        #[allow(clippy::expect_used)] // at least one layer, checked at construction
        owned.expect("at least one layer")
    }

    /// The reduced-precision twin of [`Self::run`]: identical readout,
    /// head and softmax structure, with every GEMM drawn from the plane.
    fn run_quant<W: QuantGemm>(
        &self,
        planes: &QuantPlanes<W>,
        enc: &InferBatch,
        want_nodes: bool,
    ) -> FrozenOutputs {
        let k = enc.num_graphs();
        if k == 0 {
            return FrozenOutputs::default();
        }
        let d = self.embedding_dim();
        self.pool.with(|s| {
            let nodes = Self::backbone_quant_into(&planes.layers, enc, s);
            let mut pooled = s.take_dirty(k * d);
            match self.readout {
                Readout::Sum => segment_sum_into(&nodes, d, &enc.segment, k, &mut pooled),
                Readout::Max => segment_max_into(&nodes, d, &enc.segment, k, &mut pooled),
            }
            let graph_embeddings: Vec<Vec<f32>> =
                pooled.chunks_exact(d).map(<[f32]>::to_vec).collect();
            let node_embeddings = if want_nodes {
                (0..k)
                    .map(|i| {
                        let (lo, hi) = (enc.offsets[i], enc.offsets[i + 1]);
                        Matrix::from_vec(hi - lo, d, nodes[lo * d..hi * d].to_vec())
                    })
                    .collect()
            } else {
                Vec::new()
            };
            s.put(nodes);

            let mut x = pooled;
            let mut cols = d;
            let n_layers = planes.head.len();
            for (i, (w, b)) in planes.head.iter().enumerate() {
                let (din, dout) = (w.rows(), w.cols());
                debug_assert_eq!(din, cols, "head dims chain");
                let mut y = s.take_dirty(k * dout);
                w.gemm_nn_into(k, &x, &mut y);
                add_row_in_place(&mut y, dout, b.as_slice());
                if i + 1 < n_layers {
                    relu_in_place(&mut y);
                }
                s.put(x);
                x = y;
                cols = dout;
            }
            softmax_rows_in_place(&mut x, cols);
            let probs: Vec<Vec<f32>> = x.chunks_exact(cols).map(<[f32]>::to_vec).collect();
            s.put(x);
            FrozenOutputs {
                probs,
                graph_embeddings,
                node_embeddings,
            }
        })
    }

    fn run_with(&self, enc: &InferBatch, want_nodes: bool, precision: Precision) -> FrozenOutputs {
        match precision {
            Precision::F32 => self.run(enc, want_nodes),
            Precision::F16 => self.run_quant(&self.f16, enc, want_nodes),
            Precision::Int8 => self.run_quant(&self.q8, enc, want_nodes),
        }
    }

    fn run(&self, enc: &InferBatch, want_nodes: bool) -> FrozenOutputs {
        let k = enc.num_graphs();
        if k == 0 {
            return FrozenOutputs::default();
        }
        let d = self.embedding_dim();
        self.pool.with(|s| {
            let nodes = self.backbone_into(enc, s);
            let mut pooled = s.take_dirty(k * d);
            match self.readout {
                Readout::Sum => segment_sum_into(&nodes, d, &enc.segment, k, &mut pooled),
                Readout::Max => segment_max_into(&nodes, d, &enc.segment, k, &mut pooled),
            }
            let graph_embeddings: Vec<Vec<f32>> =
                pooled.chunks_exact(d).map(<[f32]>::to_vec).collect();
            let node_embeddings = if want_nodes {
                (0..k)
                    .map(|i| {
                        let (lo, hi) = (enc.offsets[i], enc.offsets[i + 1]);
                        Matrix::from_vec(hi - lo, d, nodes[lo * d..hi * d].to_vec())
                    })
                    .collect()
            } else {
                Vec::new()
            };
            s.put(nodes);

            // MLP head, then row softmax — same op order as the tape.
            let mut x = pooled;
            let mut cols = d;
            let n_layers = self.head.len();
            for (i, (w, b)) in self.head.iter().enumerate() {
                let (din, dout) = (w.rows(), w.cols());
                debug_assert_eq!(din, cols, "head dims chain");
                let mut y = s.take_dirty(k * dout);
                gemm_into(k, din, dout, &x, w.as_slice(), &mut y);
                add_row_in_place(&mut y, dout, b.as_slice());
                if i + 1 < n_layers {
                    relu_in_place(&mut y);
                }
                s.put(x);
                x = y;
                cols = dout;
            }
            softmax_rows_in_place(&mut x, cols);
            let probs: Vec<Vec<f32>> = x.chunks_exact(cols).map(<[f32]>::to_vec).collect();
            s.put(x);
            FrozenOutputs {
                probs,
                graph_embeddings,
                node_embeddings,
            }
        })
    }

    /// Full routing outputs (probabilities + graph + node embeddings)
    /// for an already-encoded batch, in one traversal.
    pub fn infer_encoded(&self, enc: &InferBatch) -> FrozenOutputs {
        self.run(enc, true)
    }

    /// Probabilities and graph embeddings only (skips materializing
    /// per-graph node matrices).
    pub fn predict_encoded(&self, enc: &InferBatch) -> FrozenOutputs {
        self.run(enc, false)
    }

    /// [`Self::infer_encoded`] at a chosen arithmetic precision.
    /// `F32` is bit-identical to the tape; `F16` / `Int8` run the
    /// quantized planes and promise closeness, not identity — callers
    /// making threshold decisions must margin-gate them (see the
    /// trust-ladder fallback in `mpld-core`).
    pub fn infer_encoded_with(&self, enc: &InferBatch, precision: Precision) -> FrozenOutputs {
        self.run_with(enc, true, precision)
    }

    /// [`Self::predict_encoded`] at a chosen arithmetic precision.
    pub fn predict_encoded_with(&self, enc: &InferBatch, precision: Precision) -> FrozenOutputs {
        self.run_with(enc, false, precision)
    }

    /// Class probabilities for a batch of graphs — the tape-free twin of
    /// [`RgcnClassifier::predict_batch`](crate::RgcnClassifier::predict_batch).
    ///
    /// # Panics
    ///
    /// Panics if any graph is empty.
    pub fn predict_batch(&self, graphs: &[&LayoutGraph]) -> Vec<Vec<f32>> {
        if graphs.is_empty() {
            return Vec::new();
        }
        self.run(&InferBatch::new(graphs), false).probs
    }

    /// Class probabilities for one graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty.
    pub fn predict(&self, graph: &LayoutGraph) -> Vec<f32> {
        let mut out = self.run(&InferBatch::single(graph), false);
        out.probs.swap_remove(0)
    }

    /// The pooled graph embedding (`D` floats).
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty.
    pub fn graph_embedding(&self, graph: &LayoutGraph) -> Vec<f32> {
        let mut out = self.run(&InferBatch::single(graph), false);
        out.graph_embeddings.swap_remove(0)
    }

    /// Final-layer node embeddings (`n x D`).
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty.
    pub fn node_embeddings(&self, graph: &LayoutGraph) -> Matrix {
        let mut out = self.run(&InferBatch::single(graph), true);
        out.node_embeddings.swap_remove(0)
    }
}

/// A tape-free ColorGNN compiled by
/// [`ColorGnn::freeze`](crate::ColorGnn::freeze): the per-layer
/// `(lambda_C, lambda_A)` scalars read out of the parameter set once.
///
/// All methods take the RNG explicitly so the owning [`ColorGnn`] keeps
/// its documented reseed semantics: the frozen engine draws from the
/// stream in exactly the same order as the tape path (beliefs first,
/// then per-layer neighbor sampling), so `reseed(s)` + frozen run
/// reproduces `reseed(s)` + tape run bit for bit.
#[derive(Debug)]
pub struct FrozenColorGnn {
    lambdas: Vec<(f32, f32)>,
    restarts: usize,
    sample_keep: f64,
    pool: ScratchPool,
}

impl FrozenColorGnn {
    pub(crate) fn from_parts(lambdas: Vec<(f32, f32)>, restarts: usize, sample_keep: f64) -> Self {
        assert!(!lambdas.is_empty(), "at least one layer");
        assert!(restarts > 0, "at least one restart");
        FrozenColorGnn {
            lambdas,
            restarts,
            sample_keep,
            pool: ScratchPool::new(),
        }
    }

    /// Peak scratch bytes checked out by this model's forwards so far.
    pub fn scratch_high_water_bytes(&self) -> usize {
        self.pool.high_water_bytes()
    }

    /// Rebuilds `csr` as a sampled conflict adjacency, drawing from the
    /// RNG in exactly the order of the tape path's `sampled_adjacency`.
    fn sampled_csr_into(
        &self,
        graph: &LayoutGraph,
        rng: &mut SmallRng,
        kept: &mut Vec<u32>,
        csr: &mut Csr,
    ) {
        csr.clear();
        for v in 0..graph.num_nodes() as u32 {
            let ns = graph.conflict_neighbors(v);
            if self.sample_keep >= 1.0 || ns.len() <= 1 {
                csr.push_row(ns.iter().copied());
                continue;
            }
            kept.clear();
            kept.extend(
                ns.iter()
                    .copied()
                    .filter(|_| rng.gen_bool(self.sample_keep)),
            );
            if kept.is_empty() {
                csr.push_row(std::iter::once(ns[rng.gen_range(0..ns.len())]));
            } else {
                csr.push_row(kept.iter().copied());
            }
        }
    }

    /// Fills `x` (`n x k` row-major) with the tape path's random belief
    /// initialization (same draw order, same normalization).
    fn random_beliefs_into(x: &mut [f32], k: usize, rng: &mut SmallRng) {
        for row in x.chunks_exact_mut(k) {
            let mut sum = 0.0;
            for v in row.iter_mut() {
                let r: f32 = rng.gen_range(0.05..1.0);
                *v = r;
                sum += r;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }

    /// One full forward from a fresh random initialization; returns the
    /// checked-out `n x k` belief buffer (caller must `put` it back).
    ///
    /// With `quant`, the per-layer message aggregation reads the belief
    /// matrix through an f16 plane (`h16` is the conversion scratch):
    /// ColorGNN has no weight matrices to quantize — its two lambdas are
    /// scalars — so its quantized tier is the half-bandwidth belief
    /// SpMM. The RNG draw order is unchanged, so restarts stay aligned
    /// with the f32 path.
    #[allow(clippy::too_many_arguments)]
    fn beliefs_into(
        &self,
        graph: &LayoutGraph,
        k: usize,
        rng: &mut SmallRng,
        s: &mut Scratch,
        csr: &mut Csr,
        kept: &mut Vec<u32>,
        quant: bool,
        h16: &mut Vec<u16>,
    ) -> Vec<f32> {
        let n = graph.num_nodes();
        let mut x = s.take(n * k);
        Self::random_beliefs_into(&mut x, k, rng);
        let mut m = s.take(n * k);
        for &(lc, la) in &self.lambdas {
            self.sampled_csr_into(graph, rng, kept, csr);
            if quant {
                h16.resize(n * k, 0);
                f16_from_f32_slice(&x, h16);
                spmm_f16_into(csr, h16, k, &mut m);
            } else {
                spmm_into(csr, &x, k, &mut m);
            }
            // Same three roundings as the tape: own = x*lc, msg = m*la,
            // mixed = own + msg.
            for (mv, &xv) in m.iter_mut().zip(x.iter()) {
                let own = xv * lc;
                let msg = *mv * la;
                *mv = own + msg;
            }
            row_l2_normalize_in_place(&mut m, k);
            std::mem::swap(&mut x, &mut m);
        }
        s.put(m);
        x
    }

    /// The tape path's argmax coloring of one belief row.
    fn argmax_row(row: &[f32]) -> u8 {
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(c, _)| c as u8)
    }

    /// Tape-free twin of [`ColorGnn::decompose_batch_tape`](crate::ColorGnn::decompose_batch_tape):
    /// identical restart schedule, budget checks, failpoints and RNG
    /// stream, so results are bit-identical given the same RNG state.
    ///
    /// # Panics
    ///
    /// Panics if any graph contains stitch edges.
    pub fn decompose_batch_with_rng(
        &self,
        graphs: &[&LayoutGraph],
        params: &DecomposeParams,
        budget: &Budget,
        rng: &mut SmallRng,
    ) -> Vec<Decomposition> {
        self.decompose_batch_with_rng_prec(graphs, params, budget, rng, Precision::F32)
    }

    /// [`Self::decompose_batch_with_rng`] at a chosen precision: `F16`
    /// and `Int8` both select the f16 belief plane (ColorGNN has no
    /// weights to store at int8). Colorings are discrete outputs of an
    /// iterative process, so quantized runs may legitimately pick
    /// different restart winners — the adaptive framework keeps its
    /// ColorGNN stage at f32 for digest stability and exposes this
    /// entry point for benches and offline use.
    ///
    /// # Panics
    ///
    /// Panics if any graph contains stitch edges.
    pub fn decompose_batch_with_rng_prec(
        &self,
        graphs: &[&LayoutGraph],
        params: &DecomposeParams,
        budget: &Budget,
        rng: &mut SmallRng,
        precision: Precision,
    ) -> Vec<Decomposition> {
        assert!(
            graphs.iter().all(|g| !g.has_stitches()),
            "ColorGNN handles non-stitch graphs only"
        );
        if graphs.is_empty() {
            return Vec::new();
        }
        let quant = precision != Precision::F32;
        let mut h16: Vec<u16> = Vec::new();
        let mut best: Vec<Option<Decomposition>> = vec![None; graphs.len()];
        let mut cut = false;
        let mut active: Vec<usize> = (0..graphs.len()).collect();
        let mut csr = Csr::default();
        let mut kept: Vec<u32> = Vec::new();
        // One arena for the whole call: the restart loop reuses it
        // without touching the pool mutex, so concurrent sessions never
        // contend between rounds.
        let mut arena = self.pool.lease();
        for round in 0..self.restarts {
            if active.is_empty() {
                break;
            }
            if round > 0 && budget.exhausted() {
                cut = true;
                break;
            }
            #[cfg(feature = "failpoints")]
            mpld_graph::failpoints::tick("colorgnn.restart");
            // Union graph over the active set, exactly as the tape path
            // builds it (the sampling order depends on the union's
            // neighbor lists, so the construction must match).
            let mut offsets = Vec::with_capacity(active.len() + 1);
            let mut union_edges: Vec<(u32, u32)> = Vec::new();
            let mut base = 0u32;
            for &gi in &active {
                offsets.push(base as usize);
                union_edges.extend(
                    graphs[gi]
                        .conflict_edges()
                        .iter()
                        .map(|&(a, b)| (a + base, b + base)),
                );
                base += graphs[gi].num_nodes() as u32;
            }
            offsets.push(base as usize);
            #[allow(clippy::expect_used)] // structural invariant
            let union = LayoutGraph::homogeneous(base as usize, union_edges)
                .expect("disjoint union of valid graphs is valid");

            let kc = params.k as usize;
            let colorings: Vec<Vec<u8>> = {
                let s = &mut *arena;
                let b = self.beliefs_into(&union, kc, rng, s, &mut csr, &mut kept, quant, &mut h16);
                let out = (0..active.len())
                    .map(|ai| {
                        let (lo, hi) = (offsets[ai], offsets[ai + 1]);
                        (lo..hi)
                            .map(|r| Self::argmax_row(&b[r * kc..(r + 1) * kc]))
                            .collect()
                    })
                    .collect();
                s.put(b);
                out
            };
            for (&gi, coloring) in active.iter().zip(colorings) {
                let cand = Decomposition::from_coloring(graphs[gi], coloring, params.alpha);
                let better = match &best[gi] {
                    None => true,
                    Some(b) => cand.cost.better_than(&b.cost, params.alpha),
                };
                if better {
                    best[gi] = Some(cand);
                }
            }
            active.retain(|&gi| best[gi].as_ref().map(|d| d.cost.conflicts) != Some(0));
        }
        let certainty = if cut {
            Certainty::BudgetExhausted
        } else {
            Certainty::Heuristic
        };
        best.into_iter()
            .map(|b| {
                #[allow(clippy::expect_used)] // round 0 always populates every slot
                #[cfg_attr(not(feature = "failpoints"), allow(unused_mut))]
                let mut d = b.expect("restarts > 0").with_certainty(certainty);
                #[cfg(feature = "failpoints")]
                mpld_graph::failpoints::corrupt_coloring(
                    "colorgnn.result",
                    &mut d.coloring,
                    params.k,
                );
                d
            })
            .collect()
    }

    /// Tape-free twin of [`ColorGnn::decompose_tape`](crate::ColorGnn::decompose_tape)
    /// (single graph, early exit on a conflict-free coloring).
    ///
    /// # Errors
    ///
    /// [`MpldError::Unsupported`] for stitch graphs; [`MpldError::Infeasible`]
    /// when no restart yields a coloring.
    pub fn decompose_with_rng(
        &self,
        graph: &LayoutGraph,
        params: &DecomposeParams,
        budget: &Budget,
        rng: &mut SmallRng,
    ) -> Result<Decomposition, MpldError> {
        if graph.has_stitches() {
            return Err(MpldError::Unsupported {
                engine: "ColorGNN",
                reason: "ColorGNN handles non-stitch graphs only; merge stitch edges first".into(),
            });
        }
        let n = graph.num_nodes();
        if n == 0 {
            return Decomposition::try_from_coloring(graph, Vec::new(), params.alpha);
        }
        let mut cut = false;
        let mut best: Option<Decomposition> = None;
        // One arena for the whole call (see `decompose_batch_with_rng_prec`).
        let mut arena = self.pool.lease();
        let mut csr = Csr::default();
        let mut kept: Vec<u32> = Vec::new();
        let mut h16: Vec<u16> = Vec::new();
        let kc = params.k as usize;
        for round in 0..self.restarts {
            if round > 0 && budget.exhausted() {
                cut = true;
                break;
            }
            #[cfg(feature = "failpoints")]
            mpld_graph::failpoints::tick("colorgnn.restart");
            let coloring = {
                let s = &mut *arena;
                let b = self.beliefs_into(graph, kc, rng, s, &mut csr, &mut kept, false, &mut h16);
                let coloring: Vec<u8> = (0..n)
                    .map(|r| Self::argmax_row(&b[r * kc..(r + 1) * kc]))
                    .collect();
                s.put(b);
                coloring
            };
            let cand = Decomposition::try_from_coloring(graph, coloring, params.alpha)?;
            let better = match &best {
                None => true,
                Some(b) => cand.cost.better_than(&b.cost, params.alpha),
            };
            if better {
                best = Some(cand);
            }
            if best.as_ref().map(|b| b.cost.conflicts) == Some(0) {
                break;
            }
        }
        let certainty = if cut {
            Certainty::BudgetExhausted
        } else {
            Certainty::Heuristic
        };
        match best {
            Some(d) => {
                #[cfg_attr(not(feature = "failpoints"), allow(unused_mut))]
                let mut d = d.with_certainty(certainty);
                #[cfg(feature = "failpoints")]
                mpld_graph::failpoints::corrupt_coloring(
                    "colorgnn.result",
                    &mut d.coloring,
                    params.k,
                );
                Ok(d)
            }
            None => Err(MpldError::Infeasible {
                engine: "ColorGNN",
                reason: "no restart produced a coloring".into(),
            }),
        }
    }
}
