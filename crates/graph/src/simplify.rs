//! Graph simplification pipeline and color recovery.
//!
//! The paper (Fig. 7) simplifies the raw layout graph before any
//! decomposition with the standard OpenMPL level-3 techniques:
//!
//! 1. **Independent component computation (ICC)** — connected components
//!    are decomposed independently.
//! 2. **Hide small degree** — a node with conflict degree `< k` can always
//!    be colored after its neighbors, so it is removed and pushed on a
//!    stack; recovery pops the stack and picks any free mask.
//! 3. **Biconnected decomposition** — components are further split at
//!    articulation points; block colorings are merged back by color
//!    permutation (see [`crate::BlockCutTree`]).
//!
//! The result is a set of small independent [`DecompUnit`]s. After each
//! unit is decomposed (by any engine), [`Simplified::recover`] reassembles
//! a full coloring whose cost is exactly the sum of unit costs — hidden
//! nodes and cut-vertex merging never introduce additional conflicts.

use crate::{biconnected_components, BlockCutTree, LayoutGraph, NodeId};

/// Which simplification steps to run (ICC always runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimplifyOptions {
    /// Iteratively hide nodes with conflict degree `< k`.
    pub hide_small_degree: bool,
    /// Split components at articulation points.
    pub biconnected: bool,
}

impl Default for SimplifyOptions {
    /// OpenMPL simplification level 3: everything on.
    fn default() -> Self {
        SimplifyOptions {
            hide_small_degree: true,
            biconnected: true,
        }
    }
}

/// One independent decomposition unit: a small homogeneous conflict graph
/// plus the map from its local node ids to global node ids.
#[derive(Debug, Clone)]
pub struct DecompUnit {
    /// The unit's conflict graph (homogeneous; stitch insertion happens
    /// later, per unit).
    pub graph: LayoutGraph,
    /// `global_nodes[local]` = global node id.
    pub global_nodes: Vec<NodeId>,
    /// Index of the parent connected component.
    pub component: usize,
    /// Index of this block inside the component's block-cut tree.
    pub block: usize,
}

/// Per-component bookkeeping needed to merge block colorings back.
#[derive(Debug, Clone)]
struct ComponentInfo {
    /// Global ids of the component's nodes; local ids are positions here.
    global_nodes: Vec<NodeId>,
    bct: BlockCutTree,
    /// `unit_of_block[b]` = index into `Simplified::units`.
    unit_of_block: Vec<usize>,
}

/// The output of [`simplify`]: decomposition units plus everything needed
/// for recovery.
#[derive(Debug, Clone)]
pub struct Simplified {
    units: Vec<DecompUnit>,
    components: Vec<ComponentInfo>,
    /// Hidden nodes in hiding order (recovered in reverse).
    hidden: Vec<NodeId>,
    num_nodes: usize,
}

/// The reassembled global coloring.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// Global node → mask.
    pub coloring: Vec<u8>,
    /// For each unit, the color permutation applied during merging
    /// (`perm[unit_color] = final_color`). Needed by callers that keep
    /// finer-grained colorings (e.g. stitch subfeatures) per unit.
    pub unit_permutations: Vec<[u8; 8]>,
}

/// Runs the simplification pipeline on a homogeneous conflict graph.
///
/// # Panics
///
/// Panics if `g` contains stitch edges (simplification precedes stitch
/// insertion) or if `k == 0`.
///
/// # Example
///
/// ```
/// use mpld_graph::simplify::{simplify, SimplifyOptions};
/// use mpld_graph::LayoutGraph;
///
/// // A path hangs off a K4; the path is hidden (degree < 3) and the K4
/// // remains as the single unit to decompose.
/// let g = LayoutGraph::homogeneous(
///     6,
///     vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)],
/// ).unwrap();
/// let s = simplify(&g, 3, SimplifyOptions::default());
/// assert_eq!(s.units().len(), 1);
/// assert_eq!(s.units()[0].graph.num_nodes(), 4);
/// ```
pub fn simplify(g: &LayoutGraph, k: u8, opts: SimplifyOptions) -> Simplified {
    assert!(
        !g.has_stitches(),
        "simplify operates on the homogeneous graph"
    );
    assert!(k > 0, "at least one mask required");
    let n = g.num_nodes();
    let mut active = vec![true; n];
    let mut degree: Vec<usize> = (0..n as u32).map(|v| g.conflict_degree(v)).collect();
    let mut hidden = Vec::new();

    if opts.hide_small_degree {
        let mut queue: Vec<NodeId> = (0..n as u32)
            .filter(|&v| degree[v as usize] < k as usize)
            .collect();
        while let Some(v) = queue.pop() {
            if !active[v as usize] {
                continue;
            }
            active[v as usize] = false;
            hidden.push(v);
            for &w in g.conflict_neighbors(v) {
                if active[w as usize] {
                    degree[w as usize] -= 1;
                    if degree[w as usize] < k as usize {
                        queue.push(w);
                    }
                }
            }
        }
    }

    // Connected components over the active subgraph.
    let mut comp = vec![usize::MAX; n];
    let mut comp_nodes: Vec<Vec<NodeId>> = Vec::new();
    for s in 0..n as u32 {
        if !active[s as usize] || comp[s as usize] != usize::MAX {
            continue;
        }
        let c = comp_nodes.len();
        let mut nodes = vec![s];
        comp[s as usize] = c;
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            for &w in g.conflict_neighbors(v) {
                if active[w as usize] && comp[w as usize] == usize::MAX {
                    comp[w as usize] = c;
                    nodes.push(w);
                    stack.push(w);
                }
            }
        }
        nodes.sort_unstable();
        comp_nodes.push(nodes);
    }

    let mut units = Vec::new();
    let mut components = Vec::new();
    for (ci, globals) in comp_nodes.into_iter().enumerate() {
        // Induced subgraph on active component nodes, with local ids.
        let mut local_of = std::collections::HashMap::new();
        for (i, &v) in globals.iter().enumerate() {
            local_of.insert(v, i as NodeId);
        }
        let mut edges = Vec::new();
        for &v in &globals {
            for &w in g.conflict_neighbors(v) {
                if v < w {
                    if let Some(&lw) = local_of.get(&w) {
                        edges.push((local_of[&v], lw));
                    }
                }
            }
        }
        #[allow(clippy::expect_used)] // structural invariant of a validated graph
        let cg = LayoutGraph::homogeneous(globals.len(), edges)
            .expect("induced component graph is valid");

        let bct = if opts.biconnected {
            biconnected_components(&cg)
        } else {
            BlockCutTree {
                blocks: vec![(0..cg.num_nodes() as u32).collect()],
                is_articulation: vec![false; cg.num_nodes()],
            }
        };

        let mut unit_of_block = Vec::with_capacity(bct.blocks.len());
        for (bi, block) in bct.blocks.iter().enumerate() {
            let (bg, _) = cg.induced_subgraph(block);
            let block_globals: Vec<NodeId> = block.iter().map(|&lv| globals[lv as usize]).collect();
            unit_of_block.push(units.len());
            units.push(DecompUnit {
                graph: bg,
                global_nodes: block_globals,
                component: ci,
                block: bi,
            });
        }
        components.push(ComponentInfo {
            global_nodes: globals,
            bct,
            unit_of_block,
        });
    }

    Simplified {
        units,
        components,
        hidden,
        num_nodes: n,
    }
}

impl Simplified {
    /// The independent units to decompose, in a stable order.
    pub fn units(&self) -> &[DecompUnit] {
        &self.units
    }

    /// Nodes removed by hide-small-degree, in hiding order.
    pub fn hidden_nodes(&self) -> &[NodeId] {
        &self.hidden
    }

    /// Number of nodes of the original graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Reassembles a full coloring from per-unit (parent/feature-level)
    /// colorings: merges blocks inside each component via color
    /// permutation, then recovers hidden nodes greedily against the
    /// original graph `g`.
    ///
    /// The total cost of the returned coloring equals the sum of unit
    /// costs: block merging is cost-preserving and hidden nodes always find
    /// a free mask (their live degree is `< k`).
    ///
    /// # Panics
    ///
    /// Panics if `unit_colorings.len() != self.units().len()`, a unit
    /// coloring has the wrong length or colors `>= k`, or `g` is not the
    /// graph this simplification was built from.
    pub fn recover(&self, g: &LayoutGraph, k: u8, unit_colorings: &[Vec<u8>]) -> Recovered {
        assert_eq!(
            unit_colorings.len(),
            self.units.len(),
            "one coloring per unit"
        );
        assert_eq!(g.num_nodes(), self.num_nodes, "graph mismatch");
        let mut coloring = vec![0u8; self.num_nodes];
        let mut assigned = vec![false; self.num_nodes];
        let mut unit_permutations = vec![[0, 1, 2, 3, 4, 5, 6, 7]; self.units.len()];

        for info in &self.components {
            let block_colorings: Vec<Vec<u8>> = info
                .unit_of_block
                .iter()
                .map(|&ui| unit_colorings[ui].clone())
                .collect();
            let (merged, perms) = info.bct.merge_colorings_with_permutations(
                info.global_nodes.len(),
                k,
                &block_colorings,
            );
            for (local, &global) in info.global_nodes.iter().enumerate() {
                coloring[global as usize] = merged[local];
                assigned[global as usize] = true;
            }
            for (&ui, perm) in info.unit_of_block.iter().zip(&perms) {
                unit_permutations[ui] = *perm;
            }
        }

        // Hidden nodes, reverse hiding order: all conflict neighbors that
        // were active at hiding time are already assigned.
        for &v in self.hidden.iter().rev() {
            let mut used = [false; 256];
            for &w in g.conflict_neighbors(v) {
                if assigned[w as usize] {
                    used[coloring[w as usize] as usize] = true;
                }
            }
            let c = (0..k).find(|&c| !used[c as usize]).unwrap_or(0);
            coloring[v as usize] = c;
            assigned[v as usize] = true;
        }

        Recovered {
            coloring,
            unit_permutations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostBreakdown;

    fn decompose_greedy(g: &LayoutGraph, k: u8) -> Vec<u8> {
        // Greedy coloring good enough for tests on tiny blocks.
        let mut coloring = vec![0u8; g.num_nodes()];
        for v in 0..g.num_nodes() as u32 {
            let mut used = [false; 16];
            for &w in g.conflict_neighbors(v) {
                if w < v {
                    used[coloring[w as usize] as usize] = true;
                }
            }
            coloring[v as usize] = (0..k).find(|&c| !used[c as usize]).unwrap_or(0);
        }
        coloring
    }

    #[test]
    fn hide_small_degree_strips_trees() {
        // A pure tree: everything hidden, no units remain.
        let g = LayoutGraph::homogeneous(5, vec![(0, 1), (1, 2), (1, 3), (3, 4)]).unwrap();
        let s = simplify(&g, 3, SimplifyOptions::default());
        assert!(s.units().is_empty());
        assert_eq!(s.hidden_nodes().len(), 5);
        let rec = s.recover(&g, 3, &[]);
        assert_eq!(g.evaluate(&rec.coloring, 0.1), CostBreakdown::default());
    }

    #[test]
    fn triangle_is_fully_hidden_at_k3() {
        // Every triangle node has degree 2 < 3, so the whole component is
        // recovered greedily with zero cost.
        let g = LayoutGraph::homogeneous(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let s = simplify(&g, 3, SimplifyOptions::default());
        assert!(s.units().is_empty());
        let rec = s.recover(&g, 3, &[]);
        assert_eq!(g.evaluate(&rec.coloring, 0.1), CostBreakdown::default());
    }

    #[test]
    fn k4_with_pendant_survives_and_recovers() {
        let g = LayoutGraph::homogeneous(
            5,
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)],
        )
        .unwrap();
        let s = simplify(&g, 3, SimplifyOptions::default());
        assert_eq!(s.units().len(), 1);
        assert_eq!(s.units()[0].graph.num_nodes(), 4);
        let colorings: Vec<Vec<u8>> = s
            .units()
            .iter()
            .map(|u| decompose_greedy(&u.graph, 3))
            .collect();
        let unit_conflicts: u32 = s
            .units()
            .iter()
            .zip(&colorings)
            .map(|(u, c)| u.graph.evaluate(c, 0.1).conflicts)
            .sum();
        let rec = s.recover(&g, 3, &colorings);
        // K4 at k = 3 forces exactly the unit's conflicts; recovery adds none.
        assert_eq!(g.evaluate(&rec.coloring, 0.1).conflicts, unit_conflicts);
    }

    #[test]
    fn k4_is_one_unit_with_unavoidable_conflict_at_k3() {
        let g = LayoutGraph::homogeneous(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .unwrap();
        let s = simplify(&g, 3, SimplifyOptions::default());
        assert_eq!(s.units().len(), 1);
        assert_eq!(s.units()[0].graph.num_nodes(), 4);
        assert!(s.hidden_nodes().is_empty());
    }

    #[test]
    fn recovery_cost_equals_unit_cost_sum() {
        // Two K4s joined by a path; hide strips the path, bcc keeps the K4s
        // apart. Greedy gives each K4 one conflict at k = 3.
        let mut edges = vec![];
        for &(a, b) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            edges.push((a, b));
            edges.push((a + 4, b + 4));
        }
        edges.push((3, 8)); // path node 8
        edges.push((8, 4));
        let g = LayoutGraph::homogeneous(9, edges).unwrap();
        let s = simplify(&g, 3, SimplifyOptions::default());
        assert_eq!(s.units().len(), 2);
        let colorings: Vec<Vec<u8>> = s
            .units()
            .iter()
            .map(|u| decompose_greedy(&u.graph, 3))
            .collect();
        let unit_cost: u32 = s
            .units()
            .iter()
            .zip(&colorings)
            .map(|(u, c)| u.graph.evaluate(c, 0.1).conflicts)
            .sum();
        let rec = s.recover(&g, 3, &colorings);
        let total = g.evaluate(&rec.coloring, 0.1);
        assert_eq!(total.conflicts, unit_cost);
    }

    #[test]
    fn biconnected_split_reduces_unit_size() {
        // Bow tie: two triangles sharing a vertex.
        let g = LayoutGraph::homogeneous(5, vec![(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)])
            .unwrap();
        let s = simplify(
            &g,
            3,
            SimplifyOptions {
                hide_small_degree: false,
                biconnected: true,
            },
        );
        assert_eq!(s.units().len(), 2);
        assert!(s.units().iter().all(|u| u.graph.num_nodes() == 3));
        let colorings: Vec<Vec<u8>> = s
            .units()
            .iter()
            .map(|u| decompose_greedy(&u.graph, 3))
            .collect();
        let rec = s.recover(&g, 3, &colorings);
        assert_eq!(g.evaluate(&rec.coloring, 0.1).conflicts, 0);
    }

    #[test]
    fn no_simplification_keeps_whole_components() {
        let g = LayoutGraph::homogeneous(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let opts = SimplifyOptions {
            hide_small_degree: false,
            biconnected: false,
        };
        let s = simplify(&g, 3, opts);
        assert_eq!(s.units().len(), 1);
        assert_eq!(s.units()[0].graph.num_nodes(), 4);
    }

    #[test]
    fn unit_global_nodes_are_consistent() {
        // Two disjoint K4s; hide-small-degree removes nothing at k = 3.
        let mut edges = vec![];
        for &(a, b) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            edges.push((a, b));
            edges.push((a + 4, b + 4));
        }
        let g = LayoutGraph::homogeneous(8, edges).unwrap();
        let s = simplify(&g, 3, SimplifyOptions::default());
        assert_eq!(s.units().len(), 2);
        let mut all: Vec<u32> = s
            .units()
            .iter()
            .flat_map(|u| u.global_nodes.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<u32>>());
    }
}
