//! Fig. 10 — decomposer usage breakdown: the percentage of simplified
//! graphs decomposed by ILP, EC, ColorGNN, and library matching.

use mpld::UsageBreakdown;
use mpld_bench::{print_table, train_fold, Bench};

fn main() {
    let bench = Bench::load();
    let mut usage = UsageBreakdown::default();
    for (train_idx, test_idx) in bench.folds() {
        if train_idx.is_empty() {
            continue;
        }
        let fw = train_fold(&bench, &train_idx);
        for &ci in &test_idx {
            let r = fw.decompose_prepared(&bench.prepared[ci]);
            usage.matching += r.usage.matching;
            usage.colorgnn += r.usage.colorgnn;
            usage.ilp += r.usage.ilp;
            usage.ec += r.usage.ec;
            usage.colorgnn_fallbacks += r.usage.colorgnn_fallbacks;
        }
        eprintln!("fold tested {test_idx:?}");
    }

    let total = (usage.matching + usage.colorgnn + usage.ilp + usage.ec).max(1);
    let pct = |x: usize| format!("{:.2}%", 100.0 * x as f64 / total as f64);
    println!("\nFig. 10: decomposer usage breakdown ({total} simplified graphs)\n");
    print_table(
        &["engine", "graphs", "share"],
        &[
            vec![
                "ColorGNN".into(),
                usage.colorgnn.to_string(),
                pct(usage.colorgnn),
            ],
            vec![
                "library matching".into(),
                usage.matching.to_string(),
                pct(usage.matching),
            ],
            vec!["EC".into(), usage.ec.to_string(), pct(usage.ec)],
            vec!["ILP".into(), usage.ilp.to_string(), pct(usage.ilp)],
        ],
    );
    println!(
        "\nColorGNN attempts that fell back to exact engines: {}",
        usage.colorgnn_fallbacks
    );
    println!("paper shape: ColorGNN dominates (86.11%); ILP rare (2.07%) yet dominates runtime.");
}
