//! # Adaptive layout decomposition with graph embedding neural networks
//!
//! A complete Rust implementation of the DAC 2020 / TCAD 2022 paper:
//! multiple patterning layout decomposition (MPLD) that *adaptively*
//! routes each simplified layout graph to the most suitable engine —
//! library matching, the ColorGNN message-passing decomposer, exact ILP,
//! or exact cover — using RGCN graph embeddings.
//!
//! ## Quick start
//!
//! ```no_run
//! use mpld::{prepare, train_framework, OfflineConfig, TrainingData};
//! use mpld_graph::DecomposeParams;
//! use mpld_layout::iscas_suite;
//!
//! let params = DecomposeParams::tpl();
//! let suite = iscas_suite();
//!
//! // Offline: prepare training layouts, label with the exact engines,
//! // train the GNNs, build the graph library.
//! let train_prep: Vec<_> = suite[..3]
//!     .iter()
//!     .map(|c| prepare(&c.generate(), &params))
//!     .collect();
//! let refs: Vec<_> = train_prep.iter().collect();
//! let data = TrainingData::from_layouts(&refs, &params);
//! let mut framework = train_framework(&data, &params, &OfflineConfig::default());
//!
//! // Online: adaptively decompose a held-out circuit.
//! let test = prepare(&suite[3].generate(), &params);
//! let result = framework.decompose_prepared(&test);
//! println!("{}: cost {}", test.name, result.pipeline.cost);
//! ```
//!
//! ## Crate map
//!
//! The workspace layers (each its own crate, re-exported here where it is
//! part of the user-facing flow): geometry → layout/benchmarks → graph
//! model & simplification → decomposition engines (`mpld-ilp`, `mpld-ec`,
//! `mpld-sdp`) → autograd + GNNs (`mpld-tensor`, `mpld-gnn`) → graph
//! library (`mpld-matching`) → this crate, the adaptive framework.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod checkpoint;
mod density;
mod engine;
mod framework;
mod memo;
mod metrics;
pub mod parallel;
mod pipeline;
mod stats;
mod store;
mod summary;
mod tiled;
mod training;

pub use checkpoint::{
    unit_fingerprint, Checkpoint, CheckpointEntry, CheckpointHeader, JournalWriter,
};
pub use density::{density_imbalance, mask_densities};
pub use engine::{Engine, EngineStats, EngineStoreStats, Progress, Session};
pub use framework::{
    AdaptiveFramework, AdaptiveResult, BudgetBreakdown, BudgetPolicy, EngineKind, InferenceStats,
    Recovery, TimingBreakdown, UnitOutcome, UsageBreakdown,
};
pub use memo::{BatchPlan, EmbeddingMemo, DEFAULT_MAX_BATCH_NODES};
pub use metrics::ConfusionMatrix;
pub use mpld_matching::{ShardedGraphMap, ShardedMapStats};
pub use mpld_tensor::Precision;
pub use parallel::default_threads;
pub use pipeline::{
    prepare, run_pipeline, run_pipeline_budgeted, run_pipeline_parallel, PipelineResult,
    PreparedLayout, UnitInstance,
};
pub use stats::{layout_stats, LayoutStats};
pub use store::{engine_with_store, engine_with_store_configured, library_token};
pub use summary::{RunSummary, TiledRunSummary};
pub use tiled::{
    audit_boundary_units, peak_rss_bytes, prepare_tiled, prepare_tiled_file, TiledPrepared,
    TiledProgress, TiledStats, TilingConfig, DEFAULT_TILE_MULTIPLE,
};
pub use training::{
    train_framework, train_framework_with_report, OfflineConfig, TrainReport, TrainingData,
};

/// The reassembled global decomposition of a layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutDecomposition {
    /// Per-feature representative mask (exact for unsplit features; the
    /// first subfeature's mask for split features).
    pub feature_colors: Vec<u8>,
    /// Per-unit subfeature masks with merge permutations applied; parallel
    /// to [`PreparedLayout::units`].
    pub unit_subfeature_colorings: Vec<Vec<u8>>,
}
