//! Property tests for the routing-stage embedding memo: a memo hit is
//! only ever served for a *structurally identical* graph, so reusing the
//! representative's embeddings/logits can never change a routing
//! decision (in particular, it never serves across non-isomorphic
//! units).

use mpld::EmbeddingMemo;
use mpld_graph::LayoutGraph;
use mpld_matching::{are_isomorphic, graphs_identical};
use proptest::prelude::*;

/// Random heterogeneous layout graph on 1..=8 nodes; edge type follows
/// the feature labels (the layout-graph invariant).
fn arb_layout() -> impl Strategy<Value = LayoutGraph> {
    (1usize..=8).prop_flat_map(|n| {
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)))
            .collect();
        let np = pairs.len();
        (
            prop::collection::vec(prop::bool::ANY, np.max(1)),
            prop::collection::vec(0u32..3, n),
        )
            .prop_map(move |(present, feats)| {
                let mut conflict = Vec::new();
                let mut stitch = Vec::new();
                for (&(u, v), &keep) in pairs.iter().zip(&present) {
                    if !keep {
                        continue;
                    }
                    if feats[u as usize] == feats[v as usize] {
                        stitch.push((u, v));
                    } else {
                        conflict.push((u, v));
                    }
                }
                LayoutGraph::new(feats, conflict, stitch).expect("valid random graph")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Insert a population of random graphs, then probe with more random
    /// graphs: every hit points at a structurally identical insert
    /// (never a merely similar or non-isomorphic one), and every
    /// identical probe hits.
    #[test]
    fn memo_hits_only_identical_graphs(
        inserts in prop::collection::vec(arb_layout(), 1..6),
        probes in prop::collection::vec(arb_layout(), 1..6),
    ) {
        let mut memo = EmbeddingMemo::new();
        for (slot, g) in inserts.iter().enumerate() {
            if memo.find(g).is_none() {
                memo.insert(g, slot);
            }
        }
        for p in probes.iter().chain(&inserts) {
            match memo.find(p) {
                Some(slot) => {
                    // The served representative is the same graph —
                    // identical, hence in particular isomorphic.
                    prop_assert!(graphs_identical(&inserts[slot], p));
                    prop_assert!(are_isomorphic(&inserts[slot], p));
                }
                None => {
                    // A miss means no insert is structurally identical.
                    for g in &inserts {
                        prop_assert!(!graphs_identical(g, p));
                    }
                }
            }
        }
        // Re-probing the inserts themselves must hit.
        for g in &inserts {
            prop_assert!(memo.find(g).is_some());
        }
    }
}
