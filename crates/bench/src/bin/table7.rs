//! Table VII — layout statistics and ColorGNN results: per circuit,
//! `|G|` simplified graphs, `|nsc-G|` graphs without stitch candidates,
//! `|ns-G|` graphs whose ILP optimum needs no stitch, `|pred. ns-G|`
//! graphs the (held-out) redundancy predictor confidently marks
//! redundant, and the cost/runtime of ILP vs ColorGNN on exactly the
//! predicted set.

use mpld::layout_stats;
use mpld_bench::{fmt_duration, print_table, train_fold, Bench};
use mpld_graph::{Budget, Decomposer, LayoutGraph};
use mpld_ilp::encode::BipDecomposer;
use std::time::{Duration, Instant};

fn main() {
    let bench = Bench::load();
    let n = bench.circuits.len();
    let mut rows = Vec::new();
    let mut pred_ns = vec![0usize; n];
    let mut gnn_cost = vec![0f64; n];
    let mut ilp_cost = vec![0f64; n];
    let mut gnn_time = vec![Duration::ZERO; n];
    let mut ilp_time = vec![Duration::ZERO; n];
    let mut gnn_optimal = vec![true; n];

    for (train_idx, test_idx) in bench.folds() {
        if train_idx.is_empty() {
            continue;
        }
        let fw = train_fold(&bench, &train_idx);
        let ilp = BipDecomposer::new();
        for &ci in &test_idx {
            let prep = &bench.prepared[ci];
            let graphs: Vec<&LayoutGraph> = prep.units.iter().map(|u| &u.hetero).collect();
            if graphs.is_empty() {
                continue;
            }
            let probs = fw.redundancy.predict_batch(&graphs);
            // Predicted non-stitch set: confident redundant, or no stitch
            // candidates at all.
            let mut parents = Vec::new();
            for (g, p) in graphs.iter().zip(&probs) {
                if !g.has_stitches() || p[0] > fw.redundancy_bar {
                    parents.push(g.merge_stitch_edges().0);
                }
            }
            pred_ns[ci] = parents.len();
            let parent_refs: Vec<&LayoutGraph> = parents.iter().collect();
            // ColorGNN on the predicted set (batched, like the framework).
            let t = Instant::now();
            let results =
                fw.colorgnn
                    .decompose_batch(&parent_refs, &bench.params, &Budget::unlimited());
            gnn_time[ci] = t.elapsed();
            gnn_cost[ci] = results
                .iter()
                .map(|d| d.cost.value(bench.params.alpha))
                .sum();
            // ILP on the same set.
            let t = Instant::now();
            let mut total = 0f64;
            for (g, gd) in parent_refs.iter().zip(&results) {
                let d = ilp.decompose_unbounded(g, &bench.params);
                total += d.cost.value(bench.params.alpha);
                if gd.cost.value(bench.params.alpha) > d.cost.value(bench.params.alpha) + 1e-9 {
                    gnn_optimal[ci] = false;
                }
            }
            ilp_time[ci] = t.elapsed();
            ilp_cost[ci] = total;
        }
        eprintln!("fold tested {test_idx:?}");
    }

    let (mut tg, mut tnsc, mut tns, mut tpred) = (0, 0, 0, 0);
    for ci in 0..n {
        let s = layout_stats(&bench.prepared[ci], &bench.params);
        tg += s.graphs;
        tnsc += s.no_stitch_candidates;
        tns += s.no_stitch_optimal;
        tpred += pred_ns[ci];
        rows.push(vec![
            bench.circuits[ci].name.to_string(),
            s.graphs.to_string(),
            s.no_stitch_candidates.to_string(),
            s.no_stitch_optimal.to_string(),
            pred_ns[ci].to_string(),
            format!("{:.1}", ilp_cost[ci]),
            format!("{:.1}", gnn_cost[ci]),
            fmt_duration(ilp_time[ci]),
            fmt_duration(gnn_time[ci]),
        ]);
        eprintln!("{} measured", bench.circuits[ci].name);
    }
    rows.push(vec![
        "total".into(),
        tg.to_string(),
        tnsc.to_string(),
        tns.to_string(),
        tpred.to_string(),
        format!("{:.1}", ilp_cost.iter().sum::<f64>()),
        format!("{:.1}", gnn_cost.iter().sum::<f64>()),
        fmt_duration(ilp_time.iter().sum()),
        fmt_duration(gnn_time.iter().sum()),
    ]);

    println!("\nTable VII: layout statistics and GNN decomposer results\n");
    print_table(
        &[
            "circuit",
            "|G|",
            "|nsc-G|",
            "|ns-G|",
            "|pred ns-G|",
            "ILP cost",
            "GNN cost",
            "ILP time",
            "GNN time",
        ],
        &rows,
    );
    println!(
        "\n|ns-G| / |G| = {:.1}% (paper: 91.1%); GNN matches ILP cost on {} of {} circuits",
        100.0 * tns as f64 / tg.max(1) as f64,
        gnn_optimal.iter().filter(|&&b| b).count(),
        n
    );
}
