//! Explore the isomorphism-free graph library (Algorithm 2): enumerate
//! the irreducible parent graphs, build the library with stitch variants,
//! and demonstrate an embedding-based match with solution transfer.
//!
//! ```sh
//! cargo run --release -p mpld --example library_explorer
//! ```

use mpld_gnn::RgcnClassifier;
use mpld_graph::{DecomposeParams, LayoutGraph};
use mpld_matching::{enumerate_parent_graphs, GraphLibrary, LibraryConfig};

fn main() {
    let params = DecomposeParams::tpl();

    // The classic result: 23 irreducible TPL graphs below seven nodes.
    let parents = enumerate_parent_graphs(6, params.k);
    println!("irreducible parent graphs (min degree >= 3, 2-connected):");
    for n in 4..=6 {
        let count = parents.iter().filter(|g| g.num_nodes() == n).count();
        println!("  {n} nodes: {count}");
    }
    println!(
        "  total: {} (paper/classic literature: 23)\n",
        parents.len()
    );

    // Build the library with stitch variants and ILP-optimal solutions.
    let embedder = RgcnClassifier::selector(0xDAC);
    let cfg = LibraryConfig::default();
    let library = GraphLibrary::build(&embedder, &cfg, &params);
    println!(
        "library: {} graphs (dedup skipped {}, embedding collisions {}, missed dups {})",
        library.len(),
        library.stats().duplicates_skipped,
        library.stats().embedding_collisions,
        library.stats().embedding_missed_duplicates,
    );
    let with_stitch = library
        .entries()
        .iter()
        .filter(|e| e.graph.has_stitches())
        .count();
    println!("  {} entries carry stitch edges\n", with_stitch);

    // Match a relabeled K4 and transfer the stored optimal solution.
    let k4 = LayoutGraph::homogeneous(4, vec![(3, 1), (3, 2), (3, 0), (1, 2), (1, 0), (2, 0)])
        .expect("valid graph");
    match library.lookup(&embedder, &k4) {
        Some(d) => println!(
            "matched K4: transferred optimal coloring {:?} with cost {}",
            d.coloring, d.cost
        ),
        None => println!("K4 unexpectedly missed the library"),
    }

    // A graph that cannot be in the library (min degree 2).
    let square =
        LayoutGraph::homogeneous(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]).expect("valid graph");
    println!(
        "4-cycle lookup (not irreducible, must miss): {:?}",
        library.lookup(&embedder, &square).map(|d| d.cost)
    );
}
