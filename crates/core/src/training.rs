//! Offline training pipeline (Section IV-A, "offline part").
//!
//! 1. Collect unit graphs from training layouts and label them by running
//!    both exact engines: the **selector** label is ILP (0) when ILP's
//!    cost beats EC's (ties go to EC, the faster engine); the
//!    **redundancy** label is "redundant" (0) when the unit has stitch
//!    candidates but the ILP optimum activates none of them.
//! 2. Train the two RGCNs and ColorGNN.
//! 3. Build the isomorphism-free graph library with the trained selector
//!    RGCN as the embedder.

use crate::framework::AdaptiveFramework;
use crate::pipeline::PreparedLayout;
use mpld_ec::EcDecomposer;
use mpld_gnn::{ColorGnn, ColorGnnTrainConfig, RgcnClassifier, TrainConfig};
use mpld_graph::{CostBreakdown, DecomposeParams, Decomposer, LayoutGraph};
use mpld_ilp::IlpDecomposer;
use mpld_matching::{graph_fingerprint, graphs_identical, GraphLibrary, LibraryConfig};
use mpld_tensor::Precision;
use std::collections::HashMap;

/// Labeled training data extracted from prepared layouts.
#[derive(Debug, Default)]
pub struct TrainingData {
    /// Unit graphs (heterogeneous, after stitch insertion).
    pub units: Vec<LayoutGraph>,
    /// Selector labels: 0 = ILP strictly better, 1 = EC (ties included).
    pub selector_labels: Vec<u8>,
    /// Redundancy labels for stitch-bearing units only:
    /// `(unit index, label)` with 0 = all candidates redundant.
    pub redundancy_labels: Vec<(usize, u8)>,
    /// ILP-optimal cost per unit (reused by the evaluation harness).
    pub ilp_costs: Vec<CostBreakdown>,
    /// EC cost per unit.
    pub ec_costs: Vec<CostBreakdown>,
    /// Representative per unit: `rep_of[i] == i` for units that were
    /// ILP/EC-solved themselves; duplicates point at the earlier
    /// identical unit whose labels and costs they reuse.
    pub rep_of: Vec<usize>,
    /// How many units reused a representative's labels instead of
    /// re-running the exact engines.
    pub deduped: usize,
    /// Fingerprint → indices of solved representatives (collision
    /// candidates, verified edge-for-edge before reuse).
    fp_index: HashMap<u64, Vec<usize>>,
}

impl TrainingData {
    /// Extends this dataset with the units of `prep`, running both exact
    /// engines per unit to produce labels.
    pub fn add_layout(&mut self, prep: &PreparedLayout, params: &DecomposeParams) {
        self.add_layout_capped(prep, params, usize::MAX);
    }

    /// Like [`TrainingData::add_layout`], but takes at most `cap` units
    /// (the first `cap` in unit order) — used to bound training cost on
    /// the large circuits.
    ///
    /// Identical units (same [`graph_fingerprint`], then verified
    /// edge-for-edge with [`graphs_identical`]) are solved once: real
    /// layouts repeat unit graphs heavily, and the exact engines are
    /// deterministic, so a duplicate's labels and costs are exactly what
    /// a fresh solve would return. Every unit still occupies its own slot
    /// so the training set (and hence the trained weights) is unchanged.
    pub fn add_layout_capped(
        &mut self,
        prep: &PreparedLayout,
        params: &DecomposeParams,
        cap: usize,
    ) {
        let ilp = IlpDecomposer::new();
        let ec = EcDecomposer::new();
        let base = self.units.len();
        // Pass 1: install the units and resolve each one to a
        // representative — itself (unique, queued for solving) or an
        // earlier identical unit.
        let mut to_solve: Vec<usize> = Vec::new();
        for unit in prep.units.iter().take(cap) {
            let idx = self.units.len();
            self.units.push(unit.hetero.clone());
            let fp = graph_fingerprint(&self.units[idx]);
            let bucket = self.fp_index.entry(fp).or_default();
            let rep = bucket
                .iter()
                .copied()
                .find(|&j| graphs_identical(&self.units[j], &self.units[idx]));
            match rep {
                Some(j) => self.rep_of.push(j),
                None => {
                    bucket.push(idx);
                    self.rep_of.push(idx);
                    to_solve.push(idx);
                }
            }
        }
        // Pass 2: both exact engines run per unique unit — the expensive
        // part of the offline phase — fanned out largest-unit-first. The
        // results come back in queue order, making the labels identical
        // for any thread count.
        let units = &self.units;
        let solved = crate::parallel::run_largest_first(
            to_solve.len(),
            crate::parallel::default_threads(),
            |i| units[to_solve[i]].num_nodes(),
            |i| {
                let g = &units[to_solve[i]];
                (
                    ilp.decompose_unbounded(g, params),
                    ec.decompose_unbounded(g, params),
                )
            },
        );
        // Pass 3: assemble labels in original unit order. `to_solve` is
        // ascending and so is this loop, so representatives (own index or
        // an earlier unit) always have their costs in place already.
        let mut solved = solved.into_iter();
        for idx in base..self.units.len() {
            let rep = self.rep_of[idx];
            let (ilp_cost, ec_cost) = if rep == idx {
                #[allow(clippy::expect_used)] // one result per queued unique
                let (di, de) = solved.next().expect("solver result per unique unit");
                (di.cost, de.cost)
            } else {
                self.deduped += 1;
                (self.ilp_costs[rep], self.ec_costs[rep])
            };
            let selector_label = u8::from(!ilp_cost.better_than(&ec_cost, params.alpha));
            if self.units[idx].has_stitches() {
                let label = u8::from(ilp_cost.stitches != 0); // 0 = redundant
                self.redundancy_labels.push((idx, label));
            }
            self.selector_labels.push(selector_label);
            self.ilp_costs.push(ilp_cost);
            self.ec_costs.push(ec_cost);
        }
    }

    /// Collects data from several prepared layouts.
    pub fn from_layouts(preps: &[&PreparedLayout], params: &DecomposeParams) -> TrainingData {
        let mut data = TrainingData::default();
        for prep in preps {
            data.add_layout(prep, params);
        }
        data
    }
}

/// Hyperparameters of the offline phase.
#[derive(Debug, Clone, Copy)]
pub struct OfflineConfig {
    /// RGCN training config (selector and redundancy share it).
    pub rgcn: TrainConfig,
    /// ColorGNN training config.
    pub colorgnn: ColorGnnTrainConfig,
    /// Library construction config.
    pub library: LibraryConfig,
    /// Redundancy confidence routing bar `b`. The paper analyzes 0.99
    /// (Table VI(b)); for routing we default to 0.5 because the
    /// framework's conflict guard catches any wrongly-merged unit (a
    /// needed stitch always reappears as a conflict in the parent graph),
    /// so a permissive bar maximizes ColorGNN usage at no cost risk.
    pub redundancy_bar: f32,
    /// Minimum selector confidence to route a graph to EC (see
    /// [`AdaptiveFramework::ec_threshold`]).
    pub ec_threshold: f32,
    /// ColorGNN restarts (`iter` in Algorithm 1). The paper uses 5; we
    /// default to 25 because our adaptive batched restarts only re-run
    /// still-conflicted graphs, so extra restarts are almost free and
    /// recover the paper's "ColorGNN achieves ILP-equal results" claim on
    /// CPU (the ablation bench sweeps this knob).
    pub colorgnn_restarts: usize,
    /// RNG seed for model initialization.
    pub seed: u64,
}

impl Default for OfflineConfig {
    fn default() -> Self {
        OfflineConfig {
            rgcn: TrainConfig::default(),
            colorgnn: ColorGnnTrainConfig::default(),
            library: LibraryConfig::default(),
            redundancy_bar: 0.5,
            ec_threshold: 0.5,
            colorgnn_restarts: 25,
            seed: 0xDAC2020,
        }
    }
}

/// Final-epoch training losses and dataset counts from the offline
/// phase — the seed-keyed digest material for the CI training-trajectory
/// guard (`scripts/check_perf_digest.py`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainReport {
    /// Selector RGCN final-epoch mean cross-entropy.
    pub selector_loss: f32,
    /// Redundancy RGCN final-epoch mean cross-entropy (0.0 when no
    /// stitch-bearing units were labeled).
    pub redundancy_loss: f32,
    /// ColorGNN final-epoch mean margin loss (0.0 when no parents).
    pub colorgnn_loss: f32,
    /// Units in the training set.
    pub num_units: usize,
    /// Stitch-bearing units with redundancy labels.
    pub num_redundancy_labeled: usize,
    /// Merged parent graphs the ColorGNN trained on.
    pub num_colorgnn_graphs: usize,
    /// Units that reused an identical representative's ILP/EC labels.
    pub deduped_units: usize,
}

/// Runs the full offline phase and assembles the framework.
///
/// # Panics
///
/// Panics if `data.units` is empty.
pub fn train_framework(
    data: &TrainingData,
    params: &DecomposeParams,
    cfg: &OfflineConfig,
) -> AdaptiveFramework {
    train_framework_with_report(data, params, cfg).0
}

/// Like [`train_framework`], additionally returning the final-epoch
/// losses per head for trajectory digests.
///
/// # Panics
///
/// Panics if `data.units` is empty.
pub fn train_framework_with_report(
    data: &TrainingData,
    params: &DecomposeParams,
    cfg: &OfflineConfig,
) -> (AdaptiveFramework, TrainReport) {
    assert!(!data.units.is_empty(), "training data must not be empty");

    // Selector RGCN.
    let mut selector = RgcnClassifier::selector(cfg.seed);
    let selector_data: Vec<(&LayoutGraph, u8)> = data
        .units
        .iter()
        .zip(&data.selector_labels)
        .map(|(g, &l)| (g, l))
        .collect();
    let selector_loss = selector.train(&selector_data, &cfg.rgcn);

    // Redundancy RGCN (only stitch-bearing units carry labels).
    let mut redundancy = RgcnClassifier::redundancy(cfg.seed ^ 0xF00D);
    let redundancy_data: Vec<(&LayoutGraph, u8)> = data
        .redundancy_labels
        .iter()
        .map(|&(i, l)| (&data.units[i], l))
        .collect();
    let redundancy_loss = if redundancy_data.is_empty() {
        0.0
    } else {
        redundancy.train(&redundancy_data, &cfg.rgcn)
    };

    // ColorGNN trains on merged (non-stitch) parent graphs.
    let parents: Vec<LayoutGraph> = data
        .units
        .iter()
        .filter(|g| g.num_nodes() > 0 && !g.conflict_edges().is_empty())
        .map(|g| g.merge_stitch_edges().0)
        .collect();
    let mut colorgnn = ColorGnn::new(cfg.seed ^ 0xC01);
    colorgnn.set_restarts(cfg.colorgnn_restarts);
    let colorgnn_loss = if parents.is_empty() {
        0.0
    } else {
        let refs: Vec<&LayoutGraph> = parents.iter().collect();
        colorgnn.train(&refs, params.k, &cfg.colorgnn)
    };

    // Library built with the trained selector as the embedder.
    let library = GraphLibrary::build(&selector, &cfg.library, params);

    let report = TrainReport {
        selector_loss,
        redundancy_loss,
        colorgnn_loss,
        num_units: data.units.len(),
        num_redundancy_labeled: data.redundancy_labels.len(),
        num_colorgnn_graphs: parents.len(),
        deduped_units: data.deduped,
    };
    let framework = AdaptiveFramework {
        selector,
        redundancy,
        colorgnn,
        library,
        ilp: mpld_ilp::encode::BipDecomposer::new(),
        ec: EcDecomposer::new(),
        params: *params,
        redundancy_bar: cfg.redundancy_bar,
        ec_threshold: cfg.ec_threshold,
        use_colorgnn: true,
        precision: Precision::F32,
    };
    (framework, report)
}

impl AdaptiveFramework {
    /// Serializes the trained model weights (selector, redundancy,
    /// ColorGNN) plus the routing thresholds. The graph library is
    /// rebuilt on load (it derives deterministically from the selector).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn save<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        writer.write_all(b"MPLDFW01")?;
        writer.write_all(&self.redundancy_bar.to_le_bytes())?;
        writer.write_all(&self.ec_threshold.to_le_bytes())?;
        writer.write_all(&(self.colorgnn.restarts() as u64).to_le_bytes())?;
        self.selector.save_weights(&mut writer)?;
        self.redundancy.save_weights(&mut writer)?;
        self.colorgnn.save_weights(&mut writer)
    }

    /// FNV-64 digest of the serialized weights — the model fingerprint
    /// that keys persisted library/memo state. [`AdaptiveFramework::save`]
    /// and [`AdaptiveFramework::load`] round-trip byte-identically, so
    /// the digest is stable across processes for the same trained model.
    pub fn weights_digest(&self) -> u64 {
        let mut bytes = Vec::new();
        // Writing to a Vec cannot fail.
        let _ = self.save(&mut bytes);
        mpld_store::fnv64(&bytes)
    }

    /// Reconstructs a framework from [`AdaptiveFramework::save`] output.
    /// `cfg.library` controls the library rebuild; training-only fields of
    /// `cfg` are ignored.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a format mismatch.
    pub fn load<R: std::io::Read>(
        reader: R,
        params: &DecomposeParams,
        cfg: &OfflineConfig,
    ) -> std::io::Result<AdaptiveFramework> {
        Self::load_with_library(reader, params, cfg, |_| None)
    }

    /// [`AdaptiveFramework::load`] with a library override: after the
    /// weights are deserialized, `library_source` is offered the loaded
    /// selector and may return a prebuilt library (e.g. one loaded from
    /// the persistent store) to skip the deterministic-but-costly
    /// enumeration rebuild. Returning `None` falls back to
    /// [`GraphLibrary::build`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a format mismatch.
    pub fn load_with_library<R: std::io::Read>(
        mut reader: R,
        params: &DecomposeParams,
        cfg: &OfflineConfig,
        library_source: impl FnOnce(&RgcnClassifier) -> Option<GraphLibrary>,
    ) -> std::io::Result<AdaptiveFramework> {
        use std::io::{Error, ErrorKind};
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != b"MPLDFW01" {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "bad framework-file magic",
            ));
        }
        let mut f32buf = [0u8; 4];
        reader.read_exact(&mut f32buf)?;
        let redundancy_bar = f32::from_le_bytes(f32buf);
        reader.read_exact(&mut f32buf)?;
        let ec_threshold = f32::from_le_bytes(f32buf);
        let mut u64buf = [0u8; 8];
        reader.read_exact(&mut u64buf)?;
        let restarts = u64::from_le_bytes(u64buf) as usize;

        let mut selector = RgcnClassifier::selector(0);
        selector.load_weights(&mut reader)?;
        let mut redundancy = RgcnClassifier::redundancy(0);
        redundancy.load_weights(&mut reader)?;
        let mut colorgnn = ColorGnn::new(0);
        colorgnn.load_weights(&mut reader)?;
        colorgnn.set_restarts(restarts.max(1));

        let library = library_source(&selector)
            .unwrap_or_else(|| GraphLibrary::build(&selector, &cfg.library, params));
        Ok(AdaptiveFramework {
            selector,
            redundancy,
            colorgnn,
            library,
            ilp: mpld_ilp::encode::BipDecomposer::new(),
            ec: EcDecomposer::new(),
            params: *params,
            redundancy_bar,
            ec_threshold,
            use_colorgnn: true,
            // Runtime-selectable; the CLI overrides it from
            // `--precision` / `MPLD_PRECISION` after loading.
            precision: Precision::F32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::prepare;
    use mpld_layout::circuit_by_name;

    #[test]
    fn labels_are_consistent_with_costs() {
        let layout = circuit_by_name("C432").expect("exists").generate();
        let params = DecomposeParams::tpl();
        let prep = prepare(&layout, &params);
        let data = TrainingData::from_layouts(&[&prep], &params);
        assert_eq!(data.units.len(), prep.units.len());
        for i in 0..data.units.len() {
            let (ilp, ec) = (data.ilp_costs[i], data.ec_costs[i]);
            // ILP is optimal: never worse than EC.
            assert!(
                ilp.value(0.1) <= ec.value(0.1) + 1e-9,
                "unit {i}: ILP {ilp} worse than EC {ec}"
            );
            let label = data.selector_labels[i];
            if ilp.better_than(&ec, 0.1) {
                assert_eq!(label, 0);
            } else {
                assert_eq!(label, 1);
            }
        }
        // Redundancy labels cover exactly the stitch-bearing units.
        let stitchy = data.units.iter().filter(|g| g.has_stitches()).count();
        assert_eq!(data.redundancy_labels.len(), stitchy);
    }

    #[test]
    fn framework_save_load_round_trips_predictions() {
        let layout = circuit_by_name("C432").expect("exists").generate();
        let params = DecomposeParams::tpl();
        let prep = prepare(&layout, &params);
        let mut data = TrainingData::default();
        data.add_layout_capped(&prep, &params, 30);
        let mut cfg = OfflineConfig::default();
        cfg.rgcn.epochs = 2;
        cfg.colorgnn.epochs = 2;
        let fw = train_framework(&data, &params, &cfg);

        let mut buf = Vec::new();
        fw.save(&mut buf).expect("save");
        let loaded = AdaptiveFramework::load(buf.as_slice(), &params, &cfg).expect("load");

        assert_eq!(loaded.redundancy_bar, fw.redundancy_bar);
        assert_eq!(loaded.ec_threshold, fw.ec_threshold);
        assert_eq!(loaded.library.len(), fw.library.len());
        // Predictions must agree exactly (same weights).
        for unit in prep.units.iter().take(5) {
            let a = fw.selector.predict(&unit.hetero);
            let b = loaded.selector.predict(&unit.hetero);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn duplicate_units_reuse_labels_without_resolving() {
        let layout = circuit_by_name("C432").expect("exists").generate();
        let params = DecomposeParams::tpl();
        let prep = prepare(&layout, &params);
        let mut data = TrainingData::default();
        data.add_layout_capped(&prep, &params, 40);
        let first_half = data.units.len();
        let first_deduped = data.deduped;
        // Adding the same layout again must dedup every unit against the
        // first pass and copy labels verbatim.
        data.add_layout_capped(&prep, &params, 40);
        assert_eq!(data.units.len(), 2 * first_half);
        assert_eq!(data.deduped, first_deduped + first_half);
        for i in 0..first_half {
            let j = first_half + i;
            assert!(data.rep_of[j] < first_half, "unit {j} was re-solved");
            assert_eq!(data.selector_labels[i], data.selector_labels[j]);
            assert_eq!(data.ilp_costs[i], data.ilp_costs[j]);
            assert_eq!(data.ec_costs[i], data.ec_costs[j]);
        }
        // rep_of is self-consistent: representatives are solved units.
        for (i, &r) in data.rep_of.iter().enumerate() {
            assert!(r <= i);
            assert_eq!(data.rep_of[r], r, "rep of {i} is itself a duplicate");
        }
    }

    #[test]
    fn train_report_counts_match_data() {
        let layout = circuit_by_name("C432").expect("exists").generate();
        let params = DecomposeParams::tpl();
        let prep = prepare(&layout, &params);
        let mut data = TrainingData::default();
        data.add_layout_capped(&prep, &params, 20);
        let mut cfg = OfflineConfig::default();
        cfg.rgcn.epochs = 1;
        cfg.colorgnn.epochs = 1;
        let (_, report) = train_framework_with_report(&data, &params, &cfg);
        assert_eq!(report.num_units, data.units.len());
        assert_eq!(report.num_redundancy_labeled, data.redundancy_labels.len());
        assert_eq!(report.deduped_units, data.deduped);
        assert!(report.selector_loss.is_finite());
        assert!(report.colorgnn_loss.is_finite());
    }

    #[test]
    fn redundancy_label_matches_ilp_stitches() {
        let layout = circuit_by_name("C432").expect("exists").generate();
        let params = DecomposeParams::tpl();
        let prep = prepare(&layout, &params);
        let data = TrainingData::from_layouts(&[&prep], &params);
        for &(i, label) in &data.redundancy_labels {
            assert_eq!(label == 0, data.ilp_costs[i].stitches == 0);
        }
    }
}
