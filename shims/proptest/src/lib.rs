//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this shim reimplements
//! the slice of proptest the workspace's property tests rely on: composable
//! `Strategy` values (ranges, tuples, `prop::collection::vec`,
//! `prop::bool::ANY`, `prop_map`, `prop_flat_map`), the `proptest!` macro
//! with `ProptestConfig::with_cases`, and the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are sampled from a deterministic
//! per-test RNG (seeded from the test name) and failing inputs are **not
//! shrunk** — the failing value is reported as-is via the panic message.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of an associated type.
///
/// Unlike real proptest there is no value tree / shrinking machinery;
/// `sample_value` directly produces one case.
pub trait Strategy {
    type Value;

    fn sample_value(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample_value(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.sample_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample_value(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.inner.sample_value(rng)).sample_value(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample_value(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `bool` strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{SmallRng, Strategy};
    use rand::Rng;

    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample_value(&self, rng: &mut SmallRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// Length specifications accepted by [`vec`]: an exact length or a
    /// half-open range of lengths.
    pub trait SizeSpec {
        fn pick(&self, rng: &mut SmallRng) -> usize;
    }

    impl SizeSpec for usize {
        fn pick(&self, _rng: &mut SmallRng) -> usize {
            *self
        }
    }

    impl SizeSpec for core::ops::Range<usize> {
        fn pick(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeSpec for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    pub fn vec<S: Strategy, L: SizeSpec>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeSpec> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// Seeds the per-test RNG from the test's name so each property test has a
/// stable, independent stream.
pub fn rng_for_test(name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};

    /// Mirrors `proptest::prelude::prop` (module re-exports).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            let mut __rng = $crate::rng_for_test(stringify!($name));
            for __case in 0..__cfg.cases {
                let ($($arg,)+) = $crate::Strategy::sample_value(&__strategy, &mut __rng);
                // Real proptest bodies run in a Result-returning context so
                // `return Ok(());` works as an early case skip; mirror that.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), ()> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                let _ = __outcome;
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, bool)> {
        (1usize..10).prop_flat_map(|n| (n..n + 1, prop::bool::ANY))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_spec(v in prop::collection::vec(0i64..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }

        #[test]
        fn flat_map_composes(p in arb_pair(), k in 0u8..3) {
            prop_assert!(p.0 >= 1 && p.0 < 10);
            prop_assert!(k < 3);
        }

        #[test]
        fn mapped_values_hold(x in (0i64..50).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
        }
    }
}
