//! Principal component analysis via power iteration — used to project
//! graph embeddings to 2-D for visualization (Fig. 1 of the paper shows
//! layout graphs mapped into a vector space).

use crate::Matrix;

/// Projects the rows of `data` (`n x d`) onto their top two principal
/// components, returning an `n x 2` matrix.
///
/// Deterministic: power iteration starts from a fixed vector. Degenerate
/// inputs (constant columns, `d < 2`) yield zero coordinates in the
/// affected components.
///
/// # Example
///
/// ```
/// use mpld_tensor::{pca2, Matrix};
/// // Points on a line y = 2x: the first component carries everything.
/// let data = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
/// let p = pca2(&data);
/// assert_eq!(p.rows(), 4);
/// // Second component is (numerically) zero for collinear points.
/// for r in 0..4 {
///     assert!(p[(r, 1)].abs() < 1e-3);
/// }
/// ```
pub fn pca2(data: &Matrix) -> Matrix {
    let (n, d) = (data.rows(), data.cols());
    let mut out = Matrix::zeros(n, 2);
    if n == 0 || d == 0 {
        return out;
    }
    // Center columns.
    let mut centered = data.clone();
    for c in 0..d {
        let mean: f32 = (0..n).map(|r| data[(r, c)]).sum::<f32>() / n as f32;
        for r in 0..n {
            centered[(r, c)] -= mean;
        }
    }
    // Covariance (d x d), unnormalized (scaling does not change PCs).
    let cov = centered.matmul_tn(&centered);

    let mut deflated = cov;
    for comp in 0..2.min(d) {
        let (eigval, eigvec) = power_iteration(&deflated, 200);
        if eigval <= 1e-12 {
            break;
        }
        // Project points onto the component.
        for r in 0..n {
            let dot: f32 = (0..d).map(|c| centered[(r, c)] * eigvec[c]).sum();
            out[(r, comp)] = dot;
        }
        // Deflate: C <- C - lambda v v^T.
        for i in 0..d {
            for j in 0..d {
                deflated[(i, j)] -= eigval * eigvec[i] * eigvec[j];
            }
        }
    }
    out
}

/// Dominant eigenpair of a symmetric matrix by power iteration.
fn power_iteration(m: &Matrix, iters: usize) -> (f32, Vec<f32>) {
    let d = m.rows();
    let mut v: Vec<f32> = (0..d).map(|i| 1.0 + (i as f32) * 0.01).collect();
    normalize(&mut v);
    let mut eigval = 0.0;
    for _ in 0..iters {
        let mut next = vec![0.0f32; d];
        for (i, nx) in next.iter_mut().enumerate() {
            *nx = (0..d).map(|j| m[(i, j)] * v[j]).sum();
        }
        eigval = next.iter().zip(&v).map(|(a, b)| a * b).sum();
        if normalize(&mut next) < 1e-12 {
            return (0.0, v);
        }
        v = next;
    }
    (eigval, v)
}

fn normalize(v: &mut [f32]) -> f32 {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_clusters() {
        // Two clusters far apart along a diagonal: PC1 separates them.
        let mut rows = Vec::new();
        for i in 0..5 {
            rows.push(vec![i as f32 * 0.1, i as f32 * 0.1, 0.0]);
            rows.push(vec![10.0 + i as f32 * 0.1, 10.0 + i as f32 * 0.1, 0.1]);
        }
        let data = Matrix::from_vec(10, 3, rows.concat());
        let p = pca2(&data);
        // Cluster memberships alternate; PC1 signs must separate them.
        let a: Vec<f32> = (0..10).step_by(2).map(|r| p[(r, 0)]).collect();
        let b: Vec<f32> = (1..10).step_by(2).map(|r| p[(r, 0)]).collect();
        let (amax, bmin) = (
            a.iter().cloned().fold(f32::MIN, f32::max),
            b.iter().cloned().fold(f32::MAX, f32::min),
        );
        assert!(
            amax < bmin
                || b.iter().cloned().fold(f32::MIN, f32::max)
                    < a.iter().cloned().fold(f32::MAX, f32::min)
        );
    }

    #[test]
    fn empty_input_is_safe() {
        let p = pca2(&Matrix::zeros(0, 4));
        assert_eq!(p.rows(), 0);
        let p = pca2(&Matrix::zeros(3, 0));
        assert_eq!(p.rows(), 3);
    }

    #[test]
    fn constant_data_yields_zeros() {
        let data = Matrix::from_vec(4, 3, vec![2.5; 12]);
        let p = pca2(&data);
        for v in p.as_slice() {
            assert!(v.abs() < 1e-6);
        }
    }

    #[test]
    fn is_deterministic() {
        let data = Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 1.0], &[0.5, 2.0]]);
        assert_eq!(pca2(&data), pca2(&data));
    }
}
