//! SVG document generation.

use mpld_geometry::GridIndex;
use mpld_layout::Layout;
use std::fmt::Write as _;

/// Fill colors per mask (mask 0..8). Chosen for print contrast.
pub const MASK_PALETTE: [&str; 8] = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1", "#edc948", "#76b7b2", "#9c755f",
];

/// Color used when no mask assignment is supplied.
const UNCOLORED: &str = "#9aa0a6";

/// Rendering options.
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Target image width in pixels (height follows the aspect ratio).
    pub width_px: f64,
    /// Draw red lines between conflicting features that share a mask.
    pub show_violations: bool,
    /// Canvas margin in layout units.
    pub margin: i64,
    /// Background color.
    pub background: &'static str,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width_px: 1200.0,
            show_violations: true,
            margin: 200,
            background: "#ffffff",
        }
    }
}

/// Renders `layout` to a standalone SVG string. With `colors`
/// (per-feature masks), features are filled by mask; violations (same-mask
/// conflicting pairs at the layout's `d`) are overlaid as red lines when
/// enabled.
///
/// # Panics
///
/// Panics if `colors` is provided with the wrong length or a mask `>= 8`.
pub fn render_svg(layout: &Layout, colors: Option<&[u8]>, opts: &SvgOptions) -> String {
    if let Some(c) = colors {
        assert_eq!(c.len(), layout.features.len(), "one mask per feature");
        assert!(
            c.iter().all(|&m| (m as usize) < MASK_PALETTE.len()),
            "mask out of palette"
        );
    }

    // Bounding box.
    let (mut xl, mut yl, mut xh, mut yh) = (i64::MAX, i64::MAX, i64::MIN, i64::MIN);
    for f in &layout.features {
        let bb = f.bounding_box();
        xl = xl.min(bb.xl);
        yl = yl.min(bb.yl);
        xh = xh.max(bb.xh);
        yh = yh.max(bb.yh);
    }
    if layout.features.is_empty() {
        (xl, yl, xh, yh) = (0, 0, 1, 1);
    }
    let (xl, yl) = (xl - opts.margin, yl - opts.margin);
    let (xh, yh) = (xh + opts.margin, yh + opts.margin);
    let (w, h) = ((xh - xl) as f64, (yh - yl) as f64);
    let scale = opts.width_px / w.max(1.0);
    let height_px = h * scale;

    let mut out = String::new();
    let _ = write!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
         viewBox=\"0 0 {:.1} {:.1}\">",
        opts.width_px, height_px, opts.width_px, height_px
    );
    let _ = write!(
        out,
        "<rect x=\"0\" y=\"0\" width=\"{:.1}\" height=\"{:.1}\" fill=\"{}\"/>",
        opts.width_px, height_px, opts.background
    );

    // Y grows upward in layout space, downward in SVG: flip.
    let tx = |x: i64| (x - xl) as f64 * scale;
    let ty = |y: i64| height_px - (y - yl) as f64 * scale;

    for (i, f) in layout.features.iter().enumerate() {
        let fill = match colors {
            Some(c) => MASK_PALETTE[c[i] as usize],
            None => UNCOLORED,
        };
        for r in f.rects() {
            let _ = write!(
                out,
                "<rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" \
                 fill=\"{fill}\" stroke=\"#222\" stroke-width=\"0.4\"/>",
                tx(r.xl),
                ty(r.yh),
                (r.xh - r.xl) as f64 * scale,
                (r.yh - r.yl) as f64 * scale,
            );
        }
    }

    if opts.show_violations {
        if let Some(c) = colors {
            let index = GridIndex::build(&layout.features, layout.d);
            for (a, b) in index.conflict_pairs(&layout.features, layout.d) {
                if c[a] == c[b] {
                    let ba = layout.features[a].bounding_box();
                    let bb = layout.features[b].bounding_box();
                    let _ = write!(
                        out,
                        "<line x1=\"{:.2}\" y1=\"{:.2}\" x2=\"{:.2}\" y2=\"{:.2}\" \
                         stroke=\"#d00\" stroke-width=\"2\" stroke-dasharray=\"4 2\"/>",
                        tx((ba.xl + ba.xh) / 2),
                        ty((ba.yl + ba.yh) / 2),
                        tx((bb.xl + bb.xh) / 2),
                        ty((bb.yl + bb.yh) / 2),
                    );
                }
            }
        }
    }
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpld_geometry::{Feature, Rect};

    fn demo() -> Layout {
        Layout {
            name: "demo".into(),
            d: 100,
            features: vec![
                Feature::new(0, vec![Rect::new(0, 0, 300, 40)]),
                Feature::new(1, vec![Rect::new(0, 80, 300, 120)]),
                Feature::new(2, vec![Rect::new(0, 160, 300, 200)]),
            ],
        }
    }

    #[test]
    fn renders_all_features() {
        let svg = render_svg(&demo(), Some(&[0, 1, 2]), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // 1 background + 3 feature rects.
        assert_eq!(svg.matches("<rect").count(), 4);
        for mask in &MASK_PALETTE[..3] {
            assert!(svg.contains(mask), "missing {mask}");
        }
    }

    #[test]
    fn violations_drawn_for_same_mask_conflicts() {
        // Features 0 and 1 are 40 apart (< d): same mask => violation line.
        let svg = render_svg(&demo(), Some(&[0, 0, 1]), &SvgOptions::default());
        assert!(svg.contains("<line"));
        let clean = render_svg(&demo(), Some(&[0, 1, 0]), &SvgOptions::default());
        assert!(!clean.contains("<line"));
    }

    #[test]
    fn uncolored_rendering_works() {
        let svg = render_svg(&demo(), None, &SvgOptions::default());
        assert!(svg.contains(UNCOLORED));
        assert!(!svg.contains("<line"));
    }

    #[test]
    fn empty_layout_is_safe() {
        let layout = Layout {
            name: "e".into(),
            d: 100,
            features: vec![],
        };
        let svg = render_svg(&layout, None, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    #[should_panic(expected = "one mask per feature")]
    fn wrong_color_count_panics() {
        let _ = render_svg(&demo(), Some(&[0]), &SvgOptions::default());
    }

    #[test]
    fn end_to_end_render_of_decomposition() {
        use mpld::{prepare, run_pipeline};
        use mpld_graph::DecomposeParams;
        use mpld_ilp::IlpDecomposer;
        let layout = mpld_layout::circuit_by_name("C432")
            .expect("exists")
            .generate();
        let params = DecomposeParams::tpl();
        let prep = prepare(&layout, &params);
        let r = run_pipeline(&prep, &IlpDecomposer::new(), &params);
        let svg = render_svg(
            &layout,
            Some(&r.decomposition.feature_colors),
            &SvgOptions::default(),
        );
        // Feature-level rendering uses representative colors for split
        // features, so the line count is an upper bound on true conflicts
        // (a stitch-split feature can look violated at the parent level).
        let lines = svg.matches("<line").count();
        assert!(lines >= r.cost.conflicts as usize);
        assert!(
            lines <= (r.cost.conflicts + r.cost.stitches) as usize,
            "{lines} lines vs {:?}",
            r.cost
        );
        assert_eq!(
            svg.matches("<rect").count(),
            1 + layout
                .features
                .iter()
                .map(|f| f.rects().len())
                .sum::<usize>()
        );
    }
}
