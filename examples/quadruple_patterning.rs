//! Quadruple patterning (k = 4): the paper's framework is "flexible to be
//! extended to other decomposition tasks", and every engine in this
//! workspace supports four masks. This example compares TPL vs QPL cost
//! on one circuit and shows the mask-density balance of the result.
//!
//! ```sh
//! cargo run --release -p mpld --example quadruple_patterning -- C1355
//! ```

use mpld::{mask_densities, prepare, run_pipeline};
use mpld_graph::DecomposeParams;
use mpld_ilp::IlpDecomposer;
use mpld_layout::circuit_by_name;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "C1355".to_string());
    let Some(circuit) = circuit_by_name(&name) else {
        eprintln!("unknown circuit {name}");
        std::process::exit(1);
    };
    let layout = circuit.generate();
    let engine = IlpDecomposer::new();

    for params in [DecomposeParams::tpl(), DecomposeParams::qpl()] {
        let prep = prepare(&layout, &params);
        let r = run_pipeline(&prep, &engine, &params);
        let densities = mask_densities(&layout, &r.decomposition.feature_colors, params.k);
        println!(
            "k = {}: cost {} (objective {:.1}) in {:?}",
            params.k,
            r.cost,
            r.cost.value(params.alpha),
            r.decompose_time
        );
        let pretty: Vec<String> = densities
            .iter()
            .map(|d| format!("{:.1}%", d * 100.0))
            .collect();
        println!("       mask area shares: [{}]", pretty.join(", "));
    }
    println!("\nmore masks can only lower the optimal cost. Note how the extra");
    println!("slack at k = 4 lets densities drift — the objective only counts");
    println!("conflicts/stitches, which is why density-balancing decomposers");
    println!("(cited in the paper) add an explicit balance term.");
}
