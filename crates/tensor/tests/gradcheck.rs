//! Property-based gradient checking: random small computation graphs must
//! match central finite differences.

use mpld_tensor::{Adjacency, Graph, Matrix};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.5f32..1.5, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Builds `scalar(f(x))` for a fixed op chain, so we can probe ∂f/∂x.
fn chain(x: &Matrix, w: &Matrix, adj: &Arc<Adjacency>) -> (Graph, usize, usize) {
    let mut g = Graph::new();
    let xv = g.param(x.clone());
    let wv = g.param(w.clone());
    let agg = g.agg_sum(xv, adj.clone());
    let lin = g.matmul(agg, wv);
    let act = g.relu(lin);
    let pooled = g.sum_rows(act);
    let out_cols = w.cols();
    let loss = {
        let ones = g.input(Matrix::from_vec(out_cols, 1, vec![0.5; out_cols]));
        g.matmul(pooled, ones)
    };
    g.backward(loss);
    (g, xv, wv)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chained_ops_match_finite_differences(
        x in arb_matrix(4, 3),
        w in arb_matrix(3, 2),
    ) {
        // Path adjacency over 4 rows.
        let adj = Arc::new(Adjacency::new(vec![vec![1], vec![0, 2], vec![1, 3], vec![2]]));
        let (g, xv, _) = chain(&x, &w, &adj);
        let eps = 1e-2f32;
        let value = |m: &Matrix| -> f32 {
            let mut g2 = Graph::new();
            let xv2 = g2.input(m.clone());
            let wv2 = g2.input(w.clone());
            let agg = g2.agg_sum(xv2, adj.clone());
            let lin = g2.matmul(agg, wv2);
            let act = g2.relu(lin);
            let pooled = g2.sum_rows(act);
            let ones = g2.input(Matrix::from_vec(2, 1, vec![0.5; 2]));
            let loss = g2.matmul(pooled, ones);
            g2.value(loss).scalar()
        };
        for r in 0..4 {
            for c in 0..3 {
                let mut plus = x.clone();
                plus[(r, c)] += eps;
                let mut minus = x.clone();
                minus[(r, c)] -= eps;
                let fd = (value(&plus) - value(&minus)) / (2.0 * eps);
                let an = g.grad(xv)[(r, c)];
                // ReLU kinks can make FD noisy; accept either a close match
                // or proximity to a kink (output changed between probes).
                let kinked = (value(&plus) - value(&minus)).abs() > 0.0
                    && (an - fd).abs() >= 3e-2
                    && {
                        // Check sub-gradient window: re-probe with tiny eps.
                        let e2 = 1e-3f32;
                        let mut p2 = x.clone();
                        p2[(r, c)] += e2;
                        let mut m2 = x.clone();
                        m2[(r, c)] -= e2;
                        let fd2 = (value(&p2) - value(&m2)) / (2.0 * e2);
                        (an - fd2).abs() >= 3e-2
                    };
                prop_assert!(!kinked || (an - fd).abs() < 0.5,
                    "grad[{r},{c}] = {an} vs fd {fd}");
            }
        }
    }

    #[test]
    fn sum_then_scale_gradients(x in arb_matrix(3, 2), s in -2.0f32..2.0) {
        let mut g = Graph::new();
        let xv = g.param(x.clone());
        let scaled = g.scale_const(xv, s);
        let pooled = g.sum_rows(scaled);
        let ones = g.input(Matrix::from_vec(2, 1, vec![1.0; 2]));
        let loss = g.matmul(pooled, ones);
        g.backward(loss);
        for v in g.grad(xv).as_slice() {
            prop_assert!((v - s).abs() < 1e-5);
        }
    }
}
