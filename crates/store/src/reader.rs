//! Corruption-tolerant loading: bounded streaming reads, per-record
//! audit, last-wins dedup, and the re-key rule.
//!
//! Every record is re-verified before it is trusted:
//!
//! 1. the line must be complete (`}`-terminated) — a torn final line is
//!    the expected kill -9 signature and is skipped silently except for
//!    a counter;
//! 2. the graph is rebuilt through [`LayoutGraph::new`]'s validation;
//! 3. the coloring is re-audited with the independent Eq. 1 checker
//!    ([`audit_coloring`]) and must reproduce the claimed cost exactly.
//!
//! A record failing any step is skipped and counted — the unit simply
//! re-solves. Nothing in a store file can make a load panic or serve a
//! wrong match: served hits additionally go through the in-memory maps'
//! structural equality check.

use crate::format::{parse_header, parse_record, Header, Record, StoreKey, StoredSolve};
use mpld_graph::audit_coloring;
use mpld_matching::{graph_fingerprint, graphs_identical, LibraryEntry};
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// What one [`load`] observed (all counters cumulative for the file).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Clean, deduplicated solve records loaded.
    pub solves: usize,
    /// Older duplicates dropped by last-record-wins.
    pub superseded: usize,
    /// Library entries loaded (0 unless `lib_complete`).
    pub lib_entries: usize,
    /// Whether a complete library dump (with its `ld` marker) was found.
    pub lib_complete: bool,
    /// Malformed / unparseable / structurally invalid records skipped.
    pub skipped_corrupt: usize,
    /// Well-formed records whose coloring failed the cost re-audit.
    pub skipped_audit: usize,
    /// Library records orphaned by a missing completion marker.
    pub orphaned: usize,
    /// Whether the final line was torn (incomplete) — the kill -9 case.
    pub torn_tail: bool,
    /// Whether a keyed file had a mismatched header and was moved aside.
    pub rekeyed: bool,
    /// File size in bytes at load time.
    pub bytes: u64,
    /// Wall-clock load time in milliseconds.
    pub load_ms: u64,
}

/// Everything a matching store file contained, post-verification.
#[derive(Debug)]
pub struct StoreLoad {
    /// Audit-clean tail solves, deduplicated last-wins.
    pub solves: Vec<StoredSolve>,
    /// The persisted graph library, only when a complete dump was found.
    pub lib: Option<Vec<LibraryEntry>>,
    /// Load counters.
    pub report: LoadReport,
}

impl StoreLoad {
    fn empty() -> Self {
        StoreLoad {
            solves: Vec::new(),
            lib: None,
            report: LoadReport::default(),
        }
    }
}

/// Iterates complete record lines of a store file (header excluded),
/// reporting each line to `on_line` and whether the final line was torn.
/// Returns `Ok(None)` when the file is missing or empty.
fn walk_records(
    path: &Path,
    mut on_line: impl FnMut(&str),
) -> std::io::Result<Option<(Header, bool, u64)>> {
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let bytes = file.metadata()?.len();
    let mut reader = BufReader::new(file);
    let mut raw: Vec<u8> = Vec::new();
    // Header line. Corrupted bytes must degrade, not error, so lines are
    // read as bytes and converted lossily (a mangled line simply fails
    // to parse and is counted).
    if reader.read_until(b'\n', &mut raw)? == 0 {
        return Ok(None);
    }
    let line = String::from_utf8_lossy(&raw).into_owned();
    let Some(header) = parse_header(&line) else {
        return Ok(Some((
            Header {
                version: 0,
                model_digest: 0,
                k: 0,
                alpha: 0.0,
                dim: 0,
                library: String::new(),
            },
            false,
            bytes,
        )));
    };
    let mut torn_tail = false;
    loop {
        raw.clear();
        if reader.read_until(b'\n', &mut raw)? == 0 {
            break;
        }
        let line = String::from_utf8_lossy(&raw);
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        if !trimmed.ends_with('}') || !line.ends_with('\n') {
            // Incomplete line: only legitimate as the torn final write of
            // a killed process. Anything after it is treated as part of
            // the tear by construction (reads stop at EOF anyway).
            torn_tail = true;
            continue;
        }
        on_line(trimmed);
    }
    Ok(Some((header, torn_tail, bytes)))
}

/// Internal accumulation shared by [`load`] and compaction: dedups
/// solves last-wins, audits everything, and resolves the latest complete
/// library dump.
pub(crate) struct Accumulated {
    pub(crate) solves: Vec<StoredSolve>,
    pub(crate) lib: Option<Vec<LibraryEntry>>,
    pub(crate) superseded: usize,
    pub(crate) skipped_corrupt: usize,
    pub(crate) skipped_audit: usize,
    pub(crate) orphaned: usize,
}

pub(crate) fn accumulate(lines: &[String], k: u8) -> Accumulated {
    let mut acc = Accumulated {
        solves: Vec::new(),
        lib: None,
        superseded: 0,
        skipped_corrupt: 0,
        skipped_audit: 0,
        orphaned: 0,
    };
    // (fingerprint, ec_first) buckets into `solves`, equality-verified.
    let mut index: HashMap<(u64, bool), Vec<usize>> = HashMap::new();
    let mut cur_lib: Vec<LibraryEntry> = Vec::new();
    for line in lines {
        match parse_record(line) {
            None => acc.skipped_corrupt += 1,
            Some(Record::Solve(s)) => {
                match audit_coloring(&s.graph, &s.coloring, k) {
                    Ok(cost) if cost == s.cost => {}
                    _ => {
                        acc.skipped_audit += 1;
                        continue;
                    }
                }
                let fp = graph_fingerprint(&s.graph);
                let bucket = index.entry((fp, s.ec_first)).or_default();
                match bucket
                    .iter()
                    .copied()
                    .find(|&i| graphs_identical(&acc.solves[i].graph, &s.graph))
                {
                    Some(i) => {
                        // Last record wins, mirroring the checkpoint
                        // journal's replay rule.
                        acc.solves[i] = s;
                        acc.superseded += 1;
                    }
                    None => {
                        bucket.push(acc.solves.len());
                        acc.solves.push(s);
                    }
                }
            }
            Some(Record::Lib(e)) => match audit_coloring(&e.graph, &e.solution, k) {
                Ok(cost) if cost == e.cost => cur_lib.push(*e),
                _ => acc.skipped_audit += 1,
            },
            Some(Record::LibDone { n }) => {
                if cur_lib.len() == n && n > 0 {
                    if let Some(old) = acc.lib.replace(std::mem::take(&mut cur_lib)) {
                        acc.superseded += old.len();
                    }
                } else {
                    // Dump whose marker disagrees (a record inside it was
                    // corrupt or the dump itself was torn): orphaned,
                    // rebuilt from scratch rather than half-trusted.
                    acc.orphaned += cur_lib.len() + 1;
                    cur_lib.clear();
                }
            }
        }
    }
    acc.orphaned += cur_lib.len();
    acc
}

/// Moves a mismatched keyed file aside (never deletes data) so the key's
/// path starts fresh. Best-effort: a failed rename still returns an
/// empty load — a mismatched file is never served either way.
fn move_aside(path: &Path) {
    let mut stale = path.as_os_str().to_os_string();
    stale.push(".stale");
    let _ = std::fs::rename(path, PathBuf::from(stale));
}

/// Loads the store file for `key` under `dir`, verifying every record
/// (see module docs). A missing file is an empty load; a file whose
/// header does not match `key` byte-for-byte is moved aside and counted
/// as re-keyed — its records are never served.
///
/// # Errors
///
/// Only real I/O failures (permissions, disk errors); corruption of any
/// kind is a counter, not an error.
pub fn load(dir: &Path, key: &StoreKey) -> std::io::Result<StoreLoad> {
    let start = Instant::now();
    let path = key.path_in(dir);
    let mut lines: Vec<String> = Vec::new();
    let Some((header, torn_tail, bytes)) = walk_records(&path, |l| lines.push(l.to_string()))?
    else {
        return Ok(StoreLoad::empty());
    };
    if !key.matches(&header) {
        move_aside(&path);
        let mut out = StoreLoad::empty();
        out.report.rekeyed = true;
        out.report.load_ms = elapsed_ms(start);
        return Ok(out);
    }
    let acc = accumulate(&lines, key.k);
    let report = LoadReport {
        solves: acc.solves.len(),
        superseded: acc.superseded,
        lib_entries: acc.lib.as_ref().map_or(0, Vec::len),
        lib_complete: acc.lib.is_some(),
        skipped_corrupt: acc.skipped_corrupt,
        skipped_audit: acc.skipped_audit,
        orphaned: acc.orphaned,
        torn_tail,
        rekeyed: false,
        bytes,
        load_ms: elapsed_ms(start),
    };
    Ok(StoreLoad {
        solves: acc.solves,
        lib: acc.lib,
        report,
    })
}

fn elapsed_ms(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// Cheap per-file statistics (no audit): what `mpld library stats`
/// prints.
#[derive(Debug, Clone, PartialEq)]
pub struct FileStats {
    /// The store file.
    pub path: PathBuf,
    /// Parsed header, `None` when the header line is unreadable.
    pub header: Option<Header>,
    /// Solve records present (pre-dedup).
    pub solves: usize,
    /// Distinct solve fingerprint buckets.
    pub buckets: usize,
    /// Library records present.
    pub lib_entries: usize,
    /// Whether a complete library dump marker was seen.
    pub lib_complete: bool,
    /// Malformed record lines.
    pub corrupt: usize,
    /// File size in bytes.
    pub bytes: u64,
}

/// Scans every `library-*.jsonl` under `dir` (sorted by name) without
/// auditing record contents.
///
/// # Errors
///
/// Directory read failures; a missing directory yields an empty list.
pub fn scan_dir(dir: &Path) -> std::io::Result<Vec<FileStats>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("library-") && name.ends_with(".jsonl") {
            paths.push(path);
        }
    }
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let mut stats = FileStats {
            path: path.clone(),
            header: None,
            solves: 0,
            buckets: 0,
            lib_entries: 0,
            lib_complete: false,
            corrupt: 0,
            bytes: 0,
        };
        let mut fps: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut pending_lib = 0usize;
        if let Some((header, _torn, bytes)) =
            walk_records(&path, |line| match parse_record(line) {
                None => stats.corrupt += 1,
                Some(Record::Solve(s)) => {
                    stats.solves += 1;
                    fps.insert(graph_fingerprint(&s.graph));
                }
                Some(Record::Lib(_)) => {
                    stats.lib_entries += 1;
                    pending_lib += 1;
                }
                Some(Record::LibDone { n }) => {
                    if pending_lib == n && n > 0 {
                        stats.lib_complete = true;
                    }
                    pending_lib = 0;
                }
            })?
        {
            stats.bytes = bytes;
            if header.version != 0 {
                stats.header = Some(header);
            }
        }
        stats.buckets = fps.len();
        out.push(stats);
    }
    Ok(out)
}

/// Full audit re-check of one store file: every record parsed, every
/// coloring re-audited against its graph with the header's `k`.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// The store file.
    pub path: PathBuf,
    /// Whether the header line parsed.
    pub header_ok: bool,
    /// Record lines seen.
    pub records: usize,
    /// Records that parsed and re-audited clean.
    pub clean: usize,
    /// Malformed record lines.
    pub corrupt: usize,
    /// Parsed records whose coloring failed the cost re-audit.
    pub audit_failed: usize,
    /// Library records without a matching completion marker.
    pub orphaned: usize,
    /// Whether the final line was torn.
    pub torn_tail: bool,
    /// Whether a complete, audit-clean library dump was found.
    pub lib_complete: bool,
    /// File size in bytes.
    pub bytes: u64,
}

impl VerifyReport {
    /// A store is healthy when its header parses and nothing beyond an
    /// expected torn tail had to be skipped.
    pub fn is_clean(&self) -> bool {
        self.header_ok && self.corrupt == 0 && self.audit_failed == 0 && self.orphaned == 0
    }
}

/// Runs the full audit re-check on `path` (see [`VerifyReport`]).
///
/// # Errors
///
/// I/O failures only; a missing file reports zero records with
/// `header_ok: false`.
pub fn verify_file(path: &Path) -> std::io::Result<VerifyReport> {
    let mut lines: Vec<String> = Vec::new();
    let walked = walk_records(path, |l| lines.push(l.to_string()))?;
    let mut report = VerifyReport {
        path: path.to_path_buf(),
        header_ok: false,
        records: lines.len(),
        clean: 0,
        corrupt: 0,
        audit_failed: 0,
        orphaned: 0,
        torn_tail: false,
        lib_complete: false,
        bytes: 0,
    };
    let Some((header, torn_tail, bytes)) = walked else {
        return Ok(report);
    };
    report.torn_tail = torn_tail;
    report.bytes = bytes;
    if header.version == 0 {
        report.corrupt += report.records;
        return Ok(report);
    }
    report.header_ok = true;
    let acc = accumulate(&lines, header.k);
    report.corrupt = acc.skipped_corrupt;
    report.audit_failed = acc.skipped_audit;
    report.orphaned = acc.orphaned;
    report.lib_complete = acc.lib.is_some();
    report.clean = report
        .records
        .saturating_sub(acc.skipped_corrupt + acc.skipped_audit + acc.orphaned);
    Ok(report)
}

/// [`verify_file`] over every store file in `dir` (sorted by name).
///
/// # Errors
///
/// Directory read failures; a missing directory yields an empty list.
pub fn verify_dir(dir: &Path) -> std::io::Result<Vec<VerifyReport>> {
    let mut out = Vec::new();
    for fs in scan_dir(dir)? {
        out.push(verify_file(&fs.path)?);
    }
    Ok(out)
}
