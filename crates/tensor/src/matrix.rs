use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major `f32` matrix — the only tensor shape the MPLD
/// networks need (node-feature matrices `n x d` and weight matrices).
///
/// # Example
///
/// ```
/// use mpld_tensor::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows * cols");
        Matrix { rows, cols, data }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Xavier/Glorot-style random initialization.
    pub fn glorot<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let scale = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-scale..scale)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat row-major mutable view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ * other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row counts must agree for tn product");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let a = self.data[r * self.cols + i];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[r * other.cols..(r + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "col counts must agree for nt product");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let brow = &other.data[j * other.cols..(j + 1) * other.cols];
                out.data[i * other.rows + j] =
                    arow.iter().zip(brow).map(|(&a, &b)| a * b).sum();
            }
        }
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise scaled in-place addition `self += s * other`.
    pub fn add_scaled_assign(&mut self, other: &Matrix, s: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Returns `self` scaled by `s`.
    pub fn scaled(&self, s: f32) -> Matrix {
        let data = self.data.iter().map(|&x| x * s).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// The single element of a `1 x 1` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `1 x 1`.
    pub fn scalar(&self) -> f32 {
        assert_eq!((self.rows, self.cols), (1, 1), "scalar() requires a 1 x 1 matrix");
        self.data[0]
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::eye(2)), a);
        assert_eq!(Matrix::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[0.0], &[-1.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.scalar(), -2.0);
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 1.0], &[1.0, 1.0, 0.0]]);
        // aᵀ (2x3) * b (3x3) = 2x3
        let tn = a.matmul_tn(&b);
        assert_eq!(tn.rows(), 2);
        assert_eq!(tn.cols(), 3);
        assert_eq!(tn[(0, 0)], 1.0 * 1.0 + 3.0 * 0.0 + 5.0 * 1.0);
        // b (3x3) * aᵀ? shapes: nt of (3x2)*(3x2)ᵀ
        let nt = a.matmul_nt(&a);
        assert_eq!(nt.rows(), 3);
        assert_eq!(nt.cols(), 3);
        assert_eq!(nt[(0, 1)], 1.0 * 3.0 + 2.0 * 4.0);
        assert_eq!(nt[(1, 0)], nt[(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scalar_and_norm() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(m.norm(), 5.0);
        let s = Matrix::from_rows(&[&[7.5]]);
        assert_eq!(s.scalar(), 7.5);
    }

    #[test]
    fn add_scaled() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, -2.0]]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a, Matrix::from_rows(&[&[2.0, 0.0]]));
    }
}
