//! Classification metrics for the evaluation tables (confusion matrix,
//! recall, F1).

use std::fmt;

/// A binary confusion matrix. Class 0 is "positive" following the paper's
/// convention (ILP in Table III, "redundant" in Table VI).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Predicted 0, labeled 0.
    pub tp: usize,
    /// Predicted 0, labeled 1.
    pub fp: usize,
    /// Predicted 1, labeled 0.
    pub fn_: usize,
    /// Predicted 1, labeled 1.
    pub tn: usize,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one (predicted, labeled) observation.
    pub fn record(&mut self, predicted: u8, labeled: u8) {
        match (predicted, labeled) {
            (0, 0) => self.tp += 1,
            (0, 1) => self.fp += 1,
            (1, 0) => self.fn_ += 1,
            _ => self.tn += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Fraction of correctly classified observations.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// `tp / (tp + fn)` — how many positives were found.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// `tp / (tp + fp)` — how many predicted positives were right.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "            labeled 0  labeled 1")?;
        writeln!(f, "pred 0    {:>9} {:>10}", self.tp, self.fp)?;
        writeln!(f, "pred 1    {:>9} {:>10}", self.fn_, self.tn)?;
        write!(
            f,
            "recall {:.3}  precision {:.3}  F1 {:.3}  acc {:.3}",
            self.recall(),
            self.precision(),
            self.f1(),
            self.accuracy()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let mut m = ConfusionMatrix::new();
        for _ in 0..5 {
            m.record(0, 0);
            m.record(1, 1);
        }
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn known_values() {
        // tp=8, fp=2, fn=4, tn=6.
        let mut m = ConfusionMatrix::new();
        for _ in 0..8 {
            m.record(0, 0);
        }
        for _ in 0..2 {
            m.record(0, 1);
        }
        for _ in 0..4 {
            m.record(1, 0);
        }
        for _ in 0..6 {
            m.record(1, 1);
        }
        assert_eq!(m.total(), 20);
        assert!((m.recall() - 8.0 / 12.0).abs() < 1e-12);
        assert!((m.precision() - 0.8).abs() < 1e-12);
        let f1 = 2.0 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0);
        assert!((m.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn display_contains_counts() {
        let mut m = ConfusionMatrix::new();
        m.record(0, 0);
        let s = m.to_string();
        assert!(s.contains("recall"));
        assert!(s.contains("F1"));
    }
}
